// Command quepa-server exposes augmented search and augmented exploration
// over a REST interface (the User Interface component of the paper's Fig. 2),
// backed by a generated Polyphony polystore.
//
// Endpoints:
//
//	GET /databases                         list the polystore's databases
//	GET /search?db=…&q=…&level=N           augmented search (level defaults to 0);
//	                                       optional minp=0.8 / topk=10 trim the ranking,
//	                                       explain=1 attaches an EXPLAIN profile;
//	                                       store failures yield a partial answer
//	                                       with a "degraded" section, not a 500
//	GET /object?key=D.C.K                  fetch one object with its p-relations
//	POST /explore?db=…&q=…                 start an exploration session -> {session}
//	POST /explore/step?session=…&key=…     expand one object -> ranked links;
//	                                       explain=1 attaches an EXPLAIN profile
//	POST /explore/finish?session=…         end the session (may promote the path)
//	GET /stats                             index/cache/telemetry/resilience/durability/build statistics
//	GET /healthz                           200 ok / 503 degraded with breaker snapshots
//	                                       (and the WAL error, in durable mode)
//	GET /metrics                           Prometheus text exposition
//	GET /debug/traces?route=…&min_ms=…     recent slow queries as JSON span trees
//	GET /debug/explain?route=…             recent EXPLAIN profiles, slowest first
//	GET /debug/pprof/…                     net/http/pprof profiles (only with -debug)
//
// Every search consults the adaptive optimizer (Section V) and logs the
// completed run back into it, so the server's configuration converges as
// traffic flows; explain=1 exposes each decision's provenance.
//
// With -data-dir the server runs durably: index mutations (removals from
// degraded scans, path promotions) are journaled to a write-ahead log, the
// index is checkpointed periodically, and startup recovers the last committed
// state instead of rebuilding from the generator. SIGINT/SIGTERM drains
// in-flight requests and flushes a final checkpoint before exiting.
//
// With -cluster host:port,... -shard-id N the server runs as one peer of a
// sharded deployment: a consistent-hash ring partitions A' ownership across
// the listed peers, each peer serves its shard over the wire protocol, and
// augmentation becomes scatter-gather across the owners. /healthz and /stats
// grow a "cluster" section (ring version, per-peer breakers, owned ranges);
// a peer whose breaker is open shows up in answers as degraded with reason
// "peer-open" instead of failing the query.
//
// Example:
//
//	quepa-server -addr :8080 -replicas 1 &
//	curl 'localhost:8080/search?db=transactions&q=SELECT+*+FROM+inventory+WHERE+seq+<+3&explain=1'
//	curl 'localhost:8080/debug/explain'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	rdebug "runtime/debug"
	rpprof "runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/cluster"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/optimizer"
	"quepa/internal/rcache"
	"quepa/internal/resilience"
	"quepa/internal/slo"
	"quepa/internal/telemetry"
	"quepa/internal/wal"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

type server struct {
	built   *workload.Built
	aug     *augment.Augmenter
	tracker *aindex.PathTracker

	// rcache memoizes Reach result sets and augmentation outcomes, keyed by
	// the index's snapshot epoch so mutations invalidate for free. It is
	// shared with the cluster coordinator in sharded mode. -rcache-cap sizes
	// it; 0 disables.
	rcache *rcache.Cache

	// wal is the durability manager when the server runs with -data-dir;
	// nil in the default in-memory mode. /stats and /healthz read it.
	wal *wal.Manager

	// Per-store circuit breakers: every database of the polystore is wrapped
	// in a resilience.GuardedStore drawing its breaker from this set, which
	// /healthz and /stats expose.
	res *resilience.Set

	// cluster is the scatter-gather coordinator when the server runs as one
	// peer of a sharded deployment (-cluster); nil in single-node mode.
	// /healthz and /stats read it for the ring and per-peer breaker view.
	cluster *cluster.Coordinator

	// slo is the burn-rate engine when the server runs with latency
	// objectives (-slo-search-p99 / -slo-step-p99); nil otherwise. Installed
	// after construction via installSLO so newServer's signature — shared
	// with the tests — stays put.
	slo *slo.Engine

	// Adaptive optimizer state: the optimizer itself, and the last observed
	// result/augmentation sizes per query signature — a query's features are
	// only known after it ran, so the previous run of the same query provides
	// the feature vector for the next decision. The map is bounded at
	// maxLastSeen signatures (first-seen order eviction, lastSeenOrder) so
	// high-cardinality query traffic cannot grow it for the life of the
	// server; an evicted signature simply decides from zero features again.
	opt           *optimizer.Adaptive
	optMu         sync.Mutex
	lastSeen      map[string]lastRun
	lastSeenOrder []string

	// EXPLAIN profile ring plus the 1-in-K background sampler.
	explainBuf   *explain.Buffer
	explainEvery int
	reqSeq       atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*augment.Exploration
	nextID   int
}

type lastRun struct {
	result, augmented int
}

// maxLastSeen bounds the per-signature feature memory, mirroring the
// optimizer's MaxLogs bound on its run log.
const maxLastSeen = 4096

// defaultRcacheCap is the default -rcache-cap: reach/outcome results the
// result cache holds before LRU eviction.
const defaultRcacheCap = 4096

// newServer assembles a server around a built workload — shared between main
// and the tests so both run the identical wiring. Every store of the
// polystore is re-registered behind a circuit breaker before the augmenter
// captures it, so a store that keeps failing costs one fast rejection per
// query instead of a doomed round trip per fetch.
func newServer(built *workload.Built, cfg augment.Config, explainCap, explainEvery int, bcfg resilience.BreakerConfig) (*server, error) {
	res := resilience.NewSet(bcfg)
	if err := resilience.GuardPolystore(built.Poly, res); err != nil {
		return nil, err
	}
	s := &server{
		built:        built,
		aug:          augment.New(built.Poly, built.Index, cfg),
		rcache:       rcache.New(defaultRcacheCap),
		tracker:      aindex.NewPathTracker(built.Index, aindex.DefaultPromotionPolicy),
		res:          res,
		opt:          optimizer.NewAdaptive(),
		lastSeen:     map[string]lastRun{},
		explainBuf:   explain.NewBuffer(explainCap),
		explainEvery: explainEvery,
		sessions:     map[string]*augment.Exploration{},
	}
	s.opt.RetrainEvery = 256
	s.opt.MaxLogs = 4096
	s.aug.SetResultCache(s.rcache)
	// Component-level index surgery (ReplaceComponent) flushes the result
	// cache explicitly; ordinary mutations invalidate for free through the
	// epoch in every entry's validation key.
	built.Index.SetInvalidationHook(s.rcache.Invalidate)
	s.registerMetrics()
	return s, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	replicas := flag.Int("replicas", 0, "replication rounds (0 -> 4 databases, 3 -> 13)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	indexPath := flag.String("index", "", "load the A' index from this JSON-lines file (e.g. from quepa-collect -out) instead of the generated one")
	debug := flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
	slow := flag.Duration("slow", telemetry.DefaultSlowThreshold, "queries slower than this are kept in /debug/traces")
	version := flag.Bool("version", false, "print build information and exit")
	explainCap := flag.Int("explain-cap", explain.DefaultBufferCapacity, "EXPLAIN profiles kept in the /debug/explain ring")
	explainSample := flag.Int("explain-sample", 0, "profile every K-th request even without explain=1 (0 disables)")
	rcacheCap := flag.Int("rcache-cap", defaultRcacheCap,
		"reach/outcome results the epoch-validated result cache holds (0 disables memoization)")
	logLevel := flag.String("log-level", "info", "minimum structured log level: debug, info, warn, error")
	breakerFailures := flag.Int("breaker-failures", resilience.DefaultFailureThreshold,
		"consecutive store failures that open its circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", resilience.DefaultCooldown,
		"how long an open breaker rejects before a half-open probe")
	dataDir := flag.String("data-dir", "",
		"durable mode: journal index mutations to a WAL in this directory and recover from it at startup")
	fsyncPolicy := flag.String("fsync", wal.FsyncInterval,
		"WAL fsync policy: always (sync every append), interval (background), off (with -data-dir)")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond,
		"how often the background fsync loop flushes the WAL (with -fsync interval)")
	checkpointEvery := flag.Duration("checkpoint-interval", 5*time.Minute,
		"how often to checkpoint the index, bounding crash-replay work (0 disables; with -data-dir)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 8<<20,
		"rotate WAL segments at this size (with -data-dir)")
	drain := flag.Duration("drain", 10*time.Second,
		"graceful-shutdown window for in-flight requests before the final WAL flush")
	wireMode := flag.Bool("wire", false,
		"serve every database over a loopback TCP wire server and augment through multiplexed wire clients (exercises the full remote fetch path)")
	pool := flag.Int("pool", wire.DefaultPoolSize,
		"multiplexed connections per wire client (with -wire or -cluster)")
	wireCodec := flag.String("codec", "",
		"wire frame codec (with -wire or -cluster): empty negotiates binary v2 per connection, 'json' pins the v1 codec")
	clusterPeers := flag.String("cluster", "",
		"comma-separated wire addresses of every cluster peer ordered by shard id; enables sharded scatter-gather mode")
	shardID := flag.Int("shard-id", 0,
		"this peer's shard id: the index of its own address in -cluster")
	clusterVnodes := flag.Int("cluster-vnodes", cluster.DefaultVnodes,
		"virtual nodes per peer on the consistent-hash ring (all peers must agree)")
	clusterSeed := flag.Uint64("cluster-seed", 0,
		"ring hash seed, 0 selects the built-in default (all peers must agree)")
	traceSample := flag.Float64("trace-sample", telemetry.DefaultSampleRate,
		"probability of keeping a fast, unflagged trace (slow/errored/degraded/breaker traces are always kept)")
	traceLog := flag.String("trace-log", "",
		"append kept traces as JSON lines to this file (rotated once at -trace-log-bytes)")
	traceLogBytes := flag.Int64("trace-log-bytes", 16<<20,
		"rotate the trace log when it reaches this size (with -trace-log)")
	sloSearchP99 := flag.Duration("slo-search-p99", 0,
		"latency objective for /search: -slo-target of requests must finish within this (0 disables)")
	sloStepP99 := flag.Duration("slo-step-p99", 0,
		"latency objective for /explore/step (0 disables)")
	sloTarget := flag.Float64("slo-target", slo.DefaultTarget,
		"fraction of requests that must meet the latency objective")
	sloFastBurn := flag.Float64("slo-fast-burn", slo.DefaultFastBurn,
		"burn-rate threshold: /healthz degrades when both alert windows burn at or above it")
	sloInterval := flag.Duration("slo-interval", slo.DefaultInterval,
		"how often the SLO engine samples the route histograms")
	flag.Parse()
	if *version {
		fmt.Println(buildVersion())
		return
	}
	lvl, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	telemetry.SetLogLevel(lvl)
	telemetry.DefaultTracer().SetSlowThreshold(*slow)
	telemetry.DefaultTracer().SetSampleRate(*traceSample)
	var traceSink *telemetry.TraceLog
	if *traceLog != "" {
		traceSink, err = telemetry.NewTraceLog(*traceLog, *traceLogBytes)
		if err != nil {
			log.Fatal(err)
		}
		telemetry.DefaultTracer().SetExporter(traceSink)
		log.Printf("quepa-server: exporting kept traces to %s (rotate at %d bytes)", *traceLog, *traceLogBytes)
	}

	spec := workload.DefaultSpec().Scale(*scale)
	spec.ReplicaRounds = *replicas
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}
	index := built.Index
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		index, err = aindex.ReadIndex(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		built.Index = index
		log.Printf("quepa-server: loaded A' index from %s", *indexPath)
	}
	if _, err := wal.ParseFsyncPolicy(*fsyncPolicy); err != nil {
		log.Fatal(err)
	}
	manager, err := openDurable(built, durableOptions{
		DataDir:       *dataDir,
		Fsync:         *fsyncPolicy,
		FsyncInterval: *fsyncEvery,
		SegmentBytes:  *walSegmentBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	if manager != nil {
		if rec := manager.Recovery(); rec.Recovered {
			log.Printf("quepa-server: recovered index from %s: checkpoint epoch %d, %d batches (%d ops) replayed in %v",
				*dataDir, rec.CheckpointEpoch, rec.ReplayedBatches, rec.ReplayedOps, rec.Duration.Round(time.Millisecond))
		} else {
			log.Printf("quepa-server: seeded fresh data dir %s (fsync=%s)", *dataDir, *fsyncPolicy)
		}
	}
	if *wireMode {
		// Re-home every store behind a loopback TCP wire server and dial it
		// back with a multiplexed client, so the augmenter pays the real
		// remote fetch path (frames, demux, retries) instead of in-process
		// calls. The servers live for the process; no teardown needed.
		poly := core.NewPolystore()
		wireCodecs := map[string]int{}
		for _, name := range built.Poly.Databases() {
			st, err := built.Poly.Database(name)
			if err != nil {
				log.Fatal(err)
			}
			srv, err := wire.Serve(st, "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			cli, err := wire.DialConfig(srv.Addr(), wire.ClientConfig{
				Retry: resilience.DefaultRetryPolicy(), PoolSize: *pool, Codec: *wireCodec,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := poly.Register(cli); err != nil {
				log.Fatal(err)
			}
			wireCodecs[cli.Codec()]++
		}
		built.Poly = poly
		log.Printf("quepa-server: wire loopback enabled, %d multiplexed connections per store, codecs %v", *pool, wireCodecs)
	}
	bcfg := resilience.BreakerConfig{FailureThreshold: *breakerFailures, Cooldown: *breakerCooldown}
	var clusterRT *clusterRuntime
	if *clusterPeers != "" {
		if *wireMode {
			log.Fatal("quepa-server: -wire and -cluster are mutually exclusive")
		}
		clusterRT, err = setupCluster(built, *clusterPeers, *shardID, *clusterVnodes, *clusterSeed, bcfg, *pool, *wireCodec, nil)
		if err != nil {
			log.Fatal(err)
		}
		logClusterUp(clusterRT)
	}
	s, err := newServer(built, augment.Config{Strategy: augment.OuterBatch, BatchSize: 64, ThreadsSize: 8, CacheSize: 4096},
		*explainCap, *explainSample, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	s.wal = manager
	s.rcache.Resize(*rcacheCap)
	if manager != nil && manager.Recovery().Recovered {
		// A recovered index replaced the built one wholesale; any memoized
		// result predating recovery is flushed rather than trusted to age out.
		s.rcache.Invalidate()
	}
	if clusterRT != nil {
		s.installCluster(clusterRT)
	}

	var objectives []slo.Objective
	if *sloSearchP99 > 0 {
		objectives = append(objectives, slo.Objective{Route: "/search", Latency: *sloSearchP99, Target: *sloTarget})
	}
	if *sloStepP99 > 0 {
		objectives = append(objectives, slo.Objective{Route: "/explore/step", Latency: *sloStepP99, Target: *sloTarget})
	}
	var sloEngine *slo.Engine
	if len(objectives) > 0 {
		sloEngine, err = slo.New(slo.Config{
			Objectives: objectives,
			FastBurn:   *sloFastBurn,
			Interval:   *sloInterval,
			OnFastBurn: captureFastBurnProfiles(*dataDir),
		})
		if err != nil {
			log.Fatal(err)
		}
		s.installSLO(sloEngine)
		sloEngine.Start()
		log.Printf("quepa-server: burn-rate alerting on %d route(s), fast-burn threshold %.1f",
			len(objectives), *sloFastBurn)
	}

	mux := s.routes()
	if *debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		log.Printf("quepa-server: pprof enabled under /debug/pprof/")
	}

	log.Printf("quepa-server: %d databases, index %d keys / %d p-relations, listening on %s",
		built.Poly.Size(), built.Index.NodeCount(), built.Index.EdgeCount(), *addr)

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
	// requests, stops the checkpoint ticker, and only then closes the WAL —
	// which flushes the final segment and writes the shutdown checkpoint, so
	// a clean restart replays nothing.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	stopCheckpoints := startCheckpointLoop(manager, *checkpointEvery)
	err = serveUntil(ctx, &http.Server{Handler: mux}, ln, *drain,
		func() error { stopCheckpoints(); return nil },
		func() error {
			if sloEngine != nil {
				sloEngine.Stop()
			}
			return nil
		},
		func() error {
			if manager == nil {
				return nil
			}
			return manager.Close()
		},
		func() error {
			if traceSink == nil {
				return nil
			}
			return traceSink.Close()
		},
		func() error {
			if clusterRT == nil {
				return nil
			}
			return clusterRT.close()
		})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("quepa-server: shut down cleanly")
}

// routes assembles the mux with every handler wrapped in the telemetry
// middleware (request counter, latency histogram, root span per request).
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /databases", s.instrument("/databases", s.handleDatabases))
	mux.HandleFunc("GET /search", s.instrument("/search", s.handleSearch))
	mux.HandleFunc("GET /object", s.instrument("/object", s.handleObject))
	mux.HandleFunc("POST /explore", s.instrument("/explore", s.handleExploreStart))
	mux.HandleFunc("POST /explore/step", s.instrument("/explore/step", s.handleExploreStep))
	mux.HandleFunc("POST /explore/finish", s.instrument("/explore/finish", s.handleExploreFinish))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/explain", s.handleExplain)
	return mux
}

// registerMetrics exports the server's component state (cache, index,
// sessions) on the default registry as function-backed series.
func (s *server) registerMetrics() {
	s.aug.Cache().RegisterMetrics(telemetry.Default())
	s.rcache.RegisterMetrics(telemetry.Default())
	reg := telemetry.Default()
	reg.GaugeFunc("quepa_index_keys", "global keys in the A' index",
		func() float64 { return float64(s.built.Index.NodeCount()) })
	reg.GaugeFunc("quepa_index_edges", "p-relations in the A' index",
		func() float64 { return float64(s.built.Index.EdgeCount()) })
	reg.GaugeFunc("quepa_sessions_active", "open exploration sessions",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	reg.GaugeFunc("quepa_optimizer_runs", "run logs recorded by the adaptive optimizer",
		func() float64 { return float64(s.opt.LogCount()) })
	reg.GaugeFunc("quepa_explain_profiles_seen", "EXPLAIN profiles recorded since start",
		func() float64 { return float64(s.explainBuf.Seen()) })
	reg.GaugeFunc("quepa_breakers_open", "stores whose circuit breaker is currently open",
		func() float64 {
			var open float64
			for _, b := range s.res.Snapshot() {
				if b.State == resilience.Open.String() {
					open++
				}
			}
			return open
		})
}

// captureFastBurnProfiles returns the SLO engine's first-trip hook: it dumps
// goroutine and heap pprof profiles into dir (the data dir in durable mode,
// the working directory otherwise), so the evidence of what was burning the
// budget survives the incident. Capture failures are logged, never fatal —
// the alert itself must not depend on the disk.
func captureFastBurnProfiles(dir string) func(route string) {
	if dir == "" {
		dir = "."
	}
	return func(route string) {
		stamp := time.Now().UTC().Format("20060102T150405Z")
		for _, profile := range []string{"goroutine", "heap"} {
			p := rpprof.Lookup(profile)
			if p == nil {
				continue
			}
			path := filepath.Join(dir, fmt.Sprintf("fastburn-%s-%s.pprof", stamp, profile))
			f, err := os.Create(path)
			if err != nil {
				log.Printf("quepa-server: fast-burn profile capture: %v", err)
				continue
			}
			if err := p.WriteTo(f, 0); err != nil {
				log.Printf("quepa-server: fast-burn profile capture: %v", err)
			}
			f.Close()
			log.Printf("quepa-server: SLO fast burn on %s: captured %s", route, path)
		}
	}
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with a per-route latency histogram, a per-route
// and per-status request counter, and a root span that lands in the
// slow-query log when the request crosses the threshold.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := telemetry.NewHistogram("quepa_http_request_duration_seconds",
		"latency of HTTP requests by route", nil, telemetry.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, span := telemetry.StartSpan(r.Context(), "http "+route)
		span.SetAttr("url", r.URL.String())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := telemetry.Now()
		h(sw, r.WithContext(ctx))
		hist.Since(start)
		span.SetAttr("status", strconv.Itoa(sw.code))
		span.End()
		telemetry.NewCounter("quepa_http_requests_total", "HTTP requests served by route and status",
			telemetry.L("route", route), telemetry.L("code", strconv.Itoa(sw.code))).Inc()
		// The SLO engine reads this per-route series: 5xx responses spend
		// error budget no matter how fast they were produced.
		if sw.code >= 500 {
			telemetry.NewCounter(slo.ErrorCounter, "HTTP 5xx responses by route",
				telemetry.L("route", route)).Inc()
		}
		// start is the zero time when telemetry is off — no clock reads then.
		if !start.IsZero() {
			if d := time.Since(start); d >= telemetry.DefaultTracer().SlowThreshold() {
				telemetry.Log(telemetry.LogWarn, "slow query",
					telemetry.F("route", route),
					telemetry.F("ms", math.Round(float64(d.Nanoseconds())/1e3)/1e3),
					telemetry.F("status", sw.code))
			}
		}
	}
}

// installSLO attaches a burn-rate engine: /healthz starts answering 503
// while any objective fast-burns, and /stats grows an "slo" section.
func (s *server) installSLO(e *slo.Engine) { s.slo = e }

// handleHealthz is the load-balancer probe: 200 while every store's breaker
// admits calls, 503 as soon as one is open or an SLO fast-burns. The body
// carries the per-store breaker snapshots either way, so a failing probe is
// self-explaining. Like /metrics it skips the instrument middleware — probes
// fire too often to be worth tracing.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.res.AnyOpen() {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	body := map[string]any{"breakers": s.res.Snapshot()}
	body["rcache"] = map[string]any{
		"len":       s.rcache.Len(),
		"hit_ratio": s.rcache.HitRatio(),
	}
	if s.cluster != nil {
		// A burning peer degrades the probe like a burning store does: its
		// shard of every answer is missing until the breaker closes again.
		if s.cluster.AnyPeerOpen() {
			status, code = "degraded", http.StatusServiceUnavailable
		}
		body["cluster"] = s.cluster.Status(false)
	}
	if s.slo != nil {
		// Fast burn means the error budget is being spent at page-worthy
		// speed: fall out of the balancer before the budget is gone.
		if burning := s.slo.FastBurning(); len(burning) > 0 {
			status, code = "degraded", http.StatusServiceUnavailable
			body["slo_fast_burn"] = burning
		}
	}
	if s.wal != nil {
		// A sticky WAL error means new mutations are no longer being made
		// durable — the server still answers queries, but it must fall out of
		// the balancer so a healthy replica takes the writes.
		if werr := s.wal.Err(); werr != nil {
			status, code = "degraded", http.StatusServiceUnavailable
			body["wal_error"] = werr.Error()
		}
		body["durable_epoch"] = s.wal.Stats().DurableEpoch
	}
	body["status"] = status
	writeJSON(w, code, body)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.Default().WritePrometheus(w)
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	minMS, err := floatParam(r, "min_ms", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	route := q.Get("route")
	traceID := q.Get("trace_id")
	store := q.Get("store")
	tracer := telemetry.DefaultTracer()
	seen, kept := tracer.Stats()
	all := tracer.Snapshot()
	traces := make([]telemetry.SpanJSON, 0, len(all))
	for _, t := range all {
		// Root spans are named "http <route>"; accept both spellings so
		// ?route=/search and ?route=http+/search find the same traces.
		if route != "" && t.Name != route && t.Name != "http "+route {
			continue
		}
		if t.DurationMS < minMS {
			continue
		}
		if traceID != "" && t.TraceID != traceID {
			continue
		}
		// ?store= keeps traces that touched the named store anywhere in the
		// tree — the attribute every wire/fetch span carries.
		if store != "" && !treeHasAttr(t, "store", store) {
			continue
		}
		traces = append(traces, t)
	}
	if q.Get("format") == "json" {
		w.Header().Set("Content-Disposition", `attachment; filename="quepa-traces.json"`)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slow_threshold_ms": float64(tracer.SlowThreshold().Nanoseconds()) / 1e6,
		"roots_seen":        seen,
		"roots_kept":        kept,
		"sampling":          tracer.SamplingStats(),
		"traces":            traces,
	})
}

// treeHasAttr reports whether any span of the tree carries attrs[key] == val.
func treeHasAttr(t telemetry.SpanJSON, key, val string) bool {
	if t.Attrs[key] == val {
		return true
	}
	for _, c := range t.Children {
		if treeHasAttr(c, key, val) {
			return true
		}
	}
	return false
}

// handleExplain serves the EXPLAIN profile ring, slowest first, optionally
// restricted to one route with ?route=/search.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.explainBuf.Capacity(),
		"seen":     s.explainBuf.Seen(),
		"profiles": s.explainBuf.Snapshot(r.URL.Query().Get("route")),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type objectJSON struct {
	Key    string            `json:"key"`
	Fields map[string]string `json:"fields"`
	Prob   float64           `json:"prob,omitempty"`
	Dist   int               `json:"dist,omitempty"`
}

func toJSON(o core.Object) objectJSON {
	return objectJSON{Key: o.GK.String(), Fields: o.Fields}
}

func augmentedJSON(aos []augment.AugmentedObject) []objectJSON {
	out := make([]objectJSON, len(aos))
	for i, ao := range aos {
		out[i] = toJSON(ao.Object)
		out[i].Prob = ao.Prob
		out[i].Dist = ao.Dist
	}
	return out
}

func (s *server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	type db struct {
		Name        string   `json:"name"`
		Kind        string   `json:"kind"`
		Collections []string `json:"collections"`
	}
	var out []db
	for _, name := range s.built.Poly.Databases() {
		store, err := s.built.Poly.Database(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, db{Name: name, Kind: store.Kind().String(), Collections: store.Collections()})
	}
	writeJSON(w, http.StatusOK, out)
}

// intParam parses a non-negative integer query parameter, returning def when
// the parameter is absent. Non-numeric or negative values are an error —
// never silently defaulted — so a typo'd request fails loudly with a 400.
func intParam(r *http.Request, name string, def int) (int, error) {
	vs, ok := r.URL.Query()[name]
	if !ok {
		return def, nil
	}
	v := vs[0]
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("parameter %s must be a non-negative integer, got %q", name, v)
	}
	return n, nil
}

// boolParam parses a boolean query parameter (1/0/true/false), returning
// false when absent. Anything else is an error, in line with intParam.
func boolParam(r *http.Request, name string) (bool, error) {
	vs, ok := r.URL.Query()[name]
	if !ok {
		return false, nil
	}
	switch vs[0] {
	case "1", "true":
		return true, nil
	case "0", "false":
		return false, nil
	}
	return false, fmt.Errorf("parameter %s must be a boolean (1/0/true/false), got %q", name, vs[0])
}

// floatParam parses a non-negative finite float parameter, returning def
// when absent.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	vs, ok := r.URL.Query()[name]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(vs[0], 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("parameter %s must be a non-negative number, got %q", name, vs[0])
	}
	return f, nil
}

// probParam parses a probability parameter in [0, 1], returning def when
// absent. NaN and ±Inf parse as floats but are rejected explicitly.
func probParam(r *http.Request, name string, def float64) (float64, error) {
	vs, ok := r.URL.Query()[name]
	if !ok {
		return def, nil
	}
	v := vs[0]
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f > 1 {
		return 0, fmt.Errorf("parameter %s must be a probability in [0, 1], got %q", name, v)
	}
	return f, nil
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	db := r.URL.Query().Get("db")
	q := r.URL.Query().Get("q")
	if db == "" || q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("db and q parameters are required"))
		return
	}
	level, err := intParam(r, "level", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Optional presentation controls (the paper's colors/rankings): minp
	// filters by probability, topk truncates the ranking.
	minProb, err := probParam(r, "minp", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	topK, err := intParam(r, "topk", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	explainOn, err := boolParam(r, "explain")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	var rec *explain.Recorder
	// sampled() must run unconditionally so explain=1 requests advance the
	// sampler too: -explain-sample profiles every K-th request, full stop.
	if sampled := s.sampled(); explainOn || sampled {
		ctx, rec = explain.WithRecorder(ctx, "/search")
	}
	rec.SetOptimizer(s.chooseConfig(db, q, level))
	start := time.Now()
	answer, err := s.aug.Search(ctx, db, q, level)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.observe(db, q, level, answer, time.Since(start))
	original := make([]objectJSON, len(answer.Original))
	for i, o := range answer.Original {
		original[i] = toJSON(o)
	}
	ranked := answer.Rank(minProb, topK)
	rec.RankPruned(len(answer.Augmented) - len(ranked))
	resp := map[string]any{
		"original":  original,
		"augmented": augmentedJSON(ranked),
	}
	if answer.Partial() {
		resp["degraded"] = answer.Degraded
	}
	if p := rec.Finish(len(answer.Original) + len(ranked)); p != nil {
		s.explainBuf.Add(p)
		if explainOn {
			resp["explain"] = p
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// sampled implements -explain-sample: profile every K-th request even when
// the client did not ask for explain=1, feeding the /debug/explain ring.
func (s *server) sampled() bool {
	return s.explainEvery > 0 && s.reqSeq.Add(1)%uint64(s.explainEvery) == 0
}

// chooseConfig runs the adaptive optimizer for one query. Its features —
// result and augmentation sizes — are only known once the query ran, so the
// previous observation of the same query signature stands in (zeroes on
// first sight). An untrained optimizer leaves the configuration untouched.
func (s *server) chooseConfig(db, q string, level int) explain.Decision {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	last := s.lastSeen[querySignature(db, q, level)]
	f := optimizer.QueryFeatures{
		ResultSize:    last.result,
		AugmentedSize: last.augmented,
		Level:         level,
		NumStores:     s.built.Poly.Size(),
	}
	cfg, dec := s.opt.ChooseExplained(f, s.aug.Config().CacheSize)
	if dec.Trained {
		s.aug.SetConfig(cfg)
	}
	return dec
}

// observe feeds a completed search back into the optimizer (Phase 1) and
// remembers its observed sizes for the next decision on the same query.
func (s *server) observe(db, q string, level int, answer *augment.Answer, elapsed time.Duration) {
	f := optimizer.QueryFeatures{
		ResultSize:    len(answer.Original),
		AugmentedSize: len(answer.Augmented),
		Level:         level,
		NumStores:     s.built.Poly.Size(),
	}
	sig := querySignature(db, q, level)
	s.optMu.Lock()
	if _, known := s.lastSeen[sig]; !known {
		if len(s.lastSeenOrder) >= maxLastSeen {
			oldest := s.lastSeenOrder[0]
			s.lastSeenOrder = s.lastSeenOrder[1:]
			delete(s.lastSeen, oldest)
		}
		s.lastSeenOrder = append(s.lastSeenOrder, sig)
	}
	s.lastSeen[sig] = lastRun{result: f.ResultSize, augmented: f.AugmentedSize}
	cfg := s.aug.Config()
	s.optMu.Unlock()
	s.opt.Log(optimizer.RunLog{Features: f, Config: cfg, Duration: elapsed})
}

func querySignature(db, q string, level int) string {
	return db + "\x00" + q + "\x00" + strconv.Itoa(level)
}

func (s *server) handleObject(w http.ResponseWriter, r *http.Request) {
	gk, err := core.ParseGlobalKey(r.URL.Query().Get("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	obj, err := s.built.Poly.Fetch(r.Context(), gk)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	type link struct {
		Key  string  `json:"key"`
		Type string  `json:"type"`
		Prob float64 `json:"prob"`
	}
	var links []link
	for _, rel := range s.built.Index.Neighbors(gk) {
		links = append(links, link{Key: rel.To.String(), Type: rel.Type.String(), Prob: rel.Prob})
	}
	writeJSON(w, http.StatusOK, map[string]any{"object": toJSON(obj), "links": links})
}

func (s *server) handleExploreStart(w http.ResponseWriter, r *http.Request) {
	db := r.URL.Query().Get("db")
	q := r.URL.Query().Get("q")
	sess, start, err := s.aug.Explore(r.Context(), db, q, s.tracker)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := strconv.Itoa(s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	original := make([]objectJSON, len(start))
	for i, o := range start {
		original[i] = toJSON(o)
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "objects": original})
}

func (s *server) session(r *http.Request) (*augment.Exploration, error) {
	id := r.URL.Query().Get("session")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

func (s *server) handleExploreStep(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	gk, err := core.ParseGlobalKey(r.URL.Query().Get("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	explainOn, err := boolParam(r, "explain")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	var rec *explain.Recorder
	// As in handleSearch: evaluate sampled() before the short-circuit so
	// every request advances the -explain-sample counter.
	if sampled := s.sampled(); explainOn || sampled {
		ctx, rec = explain.WithRecorder(ctx, "/explore/step")
	}
	links, err := sess.Step(ctx, gk)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{"links": augmentedJSON(links)}
	if degraded := sess.Degraded(); len(degraded) > 0 {
		resp["degraded"] = degraded
	}
	if p := rec.Finish(len(links)); p != nil {
		s.explainBuf.Add(p)
		if explainOn {
			resp["explain"] = p
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleExploreFinish(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	promoted := sess.Finish()
	s.mu.Lock()
	delete(s.sessions, r.URL.Query().Get("session"))
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"promoted": promoted, "path": pathStrings(sess.Path())})
}

func pathStrings(path []core.GlobalKey) []string {
	out := make([]string, len(path))
	for i, gk := range path {
		out[i] = gk.String()
	}
	return out
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.aug.Cache().Stats()

	// Per-strategy query counts and latency quantiles from the telemetry
	// registry; only strategies that actually ran are listed.
	strategies := map[string]any{}
	for name, snap := range augment.StrategyStats() {
		if snap.Count == 0 {
			continue
		}
		strategies[name] = map[string]any{
			"count":  snap.Count,
			"p50_ms": roundMS(snap.P50),
			"p95_ms": roundMS(snap.P95),
			"p99_ms": roundMS(snap.P99),
		}
	}
	seen, kept := telemetry.DefaultTracer().Stats()
	reg := telemetry.Default()
	fallbacks := reg.CounterValue("quepa_optimizer_fallback_total", telemetry.L("reason", "untrained")) +
		reg.CounterValue("quepa_optimizer_fallback_total", telemetry.L("reason", "parse_strategy"))
	var durability any
	if s.wal != nil {
		durability = s.wal.Stats()
	} else {
		durability = map[string]any{"enabled": false}
	}
	var sloSection any
	if s.slo != nil {
		sloSection = map[string]any{
			"fast_burn_threshold": s.slo.FastBurnThreshold(),
			"objectives":          s.slo.Snapshot(),
		}
	} else {
		sloSection = map[string]any{"enabled": false}
	}
	var clusterSection any
	if s.cluster != nil {
		clusterSection = s.cluster.Status(true)
	} else {
		clusterSection = map[string]any{"enabled": false}
	}
	rcStats := s.rcache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"cluster":    clusterSection,
		"slo":        sloSection,
		"durability": durability,
		"rcache": map[string]any{
			"capacity":         s.rcache.Capacity(),
			"len":              rcStats.Len,
			"hits":             rcStats.Hits,
			"misses":           rcStats.Misses,
			"hit_ratio":        s.rcache.HitRatio(),
			"epoch_mismatches": rcStats.EpochMismatches,
			"evictions":        rcStats.Evictions,
			"invalidations":    rcStats.Invalidations,
		},
		"databases":   s.built.Poly.Size(),
		"index_keys":  s.built.Index.NodeCount(),
		"index_edges": s.built.Index.EdgeCount(),
		"cache_len":   s.aug.Cache().Len(),
		"cache_hits":  hits,
		"cache_miss":  misses,
		"config":      s.aug.Config().String(),
		"build":       buildSection(),
		"aindex": map[string]any{
			"snapshot":        s.built.Index.SnapshotInfo(),
			"reach_snapshot":  reg.CounterValue("quepa_aindex_reach_snapshot_total"),
			"reach_fallback":  reg.CounterValue("quepa_aindex_reach_fallback_total"),
			"collector_pairs": reg.CounterValue("quepa_collector_pairs_scored_total"),
			"collector_drops": reg.CounterValue("quepa_collector_blocks_dropped_total"),
		},
		"resilience": map[string]any{
			"breakers":         s.res.Snapshot(),
			"any_open":         s.res.AnyOpen(),
			"degraded_answers": reg.CounterValue("quepa_augment_degraded_total"),
		},
		"optimizer": map[string]any{
			"name":      s.opt.Name(),
			"trained":   s.opt.Trained(),
			"runs":      s.opt.LogCount(),
			"fallbacks": fallbacks,
			"retrains":  reg.CounterValue("quepa_optimizer_retrain_total"),
		},
		"telemetry": map[string]any{
			"cache_hit_ratio":   s.aug.Cache().HitRatio(),
			"cache_evictions":   s.aug.Cache().Evictions(),
			"strategies":        strategies,
			"aindex_reach_keys": reg.CounterValue("quepa_aindex_reach_keys_total"),
			"aindex_removals":   reg.CounterValue("quepa_aindex_removals_total"),
			"aindex_promotions": reg.CounterValue("quepa_aindex_promotions_total"),
			"slow_queries_seen": seen,
			"slow_queries_kept": kept,
		},
	})
}

func roundMS(d time.Duration) float64 {
	return math.Round(float64(d.Nanoseconds())/1e3) / 1e3
}

// buildSection reports how this binary was built — Go version, module, and
// the VCS stamp when the toolchain embedded one — for /stats and -version.
func buildSection() map[string]any {
	out := map[string]any{"go": runtime.Version()}
	bi, ok := rdebug.ReadBuildInfo()
	if !ok {
		return out
	}
	out["path"] = bi.Path
	if bi.Main.Version != "" {
		out["module_version"] = bi.Main.Version
	}
	for _, setting := range bi.Settings {
		switch setting.Key {
		case "vcs.revision":
			out["revision"] = setting.Value
		case "vcs.time":
			out["vcs_time"] = setting.Value
		case "vcs.modified":
			out["modified"] = setting.Value == "true"
		}
	}
	return out
}

func buildVersion() string {
	b := buildSection()
	rev, _ := b["revision"].(string)
	if rev == "" {
		rev = "devel"
	}
	return fmt.Sprintf("quepa-server %s (%s)", rev, b["go"])
}
