// Command quepa-server exposes augmented search and augmented exploration
// over a REST interface (the User Interface component of the paper's Fig. 2),
// backed by a generated Polyphony polystore.
//
// Endpoints:
//
//	GET /databases                         list the polystore's databases
//	GET /search?db=…&q=…&level=N           augmented search (level defaults to 0);
//	                                       optional minp=0.8 / topk=10 trim the ranking
//	GET /object?key=D.C.K                  fetch one object with its p-relations
//	POST /explore?db=…&q=…                 start an exploration session -> {session}
//	POST /explore/step?session=…&key=…     expand one object -> ranked links
//	POST /explore/finish?session=…         end the session (may promote the path)
//	GET /stats                             index/cache statistics
//
// Example:
//
//	quepa-server -addr :8080 -replicas 1 &
//	curl 'localhost:8080/search?db=transactions&q=SELECT+*+FROM+inventory+WHERE+seq+<+3'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/workload"
)

type server struct {
	built   *workload.Built
	aug     *augment.Augmenter
	tracker *aindex.PathTracker

	mu       sync.Mutex
	sessions map[string]*augment.Exploration
	nextID   int
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	replicas := flag.Int("replicas", 0, "replication rounds (0 -> 4 databases, 3 -> 13)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	indexPath := flag.String("index", "", "load the A' index from this JSON-lines file (e.g. from quepa-collect -out) instead of the generated one")
	flag.Parse()

	spec := workload.DefaultSpec().Scale(*scale)
	spec.ReplicaRounds = *replicas
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}
	index := built.Index
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		index, err = aindex.ReadIndex(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		built.Index = index
		log.Printf("quepa-server: loaded A' index from %s", *indexPath)
	}
	s := &server{
		built:    built,
		aug:      augment.New(built.Poly, index, augment.Config{Strategy: augment.OuterBatch, BatchSize: 64, ThreadsSize: 8, CacheSize: 4096}),
		tracker:  aindex.NewPathTracker(index, aindex.DefaultPromotionPolicy),
		sessions: map[string]*augment.Exploration{},
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /databases", s.handleDatabases)
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /object", s.handleObject)
	mux.HandleFunc("POST /explore", s.handleExploreStart)
	mux.HandleFunc("POST /explore/step", s.handleExploreStep)
	mux.HandleFunc("POST /explore/finish", s.handleExploreFinish)
	mux.HandleFunc("GET /stats", s.handleStats)

	log.Printf("quepa-server: %d databases, index %d keys / %d p-relations, listening on %s",
		built.Poly.Size(), built.Index.NodeCount(), built.Index.EdgeCount(), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type objectJSON struct {
	Key    string            `json:"key"`
	Fields map[string]string `json:"fields"`
	Prob   float64           `json:"prob,omitempty"`
	Dist   int               `json:"dist,omitempty"`
}

func toJSON(o core.Object) objectJSON {
	return objectJSON{Key: o.GK.String(), Fields: o.Fields}
}

func augmentedJSON(aos []augment.AugmentedObject) []objectJSON {
	out := make([]objectJSON, len(aos))
	for i, ao := range aos {
		out[i] = toJSON(ao.Object)
		out[i].Prob = ao.Prob
		out[i].Dist = ao.Dist
	}
	return out
}

func (s *server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	type db struct {
		Name        string   `json:"name"`
		Kind        string   `json:"kind"`
		Collections []string `json:"collections"`
	}
	var out []db
	for _, name := range s.built.Poly.Databases() {
		store, err := s.built.Poly.Database(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, db{Name: name, Kind: store.Kind().String(), Collections: store.Collections()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	db := r.URL.Query().Get("db")
	q := r.URL.Query().Get("q")
	if db == "" || q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("db and q parameters are required"))
		return
	}
	level := 0
	if l := r.URL.Query().Get("level"); l != "" {
		var err error
		if level, err = strconv.Atoi(l); err != nil || level < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad level %q", l))
			return
		}
	}
	// Optional presentation controls (the paper's colors/rankings): minp
	// filters by probability, topk truncates the ranking.
	minProb := 0.0
	if m := r.URL.Query().Get("minp"); m != "" {
		var err error
		if minProb, err = strconv.ParseFloat(m, 64); err != nil || minProb < 0 || minProb > 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad minp %q", m))
			return
		}
	}
	topK := 0
	if k := r.URL.Query().Get("topk"); k != "" {
		var err error
		if topK, err = strconv.Atoi(k); err != nil || topK < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad topk %q", k))
			return
		}
	}
	answer, err := s.aug.Search(r.Context(), db, q, level)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	original := make([]objectJSON, len(answer.Original))
	for i, o := range answer.Original {
		original[i] = toJSON(o)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"original":  original,
		"augmented": augmentedJSON(answer.Rank(minProb, topK)),
	})
}

func (s *server) handleObject(w http.ResponseWriter, r *http.Request) {
	gk, err := core.ParseGlobalKey(r.URL.Query().Get("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	obj, err := s.built.Poly.Fetch(r.Context(), gk)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	type link struct {
		Key  string  `json:"key"`
		Type string  `json:"type"`
		Prob float64 `json:"prob"`
	}
	var links []link
	for _, rel := range s.built.Index.Neighbors(gk) {
		links = append(links, link{Key: rel.To.String(), Type: rel.Type.String(), Prob: rel.Prob})
	}
	writeJSON(w, http.StatusOK, map[string]any{"object": toJSON(obj), "links": links})
}

func (s *server) handleExploreStart(w http.ResponseWriter, r *http.Request) {
	db := r.URL.Query().Get("db")
	q := r.URL.Query().Get("q")
	sess, start, err := s.aug.Explore(r.Context(), db, q, s.tracker)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := strconv.Itoa(s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	original := make([]objectJSON, len(start))
	for i, o := range start {
		original[i] = toJSON(o)
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "objects": original})
}

func (s *server) session(r *http.Request) (*augment.Exploration, error) {
	id := r.URL.Query().Get("session")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

func (s *server) handleExploreStep(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	gk, err := core.ParseGlobalKey(r.URL.Query().Get("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	links, err := sess.Step(r.Context(), gk)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"links": augmentedJSON(links)})
}

func (s *server) handleExploreFinish(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	promoted := sess.Finish()
	s.mu.Lock()
	delete(s.sessions, r.URL.Query().Get("session"))
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"promoted": promoted, "path": pathStrings(sess.Path())})
}

func pathStrings(path []core.GlobalKey) []string {
	out := make([]string, len(path))
	for i, gk := range path {
		out[i] = gk.String()
	}
	return out
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.aug.Cache().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"databases":   s.built.Poly.Size(),
		"index_keys":  s.built.Index.NodeCount(),
		"index_edges": s.built.Index.EdgeCount(),
		"cache_len":   s.aug.Cache().Len(),
		"cache_hits":  hits,
		"cache_miss":  misses,
		"config":      s.aug.Config().String(),
	})
}
