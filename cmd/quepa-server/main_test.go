package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"quepa/internal/augment"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/workload"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(built, augment.Config{Strategy: augment.Batch, BatchSize: 32, CacheSize: 128},
		explain.DefaultBufferCapacity, 0, resilience.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func do(t *testing.T, h http.HandlerFunc, method, target string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	var body map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		// Arrays decode differently; retry generically.
		body = map[string]any{}
	}
	return rec.Code, body
}

func TestHandleDatabases(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest("GET", "/databases", nil)
	rec := httptest.NewRecorder()
	s.handleDatabases(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var dbs []map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&dbs); err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 4 {
		t.Errorf("databases = %d", len(dbs))
	}
}

func TestHandleSearch(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 2`)
	code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=0")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	orig, ok := body["original"].([]any)
	if !ok || len(orig) != 2 {
		t.Errorf("original = %v", body["original"])
	}
	if _, ok := body["augmented"].([]any); !ok {
		t.Errorf("augmented missing: %v", body)
	}

	// Error paths.
	for _, target := range []string{
		"/search", // missing params
		"/search?db=transactions&q=" + q + "&level=-1",                                   // bad level
		"/search?db=ghost&q=" + q,                                                        // unknown database
		"/search?db=transactions&q=" + url.QueryEscape("SELECT COUNT(*) FROM inventory"), // aggregate
	} {
		if code, _ := do(t, s.handleSearch, "GET", target); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, code)
		}
	}
}

func TestHandleObject(t *testing.T) {
	s := newTestServer(t)
	code, body := do(t, s.handleObject, "GET", "/object?key=catalogue.albums.d0")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	if _, ok := body["object"]; !ok {
		t.Error("object missing")
	}
	if links, ok := body["links"].([]any); !ok || len(links) == 0 {
		t.Errorf("links = %v", body["links"])
	}
	if code, _ := do(t, s.handleObject, "GET", "/object?key=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad key status = %d", code)
	}
	if code, _ := do(t, s.handleObject, "GET", "/object?key=catalogue.albums.ghost"); code != http.StatusNotFound {
		t.Errorf("missing object status = %d", code)
	}
}

func TestExplorationFlow(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM sales WHERE seq < 1`)
	code, body := do(t, s.handleExploreStart, "POST", "/explore?db=transactions&q="+q)
	if code != http.StatusOK {
		t.Fatalf("start status = %d: %v", code, body)
	}
	session, _ := body["session"].(string)
	if session == "" {
		t.Fatalf("no session id: %v", body)
	}
	objects := body["objects"].([]any)
	first := objects[0].(map[string]any)["key"].(string)

	code, body = do(t, s.handleExploreStep, "POST", "/explore/step?session="+session+"&key="+url.QueryEscape(first))
	if code != http.StatusOK {
		t.Fatalf("step status = %d: %v", code, body)
	}
	if links, ok := body["links"].([]any); !ok || len(links) == 0 {
		t.Errorf("links = %v", body["links"])
	}

	// Stepping with a bad session or key fails.
	if code, _ := do(t, s.handleExploreStep, "POST", "/explore/step?session=zzz&key="+url.QueryEscape(first)); code != http.StatusNotFound {
		t.Errorf("bad session status = %d", code)
	}
	if code, _ := do(t, s.handleExploreStep, "POST", "/explore/step?session="+session+"&key=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad key status = %d", code)
	}

	code, body = do(t, s.handleExploreFinish, "POST", "/explore/finish?session="+session)
	if code != http.StatusOK {
		t.Fatalf("finish status = %d: %v", code, body)
	}
	if _, ok := body["promoted"]; !ok {
		t.Errorf("finish body = %v", body)
	}
	// The session is gone afterwards.
	if code, _ := do(t, s.handleExploreFinish, "POST", "/explore/finish?session="+session); code != http.StatusNotFound {
		t.Errorf("finished session still reachable: %d", code)
	}
}

func TestHandleStats(t *testing.T) {
	s := newTestServer(t)
	code, body := do(t, s.handleStats, "GET", "/stats")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["databases"].(float64) != 4 {
		t.Errorf("stats = %v", body)
	}
	cfg, _ := body["config"].(string)
	if !strings.Contains(cfg, "BATCH") {
		t.Errorf("config = %q", cfg)
	}
}

func TestSearchRankingParams(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 3`)
	code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&topk=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	if aug, _ := body["augmented"].([]any); len(aug) != 1 {
		t.Errorf("topk=1 returned %d augmented", len(body["augmented"].([]any)))
	}
	code, body = do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&minp=0.999999")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if aug, ok := body["augmented"].([]any); ok && len(aug) != 0 {
		t.Errorf("minp=0.999999 returned %d augmented", len(aug))
	}
	for _, target := range []string{
		"/search?db=transactions&q=" + q + "&minp=2",
		"/search?db=transactions&q=" + q + "&minp=x",
		"/search?db=transactions&q=" + q + "&topk=-1",
		"/search?db=transactions&q=" + q + "&topk=x",
	} {
		if code, _ := do(t, s.handleSearch, "GET", target); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, code)
		}
	}
}

// TestSearchParamValidation exhausts the hardened numeric-parameter parsing:
// anything non-numeric, negative, out of range, or not finite must come back
// as a 400 with a JSON error body instead of being silently defaulted.
func TestSearchParamValidation(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 2`)
	base := "/search?db=transactions&q=" + q
	tests := []struct {
		name  string
		extra string
		code  int
	}{
		{"no optional params", "", http.StatusOK},
		{"explicit defaults", "&level=0&minp=0&topk=0", http.StatusOK},
		{"level numeric", "&level=1", http.StatusOK},
		{"level negative", "&level=-1", http.StatusBadRequest},
		{"level non-numeric", "&level=two", http.StatusBadRequest},
		{"level float", "&level=1.5", http.StatusBadRequest},
		{"level empty", "&level=", http.StatusBadRequest},
		{"level overflow", "&level=99999999999999999999", http.StatusBadRequest},
		{"minp boundary one", "&minp=1", http.StatusOK},
		{"minp negative", "&minp=-0.1", http.StatusBadRequest},
		{"minp above one", "&minp=1.01", http.StatusBadRequest},
		{"minp non-numeric", "&minp=high", http.StatusBadRequest},
		{"minp NaN", "&minp=NaN", http.StatusBadRequest},
		{"minp Inf", "&minp=%2BInf", http.StatusBadRequest},
		{"minp -Inf", "&minp=-Inf", http.StatusBadRequest},
		{"topk numeric", "&topk=3", http.StatusOK},
		{"topk negative", "&topk=-2", http.StatusBadRequest},
		{"topk non-numeric", "&topk=all", http.StatusBadRequest},
		{"topk float", "&topk=2.5", http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, s.handleSearch, "GET", base+tc.extra)
			if code != tc.code {
				t.Fatalf("status = %d, want %d (%v)", code, tc.code, body)
			}
			if tc.code == http.StatusBadRequest {
				if msg, _ := body["error"].(string); msg == "" {
					t.Errorf("400 response missing JSON error body: %v", body)
				}
			}
		})
	}
}

func TestHandleMetrics(t *testing.T) {
	s := newTestServer(t)
	// Drive a search through the augmenter twice so the cache records both a
	// miss (first) and hits (second), and the strategy histogram is non-empty.
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 2`)
	for i := 0; i < 2; i++ {
		if code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=1"); code != http.StatusOK {
			t.Fatalf("search status = %d: %v", code, body)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE quepa_augment_duration_seconds histogram",
		`quepa_augment_duration_seconds_bucket{strategy="BATCH",le="+Inf"}`,
		`quepa_augment_duration_seconds_count{strategy="BATCH"}`,
		"# TYPE quepa_cache_hits_total counter",
		"quepa_cache_hits_total",
		"quepa_cache_misses_total",
		"quepa_store_op_duration_seconds_bucket",
		"quepa_index_keys",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The cache saw traffic: hits + misses > 0 must be visible in the text.
	if hits, _ := s.aug.Cache().Stats(); hits == 0 {
		t.Error("expected cache hits after repeated search")
	}
}

func TestHandleTraces(t *testing.T) {
	s := newTestServer(t)
	// Everything below the slow threshold: the endpoint must still answer
	// with a well-formed envelope.
	code, body := do(t, s.handleTraces, "GET", "/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, key := range []string{"slow_threshold_ms", "roots_seen", "roots_kept", "traces"} {
		if _, ok := body[key]; !ok {
			t.Errorf("traces body missing %q: %v", key, body)
		}
	}
}

func TestStatsTelemetry(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 2`)
	for i := 0; i < 2; i++ {
		if code, _ := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=1"); code != http.StatusOK {
			t.Fatalf("search failed")
		}
	}
	code, body := do(t, s.handleStats, "GET", "/stats")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	tel, ok := body["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing telemetry section: %v", body)
	}
	ratio, ok := tel["cache_hit_ratio"].(float64)
	if !ok || ratio <= 0 {
		t.Errorf("cache_hit_ratio = %v, want > 0 after repeated search", tel["cache_hit_ratio"])
	}
	strategies, ok := tel["strategies"].(map[string]any)
	if !ok {
		t.Fatalf("telemetry missing strategies: %v", tel)
	}
	batch, ok := strategies["BATCH"].(map[string]any)
	if !ok {
		t.Fatalf("strategies missing BATCH: %v", strategies)
	}
	if n, _ := batch["count"].(float64); n < 2 {
		t.Errorf("BATCH count = %v, want >= 2", batch["count"])
	}
	if _, ok := batch["p50_ms"]; !ok {
		t.Errorf("BATCH snapshot missing p50_ms: %v", batch)
	}
	for _, key := range []string{"slow_queries_seen", "slow_queries_kept"} {
		if _, ok := tel[key]; !ok {
			t.Errorf("telemetry missing %q", key)
		}
	}
}

// TestRoutesInstrumented exercises the full mux so the instrument middleware
// (status capture, request counter, root span) runs over a real request.
func TestRoutesInstrumented(t *testing.T) {
	s := newTestServer(t)
	mux := s.routes()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/databases", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /databases via mux = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/search?db=ghost&q=x", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /search (bad) via mux = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics via mux = %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`quepa_http_requests_total{code="200",route="/databases"}`,
		`quepa_http_requests_total{code="400",route="/search"}`,
		`quepa_http_request_duration_seconds_bucket{route="/databases",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestLastSeenBounded: the per-signature feature memory must not grow past
// maxLastSeen under high-cardinality query traffic; the oldest (first-seen)
// signatures are evicted, updates to known signatures don't consume slots.
func TestLastSeenBounded(t *testing.T) {
	s := newTestServer(t)
	s.opt.RetrainEvery = 1 << 30 // keep observe() cheap for this loop
	answer := &augment.Answer{}
	for i := 0; i < maxLastSeen+10; i++ {
		s.observe("transactions", "SELECT "+strconv.Itoa(i), 0, answer, 0)
	}
	// Re-observing a known signature must not evict anything further.
	s.observe("transactions", "SELECT "+strconv.Itoa(maxLastSeen), 0, answer, 0)

	s.optMu.Lock()
	defer s.optMu.Unlock()
	if len(s.lastSeen) != maxLastSeen || len(s.lastSeenOrder) != maxLastSeen {
		t.Fatalf("lastSeen size = %d (order %d), want %d", len(s.lastSeen), len(s.lastSeenOrder), maxLastSeen)
	}
	if _, ok := s.lastSeen[querySignature("transactions", "SELECT 0", 0)]; ok {
		t.Error("oldest signature survived past the bound")
	}
	if _, ok := s.lastSeen[querySignature("transactions", "SELECT "+strconv.Itoa(maxLastSeen), 0)]; !ok {
		t.Error("newest signature missing")
	}
}
