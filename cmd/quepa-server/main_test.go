package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/workload"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	return &server{
		built:    built,
		aug:      augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Batch, BatchSize: 32, CacheSize: 128}),
		tracker:  aindex.NewPathTracker(built.Index, aindex.DefaultPromotionPolicy),
		sessions: map[string]*augment.Exploration{},
	}
}

func do(t *testing.T, h http.HandlerFunc, method, target string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	var body map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		// Arrays decode differently; retry generically.
		body = map[string]any{}
	}
	return rec.Code, body
}

func TestHandleDatabases(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest("GET", "/databases", nil)
	rec := httptest.NewRecorder()
	s.handleDatabases(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var dbs []map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&dbs); err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 4 {
		t.Errorf("databases = %d", len(dbs))
	}
}

func TestHandleSearch(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 2`)
	code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=0")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	orig, ok := body["original"].([]any)
	if !ok || len(orig) != 2 {
		t.Errorf("original = %v", body["original"])
	}
	if _, ok := body["augmented"].([]any); !ok {
		t.Errorf("augmented missing: %v", body)
	}

	// Error paths.
	for _, target := range []string{
		"/search", // missing params
		"/search?db=transactions&q=" + q + "&level=-1",                                   // bad level
		"/search?db=ghost&q=" + q,                                                        // unknown database
		"/search?db=transactions&q=" + url.QueryEscape("SELECT COUNT(*) FROM inventory"), // aggregate
	} {
		if code, _ := do(t, s.handleSearch, "GET", target); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, code)
		}
	}
}

func TestHandleObject(t *testing.T) {
	s := newTestServer(t)
	code, body := do(t, s.handleObject, "GET", "/object?key=catalogue.albums.d0")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	if _, ok := body["object"]; !ok {
		t.Error("object missing")
	}
	if links, ok := body["links"].([]any); !ok || len(links) == 0 {
		t.Errorf("links = %v", body["links"])
	}
	if code, _ := do(t, s.handleObject, "GET", "/object?key=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad key status = %d", code)
	}
	if code, _ := do(t, s.handleObject, "GET", "/object?key=catalogue.albums.ghost"); code != http.StatusNotFound {
		t.Errorf("missing object status = %d", code)
	}
}

func TestExplorationFlow(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM sales WHERE seq < 1`)
	code, body := do(t, s.handleExploreStart, "POST", "/explore?db=transactions&q="+q)
	if code != http.StatusOK {
		t.Fatalf("start status = %d: %v", code, body)
	}
	session, _ := body["session"].(string)
	if session == "" {
		t.Fatalf("no session id: %v", body)
	}
	objects := body["objects"].([]any)
	first := objects[0].(map[string]any)["key"].(string)

	code, body = do(t, s.handleExploreStep, "POST", "/explore/step?session="+session+"&key="+url.QueryEscape(first))
	if code != http.StatusOK {
		t.Fatalf("step status = %d: %v", code, body)
	}
	if links, ok := body["links"].([]any); !ok || len(links) == 0 {
		t.Errorf("links = %v", body["links"])
	}

	// Stepping with a bad session or key fails.
	if code, _ := do(t, s.handleExploreStep, "POST", "/explore/step?session=zzz&key="+url.QueryEscape(first)); code != http.StatusNotFound {
		t.Errorf("bad session status = %d", code)
	}
	if code, _ := do(t, s.handleExploreStep, "POST", "/explore/step?session="+session+"&key=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad key status = %d", code)
	}

	code, body = do(t, s.handleExploreFinish, "POST", "/explore/finish?session="+session)
	if code != http.StatusOK {
		t.Fatalf("finish status = %d: %v", code, body)
	}
	if _, ok := body["promoted"]; !ok {
		t.Errorf("finish body = %v", body)
	}
	// The session is gone afterwards.
	if code, _ := do(t, s.handleExploreFinish, "POST", "/explore/finish?session="+session); code != http.StatusNotFound {
		t.Errorf("finished session still reachable: %d", code)
	}
}

func TestHandleStats(t *testing.T) {
	s := newTestServer(t)
	code, body := do(t, s.handleStats, "GET", "/stats")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["databases"].(float64) != 4 {
		t.Errorf("stats = %v", body)
	}
	cfg, _ := body["config"].(string)
	if !strings.Contains(cfg, "BATCH") {
		t.Errorf("config = %q", cfg)
	}
}

func TestSearchRankingParams(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM inventory WHERE seq < 3`)
	code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&topk=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	if aug, _ := body["augmented"].([]any); len(aug) != 1 {
		t.Errorf("topk=1 returned %d augmented", len(body["augmented"].([]any)))
	}
	code, body = do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&minp=0.999999")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if aug, ok := body["augmented"].([]any); ok && len(aug) != 0 {
		t.Errorf("minp=0.999999 returned %d augmented", len(aug))
	}
	for _, target := range []string{
		"/search?db=transactions&q=" + q + "&minp=2",
		"/search?db=transactions&q=" + q + "&minp=x",
		"/search?db=transactions&q=" + q + "&topk=-1",
		"/search?db=transactions&q=" + q + "&topk=x",
	} {
		if code, _ := do(t, s.handleSearch, "GET", target); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, code)
		}
	}
}
