package main

// Cluster mode (-cluster host:port,... -shard-id N): the server becomes one
// peer of a distributed QUEPA deployment. Every peer builds the identical
// workload (the stores are replicated; only A' ownership is partitioned),
// carves its shard of the A' index along the consistent-hash ring, serves it
// to the other peers over the wire protocol, and answers its own HTTP
// traffic through a scatter-gather coordinator: reachability fans out to the
// shard owners, keyed fetches route to them, and a burning peer degrades the
// answer with reason "peer-open" instead of failing it.

import (
	"fmt"
	"log"
	"net"
	"strings"

	"quepa/internal/cluster"
	"quepa/internal/resilience"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// clusterRuntime bundles the moving parts of one peer's cluster membership.
type clusterRuntime struct {
	coord *cluster.Coordinator
	node  *cluster.Node
	srv   *wire.Server
}

// close tears the peer down: stop serving the shard, drop the peer clients.
func (c *clusterRuntime) close() error {
	c.coord.Close()
	return c.srv.Close()
}

// parsePeers splits the -cluster flag into the per-shard address list.
func parsePeers(s string) ([]string, error) {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address in %q", s)
		}
		peers = append(peers, p)
	}
	return peers, nil
}

// setupCluster turns a built workload into one cluster peer: shard the A'
// index, serve the shard node over the wire (on ln when the caller pre-bound
// one — tests do — or on this peer's -cluster address otherwise), build the
// coordinator, and swap the polystore for its ring-routed counterpart so the
// whole augmenter stack fetches by ownership.
func setupCluster(built *workload.Built, peerList string, shardID, vnodes int, seed uint64,
	bcfg resilience.BreakerConfig, pool int, codec string, ln net.Listener) (*clusterRuntime, error) {
	peers, err := parsePeers(peerList)
	if err != nil {
		return nil, err
	}
	if shardID < 0 || shardID >= len(peers) {
		return nil, fmt.Errorf("cluster: -shard-id %d outside peer list of %d", shardID, len(peers))
	}
	ring, err := cluster.NewRing(len(peers), vnodes, seed)
	if err != nil {
		return nil, err
	}
	shardIdx, err := cluster.BuildShard(built.Index, ring, shardID)
	if err != nil {
		return nil, err
	}
	node := cluster.NewNode(shardID, shardIdx, built.Poly)
	var srv *wire.Server
	if ln != nil {
		srv = wire.ServeOn(node, ln)
	} else {
		srv, err = wire.Serve(node, peers[shardID])
		if err != nil {
			return nil, err
		}
	}
	coord, err := cluster.NewCoordinator(cluster.Config{
		Ring:    ring,
		Peers:   peers,
		Self:    shardID,
		Node:    node,
		Breaker: bcfg,
		Client:  wire.ClientConfig{Retry: resilience.DefaultRetryPolicy(), PoolSize: pool, Codec: codec},
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	routed, err := cluster.RoutePolystore(built.Poly, coord)
	if err != nil {
		coord.Close()
		srv.Close()
		return nil, err
	}
	built.Poly = routed
	return &clusterRuntime{coord: coord, node: node, srv: srv}, nil
}

// installCluster attaches a cluster runtime to an assembled server: the
// augmenter's reachability goes scatter-gather and the status pages grow
// their cluster sections. Shared with the tests so they run main's wiring.
func (s *server) installCluster(c *clusterRuntime) {
	s.cluster = c.coord
	s.aug.SetReacher(c.coord)
	// One result cache serves both layers: the coordinator memoizes whole
	// scatter traversals against the ring-version+index-epoch fingerprint,
	// and component surgery on the local shard flushes it explicitly.
	c.coord.SetResultCache(s.rcache)
	c.node.Index().SetInvalidationHook(s.rcache.Invalidate)
}

// logClusterUp announces the membership once at startup.
func logClusterUp(c *clusterRuntime) {
	st := c.coord.Status(false)
	log.Printf("quepa-server: cluster shard %d of %d, A' shard %d keys / %d p-relations on %s, ring version %x",
		st.Self, st.Peers, c.node.Index().NodeCount(), c.node.Index().EdgeCount(), c.srv.Addr(), st.RingVersion)
}
