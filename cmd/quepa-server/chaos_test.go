package main

import (
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"quepa/internal/augment"
	"quepa/internal/explain"
	"quepa/internal/netsim"
	"quepa/internal/resilience"
	"quepa/internal/workload"
)

// fakeClock drives the breaker cooldown deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// degradedStores extracts the store names of a response's degraded section.
func degradedStores(t *testing.T, body map[string]any) []string {
	t.Helper()
	raw, ok := body["degraded"].([]any)
	if !ok {
		return nil
	}
	var out []string
	for _, e := range raw {
		entry, ok := e.(map[string]any)
		if !ok {
			t.Fatalf("degraded entry %v is not an object", e)
		}
		name, _ := entry["store"].(string)
		out = append(out, name)
	}
	return out
}

// TestServerChaosBreakerLifecycle walks the whole fault-tolerance story
// through the HTTP surface with a deterministic fault plan and clock: the
// catalogue store fails its first three requests (netsim down window), each
// failed search returns 200 with a degraded section instead of an error, the
// third failure opens the breaker (visible in /stats and as a 503 from
// /healthz), an open breaker short-circuits without touching the store, and
// after the cooldown a half-open probe finds the store healthy again and
// closes the breaker.
func TestServerChaosBreakerLifecycle(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}

	// The catalogue store flaps: requests 1-3 fail, request 4 on succeeds.
	cat, err := built.Poly.Database("catalogue")
	if err != nil {
		t.Fatal(err)
	}
	chaos := netsim.NewChaos(cat, netsim.FaultPlan{Seed: 7, Down: []netsim.Window{{From: 1, To: 4}}}, nil)
	built.Poly.Deregister("catalogue")
	if err := built.Poly.Register(chaos); err != nil {
		t.Fatal(err)
	}

	// Sequential, cache off: every search fetches from the stores afresh, and
	// the first catalogue failure degrades the store so each search charges
	// exactly one request against the chaos plan.
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s, err := newServer(built, augment.Config{Strategy: augment.Sequential, CacheSize: 0},
		explain.DefaultBufferCapacity, 0,
		resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	query, err := built.Query("transactions", 4)
	if err != nil {
		t.Fatal(err)
	}
	search := "/search?db=transactions&q=" + url.QueryEscape(query)

	// Healthy server: /healthz is green before any traffic.
	if code, body := do(t, s.handleHealthz, "GET", "/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("pre-fault healthz = %d %v", code, body)
	}

	// Three searches ride through the down window: each is a 200 with the
	// catalogue store in the degraded section, and each burns exactly one
	// chaos request thanks to skip-after-first-failure.
	for i := 1; i <= 3; i++ {
		code, body := do(t, s.handleSearch, "GET", search)
		if code != http.StatusOK {
			t.Fatalf("faulted search %d = %d %v, want 200 with partial answer", i, code, body)
		}
		if got := degradedStores(t, body); len(got) != 1 || got[0] != "catalogue" {
			t.Fatalf("faulted search %d degraded = %v, want [catalogue]", i, got)
		}
		if orig, _ := body["original"].([]any); len(orig) == 0 {
			t.Fatalf("faulted search %d lost its original results", i)
		}
		if n := chaos.Requests(); n != uint64(i) {
			t.Fatalf("chaos requests after search %d = %d, want %d", i, n, i)
		}
	}

	// Three consecutive failures: the catalogue breaker is now open.
	if st := s.res.Breaker("catalogue").State(); st != resilience.Open {
		t.Fatalf("breaker state after 3 failures = %v, want open", st)
	}
	if code, body := do(t, s.handleHealthz, "GET", "/healthz"); code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("healthz with open breaker = %d %v, want 503 degraded", code, body)
	}
	code, stats := do(t, s.handleStats, "GET", "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	res, ok := stats["resilience"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing resilience section: %v", stats)
	}
	if open, _ := res["any_open"].(bool); !open {
		t.Errorf("stats resilience.any_open = %v, want true", res["any_open"])
	}
	foundOpen := false
	for _, b := range res["breakers"].([]any) {
		snap := b.(map[string]any)
		if snap["store"] == "catalogue" && snap["state"] == "open" {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Errorf("stats breakers missing open catalogue: %v", res["breakers"])
	}

	// While open and inside the cooldown, searches short-circuit: still 200 +
	// degraded, but the store itself is never consulted.
	code, body := do(t, s.handleSearch, "GET", search)
	if code != http.StatusOK {
		t.Fatalf("open-breaker search = %d %v", code, body)
	}
	if got := degradedStores(t, body); len(got) != 1 || got[0] != "catalogue" {
		t.Fatalf("open-breaker degraded = %v, want [catalogue]", got)
	}
	if n := chaos.Requests(); n != 3 {
		t.Fatalf("open breaker leaked %d requests to the store", n-3)
	}

	// Past the cooldown the next search is admitted as the half-open probe;
	// the down window has ended, so the probe succeeds, the breaker closes,
	// and the answer is whole again.
	clock.advance(2 * time.Minute)
	code, body = do(t, s.handleSearch, "GET", search)
	if code != http.StatusOK {
		t.Fatalf("recovery search = %d %v", code, body)
	}
	if got := degradedStores(t, body); got != nil {
		t.Fatalf("recovered search still degraded: %v", got)
	}
	if st := s.res.Breaker("catalogue").State(); st != resilience.Closed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
	if code, body := do(t, s.handleHealthz, "GET", "/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("post-recovery healthz = %d %v", code, body)
	}
	if chaos.Requests() <= 3 {
		t.Error("recovery search never reached the store")
	}
}

// TestExploreStepFaultReportsDegraded: the exploration surface carries the
// same partial-answer contract as /search — a store failing mid-step lands in
// the step response's degraded section instead of failing the session.
func TestExploreStepFaultReportsDegraded(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := built.Poly.Database("catalogue")
	if err != nil {
		t.Fatal(err)
	}
	// Down forever: every expansion that needs the catalogue store degrades.
	chaos := netsim.NewChaos(cat, netsim.FaultPlan{Down: []netsim.Window{{From: 1}}}, nil)
	built.Poly.Deregister("catalogue")
	if err := built.Poly.Register(chaos); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(built, augment.Config{Strategy: augment.Sequential, CacheSize: 0},
		explain.DefaultBufferCapacity, 0, resilience.BreakerConfig{FailureThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}

	query, err := built.Query("transactions", 2)
	if err != nil {
		t.Fatal(err)
	}
	code, body := do(t, s.handleExploreStart, "POST", "/explore?db=transactions&q="+url.QueryEscape(query))
	if code != http.StatusOK {
		t.Fatalf("explore start = %d %v", code, body)
	}
	session, _ := body["session"].(string)
	objects, _ := body["objects"].([]any)
	if session == "" || len(objects) == 0 {
		t.Fatalf("explore start body = %v", body)
	}
	first := objects[0].(map[string]any)["key"].(string)

	code, body = do(t, s.handleExploreStep, "POST", "/explore/step?session="+session+"&key="+url.QueryEscape(first))
	if code != http.StatusOK {
		t.Fatalf("step over dead store = %d %v, want 200 partial", code, body)
	}
	if got := degradedStores(t, body); len(got) != 1 || got[0] != "catalogue" {
		t.Fatalf("step degraded = %v, want [catalogue]", got)
	}
}
