package main

import (
	"net/http"
	"net/url"
	"strings"
	"testing"

	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/netsim"
	"quepa/internal/resilience"
	"quepa/internal/telemetry"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// withKeepEverythingTracer enables telemetry and configures the process
// tracer to keep every completed trace (slow threshold 0), restoring the
// previous state on cleanup.
func withKeepEverythingTracer(t *testing.T) *telemetry.Tracer {
	t.Helper()
	prev := telemetry.SetEnabled(true)
	tracer := telemetry.DefaultTracer()
	prevSlow := tracer.SlowThreshold()
	prevRate := tracer.SampleRate()
	tracer.SetSlowThreshold(0)
	tracer.SetSampleRate(0)
	tracer.Reset()
	t.Cleanup(func() {
		tracer.SetSlowThreshold(prevSlow)
		tracer.SetSampleRate(prevRate)
		tracer.Reset()
		telemetry.SetEnabled(prev)
	})
	return tracer
}

// collectSpans flattens a span tree into a slice, root included.
func collectSpans(t telemetry.SpanJSON) []telemetry.SpanJSON {
	out := []telemetry.SpanJSON{t}
	for _, c := range t.Children {
		out = append(out, collectSpans(c)...)
	}
	return out
}

func hasFlag(t telemetry.SpanJSON, flag string) bool {
	for _, f := range t.Flags {
		if f == flag {
			return true
		}
	}
	return false
}

// TestChaosTraceContinuity drives the full wire stack — augmenter, wire
// clients, loopback wire servers, chaos-wrapped store — and asserts that one
// request produces one connected trace: the client's HTTP root span and the
// server-side wire segments share a trace ID, the server segments parent
// onto the exact client span that sent the frame, per-hop frame bytes are
// recorded, and degraded / breaker-touching requests carry the flags that
// make the tail sampler keep them.
func TestChaosTraceContinuity(t *testing.T) {
	tracer := withKeepEverythingTracer(t)
	telemetry.SeedTraceIDs(42)

	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}

	// The catalogue store is down for good: every fetch through it degrades
	// the answer, and with FailureThreshold 1 the first failure opens the
	// breaker.
	cat, err := built.Poly.Database("catalogue")
	if err != nil {
		t.Fatal(err)
	}
	chaos := netsim.NewChaos(cat, netsim.FaultPlan{Down: []netsim.Window{{From: 1}}}, nil)
	built.Poly.Deregister("catalogue")
	if err := built.Poly.Register(chaos); err != nil {
		t.Fatal(err)
	}

	// Re-home every store behind a loopback wire server, exactly like the
	// server's -wire mode, so traces must cross real frames to stay whole.
	poly := core.NewPolystore()
	for _, name := range built.Poly.Databases() {
		st, err := built.Poly.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := wire.Serve(st, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cli, err := wire.DialConfig(srv.Addr(), wire.ClientConfig{
			Retry: resilience.DefaultRetryPolicy(), PoolSize: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		if err := poly.Register(cli); err != nil {
			t.Fatal(err)
		}
	}
	built.Poly = poly

	s, err := newServer(built, augment.Config{Strategy: augment.Sequential, CacheSize: 0},
		explain.DefaultBufferCapacity, 0, resilience.BreakerConfig{FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}

	query, err := built.Query("transactions", 4)
	if err != nil {
		t.Fatal(err)
	}
	search := "/search?db=transactions&q=" + url.QueryEscape(query)

	// Search through the instrument middleware, exactly as the mux wires it:
	// that is where the HTTP root span is born.
	handler := s.instrument("/search", s.handleSearch)

	// Search 1: catalogue fails over the wire -> degraded partial answer.
	// Search 2: the breaker is open -> fast-rejected, still degraded.
	for i := 0; i < 2; i++ {
		if code, body := do(t, handler, "GET", search); code != http.StatusOK {
			t.Fatalf("search %d = %d %v", i+1, code, body)
		}
	}

	roots := tracer.Snapshot() // newest first
	var degradedRoot, breakerRoot *telemetry.SpanJSON
	for i := range roots {
		if roots[i].Name != "http /search" {
			continue
		}
		if hasFlag(roots[i], "breaker") && breakerRoot == nil {
			breakerRoot = &roots[i]
		} else if hasFlag(roots[i], "degraded") && degradedRoot == nil {
			degradedRoot = &roots[i]
		}
	}
	if degradedRoot == nil {
		t.Fatalf("no degraded /search root among %d kept traces", len(roots))
	}
	if breakerRoot == nil {
		t.Fatalf("no breaker-flagged /search root among %d kept traces", len(roots))
	}
	if !hasFlag(*degradedRoot, "degraded") {
		t.Errorf("first search flags = %v, want degraded", degradedRoot.Flags)
	}
	if degradedRoot.TraceID == "" {
		t.Fatal("degraded root has no trace ID")
	}

	// Inside the degraded request: a wire client span for the catalogue
	// fetch, flagged as errored, with the sent frame bytes accounted.
	spans := collectSpans(*degradedRoot)
	clientSpanIDs := map[string]bool{}
	var wireCat *telemetry.SpanJSON
	for i := range spans {
		clientSpanIDs[spans[i].SpanID] = true
		if spans[i].TraceID != degradedRoot.TraceID {
			t.Errorf("span %s has trace %s, want %s (one trace per request)",
				spans[i].Name, spans[i].TraceID, degradedRoot.TraceID)
		}
		if strings.HasPrefix(spans[i].Name, "wire.") && spans[i].Attrs["store"] == "catalogue" {
			wireCat = &spans[i]
		}
	}
	if wireCat == nil {
		t.Fatalf("degraded request has no wire span for catalogue: %+v", spans)
	}
	if wireCat.BytesSent == 0 {
		t.Error("wire client span recorded no sent frame bytes")
	}

	// The loopback wire servers continued the trace: their segments are
	// separate roots in the tracer, but they carry the same trace ID and
	// parent onto the exact client span that sent the frame.
	serverSegments := 0
	for _, r := range roots {
		if !strings.HasPrefix(r.Name, "wire.server.") || r.TraceID != degradedRoot.TraceID {
			continue
		}
		serverSegments++
		if !clientSpanIDs[r.ParentSpanID] {
			t.Errorf("server segment %s parents onto unknown span %s", r.Name, r.ParentSpanID)
		}
		if r.BytesRecv == 0 {
			t.Errorf("server segment %s recorded no received frame bytes", r.Name)
		}
	}
	if serverSegments == 0 {
		t.Fatalf("no wire.server.* segment shares the request's trace %s", degradedRoot.TraceID)
	}

	// The breaker-open request never reached the store but its trace says
	// why it degraded: breaker flag plus the breaker_state attribute.
	foundState := false
	for _, sp := range collectSpans(*breakerRoot) {
		if sp.Attrs["breaker_state"] != "" {
			foundState = true
		}
	}
	if !foundState {
		t.Errorf("breaker-open request has no breaker_state attribute: %+v", breakerRoot)
	}

	// Tail sampling kept these traces for cause, not by chance.
	st := tracer.SamplingStats()
	if st.KeptSampled != 0 {
		t.Errorf("sampling stats = %+v: probabilistic keeps with rate 0", st)
	}
	if st.Kept < 2 {
		t.Errorf("kept %d traces, want at least the two searches", st.Kept)
	}
}
