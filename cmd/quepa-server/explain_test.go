package main

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"quepa/internal/telemetry"
)

const searchQuery = `SELECT * FROM inventory WHERE seq < 2`

// TestSearchExplainProfile checks the full EXPLAIN artifact on a /search
// response: identity, optimizer provenance (untrained fallback on a fresh
// server), the augmentation trace, and the totals.
func TestSearchExplainProfile(t *testing.T) {
	s := newTestServer(t)
	reg := telemetry.Default()
	before := reg.CounterValue("quepa_optimizer_fallback_total", telemetry.L("reason", "untrained"))

	q := url.QueryEscape(searchQuery)
	code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=1&explain=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	p, ok := body["explain"].(map[string]any)
	if !ok {
		t.Fatalf("response has no explain profile: %v", body)
	}
	if p["route"] != "/search" || p["db"] != "transactions" || p["level"] != float64(1) {
		t.Errorf("profile identity = %v %v %v", p["route"], p["db"], p["level"])
	}
	if q, _ := p["query"].(string); !strings.Contains(q, "inventory") {
		t.Errorf("profile query = %q", q)
	}

	// A fresh server's optimizer is untrained: the decision must say so
	// explicitly — both in the profile and on the fallback counter.
	opt, ok := p["optimizer"].(map[string]any)
	if !ok {
		t.Fatalf("profile has no optimizer decision: %v", p)
	}
	if opt["optimizer"] != "ADAPTIVE" || opt["trained"] != false {
		t.Errorf("decision = %v", opt)
	}
	if reason, _ := opt["fallback_reason"].(string); !strings.Contains(reason, "not trained") {
		t.Errorf("fallback_reason = %v", opt["fallback_reason"])
	}
	chosen, _ := opt["chosen"].(map[string]any)
	if chosen["strategy"] != "OUTER-BATCH" {
		t.Errorf("chosen = %v", chosen)
	}
	if got := reg.CounterValue("quepa_optimizer_fallback_total", telemetry.L("reason", "untrained")); got != before+1 {
		t.Errorf("optimizer_fallback_total = %d, want %d", got, before+1)
	}

	augs, ok := p["augmentations"].([]any)
	if !ok || len(augs) == 0 {
		t.Fatalf("profile has no augmentation traces: %v", p)
	}
	a0 := augs[0].(map[string]any)
	if a0["strategy"] != "BATCH" || a0["origins"].(float64) < 1 {
		t.Errorf("trace = %v", a0)
	}
	if a0["candidate_keys"].(float64) <= 0 || a0["index_nodes"].(float64) <= 0 {
		t.Errorf("index work missing: %v", a0)
	}
	if stores, _ := a0["stores"].([]any); len(stores) == 0 {
		t.Errorf("store fan-out missing: %v", a0)
	}
	totals, _ := p["totals"].(map[string]any)
	if totals["store_calls"].(float64) < 2 || totals["objects"].(float64) <= 0 {
		t.Errorf("totals = %v", totals)
	}

	// The profile also landed in the /debug/explain ring.
	code, dbg := do(t, s.handleExplain, "GET", "/debug/explain")
	if code != http.StatusOK {
		t.Fatalf("debug status = %d", code)
	}
	profiles, _ := dbg["profiles"].([]any)
	if len(profiles) != 1 || dbg["seen"].(float64) != 1 {
		t.Errorf("/debug/explain = %v", dbg)
	}
}

// TestExplainTrainedDecision drives enough traffic through the server to
// train the optimizer, then checks a trained decision's provenance: feature
// vector, all four trees consulted or annotated, no fallback.
func TestExplainTrainedDecision(t *testing.T) {
	s := newTestServer(t)
	s.opt.RetrainEvery = 0
	q := url.QueryEscape(searchQuery)
	for i := 0; i < 3; i++ {
		if code, _ := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=1"); code != http.StatusOK {
			t.Fatalf("warmup search failed")
		}
	}
	if err := s.opt.Train(); err != nil {
		t.Fatal(err)
	}

	code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&level=1&explain=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	opt := body["explain"].(map[string]any)["optimizer"].(map[string]any)
	if opt["trained"] != true {
		t.Fatalf("decision = %v", opt)
	}
	if _, ok := opt["fallback_reason"]; ok {
		t.Errorf("trained decision has fallback_reason: %v", opt)
	}
	names, _ := opt["feature_names"].([]any)
	features, _ := opt["features"].([]any)
	if len(names) != 5 || len(features) != 5 || names[0] != "result_size" {
		t.Errorf("features = %v %v", names, features)
	}
	// The previous run of this query signature supplied the sizes.
	if features[0].(float64) <= 0 {
		t.Errorf("result_size feature = %v, want the last observed size", features[0])
	}
	trees, _ := opt["trees"].([]any)
	if len(trees) != 4 {
		t.Fatalf("trees = %v", trees)
	}
	t1 := trees[0].(map[string]any)
	if t1["tree"] != "T1" || t1["consulted"] != true || t1["raw"] == "" {
		t.Errorf("T1 = %v", t1)
	}
}

func TestSearchExplainParamValidation(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(searchQuery)
	base := "/search?db=transactions&q=" + q
	for _, tc := range []struct {
		extra string
		code  int
	}{
		{"&explain=1", http.StatusOK},
		{"&explain=true", http.StatusOK},
		{"&explain=0", http.StatusOK},
		{"&explain=false", http.StatusOK},
		{"&explain=yes", http.StatusBadRequest},
		{"&explain=", http.StatusBadRequest},
	} {
		code, body := do(t, s.handleSearch, "GET", base+tc.extra)
		if code != tc.code {
			t.Errorf("%s: status = %d, want %d (%v)", tc.extra, code, tc.code, body)
		}
		wantProfile := strings.Contains(tc.extra, "=1") || strings.Contains(tc.extra, "=true")
		if _, ok := body["explain"]; ok != wantProfile && tc.code == http.StatusOK {
			t.Errorf("%s: explain presence = %v, want %v", tc.extra, ok, wantProfile)
		}
	}
}

func TestExploreStepExplain(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(`SELECT * FROM sales WHERE seq < 1`)
	code, body := do(t, s.handleExploreStart, "POST", "/explore?db=transactions&q="+q)
	if code != http.StatusOK {
		t.Fatalf("start status = %d: %v", code, body)
	}
	session := body["session"].(string)
	first := body["objects"].([]any)[0].(map[string]any)["key"].(string)

	code, body = do(t, s.handleExploreStep, "POST",
		"/explore/step?session="+session+"&key="+url.QueryEscape(first)+"&explain=1")
	if code != http.StatusOK {
		t.Fatalf("step status = %d: %v", code, body)
	}
	p, ok := body["explain"].(map[string]any)
	if !ok {
		t.Fatalf("step response has no explain profile: %v", body)
	}
	if p["route"] != "/explore/step" {
		t.Errorf("route = %v", p["route"])
	}
	// The origin fetch lands outside the augmentation trace.
	if fetches, _ := p["fetches"].([]any); len(fetches) != 1 {
		t.Errorf("fetches = %v", p["fetches"])
	}
	if augs, _ := p["augmentations"].([]any); len(augs) != 1 {
		t.Errorf("augmentations = %v", p["augmentations"])
	}
}

func TestDebugExplainRouteFilter(t *testing.T) {
	s := newTestServer(t)
	q := url.QueryEscape(searchQuery)
	for i := 0; i < 2; i++ {
		if code, _ := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q+"&explain=1"); code != http.StatusOK {
			t.Fatalf("search failed")
		}
	}
	sq := url.QueryEscape(`SELECT * FROM sales WHERE seq < 1`)
	code, body := do(t, s.handleExploreStart, "POST", "/explore?db=transactions&q="+sq)
	if code != http.StatusOK {
		t.Fatalf("start status = %d", code)
	}
	session := body["session"].(string)
	first := body["objects"].([]any)[0].(map[string]any)["key"].(string)
	if code, _ = do(t, s.handleExploreStep, "POST",
		"/explore/step?session="+session+"&key="+url.QueryEscape(first)+"&explain=1"); code != http.StatusOK {
		t.Fatalf("step failed")
	}

	for route, want := range map[string]int{"": 3, "/search": 2, "/explore/step": 1, "/nope": 0} {
		target := "/debug/explain"
		if route != "" {
			target += "?route=" + url.QueryEscape(route)
		}
		code, dbg := do(t, s.handleExplain, "GET", target)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d", target, code)
		}
		profiles, _ := dbg["profiles"].([]any)
		if len(profiles) != want {
			t.Errorf("%s: %d profiles, want %d", target, len(profiles), want)
		}
	}
}

// TestExplainSampling exercises -explain-sample: with K=2 every second
// request is profiled into the ring even without explain=1.
func TestExplainSampling(t *testing.T) {
	s := newTestServer(t)
	s.explainEvery = 2
	q := url.QueryEscape(searchQuery)
	for i := 0; i < 4; i++ {
		code, body := do(t, s.handleSearch, "GET", "/search?db=transactions&q="+q)
		if code != http.StatusOK {
			t.Fatalf("search failed")
		}
		if _, ok := body["explain"]; ok {
			t.Error("sampled profile leaked into the response body")
		}
	}
	if seen := s.explainBuf.Seen(); seen != 2 {
		t.Errorf("sampled profiles = %d, want 2 of 4", seen)
	}
}

// TestExplainSamplingCountsExplainRequests: explicit explain=1 requests
// advance the sampler too, so -explain-sample=K means every K-th request of
// any kind — not every K-th non-explain request.
func TestExplainSamplingCountsExplainRequests(t *testing.T) {
	s := newTestServer(t)
	s.explainEvery = 2
	q := url.QueryEscape(searchQuery)
	for i := 0; i < 4; i++ {
		target := "/search?db=transactions&q=" + q
		if i%2 == 1 {
			target += "&explain=1"
		}
		if code, _ := do(t, s.handleSearch, "GET", target); code != http.StatusOK {
			t.Fatalf("search %d failed", i)
		}
	}
	// Requests 2 and 4 are both explain=1 AND the sampled ones; the plain
	// requests 1 and 3 fall between the sampling points. If explain requests
	// skipped the counter, request 3 would be sampled and Seen would be 3.
	if seen := s.explainBuf.Seen(); seen != 2 {
		t.Errorf("profiles seen = %d, want 2 of 4", seen)
	}
}

// TestHandleTracesFilters is the table-driven coverage of the ?route= and
// ?min_ms= filters, including their rejection paths.
func TestHandleTracesFilters(t *testing.T) {
	s := newTestServer(t)
	// Route requests through the instrumented mux with a zero slow threshold
	// so every root span lands in the trace ring.
	tracer := telemetry.DefaultTracer()
	prevSlow := tracer.SlowThreshold()
	tracer.SetSlowThreshold(0)
	defer tracer.SetSlowThreshold(prevSlow)
	tracer.Reset()
	defer tracer.Reset()

	mux := s.routes()
	q := url.QueryEscape(searchQuery)
	for _, target := range []string{"/databases", "/search?db=transactions&q=" + q} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", target, rec.Code)
		}
	}

	tests := []struct {
		name   string
		target string
		code   int
		want   int // trace count; -1 = don't check
	}{
		{"no filters", "/debug/traces", http.StatusOK, 2},
		{"route match", "/debug/traces?route=/search", http.StatusOK, 1},
		{"route span-name match", "/debug/traces?route=" + url.QueryEscape("http /search"), http.StatusOK, 1},
		{"route miss", "/debug/traces?route=/ghost", http.StatusOK, 0},
		{"min_ms zero", "/debug/traces?min_ms=0", http.StatusOK, 2},
		{"min_ms filters all", "/debug/traces?min_ms=100000", http.StatusOK, 0},
		{"combined", "/debug/traces?route=/search&min_ms=100000", http.StatusOK, 0},
		{"min_ms negative", "/debug/traces?min_ms=-1", http.StatusBadRequest, -1},
		{"min_ms non-numeric", "/debug/traces?min_ms=slow", http.StatusBadRequest, -1},
		{"min_ms NaN", "/debug/traces?min_ms=NaN", http.StatusBadRequest, -1},
		{"min_ms Inf", "/debug/traces?min_ms=%2BInf", http.StatusBadRequest, -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, s.handleTraces, "GET", tc.target)
			if code != tc.code {
				t.Fatalf("status = %d, want %d (%v)", code, tc.code, body)
			}
			if tc.want < 0 {
				if msg, _ := body["error"].(string); msg == "" {
					t.Errorf("400 without JSON error body: %v", body)
				}
				return
			}
			traces, _ := body["traces"].([]any)
			if len(traces) != tc.want {
				t.Errorf("traces = %d, want %d", len(traces), tc.want)
			}
		})
	}
}

func TestStatsBuildAndOptimizerSections(t *testing.T) {
	s := newTestServer(t)
	code, body := do(t, s.handleStats, "GET", "/stats")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	build, ok := body["build"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing build section: %v", body)
	}
	if goVer, _ := build["go"].(string); !strings.HasPrefix(goVer, "go") {
		t.Errorf("build.go = %v", build["go"])
	}
	opt, ok := body["optimizer"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing optimizer section: %v", body)
	}
	if opt["name"] != "ADAPTIVE" || opt["trained"] != false {
		t.Errorf("optimizer section = %v", opt)
	}
	for _, key := range []string{"runs", "fallbacks", "retrains"} {
		if _, ok := opt[key]; !ok {
			t.Errorf("optimizer section missing %q: %v", key, opt)
		}
	}
}

func TestBuildVersionString(t *testing.T) {
	v := buildVersion()
	if !strings.HasPrefix(v, "quepa-server ") || !strings.Contains(v, "go") {
		t.Errorf("buildVersion = %q", v)
	}
}
