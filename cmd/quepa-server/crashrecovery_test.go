package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/resilience"
	"quepa/internal/wal"
	"quepa/internal/workload"
)

// TestServerCrashRecovery SIGKILLs a live, serving quepa-server process in
// the middle of a write load and verifies the recovered index is exactly the
// state after some committed prefix of the load — at least everything the
// child acknowledged before dying. The child is this same test binary
// re-executed with QUEPA_SERVER_CRASH_CHILD set (the standard re-exec
// pattern), running the real openDurable + routes() wiring with
// -fsync always, so every acknowledged mutation is on stable storage.
//
// `make crashtest` and the CI crash job run exactly this plus the WAL-level
// kill test in internal/wal.
func TestServerCrashRecovery(t *testing.T) {
	if dir := os.Getenv("QUEPA_SERVER_CRASH_CHILD"); dir != "" {
		serverCrashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("re-exec crash test skipped in -short")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestServerCrashRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), "QUEPA_SERVER_CRASH_CHILD="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Follow the child's progress: its listen address first, then one
	// "committed N" per durable mutation. Kill once it is demonstrably
	// serving traffic AND has committed a healthy batch.
	var addr string
	seen := -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "listening "); ok {
			addr = rest
			continue
		}
		var n int
		if _, err := fmt.Sscanf(line, "committed %d", &n); err == nil {
			seen = n
			if seen >= 30 && addr != "" {
				break
			}
		}
	}
	if addr == "" || seen < 30 {
		cmd.Wait()
		t.Fatalf("child never got going (addr=%q, seen=%d)", addr, seen)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("child not serving while loading: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("child /healthz = %d mid-load", resp.StatusCode)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill signal, not an error here

	// Recover and find the committed prefix the durable state corresponds to.
	m, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer m.Abort()
	if !m.Recovered() {
		t.Fatal("nothing recovered after SIGKILL")
	}
	base := crashWorkload(t).Index
	got := m.Index().Edges()
	k := -1
	for i := 0; i <= seen+5000; i++ {
		if reflect.DeepEqual(base.Edges(), got) {
			k = i
			break
		}
		if err := base.Insert(crashRel(i)); err != nil {
			t.Fatal(err)
		}
	}
	if k < 0 {
		t.Fatalf("recovered index matches no committed prefix (child acked %d)", seen)
	}
	// fsync=always: every acknowledged op must have survived. k counts ops
	// applied; the child acked op seen, so at least seen+1 ops are durable.
	if k < seen+1 {
		t.Fatalf("recovered prefix %d < acknowledged %d", k, seen+1)
	}
	t.Logf("child acked %d ops, recovery found prefix %d", seen+1, k)
}

// crashWorkload builds the small deterministic workload both processes use;
// identical spec + seed means identical seed index on both sides.
func crashWorkload(t *testing.T) *workload.Built {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	return built
}

// crashRel is the deterministic write load: distinct identity relations, so
// every op grows the index and prefixes are distinguishable.
func crashRel(i int) core.PRelation {
	return core.NewIdentity(
		core.NewGlobalKey("crashdb", "load", fmt.Sprintf("a%d", i)),
		core.NewGlobalKey("crashdb2", "load", fmt.Sprintf("b%d", i)),
		0.5+float64(i%50)/100)
}

// serverCrashChild is the process the parent kills: a durable server with
// fsync=always, serving HTTP while a mutation load flows through the
// journaled index. It only returns if something is broken — the parent's
// SIGKILL is the expected exit.
func serverCrashChild(dir string) {
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		fmt.Println("child build:", err)
		os.Exit(1)
	}
	m, err := openDurable(built, durableOptions{DataDir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		fmt.Println("child openDurable:", err)
		os.Exit(1)
	}
	srv := httptestServer(built)
	fmt.Println("listening", srv)
	for i := 0; i < 1_000_000; i++ {
		if err := built.Index.Insert(crashRel(i)); err != nil {
			fmt.Println("child insert:", err)
			os.Exit(1)
		}
		if err := m.Err(); err != nil {
			fmt.Println("child wal error:", err)
			os.Exit(1)
		}
		fmt.Printf("committed %d\n", i)
	}
	time.Sleep(time.Minute) // parent should have killed us long ago
	os.Exit(1)
}

// httptestServer starts the real route mux on a random port and returns its
// address; errors are fatal for the child.
func httptestServer(built *workload.Built) string {
	s, err := newServer(built, augment.Config{Strategy: augment.Batch, BatchSize: 32, CacheSize: 128},
		4, 0, resilience.BreakerConfig{})
	if err != nil {
		fmt.Println("child newServer:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("child listen:", err)
		os.Exit(1)
	}
	go http.Serve(ln, s.routes())
	return ln.Addr().String()
}
