package main

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"time"

	"quepa/internal/wal"
	"quepa/internal/workload"
)

// This file wires the durability subsystem (internal/wal) into the server
// process: recover-or-seed at startup, a periodic checkpoint loop, and a
// graceful shutdown path that drains HTTP before flushing the final WAL
// segment and checkpoint. Everything is factored so the tests can run the
// identical code with an injected context and listener.

// durableOptions is the -data-dir flag family, resolved.
type durableOptions struct {
	DataDir         string
	Fsync           string
	FsyncInterval   time.Duration
	CheckpointEvery time.Duration
	SegmentBytes    int64
}

// openDurable attaches the built workload to a WAL data directory. On a
// directory holding a previous incarnation's state the recovered index
// replaces built.Index (the generated or -index one is discarded — the
// durable state is the authority); on a fresh directory the current
// built.Index seeds it. Either way the returned manager journals every
// subsequent index mutation. A nil manager (no error) means durability is
// disabled (empty DataDir).
func openDurable(built *workload.Built, o durableOptions) (*wal.Manager, error) {
	if o.DataDir == "" {
		return nil, nil
	}
	m, err := wal.Open(o.DataDir, wal.Options{
		Fsync:        o.Fsync,
		FsyncEvery:   o.FsyncInterval,
		SegmentBytes: o.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	if m.Recovered() {
		built.Index = m.Index()
		return m, nil
	}
	if err := m.Seed(built.Index); err != nil {
		return nil, err
	}
	return m, nil
}

// startCheckpointLoop checkpoints the managed index every interval, bounding
// the log tail a crash would have to replay. The returned stop function
// blocks until the loop has exited; it does not write a final checkpoint —
// that is Close's job, after HTTP has drained.
func startCheckpointLoop(m *wal.Manager, interval time.Duration) (stop func()) {
	if m == nil || interval <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := m.Checkpoint(); err != nil {
					log.Printf("quepa-server: periodic checkpoint: %v", err)
				}
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// serveUntil runs srv on ln until ctx is cancelled (the signal path) or the
// listener fails, then shuts down in order: drain in-flight HTTP requests
// (bounded by drain), then run each hook — the WAL hook flushes the final
// segment and writes the shutdown checkpoint, so it must only run once no
// request can mutate the index. Returns the first error encountered.
func serveUntil(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, hooks ...func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var first error
	select {
	case err := <-errc:
		// Listener died on its own; still run the hooks so durable state is
		// flushed rather than left for crash recovery.
		if !errors.Is(err, http.ErrServerClosed) {
			first = err
		}
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			// Drain window expired with requests still in flight: close them
			// hard. The WAL hook below still flushes whatever was journaled.
			srv.Close()
			first = err
		}
		<-errc // Serve has returned ErrServerClosed by now
	}
	for _, hook := range hooks {
		if err := hook(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
