package main

import (
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"quepa/internal/slo"
	"quepa/internal/telemetry"
)

// TestSLOFastBurnHealthzAndProfiles drives the full alerting path the server
// wires in main: a route burns its error budget fast, /healthz flips to 503
// naming the route, /stats grows the slo section, and the engine's one-shot
// trip hook drops goroutine+heap pprof snapshots into the data dir. The
// engine is driven with explicit Sample timestamps, so the test is
// deterministic and never sleeps.
func TestSLOFastBurnHealthzAndProfiles(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	s := newTestServer(t)
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	engine, err := slo.New(slo.Config{
		Objectives:  []slo.Objective{{Route: "/search", Latency: 25 * time.Millisecond, Target: 0.99}},
		ShortWindow: 5 * time.Second,
		LongWindow:  60 * time.Second,
		Registry:    reg,
		OnFastBurn:  captureFastBurnProfiles(dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.installSLO(engine)

	// Healthy before any traffic: /healthz is 200 and /stats lists the
	// objective with no burn.
	if code, body := do(t, s.handleHealthz, "GET", "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d %v", code, body)
	}
	_, stats := do(t, s.handleStats, "GET", "/stats")
	sloSec, ok := stats["slo"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no slo section: %v", stats["slo"])
	}
	if sloSec["fast_burn_threshold"] != float64(slo.DefaultFastBurn) {
		t.Errorf("fast_burn_threshold = %v, want %v", sloSec["fast_burn_threshold"], slo.DefaultFastBurn)
	}

	// Every request blows the 25ms objective: burn = 1/budget = 100 in both
	// windows, far over the default threshold of 14.
	hist := reg.Histogram(slo.RequestHistogram, "latency of HTTP requests by route",
		nil, telemetry.L("route", "/search"))
	t0 := time.Now()
	engine.Sample(t0)
	for i := 0; i < 100; i++ {
		hist.Observe(time.Second)
	}
	engine.Sample(t0.Add(6 * time.Second))

	if !engine.Tripped() {
		t.Fatal("engine did not trip on all-bad traffic")
	}
	code, body := do(t, s.handleHealthz, "GET", "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during fast burn = %d %v", code, body)
	}
	if body["status"] != "degraded" {
		t.Errorf("status = %v, want degraded", body["status"])
	}
	burning, ok := body["slo_fast_burn"].([]any)
	if !ok || len(burning) != 1 || burning[0] != "/search" {
		t.Errorf("slo_fast_burn = %v, want [/search]", body["slo_fast_burn"])
	}

	// /stats reflects the burn on the same objective.
	_, stats = do(t, s.handleStats, "GET", "/stats")
	objectives, _ := stats["slo"].(map[string]any)["objectives"].([]any)
	if len(objectives) != 1 {
		t.Fatalf("slo objectives = %v, want one", objectives)
	}
	obj := objectives[0].(map[string]any)
	if obj["route"] != "/search" || obj["fast_burn"] != true {
		t.Errorf("objective = %v, want /search fast-burning", obj)
	}
	if burn := obj["burn_short"].(float64); burn < 50 {
		t.Errorf("burn_short = %v, want ~100", burn)
	}

	// The first (and only the first) trip captured both profiles.
	for _, profile := range []string{"goroutine", "heap"} {
		matches, err := filepath.Glob(filepath.Join(dir, "fastburn-*-"+profile+".pprof"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 {
			t.Errorf("%s profiles captured = %v, want exactly one", profile, matches)
		}
	}
	// Still burning on the next sample: no second capture.
	engine.Sample(t0.Add(7 * time.Second))
	matches, _ := filepath.Glob(filepath.Join(dir, "fastburn-*.pprof"))
	if len(matches) != 2 {
		t.Errorf("profiles after second sample = %v, want the original two", matches)
	}
}
