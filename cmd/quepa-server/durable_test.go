package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/wal"
	"quepa/internal/workload"
)

func buildSmall(t *testing.T) *workload.Built {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 10
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	return built
}

// TestOpenDurableSeedsThenRecovers pins the startup contract: a fresh
// directory is seeded from the built index, and a second boot on the same
// directory recovers that exact index — including mutations journaled after
// the seed — instead of using the freshly generated one.
func TestOpenDurableSeedsThenRecovers(t *testing.T) {
	dir := t.TempDir()
	built := buildSmall(t)
	opts := durableOptions{DataDir: dir, Fsync: wal.FsyncAlways}

	m, err := openDurable(built, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Recovered() {
		t.Fatalf("fresh dir: manager=%v recovered=%v", m, m != nil && m.Recovered())
	}
	// Mutate through the index the server would use: the journal must pick
	// this up without any explicit WAL call at the mutation site.
	rel := core.NewIdentity(
		core.MustParseGlobalKey("durable.probe.a"),
		core.MustParseGlobalKey("durable.probe.b"), 0.9)
	if err := built.Index.Insert(rel); err != nil {
		t.Fatal(err)
	}
	want := built.Index.Edges()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Second boot: generator output differs in object but the durable state
	// must win.
	built2 := buildSmall(t)
	m2, err := openDurable(built2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Recovered() {
		t.Fatal("second boot did not recover")
	}
	if built2.Index != m2.Index() {
		t.Fatal("recovered index was not installed into the workload")
	}
	if !reflect.DeepEqual(built2.Index.Edges(), want) {
		t.Fatalf("recovered edges:\n got %v\nwant %v", built2.Index.Edges(), want)
	}
	// Clean shutdown means nothing to replay.
	if rec := m2.Recovery(); rec.ReplayedBatches != 0 {
		t.Fatalf("clean restart replayed %d batches", rec.ReplayedBatches)
	}
}

// TestOpenDurableDisabled: no data dir, no manager, no error.
func TestOpenDurableDisabled(t *testing.T) {
	m, err := openDurable(buildSmall(t), durableOptions{})
	if err != nil || m != nil {
		t.Fatalf("openDurable without dir = (%v, %v), want (nil, nil)", m, err)
	}
}

// TestCheckpointLoopBoundsReplay drives the ticker and verifies checkpoints
// actually land (Stats.Checkpoints grows beyond the seed checkpoint).
func TestCheckpointLoopBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	built := buildSmall(t)
	m, err := openDurable(built, durableOptions{DataDir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	base := m.Stats().Checkpoints

	stop := startCheckpointLoop(m, 5*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Checkpoints < base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if got := m.Stats().Checkpoints; got < base+2 {
		t.Fatalf("checkpoint loop wrote %d checkpoints, want >= %d", got, base+2)
	}
	// Nil manager / zero interval are no-ops, not panics.
	startCheckpointLoop(nil, time.Second)()
	startCheckpointLoop(m, 0)()
}

// TestServeUntilDrainsThenFlushes is the shutdown-ordering test: cancelling
// the context must (1) let an in-flight request finish, (2) run the hooks
// only after HTTP has drained, and (3) leave the WAL closed cleanly so the
// next boot replays nothing.
func TestServeUntilDrainsThenFlushes(t *testing.T) {
	dir := t.TempDir()
	built := buildSmall(t)
	m, err := openDurable(built, durableOptions{DataDir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}

	inHandler := make(chan struct{})
	release := make(chan struct{})
	var handlerFinished, hookAfterDrain atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		w.WriteHeader(http.StatusOK)
		handlerFinished.Store(true)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	handlerDone := make(chan error, 1)
	go func() {
		served <- serveUntil(ctx, &http.Server{Handler: mux}, ln, 5*time.Second,
			func() error {
				// Runs only after Shutdown returned, i.e. after /slow finished.
				hookAfterDrain.Store(handlerFinished.Load())
				return nil
			},
			m.Close)
	}()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		handlerDone <- err
	}()
	<-inHandler
	cancel()                          // SIGTERM equivalent, while /slow is in flight
	time.Sleep(20 * time.Millisecond) // let Shutdown start draining
	close(release)
	if err := <-handlerDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serveUntil: %v", err)
	}
	if !hookAfterDrain.Load() {
		t.Fatal("shutdown hook ran before the in-flight request completed")
	}

	m2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Abort()
	if rec := m2.Recovery(); !rec.Recovered || rec.ReplayedBatches != 0 {
		t.Fatalf("after graceful shutdown: recovered=%v replayed=%d, want clean checkpointed state",
			rec.Recovered, rec.ReplayedBatches)
	}
}

// TestStatsAndHealthzExposeDurability checks the HTTP surface in both modes.
func TestStatsAndHealthzExposeDurability(t *testing.T) {
	dir := t.TempDir()
	built := buildSmall(t)
	m, err := openDurable(built, durableOptions{DataDir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := newServer(built, augment.Config{Strategy: augment.Batch, BatchSize: 32, CacheSize: 128},
		explain.DefaultBufferCapacity, 0, resilience.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.wal = m

	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	dur, ok := stats["durability"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing durability section: %v", stats["durability"])
	}
	if dur["dir"] != dir || dur["fsync"] != wal.FsyncAlways {
		t.Fatalf("durability section = %v", dur)
	}

	rec = httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz with healthy WAL = %d", rec.Code)
	}
	var hz map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if _, ok := hz["durable_epoch"]; !ok {
		t.Fatalf("healthz missing durable_epoch: %v", hz)
	}

	// Without a WAL the sections degrade gracefully.
	s.wal = nil
	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	stats = map[string]any{}
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if dur, ok := stats["durability"].(map[string]any); !ok || dur["enabled"] != false {
		t.Fatalf("in-memory durability section = %v", stats["durability"])
	}
}
