package main

// The cluster acceptance suite: three in-process peers — peers 1 and 2 are
// bare shard nodes behind real wire listeners, peer 0 is a full HTTP server
// assembled through main's own cluster wiring (setupCluster + newServer +
// installCluster). It checks the headline behaviours of the distributed
// deployment: healthy searches answer through scatter-gather, killing a peer
// keeps /search at 200 with a "peer-open" degradation once the breaker
// opens, and /healthz and /stats expose the cluster sections.

import (
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"quepa/internal/augment"
	"quepa/internal/cluster"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// startClusterServer brings up the 3-peer deployment and returns peer 0's
// HTTP server plus the other peers' wire servers (for the test to kill).
func startClusterServer(t *testing.T) (*server, []*wire.Server) {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 12
	spec.AlbumsPerArtist = 2
	spec.Customers = 20

	const peers = 3
	lns := make([]net.Listener, peers)
	addrs := make([]string, peers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ring, err := cluster.NewRing(peers, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var remotes []*wire.Server
	for shard := 1; shard < peers; shard++ {
		built, err := workload.Build(spec, workload.Colocated())
		if err != nil {
			t.Fatal(err)
		}
		idx, err := cluster.BuildShard(built.Index, ring, shard)
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.ServeOn(cluster.NewNode(shard, idx, built.Poly), lns[shard])
		remotes = append(remotes, srv)
		t.Cleanup(func() { srv.Close() })
	}

	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	bcfg := resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}
	rt, err := setupCluster(built, strings.Join(addrs, ","), 0, 16, 0, bcfg, 2, "", lns[0])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.close() })
	// Tight single-attempt deadlines so a killed peer fails fast in tests.
	s, err := newServer(built, augment.Config{Strategy: augment.OuterBatch, CacheSize: 0},
		explain.DefaultBufferCapacity, 0, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	s.installCluster(rt)
	return s, remotes
}

func TestServerClusterSearchAndPeerDown(t *testing.T) {
	s, remotes := startClusterServer(t)
	query, err := s.built.Query("transactions", 4)
	if err != nil {
		t.Fatal(err)
	}
	search := "/search?db=transactions&q=" + url.QueryEscape(query) + "&level=2"

	// Healthy cluster: searches answer 200 with no degraded section, and the
	// status pages carry the cluster identity.
	code, body := do(t, s.handleSearch, "GET", search)
	if code != http.StatusOK {
		t.Fatalf("healthy cluster search = %d %v", code, body)
	}
	if got := degradedStores(t, body); len(got) != 0 {
		t.Fatalf("healthy cluster search degraded: %v", got)
	}
	if orig, _ := body["original"].([]any); len(orig) == 0 {
		t.Fatal("healthy cluster search returned no originals")
	}
	code, health := do(t, s.handleHealthz, "GET", "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy cluster healthz = %d %v", code, health)
	}
	cl, ok := health["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no cluster section: %v", health)
	}
	if cl["peers"] != float64(3) || cl["self"] != float64(0) || cl["ring_version"] == float64(0) {
		t.Fatalf("healthz cluster section = %v", cl)
	}
	if list, _ := cl["peer_list"].([]any); len(list) != 3 {
		t.Fatalf("healthz peer list = %v", cl["peer_list"])
	}
	code, stats := do(t, s.handleStats, "GET", "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	scl, ok := stats["cluster"].(map[string]any)
	if !ok || scl["peers"] != float64(3) {
		t.Fatalf("stats cluster section = %v", stats["cluster"])
	}
	if list, _ := scl["peer_list"].([]any); len(list) != 3 {
		t.Fatalf("stats peer list = %v", scl["peer_list"])
	} else if row, _ := list[1].(map[string]any); row["owned_ranges"] == float64(0) || row["ranges"] == nil {
		t.Fatalf("stats peer row lacks owned ranges: %v", row)
	}

	// Kill peer 1. The first searches after the kill fail its scatter legs
	// (recording breaker failures); once the breaker opens, searches keep
	// answering 200 with a "peer-open" degradation — the acceptance
	// behaviour of the cluster CI lane.
	remotes[0].Close()
	deadline := time.Now().Add(30 * time.Second)
	sawPeerOpen := false
	for !sawPeerOpen {
		if time.Now().After(deadline) {
			t.Fatal("no peer-open degradation within 30s of killing peer 1")
		}
		code, body := do(t, s.handleSearch, "GET", search)
		if code != http.StatusOK {
			t.Fatalf("post-kill search = %d %v, want 200 with degradation", code, body)
		}
		raw, _ := body["degraded"].([]any)
		for _, e := range raw {
			entry, _ := e.(map[string]any)
			if entry["reason"] == "peer-open" {
				sawPeerOpen = true
				if entry["store"] == "" {
					t.Fatalf("peer-open degradation without a store: %v", entry)
				}
			}
		}
	}

	// The probe and the stats page agree: the peer's breaker is open.
	code, health = do(t, s.handleHealthz, "GET", "/healthz")
	if code != http.StatusServiceUnavailable || health["status"] != "degraded" {
		t.Fatalf("healthz with dead peer = %d %v", code, health)
	}
	cl, _ = health["cluster"].(map[string]any)
	open := false
	if list, _ := cl["peer_list"].([]any); len(list) == 3 {
		for _, e := range list {
			row, _ := e.(map[string]any)
			if b, _ := row["breaker"].(map[string]any); b != nil && b["state"] == "open" {
				open = true
			}
		}
	}
	if !open {
		t.Fatalf("no open peer breaker in healthz cluster section: %v", cl)
	}
}
