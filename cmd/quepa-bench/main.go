// Command quepa-bench regenerates the figures of the paper's evaluation
// (Section VII) and prints the same series the paper plots.
//
// Usage:
//
//	quepa-bench -fig 9            # one figure (9, 10ab, 10cd, 11ab, 11cd, 11ef, 12, 13ab, 13cd)
//	quepa-bench -fig all          # the full campaign
//	quepa-bench -fig build        # A' construction sweep: object count × workers
//	quepa-bench -fig 13cd -quick  # tiny sizes, for smoke-testing the harness
//	quepa-bench -json out.json    # also write the points as a RunRecord
//	quepa-bench -fig 11ab -mutexprofile mutex.pb.gz -blockprofile block.pb.gz
//	                              # also write pprof contention profiles of the
//	                              # campaign (go tool pprof mutex.pb.gz)
//
//	quepa-bench -fig wire         # frame-codec A/B: JSON vs binary series
//	quepa-bench -fig cluster -codec json
//	                              # pin the wire codec for wire-crossing
//	                              # figures; the pin lands in the RunRecord
//	                              # and -compare refuses cross-codec diffs
//
//	quepa-bench -compare BENCH_PR1.json -tolerance 0.30 new.json
//	                              # diff a new RunRecord against a baseline:
//	                              # prints a markdown delta table and exits 1
//	                              # when any matched point slowed down by more
//	                              # than the tolerance (the CI bench guard)
//
// With -json, every measured point of the campaign is written to the named
// file as an indented bench.RunRecord — the format of the per-PR
// BENCH_<label>.json baselines at the repository root. Adding
// -explain-sample=K attaches the EXPLAIN profile of every K-th measured
// search to the record, so a campaign documents not just how long the
// strategies took but what they actually did.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"quepa/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "tiny sizes (harness smoke test)")
	seed := flag.Int64("seed", 1, "workload seed")
	budget := flag.Int64("budget", 0, "middleware memory budget in bytes (0 = default)")
	jsonOut := flag.String("json", "", "also write the campaign to this file as JSON")
	label := flag.String("label", "", "label recorded in the -json output (e.g. PR1)")
	explainSample := flag.Int("explain-sample", 0, "attach the EXPLAIN profile of every K-th search to the -json record (0 disables)")
	compare := flag.String("compare", "", "baseline RunRecord to diff against; the new record is the positional argument")
	tolerance := flag.Float64("tolerance", 0.30, "with -compare: allowed slowdown fraction before a point fails")
	bestOf := flag.Int("best-of", 1, "run each figure N times and keep every point's fastest measurement (steadies the -compare guard)")
	codec := flag.String("codec", "", "pin the wire frame codec for wire-crossing figures: json or binary (empty negotiates, and runs -fig wire as a two-series A/B)")
	skew := flag.Float64("skew", 0, "Zipf exponent of the skewed origin stream for -fig rcache (must be > 1; 0 selects 1.1)")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile of the campaign to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile of the campaign to this file")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *tolerance, flag.Args()))
	}

	// Arm the contention profilers before any benchmark work runs; the
	// profiles are flushed after the campaign so they cover every figure.
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProfile)
	}

	switch *codec {
	case "", "json", "binary":
	default:
		fmt.Fprintf(os.Stderr, "quepa-bench: -codec %q: want json or binary\n", *codec)
		os.Exit(2)
	}
	if *skew != 0 && *skew <= 1 {
		fmt.Fprintf(os.Stderr, "quepa-bench: -skew %g: the Zipf exponent must be > 1\n", *skew)
		os.Exit(2)
	}
	opts := bench.Options{Quick: *quick, Seed: *seed, BaselineBudget: *budget, Codec: *codec, Skew: *skew}
	bench.SetExplainSampling(*explainSample)

	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureNames()
	}
	var all []bench.Point
	for _, id := range ids {
		start := time.Now()
		points, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quepa-bench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		for rep := 1; rep < *bestOf; rep++ {
			again, err := bench.Run(id, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quepa-bench: figure %s (repeat %d): %v\n", id, rep, err)
				os.Exit(1)
			}
			points = bench.BestOf(points, again)
		}
		bench.Report(os.Stdout, points)
		fmt.Printf("\n[figure %s regenerated in %v]\n", id, time.Since(start).Round(time.Millisecond))
		all = append(all, points...)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
			os.Exit(1)
		}
		err = bench.WriteJSON(f, *label, opts, ids, all)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "quepa-bench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("[campaign written to %s]\n", *jsonOut)
	}
}

// writeProfile flushes one of the runtime's pprof profiles to a file; the
// resulting files feed `go tool pprof` to localize lock convoys on the fetch
// hot path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
		return
	}
	err = pprof.Lookup(name).WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "quepa-bench: writing %s profile: %v\n", name, err)
		return
	}
	fmt.Printf("[%s profile written to %s]\n", name, path)
}

// runCompare implements -compare: diff a new RunRecord against a baseline,
// print the delta table as markdown (CI appends it to the step summary), and
// return 1 when any matched point regressed past the tolerance.
func runCompare(baselinePath string, tolerance float64, args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: quepa-bench -compare <baseline.json> [-tolerance 0.30] <new.json>")
		return 2
	}
	old, err := bench.ReadRecordFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
		return 2
	}
	cur, err := bench.ReadRecordFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
		return 2
	}
	if err := bench.CodecMismatch(old, cur); err != nil {
		fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
		return 2
	}
	if warn := bench.EnvironmentMismatch(old, cur); warn != "" {
		fmt.Fprintf(os.Stderr, "quepa-bench: WARNING: %s\n", warn)
	}
	cmp := bench.Compare(old, cur, tolerance)
	if err := cmp.WriteMarkdown(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
		return 2
	}
	if regs := cmp.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "quepa-bench: %d point(s) regressed beyond +%.0f%% vs %s\n",
			len(regs), tolerance*100, baselinePath)
		return 1
	}
	return 0
}
