// Command quepa-bench regenerates the figures of the paper's evaluation
// (Section VII) and prints the same series the paper plots.
//
// Usage:
//
//	quepa-bench -fig 9            # one figure (9, 10ab, 10cd, 11ab, 11cd, 11ef, 12, 13ab, 13cd)
//	quepa-bench -fig all          # the full campaign
//	quepa-bench -fig 13cd -quick  # tiny sizes, for smoke-testing the harness
//	quepa-bench -json out.json    # also write the points as a RunRecord
//
// With -json, every measured point of the campaign is written to the named
// file as an indented bench.RunRecord — the format of the per-PR
// BENCH_<label>.json baselines at the repository root. Adding
// -explain-sample=K attaches the EXPLAIN profile of every K-th measured
// search to the record, so a campaign documents not just how long the
// strategies took but what they actually did.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quepa/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "tiny sizes (harness smoke test)")
	seed := flag.Int64("seed", 1, "workload seed")
	budget := flag.Int64("budget", 0, "middleware memory budget in bytes (0 = default)")
	jsonOut := flag.String("json", "", "also write the campaign to this file as JSON")
	label := flag.String("label", "", "label recorded in the -json output (e.g. PR1)")
	explainSample := flag.Int("explain-sample", 0, "attach the EXPLAIN profile of every K-th search to the -json record (0 disables)")
	flag.Parse()

	opts := bench.Options{Quick: *quick, Seed: *seed, BaselineBudget: *budget}
	bench.SetExplainSampling(*explainSample)

	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureNames()
	}
	var all []bench.Point
	for _, id := range ids {
		start := time.Now()
		points, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quepa-bench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		bench.Report(os.Stdout, points)
		fmt.Printf("\n[figure %s regenerated in %v]\n", id, time.Since(start).Round(time.Millisecond))
		all = append(all, points...)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quepa-bench: %v\n", err)
			os.Exit(1)
		}
		err = bench.WriteJSON(f, *label, opts, ids, all)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "quepa-bench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("[campaign written to %s]\n", *jsonOut)
	}
}
