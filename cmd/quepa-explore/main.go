// Command quepa-explore is an interactive augmented-exploration shell over
// a generated Polyphony polystore: the terminal rendition of the paper's
// click-through interface. A session starts from a native query; the ranked
// links of each step are numbered, and typing a number follows that link.
//
//	$ quepa-explore
//	> q transactions SELECT * FROM sales WHERE seq < 1
//	  [0] transactions.sales.s0 {customer: c0, ...}
//	> 0
//	  [0] p=0.93 transactions.inventory.a0 {...}
//	  [1] p=0.67 catalogue.albums.d0 {...}
//	> 1
//	...
//	> finish
//
// Other commands: dbs, search <db> <level> <query>, path, explain, help,
// quit. The explain verb prints the EXPLAIN profile of the last q, search,
// or link-follow as an indented tree.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/workload"
)

func main() {
	replicas := flag.Int("replicas", 0, "replication rounds")
	scale := flag.Float64("scale", 0.3, "workload scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	spec := workload.DefaultSpec().Scale(*scale)
	spec.ReplicaRounds = *replicas
	spec.Seed = *seed
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QUEPA explorer: %d databases, %d p-relations. Type 'help'.\n",
		built.Poly.Size(), built.Index.EdgeCount())
	repl(os.Stdin, os.Stdout, built)
}

// shell holds one interactive session's state.
type shell struct {
	out     io.Writer
	built   *workload.Built
	aug     *augment.Augmenter
	tracker *aindex.PathTracker
	session *augment.Exploration
	links   []augment.AugmentedObject // numbered choices of the last step
	started bool                      // session has begun but no Step yet
	starts  []core.Object             // the starting query's objects

	// lastProfile is the EXPLAIN profile of the most recent query-running
	// command (q, search, or a link follow), shown by the explain verb.
	lastProfile *explain.Profile
}

// repl drives the command loop; factored out of main for testing.
func repl(in io.Reader, out io.Writer, built *workload.Built) {
	sh := &shell{
		out:     out,
		built:   built,
		aug:     augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Inner, ThreadsSize: 4, CacheSize: 1024}),
		tracker: aindex.NewPathTracker(built.Index, aindex.DefaultPromotionPolicy),
	}
	scanner := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			sh.execute(line)
		}
		fmt.Fprint(out, "> ")
	}
}

func (sh *shell) execute(line string) {
	ctx := context.Background()
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprintln(sh.out, `commands:
  dbs                          list databases
  q <db> <query>               start an exploration from a native query
  <n>                          follow link number n of the last step
  search <db> <level> <query>  one-shot augmented search
  path                         show the objects visited so far
  explain                      show the EXPLAIN profile of the last query
  finish                       end the session (may promote the path)
  quit`)
	case "dbs":
		for _, name := range sh.built.Databases() {
			s, err := sh.built.Poly.Database(name)
			if err != nil {
				continue
			}
			fmt.Fprintf(sh.out, "  %-20s %-11s %v\n", name, s.Kind(), s.Collections())
		}
	case "q":
		if len(fields) < 3 {
			fmt.Fprintln(sh.out, "usage: q <db> <query>")
			return
		}
		db := fields[1]
		query := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, "q"), " "+db))
		ctx, rec := explain.WithRecorder(ctx, "explore")
		sess, starts, err := sh.aug.Explore(ctx, db, query, sh.tracker)
		sh.lastProfile = rec.Finish(len(starts))
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			return
		}
		sh.session = sess
		sh.starts = starts
		sh.started = true
		sh.links = nil
		for i, o := range starts {
			if i == 10 {
				fmt.Fprintf(sh.out, "  ... (%d more)\n", len(starts)-10)
				break
			}
			fmt.Fprintf(sh.out, "  [%d] %s\n", i, o)
		}
	case "search":
		if len(fields) < 4 {
			fmt.Fprintln(sh.out, "usage: search <db> <level> <query>")
			return
		}
		level, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Fprintf(sh.out, "bad level %q\n", fields[2])
			return
		}
		query := strings.Join(fields[3:], " ")
		ctx, rec := explain.WithRecorder(ctx, "search")
		answer, err := sh.aug.Search(ctx, fields[1], query, level)
		if err != nil {
			sh.lastProfile = rec.Finish(0)
			fmt.Fprintf(sh.out, "error: %v\n", err)
			return
		}
		sh.lastProfile = rec.Finish(len(answer.Original) + len(answer.Augmented))
		fmt.Fprintf(sh.out, "  %d local, %d augmented\n", len(answer.Original), len(answer.Augmented))
		for i, ao := range answer.Augmented {
			if i == 10 {
				fmt.Fprintf(sh.out, "  ... (%d more)\n", len(answer.Augmented)-10)
				break
			}
			fmt.Fprintf(sh.out, "  p=%.2f %s\n", ao.Prob, ao.Object)
		}
	case "path":
		if sh.session == nil {
			fmt.Fprintln(sh.out, "no session; start one with q")
			return
		}
		for _, gk := range sh.session.Path() {
			fmt.Fprintf(sh.out, "  %v\n", gk)
		}
	case "explain":
		if sh.lastProfile == nil {
			fmt.Fprintln(sh.out, "no profile yet; run q, search, or follow a link first")
			return
		}
		sh.lastProfile.WriteTree(sh.out)
	case "finish":
		if sh.session == nil {
			fmt.Fprintln(sh.out, "no session; start one with q")
			return
		}
		promoted := sh.session.Finish()
		fmt.Fprintf(sh.out, "session ended; path promoted: %v\n", promoted)
		sh.session = nil
		sh.links = nil
		sh.started = false
	default:
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			fmt.Fprintf(sh.out, "unknown command %q (try help)\n", fields[0])
			return
		}
		sh.follow(ctx, n)
	}
}

// follow clicks link n: an index into the starting objects on the first
// step, into the last step's links afterwards.
func (sh *shell) follow(ctx context.Context, n int) {
	if sh.session == nil {
		fmt.Fprintln(sh.out, "no session; start one with q")
		return
	}
	var target core.GlobalKey
	switch {
	case sh.links == nil && sh.started:
		if n < 0 || n >= len(sh.starts) {
			fmt.Fprintf(sh.out, "no starting object %d\n", n)
			return
		}
		target = sh.starts[n].GK
	default:
		if n < 0 || n >= len(sh.links) {
			fmt.Fprintf(sh.out, "no link %d\n", n)
			return
		}
		target = sh.links[n].Object.GK
	}
	ctx, rec := explain.WithRecorder(ctx, "step")
	links, err := sh.session.Step(ctx, target)
	sh.lastProfile = rec.Finish(len(links))
	if err != nil {
		fmt.Fprintf(sh.out, "error: %v\n", err)
		return
	}
	sh.links = links
	if len(links) == 0 {
		fmt.Fprintln(sh.out, "  (no further links)")
		return
	}
	for i, l := range links {
		if i == 10 {
			fmt.Fprintf(sh.out, "  ... (%d more)\n", len(links)-10)
			break
		}
		fmt.Fprintf(sh.out, "  [%d] p=%.2f %s\n", i, l.Prob, l.Object)
	}
}
