package main

import (
	"strings"
	"testing"

	"quepa/internal/workload"
)

func newBuilt(t *testing.T) *workload.Built {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 8
	spec.AlbumsPerArtist = 2
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}
	return built
}

// drive runs a scripted session and returns the transcript.
func drive(t *testing.T, built *workload.Built, commands ...string) string {
	t.Helper()
	in := strings.NewReader(strings.Join(commands, "\n") + "\n")
	var out strings.Builder
	repl(in, &out, built)
	return out.String()
}

func TestScriptedExploration(t *testing.T) {
	built := newBuilt(t)
	transcript := drive(t, built,
		"help",
		"dbs",
		"q transactions SELECT * FROM sales WHERE seq < 1",
		"0", // click the sale
		"0", // follow the top link
		"path",
		"finish",
		"quit",
	)
	for _, want := range []string{
		"commands:",
		"transactions",
		"[0] transactions.sales.s0",
		"p=",
		"session ended",
	} {
		if !strings.Contains(transcript, want) {
			t.Errorf("transcript lacks %q:\n%s", want, transcript)
		}
	}
}

func TestScriptedSearch(t *testing.T) {
	built := newBuilt(t)
	transcript := drive(t, built,
		"search transactions 0 SELECT * FROM inventory WHERE seq < 2",
		"quit",
	)
	if !strings.Contains(transcript, "2 local,") {
		t.Errorf("search output missing:\n%s", transcript)
	}
}

func TestErrorHandling(t *testing.T) {
	built := newBuilt(t)
	transcript := drive(t, built,
		"bogus",
		"q",
		"search transactions x SELECT",
		"q ghostdb SELECT * FROM t",
		"7",      // no session
		"path",   // no session
		"finish", // no session
		"q transactions SELECT * FROM sales WHERE seq < 1",
		"99", // out of range
		"quit",
	)
	for _, want := range []string{
		"unknown command",
		"usage: q",
		"bad level",
		"error:",
		"no session",
		"no starting object 99",
	} {
		if !strings.Contains(transcript, want) {
			t.Errorf("transcript lacks %q:\n%s", want, transcript)
		}
	}
}
