// Command quepa-collect builds an A' index from the raw contents of a
// generated polystore using the record-linkage Collector (Section III-D),
// then evaluates the discovered p-relations against the workload's ground
// truth (the index the generator itself produced).
//
// Usage:
//
//	quepa-collect -scale 0.2 -identity 0.55 -matching 0.3
//	quepa-collect -workers 8 -v   # parallel scoring with progress deciles
//	quepa-collect -data-dir /var/lib/quepa   # seed a durable dir for quepa-server
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"quepa/internal/collector"
	"quepa/internal/core"
	"quepa/internal/middleware"
	"quepa/internal/wal"
	"quepa/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	identity := flag.Float64("identity", 0.55, "identity threshold")
	matching := flag.Float64("matching", 0.30, "matching threshold")
	maxBlock := flag.Int("maxblock", 64, "max block size (frequency stop tokens)")
	workers := flag.Int("workers", 0, "scoring goroutines (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print every discovered p-relation")
	out := flag.String("out", "", "write the built A' index as JSON lines to this file")
	dataDir := flag.String("data-dir", "",
		"seed a durable data directory with the built index (checkpoint + WAL, as quepa-server -data-dir expects); must be fresh")
	flag.Parse()

	spec := workload.DefaultSpec().Scale(*scale)
	spec.Seed = *seed
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	var objects []core.Object
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		objs, err := middleware.ScanAll(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		objects = append(objects, objs...)
	}
	fmt.Printf("scanned %d objects from %d databases\n", len(objects), built.Poly.Size())

	cfg := collector.DefaultConfig()
	cfg.IdentityThreshold = *identity
	cfg.MatchingThreshold = *matching
	cfg.MaxBlockSize = *maxBlock
	cfg.Workers = *workers
	cfg.Progress = func(done, total int) {
		log.Printf("scored %d/%d blocks (%d%%)", done, total, done*100/total)
	}
	coll, err := collector.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	index, rels, stats, err := coll.BuildIndexWithStats(ctx, objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d p-relations -> index with %d keys, %d edges\n",
		len(rels), index.NodeCount(), index.EdgeCount())
	fmt.Printf("build: %d blocks (%d oversized dropped), %d pairs scored, %d identities + %d matchings, %d workers, %v\n",
		stats.Blocks, stats.DroppedBlocks, stats.PairsScored, stats.Identities, stats.Matchings,
		stats.Workers, stats.Elapsed.Round(time.Millisecond))
	if *verbose {
		for _, r := range rels {
			fmt.Printf("    %v\n", r)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := index.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("index written to %s\n", *out)
	}
	if *dataDir != "" {
		m, err := wal.Open(*dataDir, wal.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if m.Recovered() {
			log.Fatalf("quepa-collect: %s already holds durable state; point -data-dir at a fresh directory", *dataDir)
		}
		// Seed writes the initial checkpoint and opens the first WAL segment;
		// Close syncs both, so the directory is ready for quepa-server.
		if err := m.Seed(index); err != nil {
			log.Fatal(err)
		}
		if err := m.Close(); err != nil {
			log.Fatal(err)
		}
		st := m.Stats()
		fmt.Printf("durable checkpoint written to %s (epoch %d, %d bytes)\n",
			*dataDir, st.CheckpointEpoch, st.CheckpointBytes)
	}

	// Evaluate against the generator's ground-truth index: a discovered
	// relation is a true positive if the ground truth has any p-relation
	// between the same two keys.
	truth := built.Index
	tp := 0
	for _, r := range rels {
		if _, ok := truth.Relation(r.From, r.To); ok {
			tp++
		}
	}
	truthEdges := truth.EdgeCount()
	precision := 0.0
	if len(rels) > 0 {
		precision = float64(tp) / float64(len(rels))
	}
	recall := float64(tp) / float64(truthEdges)
	fmt.Printf("\nagainst the generator's ground truth (%d p-relations):\n", truthEdges)
	fmt.Printf("  true positives: %d\n  precision:      %.3f\n  recall:         %.3f\n", tp, precision, recall)
	fmt.Println("\n(The paper treats linkage quality as out of scope — \"the quality and the")
	fmt.Println("semantics of the generated p-relations are irrelevant to the purpose of")
	fmt.Println("this experimentation\" — the numbers above are for orientation only.)")
}
