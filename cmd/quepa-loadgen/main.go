// Command quepa-loadgen generates the Polyphony polystore of the paper's
// evaluation (Section VII-A) and either prints its statistics or serves
// every database over the TCP wire protocol, turning the current machine
// into one node of a distributed polystore.
//
// Usage:
//
//	quepa-loadgen -replicas 2 -scale 1          # print dataset statistics
//	quepa-loadgen -serve 127.0.0.1:0            # serve all stores over TCP
//
// The -fault-* flags wrap every served store in a deterministic chaos layer
// (internal/netsim): seeded random errors, down windows, and stall windows,
// keyed off each store's request sequence. Serving a faulty polystore is how
// the retry/breaker/degradation stack is exercised against a "real" remote:
//
//	quepa-loadgen -serve 127.0.0.1:0 -fault-rate 0.2 -fault-seed 7
//	quepa-loadgen -serve 127.0.0.1:0 -fault-down 100:200 -fault-stall 50ms -fault-stall-in 1:50
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"quepa/internal/core"
	"quepa/internal/middleware"
	"quepa/internal/netsim"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

func main() {
	replicas := flag.Int("replicas", 0, "replication rounds (0 -> 4 databases, 3 -> 13)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	serve := flag.String("serve", "", "serve every database over TCP from this base address (e.g. 127.0.0.1:0)")
	faultRate := flag.Float64("fault-rate", 0, "probability that any served request fails (deterministic by -fault-seed)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault draws")
	faultDown := flag.String("fault-down", "", "down windows as request ranges from:to[,from:to...] (to exclusive, empty to = forever)")
	faultStallIn := flag.String("fault-stall-in", "", "stall windows as request ranges from:to[,from:to...]")
	faultStall := flag.Duration("fault-stall", 0, "added latency inside -fault-stall-in windows")
	flag.Parse()

	down, err := netsim.ParseWindows(*faultDown)
	if err != nil {
		log.Fatal(err)
	}
	stallIn, err := netsim.ParseWindows(*faultStallIn)
	if err != nil {
		log.Fatal(err)
	}
	plan := netsim.FaultPlan{
		Seed:      *faultSeed,
		ErrorRate: *faultRate,
		Down:      down,
		StallIn:   stallIn,
		Stall:     *faultStall,
	}

	spec := workload.DefaultSpec().Scale(*scale)
	spec.ReplicaRounds = *replicas
	spec.Seed = *seed
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Polyphony polystore (seed %d, scale %g):\n", *seed, *scale)
	fmt.Printf("  %-16s %d\n", "databases:", built.Poly.Size())
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		objs, err := middleware.ScanAll(context.Background(), s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-20s %-11s %6d objects in %v\n", name, s.Kind(), len(objs), s.Collections())
	}
	fmt.Printf("  %-16s %d global keys, %d p-relations\n", "A' index:", built.Index.NodeCount(), built.Index.EdgeCount())

	if *serve == "" {
		return
	}

	if plan.Active() {
		fmt.Printf("serving with injected faults: %s\n", plan)
	}
	var servers []*wire.Server
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		var store core.Store = s
		if plan.Active() {
			// Each store gets its own chaos wrapper (its own request
			// sequence), all driven by the same plan and seed.
			store = netsim.NewChaos(s, plan, time.Sleep)
		}
		srv, err := wire.Serve(store, *serve)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		fmt.Printf("serving %-20s on %s\n", name, srv.Addr())
	}
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for _, srv := range servers {
		srv.Close()
	}
}
