// Command quepa-loadgen generates the Polyphony polystore of the paper's
// evaluation (Section VII-A) and either prints its statistics or serves
// every database over the TCP wire protocol, turning the current machine
// into one node of a distributed polystore.
//
// Usage:
//
//	quepa-loadgen -replicas 2 -scale 1          # print dataset statistics
//	quepa-loadgen -serve 127.0.0.1:0            # serve all stores over TCP
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"quepa/internal/middleware"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

func main() {
	replicas := flag.Int("replicas", 0, "replication rounds (0 -> 4 databases, 3 -> 13)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	serve := flag.String("serve", "", "serve every database over TCP from this base address (e.g. 127.0.0.1:0)")
	flag.Parse()

	spec := workload.DefaultSpec().Scale(*scale)
	spec.ReplicaRounds = *replicas
	spec.Seed = *seed
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Polyphony polystore (seed %d, scale %g):\n", *seed, *scale)
	fmt.Printf("  %-16s %d\n", "databases:", built.Poly.Size())
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		objs, err := middleware.ScanAll(context.Background(), s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-20s %-11s %6d objects in %v\n", name, s.Kind(), len(objs), s.Collections())
	}
	fmt.Printf("  %-16s %d global keys, %d p-relations\n", "A' index:", built.Index.NodeCount(), built.Index.EdgeCount())

	if *serve == "" {
		return
	}

	var servers []*wire.Server
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := wire.Serve(s, *serve)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		fmt.Printf("serving %-20s on %s\n", name, srv.Addr())
	}
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for _, srv := range servers {
		srv.Close()
	}
}
