// Command quepa-loadgen generates the Polyphony polystore of the paper's
// evaluation (Section VII-A) and either prints its statistics or serves
// every database over the TCP wire protocol, turning the current machine
// into one node of a distributed polystore.
//
// Usage:
//
//	quepa-loadgen -replicas 2 -scale 1          # print dataset statistics
//	quepa-loadgen -serve 127.0.0.1:0            # serve all stores over TCP
//
// The -fault-* flags wrap every served store in a deterministic chaos layer
// (internal/netsim): seeded random errors, down windows, and stall windows,
// keyed off each store's request sequence. Serving a faulty polystore is how
// the retry/breaker/degradation stack is exercised against a "real" remote:
//
//	quepa-loadgen -serve 127.0.0.1:0 -fault-rate 0.2 -fault-seed 7
//	quepa-loadgen -serve 127.0.0.1:0 -fault-down 100:200 -fault-stall 50ms -fault-stall-in 1:50
//
// With -cluster the process serves one shard of a distributed QUEPA cluster
// instead: it builds the workload, carves this peer's slice of the A' index
// along the consistent-hash ring, and serves the shard node (database-routed
// reads, frontier expansion, snapshots) on its own -cluster address — the
// peer a quepa-server coordinator scatters to. The -fault-* flags and the
// -peer-capacity/-peer-service cost model apply to the served shard, so
// multi-node chaos and node-count scaling runs can be driven from real
// processes:
//
//	quepa-loadgen -cluster 127.0.0.1:7101,127.0.0.1:7102 -shard-id 1
//	quepa-loadgen -cluster ... -shard-id 1 -fault-down 1: -peer-capacity 4 -peer-service 2ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"quepa/internal/augment"
	"quepa/internal/cluster"
	"quepa/internal/core"
	"quepa/internal/middleware"
	"quepa/internal/netsim"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

func main() {
	replicas := flag.Int("replicas", 0, "replication rounds (0 -> 4 databases, 3 -> 13)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	serve := flag.String("serve", "", "serve every database over TCP from this base address (e.g. 127.0.0.1:0)")
	faultRate := flag.Float64("fault-rate", 0, "probability that any served request fails (deterministic by -fault-seed)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault draws")
	faultDown := flag.String("fault-down", "", "down windows as request ranges from:to[,from:to...] (to exclusive, empty to = forever)")
	faultStallIn := flag.String("fault-stall-in", "", "stall windows as request ranges from:to[,from:to...]")
	faultStall := flag.Duration("fault-stall", 0, "added latency inside -fault-stall-in windows")
	clusterPeers := flag.String("cluster", "",
		"serve one cluster shard instead: comma-separated wire addresses of every peer ordered by shard id")
	shardID := flag.Int("shard-id", 0, "this peer's shard id: the index of its own address in -cluster")
	clusterVnodes := flag.Int("cluster-vnodes", cluster.DefaultVnodes,
		"virtual nodes per peer on the consistent-hash ring (all peers must agree)")
	clusterSeed := flag.Uint64("cluster-seed", 0, "ring hash seed, 0 selects the built-in default (all peers must agree)")
	peerCapacity := flag.Int("peer-capacity", 0,
		"simulated service capacity of the served shard: concurrent requests (0 disables; with -cluster)")
	peerService := flag.Duration("peer-service", 0,
		"simulated service time per object under -peer-capacity")
	queries := flag.Int("queries", 0,
		"replay this many Zipf-skewed single-origin augmentations against the built polystore and print throughput (0 disables)")
	skew := flag.Float64("skew", 1.1, "Zipf exponent of the -queries origin stream (must be > 1)")
	queryLevel := flag.Int("query-level", 2, "augmentation level the -queries stream runs at")
	flag.Parse()

	if *skew <= 1 {
		log.Fatalf("quepa-loadgen: -skew %g: the Zipf exponent must be > 1", *skew)
	}

	down, err := netsim.ParseWindows(*faultDown)
	if err != nil {
		log.Fatal(err)
	}
	stallIn, err := netsim.ParseWindows(*faultStallIn)
	if err != nil {
		log.Fatal(err)
	}
	plan := netsim.FaultPlan{
		Seed:      *faultSeed,
		ErrorRate: *faultRate,
		Down:      down,
		StallIn:   stallIn,
		Stall:     *faultStall,
	}

	spec := workload.DefaultSpec().Scale(*scale)
	spec.ReplicaRounds = *replicas
	spec.Seed = *seed
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Polyphony polystore (seed %d, scale %g):\n", *seed, *scale)
	fmt.Printf("  %-16s %d\n", "databases:", built.Poly.Size())
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		objs, err := middleware.ScanAll(context.Background(), s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-20s %-11s %6d objects in %v\n", name, s.Kind(), len(objs), s.Collections())
	}
	fmt.Printf("  %-16s %d global keys, %d p-relations\n", "A' index:", built.Index.NodeCount(), built.Index.EdgeCount())

	if *queries > 0 {
		if err := replaySkewed(built, *queries, *skew, *queryLevel, *seed); err != nil {
			log.Fatal(err)
		}
	}

	if *clusterPeers != "" {
		serveClusterPeer(built, *clusterPeers, *shardID, *clusterVnodes, *clusterSeed, plan,
			netsim.PeerProfile{Capacity: *peerCapacity, Service: *peerService})
		return
	}

	if *serve == "" {
		return
	}

	if plan.Active() {
		fmt.Printf("serving with injected faults: %s\n", plan)
	}
	var servers []*wire.Server
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		var store core.Store = s
		if plan.Active() {
			// Each store gets its own chaos wrapper (its own request
			// sequence), all driven by the same plan and seed.
			store = netsim.NewChaos(s, plan, time.Sleep)
		}
		srv, err := wire.Serve(store, *serve)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		fmt.Printf("serving %-20s on %s\n", name, srv.Addr())
	}
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for _, srv := range servers {
		srv.Close()
	}
}

// replaySkewed drives a Zipf-skewed single-origin augmentation stream
// against the built polystore — the hot-key access pattern exploration
// sessions produce, and the workload the result cache optimizes — and
// prints its throughput.
func replaySkewed(built *workload.Built, queries int, skew float64, level int, seed int64) error {
	seen := map[core.GlobalKey]bool{}
	var objs []core.Object
	ctx := context.Background()
	for _, r := range built.Relations() {
		if len(objs) >= 64 {
			break
		}
		if seen[r.From] {
			continue
		}
		seen[r.From] = true
		obj, err := built.Poly.Fetch(ctx, r.From)
		if err != nil {
			continue
		}
		objs = append(objs, obj)
	}
	if len(objs) < 2 {
		return fmt.Errorf("quepa-loadgen: workload has %d fetchable origins", len(objs))
	}
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), skew, 1, uint64(len(objs)-1))
	aug := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Sequential})
	distinct := map[int]bool{}
	start := time.Now()
	for i := 0; i < queries; i++ {
		j := int(z.Uint64())
		distinct[j] = true
		if _, _, err := aug.AugmentObjects(ctx, []core.Object{objs[j]}, level); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d augmentations (level %d, skew %g, %d distinct of %d origins) in %v: %.0f q/s\n",
		queries, level, skew, len(distinct), len(objs), elapsed.Round(time.Millisecond),
		float64(queries)/elapsed.Seconds())
	return nil
}

// serveClusterPeer serves one shard of a distributed deployment: this peer's
// A' slice plus its databases, on the address -cluster lists for -shard-id.
// The fault plan and the capacity/service cost model wrap the node when
// active, so chaos and scaling scenarios run against real processes.
func serveClusterPeer(built *workload.Built, peerList string, shardID, vnodes int, seed uint64,
	plan netsim.FaultPlan, prof netsim.PeerProfile) {
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(p); p == "" {
			log.Fatalf("quepa-loadgen: empty peer address in -cluster %q", peerList)
		}
		peers = append(peers, p)
	}
	if shardID < 0 || shardID >= len(peers) {
		log.Fatalf("quepa-loadgen: -shard-id %d outside peer list of %d", shardID, len(peers))
	}
	ring, err := cluster.NewRing(len(peers), vnodes, seed)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cluster.BuildShard(built.Index, ring, shardID)
	if err != nil {
		log.Fatal(err)
	}
	node := cluster.NewNode(shardID, idx, built.Poly)
	var store core.Store = node
	if plan.Active() || prof.Capacity > 0 || prof.Profile.RoundTrip > 0 {
		store = netsim.NewChaosNode(node, prof, plan, time.Sleep)
		fmt.Printf("serving shard with %s, capacity %d × %v service\n", plan, prof.Capacity, prof.Service)
	}
	srv, err := wire.Serve(store, peers[shardID])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving cluster shard %d of %d on %s: A' slice %d keys / %d p-relations, ring version %x\n",
		shardID, len(peers), srv.Addr(), idx.NodeCount(), idx.EdgeCount(), ring.Version())
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
