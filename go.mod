module quepa

go 1.22
