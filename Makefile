# QUEPA reproduction — common development targets.

GO ?= go

.PHONY: all build vet test race cover bench fuzz figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage over every package (cmd/ included — go vet/test ./... already
# cover it); writes cover.out and prints the per-function summary.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerates every figure of the paper (Figs. 9-13 plus the extra cache
# and ablation experiments). Takes a few minutes.
bench:
	$(GO) test -bench=. -benchmem

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test ./internal/core -fuzz=FuzzParseGlobalKey -fuzztime=15s -run='^$$'
	$(GO) test ./internal/stores/relstore -fuzz=FuzzParse -fuzztime=15s -run='^$$'
	$(GO) test ./internal/stores/docstore -fuzz=FuzzParseFilter -fuzztime=15s -run='^$$'

# One figure: make figures FIG=11ab
FIG ?= all
figures:
	$(GO) run ./cmd/quepa-bench -fig $(FIG)

clean:
	$(GO) clean ./...
	rm -f cover.out
