# QUEPA reproduction — common development targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-hotpath bench-build bench-compare bench-recovery bench-trace bench-cluster bench-wire bench-rcache chaos cluster crashtest fuzz figures promlint clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage over every package (cmd/ included — go vet/test ./... already
# cover it); writes cover.out and prints the per-function summary.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerates every figure of the paper (Figs. 9-13 plus the extra cache
# and ablation experiments). Takes a few minutes.
bench:
	$(GO) test -bench=. -benchmem

# Concurrency microbenchmarks of the fetch hot path (sharded cache,
# coalescing, wire mux) with allocation counts — the numbers the PR 4
# overhaul moves.
bench-hotpath:
	$(GO) test -bench='CacheGet|Follower|Mux|HotPath' -benchmem -run='^$$' \
		./internal/cache/ ./internal/coalesce/ ./internal/wire/ ./internal/augment/

# Fault-injection suite under the race detector: every chaos, fault, breaker
# and retry test across the tree (the CI chaos job runs exactly this).
chaos:
	$(GO) test -race -run 'Chaos|Fault|Breaker|Retry' ./internal/... ./cmd/...

# A' construction sweep: the full collector pipeline + bulk load, swept over
# object count × scoring workers, plus the Reach fast-path microbenchmarks.
# The sweep itself fails if any worker count changes the discovered
# relations, so it doubles as a determinism check.
bench-build:
	$(GO) run ./cmd/quepa-bench -fig build
	$(GO) test -bench='ReachSnapshot|ReachLockedFallback|BulkLoad' -benchmem -run='^$$' ./internal/aindex/

# Bench-regression guard: rerun figure 9 (best of 3) and fail on any point
# more than 30% slower than the committed baseline.
BASELINE ?= BENCH_PR4.json
bench-compare:
	$(GO) run ./cmd/quepa-bench -fig 9 -best-of 3 -json bench_ci.json -label ci > /dev/null
	$(GO) run ./cmd/quepa-bench -compare $(BASELINE) -tolerance 0.30 bench_ci.json

# Wire-codec regression guard: rerun the frame-codec A/B figure (JSON vs
# binary series, best of 3) and fail on any point more than 30% slower than
# the committed PR 9 baseline — past the 2ms noise floor. Catches both a
# binary codec that lost its edge and a JSON path that regressed.
WIRE_BASELINE ?= BENCH_PR9.json
bench-wire:
	$(GO) run ./cmd/quepa-bench -fig wire -best-of 3 -json bench_wire.json -label ci > /dev/null
	$(GO) run ./cmd/quepa-bench -compare $(WIRE_BASELINE) -tolerance 0.30 bench_wire.json

# Result-cache regression guard: rerun the rcache A/B figure (warm skewed
# stream cache-on vs cache-off, plus the 3-peer delta-frontier bytes-on-wire
# series, best of 3) and fail on any point more than 30% slower than the
# committed PR 10 baseline — past the 2ms noise floor. Catches a cache that
# stopped hitting and a compact codec that lost its byte edge alike.
RCACHE_BASELINE ?= BENCH_PR10.json
bench-rcache:
	$(GO) run ./cmd/quepa-bench -fig rcache -best-of 3 -json bench_rcache.json -label ci > /dev/null
	$(GO) run ./cmd/quepa-bench -compare $(RCACHE_BASELINE) -tolerance 0.30 bench_rcache.json

# Distributed-tracing overhead gate: rerun the traced-vs-untraced hot-path
# search pair and fail if tracing costs more than +30% and a 2ms noise floor.
bench-trace:
	QUEPA_TRACE_GUARD=1 $(GO) test -run TestTraceOverheadGuard -count=1 -v ./internal/augment/

# Prometheus text-exposition conformance: lint the registry's /metrics
# rendering (every metric shape the server exports, plus whatever the global
# registry accumulated) against the 0.0.4 format rules scrapers enforce.
promlint:
	$(GO) test -run PromLint -count=1 ./internal/telemetry/

# Multi-peer cluster suite under the race detector (the CI cluster job runs
# exactly this): ring property tests, scatter-gather equivalence against the
# single-node index, peer-down -> "peer-open" degradation, slow-shard
# timeouts, snapshot bootstrap and ring rebalance, the 3-peer HTTP server
# acceptance test, and the node-count scaling check of the cluster figure.
# Every scenario runs over in-process netsim peers with deterministic fault
# plans, so the lane replays bit-for-bit on any runner.
cluster:
	$(GO) test -race -run 'Cluster|Ring|Scatter|Rebalance|Snapshot' \
		./internal/cluster/ ./cmd/quepa-server/
	$(GO) test -race -run 'FigClusterScaling' ./internal/bench/

# Node-count campaign: the cluster figure sweeps 1/2/4 netsim peers under the
# per-peer capacity model and reports scatter-gather throughput. The sweep
# verifies every scattered answer against the single-node index before timing.
bench-cluster:
	$(GO) run ./cmd/quepa-bench -fig cluster

# Crash-recovery suite: SIGKILL a re-exec'd process mid-write (both the raw
# WAL writer and a live quepa-server under load) and verify the reopened data
# dir holds exactly a committed prefix — at least everything acknowledged
# under fsync=always. Repeated runs catch timing-dependent torn tails.
crashtest:
	$(GO) test -run 'TestCrashRecovery|TestServerCrashRecovery' -count=3 ./internal/wal/ ./cmd/quepa-server/
	$(GO) test -run 'TestTorn' ./internal/wal/

# Recovery-vs-recollection sweep: checkpoint load + log-tail replay must beat
# re-running the collector by a wide margin at every scale, and the recovered
# index must be byte-identical to the pre-crash one (the figure fails if not).
bench-recovery:
	$(GO) run ./cmd/quepa-bench -fig recovery

# Short fuzzing pass over the parsers, the index persistence formats, and the
# binary wire-frame decoder.
fuzz:
	$(GO) test ./internal/core -fuzz=FuzzParseGlobalKey -fuzztime=15s -run='^$$'
	$(GO) test ./internal/stores/relstore -fuzz=FuzzParse -fuzztime=15s -run='^$$'
	$(GO) test ./internal/stores/docstore -fuzz=FuzzParseFilter -fuzztime=15s -run='^$$'
	$(GO) test ./internal/aindex -fuzz=FuzzJSONRoundTrip -fuzztime=15s -run='^$$'
	$(GO) test ./internal/aindex -fuzz=FuzzReadSnapshot -fuzztime=15s -run='^$$'
	$(GO) test ./internal/wire -fuzz=FuzzDecodeFrame -fuzztime=15s -run='^$$'

# One figure: make figures FIG=11ab
FIG ?= all
figures:
	$(GO) run ./cmd/quepa-bench -fig $(FIG)

clean:
	$(GO) clean ./...
	rm -f cover.out
