package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

// tornFixture builds a WAL directory with nOps committed batches and no final
// checkpoint (Abort), and returns the path of the last segment plus the byte
// offset where its final record starts. The expected recovery result for a
// tear inside the final record is applyOps(nOps-1); for an intact file it is
// applyOps(nOps).
func tornFixture(t *testing.T, nOps int, opts Options) (dir, seg string, lastRec int64) {
	t.Helper()
	dir = t.TempDir()
	m := seedManager(t, dir, opts)
	for i := 0; i < nOps; i++ {
		doOp(t, m.Index(), i)
	}
	m.Abort()

	segs := listFiles(t, dir, "wal-")
	if len(segs) == 0 {
		t.Fatal("fixture produced no segments")
	}
	seg = filepath.Join(dir, segs[len(segs)-1])
	lastRec = lastRecordOffset(t, seg)
	return dir, seg, lastRec
}

// lastRecordOffset walks the record frames of a well-formed segment and
// returns the offset of the final one.
func lastRecordOffset(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var off, last int64
	for off < int64(len(data)) {
		if int64(len(data))-off < frameOverhead {
			t.Fatalf("segment has trailing garbage at %d", off)
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameOverhead : off+frameOverhead+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			t.Fatalf("fixture segment corrupt at %d", off)
		}
		last = off
		off += frameOverhead + length
	}
	return last
}

// copyDir clones the fixture so each table case recovers from pristine bytes
// (recovery itself truncates files, so cases must not share a directory).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func recoverDir(t *testing.T, dir string) (*aindex.Index, RecoveryStats) {
	t.Helper()
	m, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("recovery returned an error (it must truncate, not fail): %v", err)
	}
	defer m.Close()
	return m.Index(), m.Recovery()
}

// TestTornFinalRecordEveryOffset is the satellite torn-write table test: the
// final WAL record is truncated at every possible byte offset and bit-flipped
// at every byte; in all cases recovery must return exactly the committed
// prefix — never an error, never a half-applied batch, never a survivor of a
// corrupt record.
func TestTornFinalRecordEveryOffset(t *testing.T) {
	const nOps = 12
	fixDir, seg, lastRec := tornFixture(t, nOps, Options{Fsync: FsyncOff})
	segBytes, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(segBytes))
	segName := filepath.Base(seg)

	wantFull := applyOps(t, nOps)
	wantPrefix := applyOps(t, nOps-1)

	t.Run("truncate", func(t *testing.T) {
		for cut := lastRec; cut <= size; cut++ {
			dir := copyDir(t, fixDir)
			if err := os.Truncate(filepath.Join(dir, segName), cut); err != nil {
				t.Fatal(err)
			}
			ix, st := recoverDir(t, dir)
			want := wantPrefix
			if cut == size {
				want = wantFull
			}
			wantEdges(t, ix, want, "truncate at "+itoa(cut))
			// Recovery removes the partial record bytes past the last clean
			// boundary; cutting exactly at a boundary leaves nothing torn.
			wantTrunc := cut - lastRec
			if cut == size {
				wantTrunc = 0
			}
			if st.TruncatedBytes != wantTrunc {
				t.Fatalf("truncate at %d: TruncatedBytes=%d, want %d", cut, st.TruncatedBytes, wantTrunc)
			}
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for pos := lastRec; pos < size; pos++ {
			dir := copyDir(t, fixDir)
			b := append([]byte(nil), segBytes...)
			b[pos] ^= 0x01
			if err := os.WriteFile(filepath.Join(dir, segName), b, 0o644); err != nil {
				t.Fatal(err)
			}
			ix, _ := recoverDir(t, dir)
			// A flipped bit anywhere in the final record (length, CRC or
			// payload) must fail the CRC check and drop exactly that batch.
			wantEdges(t, ix, wantPrefix, "bitflip at "+itoa(pos))
		}
	})
}

// TestTornEarlierSegmentDropsSuffix: a tear in a sealed (non-final) segment
// ends the log there — the torn segment keeps its committed prefix and every
// later segment is discarded, because a log is only meaningful up to its
// first hole.
func TestTornEarlierSegmentDropsSuffix(t *testing.T) {
	const nOps = 200
	dir, _, _ := tornFixture(t, nOps, Options{Fsync: FsyncOff, SegmentBytes: 1024})
	segs := listFiles(t, dir, "wal-")
	if len(segs) < 3 {
		t.Fatalf("fixture produced %d segments, want >= 3", len(segs))
	}
	victim := filepath.Join(dir, segs[len(segs)-2])
	cut := lastRecordOffset(t, victim) + 3 // mid-record tear
	if err := os.Truncate(victim, cut); err != nil {
		t.Fatal(err)
	}

	ix, st := recoverDir(t, dir)
	if st.DroppedSegments != 1 {
		t.Errorf("DroppedSegments = %d, want 1", st.DroppedSegments)
	}
	// The recovered edge set must equal applyOps(k) for some op count k: the
	// committed prefix up to the tear. Find it by replaying forward.
	if k := matchPrefix(t, ix, nOps); k < 0 {
		t.Fatalf("recovered index matches no committed prefix")
	} else if k == nOps {
		t.Fatalf("tear dropped nothing")
	}
}

// matchPrefix returns the op count k (0..max) whose applyOps result equals
// ix's edges, or -1 if none matches.
func matchPrefix(t *testing.T, ix *aindex.Index, max int) int {
	t.Helper()
	got := ix.Edges()
	probe := aindex.New()
	if edgesEqual(probe.Edges(), got) {
		return 0
	}
	for i := 0; i < max; i++ {
		doOp(t, probe, i)
		if edgesEqual(probe.Edges(), got) {
			return i + 1
		}
	}
	return -1
}

func edgesEqual(a, b []core.PRelation) bool { return reflect.DeepEqual(a, b) }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
