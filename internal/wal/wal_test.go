package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

func gk(s string) core.GlobalKey { return core.MustParseGlobalKey(s) }

// rel derives a deterministic p-relation from an op number. The target keys
// collide (i%13) so identity closure fires during replay, exercising the
// OpInsert path where recovery re-derives closure edges rather than reading
// them from the log.
func rel(i int) core.PRelation {
	from := gk(fmt.Sprintf("pg.users.u%d", i))
	to := gk(fmt.Sprintf("mongo.profiles.p%d", i%13))
	typ := core.Identity
	if i%3 == 1 {
		typ = core.Matching
	}
	return core.PRelation{From: from, To: to, Type: typ, Prob: 0.5 + float64(i%50)/100}
}

// applyOps replays ops 0..n-1 of the deterministic workload into a fresh
// index: inserts, with every 10th op removing the object inserted 5 ops ago.
func applyOps(t testing.TB, n int) *aindex.Index {
	t.Helper()
	ix := aindex.New()
	for i := 0; i < n; i++ {
		doOp(t, ix, i)
	}
	return ix
}

func doOp(t testing.TB, ix *aindex.Index, i int) {
	t.Helper()
	if i%10 == 9 {
		ix.RemoveObject(rel(i - 5).From)
		return
	}
	if err := ix.Insert(rel(i)); err != nil {
		t.Fatalf("insert op %d: %v", i, err)
	}
}

func wantEdges(t testing.TB, got *aindex.Index, want *aindex.Index, msg string) {
	t.Helper()
	g, w := got.Edges(), want.Edges()
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: edge lists differ: got %d edges %v, want %d edges %v", msg, len(g), g, len(w), w)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []aindex.JournalOp{
		{Kind: aindex.OpInsert, Rel: rel(0)},
		{Kind: aindex.OpInsertRaw, Rel: rel(1)},
		{Kind: aindex.OpRemove, Key: gk("pg.users.u0")},
	}
	frame := appendBatch(nil, 42, ops)
	b, err := parseBatch(frame[frameOverhead:])
	if err != nil {
		t.Fatalf("parseBatch: %v", err)
	}
	if b.epoch != 42 || !reflect.DeepEqual(b.ops, ops) {
		t.Fatalf("round trip mismatch: %+v", b)
	}

	hdr := appendHeader(nil, 7)
	base, err := parseHeader(hdr[frameOverhead:])
	if err != nil || base != 7 {
		t.Fatalf("header round trip: base=%d err=%v", base, err)
	}
}

func TestParseBatchRejectsCorruptOps(t *testing.T) {
	cases := []struct {
		name string
		ops  []aindex.JournalOp
	}{
		{"nan prob", []aindex.JournalOp{{Kind: aindex.OpInsert, Rel: core.PRelation{
			From: gk("a.b.1"), To: gk("a.b.2"), Type: core.Identity, Prob: nan()}}}},
		{"bad type", []aindex.JournalOp{{Kind: aindex.OpInsert, Rel: core.PRelation{
			From: gk("a.b.1"), To: gk("a.b.2"), Type: core.RelType(9), Prob: 0.5}}}},
		{"unknown kind", []aindex.JournalOp{{Kind: aindex.OpKind(99)}}},
	}
	for _, tc := range cases {
		frame := appendBatch(nil, 1, tc.ops)
		if _, err := parseBatch(frame[frameOverhead:]); err == nil {
			t.Errorf("%s: parseBatch accepted a corrupt op", tc.name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// seedManager opens a fresh manager in dir and seeds it with an empty index.
func seedManager(t testing.TB, dir string, opts Options) *Manager {
	t.Helper()
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if m.Recovered() {
		t.Fatalf("fresh dir claims recovery")
	}
	if err := m.Seed(aindex.New()); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return m
}

func TestCleanShutdownAndReopen(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncOff})
	const n = 73
	for i := 0; i < n; i++ {
		doOp(t, m.Index(), i)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if !m2.Recovered() {
		t.Fatalf("reopen did not recover")
	}
	// Clean shutdown checkpoints everything: replay should find only batches
	// at or below the fence.
	if st := m2.Recovery(); st.ReplayedBatches != 0 {
		t.Errorf("clean shutdown still replayed %d batches", st.ReplayedBatches)
	}
	// The recovered state came off stable storage: the durability watermark
	// must start at the recovered epoch, not at zero.
	if st := m2.Stats(); st.DurableEpoch != st.LastEpoch {
		t.Errorf("post-recovery durable epoch %d != last epoch %d", st.DurableEpoch, st.LastEpoch)
	}
	wantEdges(t, m2.Index(), applyOps(t, n), "clean reopen")

	// The recovered index must keep journaling: mutate, close, reopen again.
	for i := n; i < n+20; i++ {
		doOp(t, m2.Index(), i)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
	m3, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen 2: %v", err)
	}
	defer m3.Close()
	wantEdges(t, m3.Index(), applyOps(t, n+20), "second reopen")
}

func TestAbortReplaysTail(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncOff})
	const n = 57
	for i := 0; i < n; i++ {
		doOp(t, m.Index(), i)
	}
	m.Abort() // no final checkpoint: reopen must replay the whole tail

	m2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	st := m2.Recovery()
	if st.ReplayedBatches == 0 {
		t.Fatalf("abort reopen replayed nothing: %+v", st)
	}
	wantEdges(t, m2.Index(), applyOps(t, n), "abort reopen")
}

func TestMidRunCheckpointFencesReplay(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncOff})
	for i := 0; i < 30; i++ {
		doOp(t, m.Index(), i)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 30; i < 50; i++ {
		doOp(t, m.Index(), i)
	}
	m.Abort()

	m2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	st := m2.Recovery()
	// Exactly the 20 post-checkpoint batches replay; the 30 earlier ones are
	// inside the checkpoint and must be skipped, because replaying an
	// already-applied insert against a mutated index is not idempotent.
	if st.ReplayedBatches != 20 {
		t.Errorf("replayed %d batches, want 20 (stats %+v)", st.ReplayedBatches, st)
	}
	wantEdges(t, m2.Index(), applyOps(t, 50), "fenced reopen")
}

func TestSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 512, RetainSegments: 1, RetainCheckpoints: 1})
	const n = 300
	for i := 0; i < n; i++ {
		doOp(t, m.Index(), i)
	}
	segsBefore := countFiles(t, dir, "wal-")
	if segsBefore < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", segsBefore)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	segsAfter := countFiles(t, dir, "wal-")
	if segsAfter >= segsBefore {
		t.Errorf("retention kept all %d segments (was %d)", segsAfter, segsBefore)
	}
	if cps := countFiles(t, dir, "checkpoint-"); cps > 1 {
		t.Errorf("retention kept %d checkpoints, want 1", cps)
	}
	m.Abort()

	m2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	wantEdges(t, m2.Index(), applyOps(t, n), "post-retention reopen")
}

func TestCheckpointOnlyDirectory(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncOff})
	for i := 0; i < 25; i++ {
		doOp(t, m.Index(), i)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Simulate an aggressive cleanup that deleted every segment but kept the
	// final checkpoint: recovery must still work from the checkpoint alone.
	for _, f := range listFiles(t, dir, "wal-") {
		os.Remove(filepath.Join(dir, f))
	}
	m2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	wantEdges(t, m2.Index(), applyOps(t, 25), "checkpoint-only reopen")
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncOff, RetainCheckpoints: 4})
	for i := 0; i < 20; i++ {
		doOp(t, m.Index(), i)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 20; i < 40; i++ {
		doOp(t, m.Index(), i)
	}
	if err := m.Close(); err != nil { // final checkpoint is the newest
		t.Fatalf("close: %v", err)
	}
	// Corrupt the newest checkpoint; recovery must fall back to the previous
	// one and replay the tail batches past its fence.
	names := listFiles(t, dir, "checkpoint-")
	newest := names[len(names)-1]
	b, err := os.ReadFile(filepath.Join(dir, newest))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, newest), b, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	st := m2.Recovery()
	if st.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", st.CorruptCheckpoints)
	}
	if st.ReplayedBatches == 0 {
		t.Errorf("fallback recovery replayed nothing")
	}
	wantEdges(t, m2.Index(), applyOps(t, 40), "fallback reopen")
}

func TestStatsSurface(t *testing.T) {
	dir := t.TempDir()
	m := seedManager(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 10; i++ {
		doOp(t, m.Index(), i)
	}
	s := m.Stats()
	if s.Appends != 10 {
		t.Errorf("Appends = %d, want 10", s.Appends)
	}
	if s.Fsync != FsyncAlways {
		t.Errorf("Fsync = %q", s.Fsync)
	}
	// fsync=always makes every batch durable immediately.
	if s.DurableEpoch != s.LastEpoch || s.LastEpoch == 0 {
		t.Errorf("DurableEpoch=%d LastEpoch=%d, want equal and nonzero", s.DurableEpoch, s.LastEpoch)
	}
	if s.Checkpoints == 0 || s.CheckpointBytes == 0 {
		t.Errorf("seed checkpoint not reflected in stats: %+v", s)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func listFiles(t testing.TB, dir, prefix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && len(e.Name()) >= len(prefix) && e.Name()[:len(prefix)] == prefix {
			out = append(out, e.Name())
		}
	}
	return out
}

func countFiles(t testing.TB, dir, prefix string) int { return len(listFiles(t, dir, prefix)) }
