package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"quepa/internal/aindex"
)

// RecoveryStats describes what crash recovery did at Open.
type RecoveryStats struct {
	// Recovered is true when Open rebuilt an index from durable state.
	Recovered bool `json:"recovered"`
	// CheckpointEpoch is the epoch fence of the checkpoint that was loaded
	// (0 when recovery started from an empty index).
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	// ReplayedBatches and ReplayedOps count the log tail applied on top of
	// the checkpoint; SkippedBatches counts batches at or below the fence.
	ReplayedBatches uint64 `json:"replayed_batches"`
	ReplayedOps     uint64 `json:"replayed_ops"`
	SkippedBatches  uint64 `json:"skipped_batches"`
	// TruncatedBytes is how much torn tail was cut off the last segment.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// DroppedSegments counts segments discarded because they sat beyond a
	// torn record (only possible after manual tampering; a crash tears at
	// most the newest segment).
	DroppedSegments int `json:"dropped_segments"`
	// CorruptCheckpoints counts checkpoint files that failed validation and
	// were skipped in favor of an older one.
	CorruptCheckpoints int `json:"corrupt_checkpoints"`
	// LastEpoch is the epoch of the newest committed batch after replay.
	LastEpoch uint64 `json:"last_epoch"`
	// Duration is the wall time recovery took.
	Duration time.Duration `json:"duration_nanos"`
}

// recover rebuilds the index from the newest valid checkpoint plus the log
// tail, truncates any torn suffix, and leaves the manager ready to append.
// Called from Open with the checkpoint epochs and segment sequence numbers
// found on disk.
func (m *Manager) recover(ckpts, segs []uint64) error {
	start := time.Now()
	m.recovery.Recovered = true

	// Newest checkpoint that passes CRC + structural validation wins; corrupt
	// ones are skipped (never fatal — the log can replay from further back).
	ix := aindex.New()
	var fence uint64
	for i := len(ckpts) - 1; i >= 0; i-- {
		loaded, epoch, err := readCheckpoint(filepath.Join(m.dir, checkpointName(ckpts[i])))
		if err != nil {
			m.recovery.CorruptCheckpoints++
			continue
		}
		ix, fence = loaded, epoch
		break
	}
	m.recovery.CheckpointEpoch = fence
	m.lastEpoch = fence

	// Replay segments in order. The first torn record ends the log: the torn
	// tail of that segment is truncated away and later segments (which cannot
	// legitimately exist past a tear) are dropped.
	torn := false
	for _, seq := range segs {
		if torn {
			os.Remove(filepath.Join(m.dir, segmentName(seq)))
			m.recovery.DroppedSegments++
			continue
		}
		baseEpoch, ok, err := m.replaySegment(ix, seq, fence)
		if err != nil {
			return err
		}
		m.segments = append(m.segments, segment{seq: seq, baseEpoch: baseEpoch})
		torn = !ok
	}

	// Reopen the last surviving segment for append, or start a new one if
	// the directory held only checkpoints.
	if n := len(m.segments); n > 0 {
		path := filepath.Join(m.dir, segmentName(m.segments[n-1].seq))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: stat segment: %w", err)
		}
		m.f = f
		m.segSize = st.Size()
	} else if err := m.openSegmentLocked(1, m.lastEpoch); err != nil {
		return err
	}

	// Future mutations must fence strictly above everything already logged;
	// replay bumps the index epoch per applied op, which may run ahead of the
	// batch fences (harmless — monotonicity is all the skip logic needs), but
	// when the tail was mostly skipped it can also lag behind.
	ix.AdvanceEpoch(m.lastEpoch)
	ix.SetJournal(m)
	m.ix = ix
	// Everything just recovered was read back from stable storage, so the
	// durability watermark starts at the recovered epoch, not at zero.
	m.durableEpoch.Store(m.lastEpoch)
	m.recovery.LastEpoch = m.lastEpoch
	m.recovery.Duration = time.Since(start)
	walReplayed.Add(m.recovery.ReplayedBatches)
	return nil
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (*aindex.Index, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return aindex.ReadSnapshot(f)
}

// replaySegment applies the committed batches of one segment with epoch >
// fence to ix. It returns the segment's header fence and ok=false when the
// segment ends in a torn record (which it truncates away). Only I/O failures
// are errors; corruption never is.
func (m *Manager) replaySegment(ix *aindex.Index, seq, fence uint64) (baseEpoch uint64, ok bool, err error) {
	path := filepath.Join(m.dir, segmentName(seq))
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()

	var off int64 // offset of the record being read
	var hdr [frameOverhead]byte
	var payload []byte
	readRecord := func() ([]byte, bool) {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil, false
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordBytes {
			return nil, false
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, false
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, false
		}
		return payload, true
	}

	// Header record first. A segment whose very header is torn contributes
	// nothing; it is truncated to zero and reused.
	p, good := readRecord()
	if good {
		baseEpoch, err = parseHeader(p)
		good = err == nil
	}
	if !good {
		return m.truncateSegment(f, path, 0, seq, fence)
	}
	off = frameOverhead + int64(len(p))

	for {
		p, good := readRecord()
		if !good {
			break
		}
		recLen := frameOverhead + int64(len(p))
		b, err := parseBatch(p)
		if err != nil {
			// CRC passed but the payload is structurally invalid: treat as
			// torn at this record, same as a checksum failure.
			break
		}
		if b.epoch <= fence {
			m.recovery.SkippedBatches++
		} else {
			if err := applyBatch(ix, b); err != nil {
				return baseEpoch, false, err
			}
			m.recovery.ReplayedBatches++
			m.recovery.ReplayedOps += uint64(len(b.ops))
			m.lastEpoch = b.epoch
		}
		off += recLen
	}

	// Did we stop at EOF exactly, or at a torn record?
	st, err := f.Stat()
	if err != nil {
		return baseEpoch, false, fmt.Errorf("wal: stat segment: %w", err)
	}
	if st.Size() == off {
		return baseEpoch, true, nil
	}
	_, ok, err = m.truncateSegment(f, path, off, seq, fence)
	return baseEpoch, ok, err
}

// truncateSegment cuts a torn tail off a segment at the given offset. A
// segment truncated to zero is rewritten with a fresh header so it stays a
// valid (empty) segment.
func (m *Manager) truncateSegment(f *os.File, path string, off int64, seq, fence uint64) (uint64, bool, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("wal: stat segment: %w", err)
	}
	m.recovery.TruncatedBytes += st.Size() - off
	if err := os.Truncate(path, off); err != nil {
		return 0, false, fmt.Errorf("wal: truncate torn segment: %w", err)
	}
	if off > 0 {
		return 0, false, nil // baseEpoch unused on this path; caller already has it
	}
	// Header itself was torn: rewrite it at the current fence.
	w, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, false, fmt.Errorf("wal: rewrite segment header: %w", err)
	}
	hdr := appendHeader(nil, m.lastEpoch)
	_, werr := w.Write(hdr)
	if serr := w.Sync(); werr == nil {
		werr = serr
	}
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 0, false, fmt.Errorf("wal: rewrite segment header: %w", werr)
	}
	return m.lastEpoch, false, nil
}

// applyBatch replays one committed batch into the index. Replay happens
// before the journal is installed, so nothing is re-logged.
func applyBatch(ix *aindex.Index, b batch) error {
	for _, op := range b.ops {
		switch op.Kind {
		case aindex.OpInsert:
			if err := ix.Insert(op.Rel); err != nil {
				return fmt.Errorf("wal: replay insert: %w", err)
			}
		case aindex.OpInsertRaw:
			if err := ix.InsertRaw(op.Rel); err != nil {
				return fmt.Errorf("wal: replay raw insert: %w", err)
			}
		case aindex.OpRemove:
			ix.RemoveObject(op.Key)
		}
	}
	return nil
}
