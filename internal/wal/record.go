// WAL record framing and batch encoding.
//
// Every record on disk is framed as
//
//	length  uint32  payload byte count
//	crc     uint32  CRC32C of the payload
//	payload length bytes
//
// with all integers little-endian. A record whose frame is incomplete or
// whose CRC does not match the payload is torn: recovery treats the first
// torn record as the end of the log and truncates it away, which is how a
// crash mid-write loses at most the uncommitted tail and never yields a
// half-applied batch.
//
// Two payload kinds exist:
//
//	'H' header  — first record of every segment: magic "QWAL", format
//	              version, and the epoch fence below which every batch of
//	              earlier segments lies (checkpoint retention uses it to
//	              decide which sealed segments a checkpoint has subsumed);
//	'B' batch   — one epoch-fenced group of index mutations, appended
//	              atomically: the epoch of the mutation that produced it and
//	              the journal ops to replay. A batch is exactly one record,
//	              so CRC framing gives batch atomicity for free.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

const (
	recHeader = 'H'
	recBatch  = 'B'

	walMagic   = "QWAL"
	walVersion = 1

	// frameOverhead is the length+CRC prefix of every record.
	frameOverhead = 8

	// maxRecordBytes bounds a single record so a corrupt length field cannot
	// drive an absurd allocation during recovery; a longer record is treated
	// as torn.
	maxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps a payload in the length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendHeader encodes a segment-header payload and frames it.
func appendHeader(dst []byte, baseEpoch uint64) []byte {
	payload := make([]byte, 0, 1+4+2+8)
	payload = append(payload, recHeader)
	payload = append(payload, walMagic...)
	payload = binary.LittleEndian.AppendUint16(payload, walVersion)
	payload = binary.LittleEndian.AppendUint64(payload, baseEpoch)
	return appendFrame(dst, payload)
}

// parseHeader decodes a segment-header payload.
func parseHeader(payload []byte) (baseEpoch uint64, err error) {
	if len(payload) != 1+4+2+8 || payload[0] != recHeader {
		return 0, fmt.Errorf("wal: malformed segment header")
	}
	if string(payload[1:5]) != walMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", payload[1:5])
	}
	if v := binary.LittleEndian.Uint16(payload[5:7]); v != walVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d", v)
	}
	return binary.LittleEndian.Uint64(payload[7:15]), nil
}

// appendBatch encodes an epoch-fenced batch payload and frames it.
func appendBatch(dst []byte, epoch uint64, ops []aindex.JournalOp) []byte {
	payload := make([]byte, 0, 16+32*len(ops))
	payload = append(payload, recBatch)
	payload = binary.LittleEndian.AppendUint64(payload, epoch)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops)))
	for _, op := range ops {
		payload = append(payload, byte(op.Kind))
		switch op.Kind {
		case aindex.OpInsert, aindex.OpInsertRaw:
			payload = appendKey(payload, op.Rel.From)
			payload = appendKey(payload, op.Rel.To)
			payload = append(payload, byte(op.Rel.Type))
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(op.Rel.Prob))
		case aindex.OpRemove:
			payload = appendKey(payload, op.Key)
		}
	}
	return appendFrame(dst, payload)
}

func appendKey(dst []byte, gk core.GlobalKey) []byte {
	s := gk.String()
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// batch is one decoded epoch-fenced batch.
type batch struct {
	epoch uint64
	ops   []aindex.JournalOp
}

// parseBatch decodes a batch payload. Every op is validated — keys must
// parse, relations must satisfy core.PRelation.Validate (which rejects NaN
// and out-of-range probabilities) — so corrupt bytes that happen to pass the
// CRC of a shorter record still cannot smuggle a bogus edge into the index.
func parseBatch(payload []byte) (batch, error) {
	var b batch
	if len(payload) < 13 || payload[0] != recBatch {
		return b, fmt.Errorf("wal: malformed batch record")
	}
	b.epoch = binary.LittleEndian.Uint64(payload[1:9])
	n := binary.LittleEndian.Uint32(payload[9:13])
	if uint64(n) > uint64(len(payload)) { // each op is at least one byte
		return b, fmt.Errorf("wal: batch claims %d ops in %d bytes", n, len(payload))
	}
	rest := payload[13:]
	b.ops = make([]aindex.JournalOp, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) == 0 {
			return b, fmt.Errorf("wal: batch truncated at op %d", i)
		}
		kind := aindex.OpKind(rest[0])
		rest = rest[1:]
		var op aindex.JournalOp
		op.Kind = kind
		var err error
		switch kind {
		case aindex.OpInsert, aindex.OpInsertRaw:
			if op.Rel.From, rest, err = readKey(rest); err != nil {
				return b, fmt.Errorf("wal: batch op %d: %w", i, err)
			}
			if op.Rel.To, rest, err = readKey(rest); err != nil {
				return b, fmt.Errorf("wal: batch op %d: %w", i, err)
			}
			if len(rest) < 9 {
				return b, fmt.Errorf("wal: batch op %d truncated", i)
			}
			op.Rel.Type = core.RelType(rest[0])
			op.Rel.Prob = math.Float64frombits(binary.LittleEndian.Uint64(rest[1:9]))
			rest = rest[9:]
			if err := op.Rel.Validate(); err != nil {
				return b, fmt.Errorf("wal: batch op %d: %w", i, err)
			}
		case aindex.OpRemove:
			if op.Key, rest, err = readKey(rest); err != nil {
				return b, fmt.Errorf("wal: batch op %d: %w", i, err)
			}
		default:
			return b, fmt.Errorf("wal: batch op %d: unknown kind %d", i, kind)
		}
		b.ops = append(b.ops, op)
	}
	if len(rest) != 0 {
		return b, fmt.Errorf("wal: %d trailing bytes after batch ops", len(rest))
	}
	return b, nil
}

func readKey(src []byte) (core.GlobalKey, []byte, error) {
	l, n := binary.Uvarint(src)
	if n <= 0 || l > uint64(len(src)-n) {
		return core.GlobalKey{}, nil, fmt.Errorf("bad key length")
	}
	gk, err := core.ParseGlobalKey(string(src[n : n+int(l)]))
	if err != nil {
		return core.GlobalKey{}, nil, err
	}
	return gk, src[n+int(l):], nil
}
