// Package wal is QUEPA's durability subsystem: a segmented write-ahead log of
// A' index mutations plus periodic checkpoints of the full index, giving the
// server a persistent mode that survives crashes.
//
// The design in one paragraph: the Manager installs itself as the index's
// aindex.Journal, so every mutation — explicit inserts, the augmenter's lazy
// deletions, path promotions, incremental-collection component swaps — is
// appended to the log as one CRC-framed batch record carrying the mutation's
// snapshot epoch, from inside the index write critical section (log order is
// application order). Checkpoints persist the canonical edge list in the
// versioned binary snapshot format of internal/aindex/persist.go, stamped
// with the epoch read atomically with the edges. Recovery loads the newest
// valid checkpoint, replays exactly the log batches with epoch greater than
// the checkpoint's fence, truncates the log at the first torn record, and
// advances the index epoch past everything replayed — so a crash at any
// instant recovers the index to the last committed batch, never to a
// half-applied one.
//
// Durability knobs follow the usual WAL taxonomy: fsync "always" syncs the
// segment after every batch (group-commit-free, slow, zero loss), "interval"
// syncs on a background ticker (bounded loss window), "off" leaves syncing to
// the OS (crash-consistent but lossy). Segments rotate at a size threshold;
// checkpoints render older segments dead weight, and retention deletes
// segments wholly below the newest checkpoint's fence, keeping a configurable
// safety margin.
package wal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/telemetry"
)

// Fsync policies.
const (
	// FsyncInterval syncs the active segment on a background ticker
	// (Options.FsyncEvery). Crash loss is bounded by the interval.
	FsyncInterval = "interval"
	// FsyncAlways syncs after every appended batch. No committed mutation is
	// ever lost, at the cost of one fsync per mutation.
	FsyncAlways = "always"
	// FsyncOff never syncs explicitly; the OS flushes when it pleases.
	FsyncOff = "off"
)

// ParseFsyncPolicy validates a -fsync flag value.
func ParseFsyncPolicy(s string) (string, error) {
	switch s {
	case FsyncInterval, FsyncAlways, FsyncOff:
		return s, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want %s, %s or %s)",
		s, FsyncAlways, FsyncInterval, FsyncOff)
}

// Options configures a Manager. The zero value is usable: interval fsync
// every 100ms, 8 MiB segments, two retained sealed segments and checkpoints.
type Options struct {
	// Fsync is the sync policy: FsyncAlways, FsyncInterval or FsyncOff.
	Fsync string
	// FsyncEvery is the FsyncInterval ticker period.
	FsyncEvery time.Duration
	// SegmentBytes rotates the active segment once it grows past this size.
	SegmentBytes int64
	// RetainSegments is how many sealed segments already subsumed by a
	// checkpoint are kept anyway, as a safety margin against a corrupt
	// checkpoint. Fully live segments are never deleted.
	RetainSegments int
	// RetainCheckpoints is how many checkpoint files are kept; older ones are
	// deleted after a new checkpoint lands.
	RetainCheckpoints int
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.RetainSegments <= 0 {
		o.RetainSegments = 2
	}
	if o.RetainCheckpoints <= 0 {
		o.RetainCheckpoints = 2
	}
	return o
}

var (
	walAppends = telemetry.NewCounter("quepa_wal_appends_total",
		"Batch records appended to the write-ahead log.")
	walAppendBytes = telemetry.NewCounter("quepa_wal_append_bytes_total",
		"Bytes appended to the write-ahead log.")
	walErrors = telemetry.NewCounter("quepa_wal_errors_total",
		"Write or sync failures on the write-ahead log.")
	walFsync = telemetry.NewHistogram("quepa_wal_fsync_seconds",
		"Latency of fsync calls on the active WAL segment.", nil)
	walReplayed = telemetry.NewCounter("quepa_recovery_replayed_records_total",
		"WAL batch records replayed during crash recovery.")
	walCheckpoints = telemetry.NewCounter("quepa_checkpoints_total",
		"Checkpoint snapshots written.")
	walCheckpointDur = telemetry.NewHistogram("quepa_checkpoint_duration_seconds",
		"Wall time of checkpoint writes.", nil)
)

// segment is one log file, identified by its ascending sequence number and
// the epoch fence recorded in its header: every batch in earlier segments has
// epoch <= baseEpoch, every batch in this segment has epoch > baseEpoch.
type segment struct {
	seq       uint64
	baseEpoch uint64
}

func segmentName(seq uint64) string      { return fmt.Sprintf("wal-%016d.log", seq) }
func checkpointName(epoch uint64) string { return fmt.Sprintf("checkpoint-%016x.ckpt", epoch) }

// Manager owns a data directory: the segmented log, the checkpoint files and
// the journal hook into one A' index. It is safe for concurrent use; Log is
// additionally serialized by the index write lock that all callers hold.
type Manager struct {
	dir  string
	opts Options
	ix   *aindex.Index

	mu        sync.Mutex // guards the fields below
	f         *os.File   // active segment
	segments  []segment  // ascending by seq; last is the active one
	segSize   int64
	lastEpoch uint64 // epoch of the newest appended batch (or the seed fence)
	dirty     bool   // unsynced bytes in the active segment
	scratch   []byte
	closed    bool
	err       error // first write/sync failure; sticky

	durableEpoch atomic.Uint64 // newest epoch known to be on stable storage
	appends      atomic.Uint64
	appendBytes  atomic.Uint64

	ckptMu        sync.Mutex // serializes checkpoint writes
	ckptCount     atomic.Uint64
	ckptEpoch     atomic.Uint64
	ckptLastNanos atomic.Int64
	ckptLastBytes atomic.Int64

	recovery RecoveryStats

	stopOnce  sync.Once
	stopFsync chan struct{}
	fsyncDone chan struct{}
}

// Open attaches to a data directory, creating it if needed. If the directory
// holds a previous incarnation's checkpoints or log segments, Open recovers
// the index from them (Recovered reports true and Index returns the rebuilt
// index, already journaled). On a fresh directory the Manager starts empty
// and the caller must Seed it with an index before mutations flow.
func Open(dir string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	m := &Manager{
		dir:       dir,
		opts:      opts,
		stopFsync: make(chan struct{}),
		fsyncDone: make(chan struct{}),
	}
	ckpts, segs, err := m.scanDir()
	if err != nil {
		return nil, err
	}
	if len(ckpts) == 0 && len(segs) == 0 {
		close(m.fsyncDone) // no loop running yet; Seed starts it
		return m, nil
	}
	if err := m.recover(ckpts, segs); err != nil {
		return nil, err
	}
	m.startFsyncLoop()
	return m, nil
}

// scanDir lists checkpoint epochs (ascending) and segments (ascending by
// sequence number) present in the data directory.
func (m *Manager) scanDir() (ckpts []uint64, segs []uint64, err error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(e.Name(), "checkpoint-%016x.ckpt", &v); err == nil && e.Name() == checkpointName(v) {
			ckpts = append(ckpts, v)
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "wal-%016d.log", &v); err == nil && e.Name() == segmentName(v) {
			segs = append(segs, v)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

// Seed adopts ix as the durable index of a fresh data directory: it writes an
// initial checkpoint at the index's current epoch, opens the first log
// segment and installs the journal. It is an error to Seed a Manager that
// recovered existing state.
func (m *Manager) Seed(ix *aindex.Index) error {
	m.mu.Lock()
	if m.ix != nil {
		m.mu.Unlock()
		return fmt.Errorf("wal: data dir %s already holds an index", m.dir)
	}
	m.ix = ix
	_, epoch := ix.EdgesWithEpoch()
	m.lastEpoch = epoch
	if err := m.openSegmentLocked(1, epoch); err != nil {
		m.ix = nil
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	if err := m.Checkpoint(); err != nil {
		return err
	}
	// The seed state is checkpointed (and the checkpoint fsynced), so the
	// durability watermark starts at the seed epoch.
	m.durableEpoch.Store(epoch)
	ix.SetJournal(m)
	m.fsyncDone = make(chan struct{}) // Open closed the idle one on the fresh-dir path
	m.startFsyncLoop()
	return nil
}

// openSegmentLocked creates segment seq with the given epoch fence and makes
// it the active file. Caller holds m.mu.
func (m *Manager) openSegmentLocked(seq, baseEpoch uint64) error {
	f, err := os.OpenFile(filepath.Join(m.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := appendHeader(nil, baseEpoch)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	m.f = f
	m.segSize = int64(len(hdr))
	m.segments = append(m.segments, segment{seq: seq, baseEpoch: baseEpoch})
	return nil
}

// Index returns the index this manager journals (nil before Seed on a fresh
// directory).
func (m *Manager) Index() *aindex.Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ix
}

// Recovered reports whether Open rebuilt an index from existing durable
// state.
func (m *Manager) Recovered() bool { return m.recovery.Recovered }

// Recovery returns the statistics of the recovery Open performed (zero value
// when the directory was fresh).
func (m *Manager) Recovery() RecoveryStats { return m.recovery }

// Err returns the first write or sync failure the log has hit, if any. The
// journal interface cannot return errors to mutators, so failures are sticky
// and surfaced here (and in /healthz).
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Log implements aindex.Journal: append one epoch-fenced batch. It runs
// inside the index write critical section, so batches land in application
// order with strictly increasing epochs.
func (m *Manager) Log(ops []aindex.JournalOp, epoch uint64) {
	m.LogCtx(context.Background(), ops, epoch)
}

// LogCtx implements aindex.ContextJournal: like Log, but when the mutating
// request is traced, the append (and, under fsync=always, the fsync) appears
// as spans inside that request's trace — a durability stall is attributed to
// the request that paid for it. Untraced contexts cost nothing extra.
func (m *Manager) LogCtx(ctx context.Context, ops []aindex.JournalOp, epoch uint64) {
	var sp *telemetry.Span
	sctx := ctx
	if telemetry.SpanFromContext(ctx) != nil {
		sctx, sp = telemetry.StartSpan(ctx, "wal.append")
		sp.SetAttr("ops", strconv.Itoa(len(ops)))
		defer sp.End()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.err != nil || m.f == nil {
		return
	}
	m.scratch = appendBatch(m.scratch[:0], epoch, ops)
	n, err := m.f.Write(m.scratch)
	if err != nil {
		m.err = fmt.Errorf("wal: append: %w", err)
		walErrors.Inc()
		sp.Mark(telemetry.FlagError)
		return
	}
	m.segSize += int64(n)
	m.lastEpoch = epoch
	m.dirty = true
	m.appends.Add(1)
	m.appendBytes.Add(uint64(n))
	walAppends.Inc()
	walAppendBytes.Add(uint64(n))
	if m.opts.Fsync == FsyncAlways {
		if sp != nil {
			_, fsp := telemetry.StartSpan(sctx, "wal.fsync")
			m.syncLocked()
			if m.err != nil {
				fsp.Mark(telemetry.FlagError)
			}
			fsp.End()
		} else {
			m.syncLocked()
		}
	}
	if m.segSize >= m.opts.SegmentBytes {
		m.rotateLocked()
	}
}

// syncLocked fsyncs the active segment and advances the durable epoch.
// Caller holds m.mu.
func (m *Manager) syncLocked() {
	if !m.dirty || m.f == nil {
		return
	}
	start := time.Now()
	if err := m.f.Sync(); err != nil {
		m.err = fmt.Errorf("wal: fsync: %w", err)
		walErrors.Inc()
		return
	}
	walFsync.Observe(time.Since(start))
	m.dirty = false
	m.durableEpoch.Store(m.lastEpoch)
}

// rotateLocked seals the active segment (syncing it regardless of policy —
// sealed segments are always durable) and opens the next one. Caller holds
// m.mu.
func (m *Manager) rotateLocked() {
	m.syncLocked()
	if m.err != nil {
		return
	}
	if err := m.f.Close(); err != nil {
		m.err = fmt.Errorf("wal: seal segment: %w", err)
		walErrors.Inc()
		return
	}
	next := m.segments[len(m.segments)-1].seq + 1
	if err := m.openSegmentLocked(next, m.lastEpoch); err != nil {
		m.f = nil
		m.err = err
		walErrors.Inc()
	}
}

func (m *Manager) startFsyncLoop() {
	if m.opts.Fsync != FsyncInterval {
		close(m.fsyncDone)
		return
	}
	go func() {
		defer close(m.fsyncDone)
		t := time.NewTicker(m.opts.FsyncEvery)
		defer t.Stop()
		for {
			select {
			case <-m.stopFsync:
				return
			case <-t.C:
				m.mu.Lock()
				if !m.closed {
					m.syncLocked()
				}
				m.mu.Unlock()
			}
		}
	}()
}

// Checkpoint writes a snapshot of the index's current canonical edge list,
// stamped with the epoch fence read atomically with it, then prunes
// checkpoints and sealed segments the new checkpoint has subsumed. Safe to
// call concurrently with mutations; concurrent Checkpoint calls serialize.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	ix := m.Index()
	if ix == nil {
		return fmt.Errorf("wal: checkpoint before seed")
	}
	// Read edges+epoch BEFORE taking m.mu: EdgesWithEpoch takes the index
	// read lock, and Log runs under the index write lock while wanting m.mu —
	// taking them in the opposite order here would deadlock.
	edges, epoch := ix.EdgesWithEpoch()
	// Checkpoints run in the background, so the span is its own (usually
	// fast, therefore sampled-or-dropped) root trace; a stalling checkpoint
	// crosses the slow threshold and surfaces on its own.
	_, sp := telemetry.StartSpan(context.Background(), "wal.checkpoint")
	sp.SetAttr("epoch", strconv.FormatUint(epoch, 10))
	defer sp.End()
	start := time.Now()
	tmp := filepath.Join(m.dir, "checkpoint.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	n, err := aindex.WriteSnapshot(f, edges, epoch)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(m.dir, checkpointName(epoch)))
	}
	if err == nil {
		err = syncDir(m.dir)
	}
	if err != nil {
		os.Remove(tmp)
		walErrors.Inc()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	walCheckpoints.Inc()
	walCheckpointDur.Observe(time.Since(start))
	m.ckptCount.Add(1)
	m.ckptEpoch.Store(epoch)
	m.ckptLastNanos.Store(int64(time.Since(start)))
	m.ckptLastBytes.Store(n)
	m.prune(epoch)
	return nil
}

// prune deletes checkpoints beyond the retention count and sealed segments
// wholly subsumed by the checkpoint at ckptEpoch (keeping RetainSegments of
// them as a margin).
func (m *Manager) prune(ckptEpoch uint64) {
	ckpts, _, err := m.scanDir()
	if err == nil && len(ckpts) > m.opts.RetainCheckpoints {
		for _, e := range ckpts[:len(ckpts)-m.opts.RetainCheckpoints] {
			os.Remove(filepath.Join(m.dir, checkpointName(e)))
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Segment i (sealed) is dead once the NEXT segment's fence is <= the
	// checkpoint epoch: then every batch of segment i has epoch <= fence <=
	// ckptEpoch and replay would skip all of them.
	dead := 0
	for i := 0; i+1 < len(m.segments); i++ {
		if m.segments[i+1].baseEpoch <= ckptEpoch {
			dead = i + 1
		} else {
			break
		}
	}
	dead -= m.opts.RetainSegments
	if dead <= 0 {
		return
	}
	for _, s := range m.segments[:dead] {
		os.Remove(filepath.Join(m.dir, segmentName(s.seq)))
	}
	m.segments = append(m.segments[:0], m.segments[dead:]...)
}

// Close shuts the durability pipeline down cleanly: detach the journal (so
// no mutation races the teardown), stop the fsync loop, sync the final
// segment, write a final checkpoint and close the file. The caller is
// responsible for draining mutators first (the server does so via HTTP
// Shutdown before calling Close).
func (m *Manager) Close() error {
	m.mu.Lock()
	ix := m.ix
	m.mu.Unlock()
	if ix != nil {
		ix.SetJournal(nil)
	}
	m.stopOnce.Do(func() { close(m.stopFsync) })
	<-m.fsyncDone
	var ckptErr error
	if ix != nil {
		ckptErr = m.Checkpoint()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ckptErr
	}
	m.closed = true
	m.syncLocked()
	if m.f != nil {
		if err := m.f.Close(); err != nil && m.err == nil {
			m.err = err
		}
		m.f = nil
	}
	if ckptErr != nil {
		return ckptErr
	}
	return m.err
}

// Abort simulates a crash for tests and the recovery benchmark: it detaches
// the journal and closes the segment file WITHOUT a final sync or checkpoint,
// leaving the directory exactly as a SIGKILL would (modulo what the OS had
// already flushed — on the same machine the page cache still holds the
// writes, which models kill-the-process rather than pull-the-plug).
func (m *Manager) Abort() {
	m.mu.Lock()
	ix := m.ix
	m.mu.Unlock()
	if ix != nil {
		ix.SetJournal(nil)
	}
	m.stopOnce.Do(func() { close(m.stopFsync) })
	<-m.fsyncDone
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
}

// Stats is a point-in-time snapshot of the durability pipeline, rendered
// into /stats and the bench harness.
type Stats struct {
	Dir             string        `json:"dir"`
	Fsync           string        `json:"fsync"`
	Segments        int           `json:"segments"`
	SegmentBytes    int64         `json:"active_segment_bytes"`
	Appends         uint64        `json:"appends"`
	AppendedBytes   uint64        `json:"appended_bytes"`
	LastEpoch       uint64        `json:"last_epoch"`
	DurableEpoch    uint64        `json:"durable_epoch"`
	Checkpoints     uint64        `json:"checkpoints"`
	CheckpointEpoch uint64        `json:"checkpoint_epoch"`
	CheckpointBytes int64         `json:"last_checkpoint_bytes"`
	CheckpointTime  time.Duration `json:"last_checkpoint_nanos"`
	Err             string        `json:"error,omitempty"`
	Recovery        RecoveryStats `json:"recovery"`
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Dir:          m.dir,
		Fsync:        m.opts.Fsync,
		Segments:     len(m.segments),
		SegmentBytes: m.segSize,
		LastEpoch:    m.lastEpoch,
	}
	if m.err != nil {
		s.Err = m.err.Error()
	}
	m.mu.Unlock()
	s.Appends = m.appends.Load()
	s.AppendedBytes = m.appendBytes.Load()
	s.DurableEpoch = m.durableEpoch.Load()
	s.Checkpoints = m.ckptCount.Load()
	s.CheckpointEpoch = m.ckptEpoch.Load()
	s.CheckpointBytes = m.ckptLastBytes.Load()
	s.CheckpointTime = time.Duration(m.ckptLastNanos.Load())
	s.Recovery = m.recovery
	return s
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
