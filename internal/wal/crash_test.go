package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"quepa/internal/aindex"
)

// TestCrashRecovery SIGKILLs a writer process mid-load and verifies that
// recovery reproduces the index of some committed prefix of the workload.
//
// The test re-execs its own binary: the child (selected by the environment
// variable) opens a WAL with fsync=always, seeds an empty index and applies
// the deterministic doOp workload, printing "committed <i>" after each op
// returns — with fsync=always, an op that returned is durable. The parent
// reads those lines, kills the child with SIGKILL at an arbitrary point,
// recovers the directory and checks that the recovered edge set equals
// applyOps(k) for some k >= the highest commit it observed (the child may
// have committed a few more ops than the parent managed to read).
func TestCrashRecovery(t *testing.T) {
	if dir := os.Getenv("QUEPA_WAL_CRASH_CHILD"); dir != "" {
		crashChild(dir)
		return // unreachable; crashChild exits
	}
	if testing.Short() {
		t.Skip("crash test re-execs the test binary; skipped in -short")
	}

	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestCrashRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), "QUEPA_WAL_CRASH_CHILD="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read commit confirmations until we have seen enough, then pull the
	// trigger. The exact kill point is arbitrary by design.
	seen := -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		v, ok := strings.CutPrefix(line, "committed ")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad commit line %q", line)
		}
		seen = n
		if seen >= 40 {
			break
		}
	}
	if seen < 0 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child produced no commits (scanner err %v)", sc.Err())
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer m.Close()
	if !m.Recovered() {
		t.Fatal("nothing recovered after SIGKILL")
	}
	k := matchPrefix(t, m.Index(), seen+5000)
	if k < 0 {
		t.Fatalf("recovered index matches no committed prefix (saw commit %d, stats %+v)",
			seen, m.Recovery())
	}
	if k < seen+1 { // commit i durable => ops 0..i all recovered
		t.Fatalf("recovery lost committed ops: matches prefix %d, but child confirmed op %d", k, seen)
	}
	t.Logf("killed after commit %d; recovered prefix %d (stats %+v)", seen, k, m.Recovery())
}

// crashChild is the re-exec'd writer. It never returns.
func crashChild(dir string) {
	m, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := m.Seed(aindex.New()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ix := m.Index()
	w := bufio.NewWriter(os.Stdout)
	for i := 0; i < 200000; i++ {
		childOp(ix, i)
		if err := m.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(w, "committed %d\n", i)
		w.Flush()
	}
	// Ran off the end without being killed; linger so the parent's kill still
	// lands on a live process.
	time.Sleep(time.Minute)
	os.Exit(0)
}

// childOp mirrors doOp without the testing.TB plumbing.
func childOp(ix *aindex.Index, i int) {
	if i%10 == 9 {
		ix.RemoveObject(rel(i - 5).From)
		return
	}
	if err := ix.Insert(rel(i)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
