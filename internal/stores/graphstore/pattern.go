package graphstore

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file adds two-node edge patterns to the query language:
//
//	MATCH (a:Label1)-[:TYPE]->(b:Label2) [WHERE conds] RETURN a|b [LIMIT n]
//
// Edges are traversed in their stored direction. Conditions may reference
// both pattern variables (a.prop = 'x' AND b.weighted > 3). The RETURN
// variable selects which endpoint's nodes come back, de-duplicated in
// match order. This covers the marketing department's recommendation
// queries ("items similar to items matching ...") natively.

var edgePatternRE = regexp.MustCompile(
	`(?i)^\s*MATCH\s*\(\s*(\w+)\s*:\s*([\w-]+)\s*\)\s*-\s*\[\s*:\s*([\w-]+)\s*\]\s*->\s*\(\s*(\w+)\s*:\s*([\w-]+)\s*\)\s*(?:WHERE\s+(.*?)\s+)?RETURN\s+(\w+)\s*(?:LIMIT\s+(\d+)\s*)?$`)

// edgePattern is a parsed two-node pattern query.
type edgePattern struct {
	srcVar, srcLabel string
	edgeType         string
	dstVar, dstLabel string
	conds            map[string]conditions // variable -> its conditions
	returnVar        string
	limit            int
}

// parseEdgePattern parses the two-node form; ok is false when the query is
// not an edge pattern at all (callers then try the other forms).
func parseEdgePattern(q string) (*edgePattern, bool, error) {
	m := edgePatternRE.FindStringSubmatch(q)
	if m == nil {
		return nil, false, nil
	}
	p := &edgePattern{
		srcVar: m[1], srcLabel: m[2],
		edgeType: m[3],
		dstVar:   m[4], dstLabel: m[5],
		returnVar: m[7],
		limit:     -1,
		conds:     map[string]conditions{},
	}
	if p.srcVar == p.dstVar {
		return nil, true, fmt.Errorf("graphstore: pattern variables must differ, both are %q", p.srcVar)
	}
	if p.returnVar != p.srcVar && p.returnVar != p.dstVar {
		return nil, true, fmt.Errorf("graphstore: RETURN variable %q is not a pattern variable", p.returnVar)
	}
	if m[8] != "" {
		p.limit, _ = strconv.Atoi(m[8])
	}
	whereClause := strings.TrimSpace(m[6])
	if whereClause != "" {
		for _, part := range splitAnd(whereClause) {
			cm := condRE.FindStringSubmatch(strings.TrimSpace(part))
			if cm == nil {
				return nil, true, fmt.Errorf("graphstore: malformed condition %q", part)
			}
			if cm[1] != p.srcVar && cm[1] != p.dstVar {
				return nil, true, fmt.Errorf("graphstore: condition variable %q is not a pattern variable", cm[1])
			}
			val := strings.TrimSpace(cm[4])
			if len(val) >= 2 && val[0] == '\'' && val[len(val)-1] == '\'' {
				val = val[1 : len(val)-1]
			}
			p.conds[cm[1]] = append(p.conds[cm[1]], condition{prop: cm[2], op: strings.ToUpper(cm[3]), value: val})
		}
	}
	return p, true, nil
}

// queryEdgePattern executes a parsed edge pattern.
func (s *Store) queryEdgePattern(p *edgePattern) ([]*Node, error) {
	s.roundTrips.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()

	seen := map[string]bool{}
	var out []*Node
	for _, srcID := range s.byLabel[p.srcLabel] {
		src := s.nodes[srcID]
		if ok, err := p.conds[p.srcVar].eval(src); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		for _, e := range s.out[srcID] {
			if e.Type != p.edgeType {
				continue
			}
			dst := s.nodes[e.To]
			if dst.Label != p.dstLabel {
				continue
			}
			if ok, err := p.conds[p.dstVar].eval(dst); err != nil {
				return nil, err
			} else if !ok {
				continue
			}
			result := src
			if p.returnVar == p.dstVar {
				result = dst
			}
			if seen[result.ID] {
				continue
			}
			seen[result.ID] = true
			out = append(out, result)
			if p.limit >= 0 && len(out) >= p.limit {
				return out, nil
			}
		}
	}
	return out, nil
}
