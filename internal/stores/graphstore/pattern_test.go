package graphstore

import "testing"

// recommendation graph: genres + similarity edges, directed.
func newRecommendGraph(t *testing.T) *Store {
	t.Helper()
	s := New("similar-items")
	nodes := []struct {
		id, genre, year string
	}{
		{"n1", "rock", "1992"},
		{"n2", "rock", "1989"},
		{"n3", "electronic", "1997"},
		{"n4", "triphop", "1994"},
		{"p1", "", ""}, // different label
	}
	for _, n := range nodes {
		label := "items"
		if n.id == "p1" {
			label = "people"
		}
		if err := s.AddNode(n.id, label, map[string]string{"genre": n.genre, "year": n.year}); err != nil {
			t.Fatal(err)
		}
	}
	add := func(from, to, typ string) {
		t.Helper()
		if err := s.AddEdge(from, to, typ, nil); err != nil {
			t.Fatal(err)
		}
	}
	add("n1", "n2", "SIMILAR")
	add("n1", "n3", "SIMILAR")
	add("n2", "n4", "SIMILAR")
	add("n3", "n4", "BOUGHT_WITH")
	add("n1", "p1", "SIMILAR") // cross-label edge: filtered by dst label
	return s
}

func TestEdgePatternBasic(t *testing.T) {
	s := newRecommendGraph(t)
	out, err := s.Query(`MATCH (a:items)-[:SIMILAR]->(b:items) RETURN b`)
	if err != nil {
		t.Fatal(err)
	}
	// n2, n3 (from n1), n4 (from n2); p1 excluded by label.
	if len(out) != 3 {
		t.Fatalf("pattern returned %d nodes: %v", len(out), ids(out))
	}
}

func ids(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

func TestEdgePatternConditionsOnBothVars(t *testing.T) {
	s := newRecommendGraph(t)
	out, err := s.Query(`MATCH (a:items)-[:SIMILAR]->(b:items) WHERE a.genre = 'rock' AND b.year > 1990 RETURN b`)
	if err != nil {
		t.Fatal(err)
	}
	// a in {n1, n2}; b with year > 1990: n3 (1997), n4 (1994). n2 (1989) out.
	if len(out) != 2 {
		t.Fatalf("conditioned pattern = %v", ids(out))
	}
	// Return the source side instead.
	out, err = s.Query(`MATCH (a:items)-[:SIMILAR]->(b:items) WHERE b.genre = 'triphop' RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "n2" {
		t.Errorf("source-return pattern = %v", ids(out))
	}
}

func TestEdgePatternTypeAndLimit(t *testing.T) {
	s := newRecommendGraph(t)
	out, err := s.Query(`MATCH (a:items)-[:BOUGHT_WITH]->(b:items) RETURN b`)
	if err != nil || len(out) != 1 || out[0].ID != "n4" {
		t.Errorf("typed pattern = %v, %v", ids(out), err)
	}
	out, err = s.Query(`MATCH (a:items)-[:SIMILAR]->(b:items) RETURN b LIMIT 1`)
	if err != nil || len(out) != 1 {
		t.Errorf("limited pattern = %v, %v", ids(out), err)
	}
}

func TestEdgePatternDedup(t *testing.T) {
	s := newRecommendGraph(t)
	// n4 is reachable once; add a second path to it.
	s.AddEdge("n3", "n4", "SIMILAR", nil)
	out, err := s.Query(`MATCH (a:items)-[:SIMILAR]->(b:items) WHERE b.genre = 'triphop' RETURN b`)
	if err != nil || len(out) != 1 {
		t.Errorf("dedup failed: %v, %v", ids(out), err)
	}
}

func TestEdgePatternErrors(t *testing.T) {
	s := newRecommendGraph(t)
	for _, q := range []string{
		`MATCH (a:items)-[:SIMILAR]->(a:items) RETURN a`,                 // same variable twice
		`MATCH (a:items)-[:SIMILAR]->(b:items) RETURN c`,                 // unknown return var
		`MATCH (a:items)-[:SIMILAR]->(b:items) WHERE c.x = '1' RETURN a`, // unknown cond var
		`MATCH (a:items)-[:SIMILAR]->(b:items) WHERE nonsense RETURN a`,
	} {
		if _, err := s.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestClassifyQueryPattern(t *testing.T) {
	kind, ok := ClassifyQuery(`MATCH (a:items)-[:SIMILAR]->(b:items) RETURN b`)
	if !ok || kind != "pattern" {
		t.Errorf("ClassifyQuery = %q, %v", kind, ok)
	}
}

func TestEdgePatternDirectionality(t *testing.T) {
	s := newRecommendGraph(t)
	// n2 -> n4 exists; the reverse direction must not match.
	out, err := s.Query(`MATCH (a:items)-[:SIMILAR]->(b:items) WHERE a.genre = 'triphop' RETURN b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("reverse direction matched: %v", ids(out))
	}
}
