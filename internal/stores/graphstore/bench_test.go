package graphstore

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, nodes, edgesPerNode int) *Store {
	b.Helper()
	s := New("bench")
	for i := 0; i < nodes; i++ {
		if err := s.AddNode(fmt.Sprintf("n%d", i), "items", map[string]string{
			"seq": fmt.Sprintf("%d", i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < nodes; i++ {
		for e := 0; e < edgesPerNode; e++ {
			j := rng.Intn(nodes)
			if j != i {
				s.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j), "SIMILAR", nil)
			}
		}
	}
	return s
}

func BenchmarkNeighborsLookup(b *testing.B) {
	s := benchGraph(b, 5000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Neighbors(fmt.Sprintf("n%d", i%5000), ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchScan(b *testing.B) {
	s := benchGraph(b, 5000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(`MATCH (n:items) WHERE n.seq < 100 RETURN n`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetNodes(b *testing.B) {
	s := benchGraph(b, 5000, 1)
	ids := make([]string, 100)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i*41%5000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.GetNodes(ids); len(got) != 100 {
			b.Fatal("short read")
		}
	}
}
