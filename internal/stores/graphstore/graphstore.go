// Package graphstore implements an embedded property-graph store with a
// small Cypher-like pattern language. It stands in for the Neo4j instance of
// the paper's polystore: the marketing department's similar-items graph.
//
// Nodes have a string id, one label and string properties; edges are typed,
// directed at insertion but traversed in both directions (similarity edges
// are symmetric in the running example), and may carry properties such as a
// weight.
//
// Query language (one statement per Query call):
//
//	MATCH (n:Label) RETURN n [LIMIT k]
//	MATCH (n:Label) WHERE n.prop = 'v' [AND n.prop2 > 3 ...] RETURN n [LIMIT k]
//	NEIGHBORS <id> [<edge-type>]
//
// WHERE supports the operators =, !=, <, >, <=, >= and CONTAINS, combined
// with AND. Property comparisons are numeric when both sides parse as
// numbers, string otherwise (CONTAINS is case-insensitive substring).
package graphstore

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"quepa/internal/telemetry"
)

// Node is a labelled vertex with string properties.
type Node struct {
	ID    string
	Label string
	Props map[string]string
}

// Edge is a typed connection between two nodes with optional properties.
type Edge struct {
	From  string
	To    string
	Type  string
	Props map[string]string
}

// Store is an embedded property-graph database.
type Store struct {
	name       string
	mu         sync.RWMutex
	nodes      map[string]*Node
	byLabel    map[string][]string // label -> node ids in insertion order
	out        map[string][]Edge
	in         map[string][]Edge
	edgeCount  int
	roundTrips atomic.Uint64
	tel        telemetry.StoreOps
}

// New creates an empty graph database with the given name.
func New(name string) *Store {
	return &Store{
		name:    name,
		nodes:   map[string]*Node{},
		byLabel: map[string][]string{},
		out:     map[string][]Edge{},
		in:      map[string][]Edge{},
		tel:     telemetry.NewStoreOps(name),
	}
}

// Name returns the database name.
func (s *Store) Name() string { return s.name }

// RoundTrips returns the number of public calls served so far.
func (s *Store) RoundTrips() uint64 { return s.roundTrips.Load() }

// Labels lists node labels in sorted order.
func (s *Store) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	labels := make([]string, 0, len(s.byLabel))
	for l := range s.byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// NodeCount returns the number of nodes; EdgeCount the number of edges.
func (s *Store) NodeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// EdgeCount returns the number of edges in the graph.
func (s *Store) EdgeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edgeCount
}

// AddNode inserts a node. Duplicate ids are an error.
func (s *Store) AddNode(id, label string, props map[string]string) error {
	s.roundTrips.Add(1)
	if id == "" || label == "" {
		return fmt.Errorf("graphstore: node id and label must be non-empty")
	}
	if props == nil {
		props = map[string]string{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("graphstore: duplicate node id %q", id)
	}
	s.nodes[id] = &Node{ID: id, Label: label, Props: props}
	s.byLabel[label] = append(s.byLabel[label], id)
	return nil
}

// AddEdge inserts a typed edge; both endpoints must exist.
func (s *Store) AddEdge(from, to, edgeType string, props map[string]string) error {
	s.roundTrips.Add(1)
	if props == nil {
		props = map[string]string{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[from]; !ok {
		return fmt.Errorf("graphstore: unknown source node %q", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return fmt.Errorf("graphstore: unknown target node %q", to)
	}
	e := Edge{From: from, To: to, Type: edgeType, Props: props}
	s.out[from] = append(s.out[from], e)
	s.in[to] = append(s.in[to], e)
	s.edgeCount++
	return nil
}

// GetNode retrieves one node by id. The boolean reports presence.
func (s *Store) GetNode(id string) (*Node, bool) {
	s.roundTrips.Add(1)
	defer s.tel.Get.Since(telemetry.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	return n, ok
}

// GetNodes retrieves many nodes by id in one round trip, preserving the
// order of found ids and skipping missing ones.
func (s *Store) GetNodes(ids []string) []*Node {
	s.roundTrips.Add(1)
	defer s.tel.GetBatch.Since(telemetry.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Node, 0, len(ids))
	for _, id := range ids {
		if n, ok := s.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// DeleteNode removes a node and all its incident edges, reporting whether
// the node existed.
func (s *Store) DeleteNode(id string) bool {
	s.roundTrips.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	if !ok {
		return false
	}
	delete(s.nodes, id)
	ids := s.byLabel[n.Label]
	for i, cand := range ids {
		if cand == id {
			s.byLabel[n.Label] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	for _, e := range s.out[id] {
		s.in[e.To] = removeEdge(s.in[e.To], e)
		s.edgeCount--
	}
	for _, e := range s.in[id] {
		if e.From == id {
			continue // self-loop already counted above
		}
		s.out[e.From] = removeEdge(s.out[e.From], e)
		s.edgeCount--
	}
	delete(s.out, id)
	delete(s.in, id)
	return true
}

func removeEdge(edges []Edge, target Edge) []Edge {
	for i, e := range edges {
		if e.From == target.From && e.To == target.To && e.Type == target.Type {
			return append(edges[:i], edges[i+1:]...)
		}
	}
	return edges
}

// Neighbors returns the nodes adjacent to id (both directions), optionally
// restricted to one edge type, in edge-insertion order without duplicates.
func (s *Store) Neighbors(id, edgeType string) ([]*Node, error) {
	s.roundTrips.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.nodes[id]; !ok {
		return nil, fmt.Errorf("graphstore: unknown node %q", id)
	}
	seen := map[string]bool{}
	var out []*Node
	visit := func(other string) {
		if other == id || seen[other] {
			return
		}
		seen[other] = true
		out = append(out, s.nodes[other])
	}
	for _, e := range s.out[id] {
		if edgeType == "" || e.Type == edgeType {
			visit(e.To)
		}
	}
	for _, e := range s.in[id] {
		if edgeType == "" || e.Type == edgeType {
			visit(e.From)
		}
	}
	return out, nil
}

// Edges returns the edges incident to a node (both directions).
func (s *Store) Edges(id string) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Edge
	out = append(out, s.out[id]...)
	for _, e := range s.in[id] {
		if e.From != id { // avoid double-counting self-loops
			out = append(out, e)
		}
	}
	return out
}

var (
	matchRE     = regexp.MustCompile(`(?i)^\s*MATCH\s*\(\s*(\w+)\s*:\s*([\w-]+)\s*\)\s*(?:WHERE\s+(.*?)\s+)?RETURN\s+(\w+)\s*(?:LIMIT\s+(\d+)\s*)?$`)
	neighborsRE = regexp.MustCompile(`(?i)^\s*NEIGHBORS\s+(\S+)(?:\s+(\S+))?\s*$`)
	condRE      = regexp.MustCompile(`^(\w+)\.([\w.]+)\s*(=|!=|<=|>=|<|>|CONTAINS)\s*(.+)$`)
)

// Query executes one statement of the pattern language.
func (s *Store) Query(q string) ([]*Node, error) {
	defer s.tel.Query.Since(telemetry.Now())
	if m := neighborsRE.FindStringSubmatch(q); m != nil {
		return s.Neighbors(m[1], m[2])
	}
	if p, isPattern, err := parseEdgePattern(q); isPattern {
		if err != nil {
			return nil, err
		}
		return s.queryEdgePattern(p)
	}
	m := matchRE.FindStringSubmatch(q)
	if m == nil {
		return nil, fmt.Errorf("graphstore: malformed query %q", q)
	}
	varName, label, whereClause, returnVar, limitStr := m[1], m[2], m[3], m[4], m[5]
	if returnVar != varName {
		return nil, fmt.Errorf("graphstore: RETURN variable %q does not match pattern variable %q", returnVar, varName)
	}
	limit := -1
	if limitStr != "" {
		limit, _ = strconv.Atoi(limitStr)
	}
	conds, err := parseConds(varName, whereClause)
	if err != nil {
		return nil, err
	}

	s.roundTrips.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Node
	for _, id := range s.byLabel[label] {
		n := s.nodes[id]
		ok, err := conds.eval(n)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out = append(out, n)
		if limit >= 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// condition is one WHERE comparison; conditions is an AND chain.
type condition struct {
	prop  string
	op    string
	value string
}

type conditions []condition

func (cs conditions) eval(n *Node) (bool, error) {
	for _, c := range cs {
		v, present := n.Props[c.prop]
		if c.prop == "id" && !present {
			v, present = n.ID, true
		}
		if !present {
			return false, nil
		}
		switch c.op {
		case "=":
			if compareProps(v, c.value) != 0 {
				return false, nil
			}
		case "!=":
			if compareProps(v, c.value) == 0 {
				return false, nil
			}
		case "<":
			if compareProps(v, c.value) >= 0 {
				return false, nil
			}
		case ">":
			if compareProps(v, c.value) <= 0 {
				return false, nil
			}
		case "<=":
			if compareProps(v, c.value) > 0 {
				return false, nil
			}
		case ">=":
			if compareProps(v, c.value) < 0 {
				return false, nil
			}
		case "CONTAINS":
			if !strings.Contains(strings.ToLower(v), strings.ToLower(c.value)) {
				return false, nil
			}
		default:
			return false, fmt.Errorf("graphstore: unknown operator %q", c.op)
		}
	}
	return true, nil
}

func compareProps(a, b string) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

func parseConds(varName, whereClause string) (conditions, error) {
	whereClause = strings.TrimSpace(whereClause)
	if whereClause == "" {
		return nil, nil
	}
	var cs conditions
	for _, part := range splitAnd(whereClause) {
		m := condRE.FindStringSubmatch(strings.TrimSpace(part))
		if m == nil {
			return nil, fmt.Errorf("graphstore: malformed condition %q", part)
		}
		if m[1] != varName {
			return nil, fmt.Errorf("graphstore: condition variable %q does not match pattern variable %q", m[1], varName)
		}
		val := strings.TrimSpace(m[4])
		if len(val) >= 2 && val[0] == '\'' && val[len(val)-1] == '\'' {
			val = val[1 : len(val)-1]
		}
		cs = append(cs, condition{prop: m[2], op: strings.ToUpper(m[3]), value: val})
	}
	return cs, nil
}

// splitAnd splits on the AND keyword outside single-quoted strings.
func splitAnd(s string) []string {
	var parts []string
	depth := false // inside quotes
	last := 0
	upper := strings.ToUpper(s)
	for i := 0; i+5 <= len(s); i++ {
		if s[i] == '\'' {
			depth = !depth
		}
		if !depth && upper[i:i+5] == " AND " {
			parts = append(parts, s[last:i])
			last = i + 5
		}
	}
	parts = append(parts, s[last:])
	return parts
}

// ClassifyQuery reports whether a query string is syntactically one of the
// language's read statements, without executing it. The augmentation
// validator uses it to vet queries before submission.
func ClassifyQuery(q string) (kind string, ok bool) {
	if neighborsRE.MatchString(q) {
		return "neighbors", true
	}
	if edgePatternRE.MatchString(q) {
		return "pattern", true
	}
	if matchRE.MatchString(q) {
		return "match", true
	}
	return "", false
}
