package graphstore

import (
	"testing"
)

func newSimilarItems(t *testing.T) *Store {
	t.Helper()
	s := New("similar-items")
	nodes := []struct {
		id    string
		props map[string]string
	}{
		{"n1", map[string]string{"title": "Wish", "year": "1992"}},
		{"n2", map[string]string{"title": "Disintegration", "year": "1989"}},
		{"n3", map[string]string{"title": "OK Computer", "year": "1997"}},
		{"n4", map[string]string{"title": "Dummy", "year": "1994"}},
	}
	for _, n := range nodes {
		if err := s.AddNode(n.id, "items", n.props); err != nil {
			t.Fatal(err)
		}
	}
	mustAddEdge := func(from, to string, w string) {
		t.Helper()
		if err := s.AddEdge(from, to, "SIMILAR", map[string]string{"weight": w}); err != nil {
			t.Fatal(err)
		}
	}
	mustAddEdge("n1", "n2", "0.9")
	mustAddEdge("n1", "n3", "0.4")
	mustAddEdge("n4", "n1", "0.2")
	return s
}

func TestAddNodeErrors(t *testing.T) {
	s := newSimilarItems(t)
	if err := s.AddNode("n1", "items", nil); err == nil {
		t.Error("duplicate node should fail")
	}
	if err := s.AddNode("", "items", nil); err == nil {
		t.Error("empty id should fail")
	}
	if err := s.AddNode("x", "", nil); err == nil {
		t.Error("empty label should fail")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	s := newSimilarItems(t)
	if err := s.AddEdge("ghost", "n1", "SIMILAR", nil); err == nil {
		t.Error("edge from unknown node should fail")
	}
	if err := s.AddEdge("n1", "ghost", "SIMILAR", nil); err == nil {
		t.Error("edge to unknown node should fail")
	}
}

func TestGetNodeAndBatch(t *testing.T) {
	s := newSimilarItems(t)
	n, ok := s.GetNode("n3")
	if !ok || n.Props["title"] != "OK Computer" {
		t.Errorf("GetNode = %+v, %v", n, ok)
	}
	if _, ok := s.GetNode("ghost"); ok {
		t.Error("missing node reported present")
	}
	nodes := s.GetNodes([]string{"n4", "ghost", "n1"})
	if len(nodes) != 2 || nodes[0].ID != "n4" || nodes[1].ID != "n1" {
		t.Errorf("GetNodes = %+v", nodes)
	}
}

func TestNeighborsBothDirections(t *testing.T) {
	s := newSimilarItems(t)
	ns, err := s.Neighbors("n1", "")
	if err != nil {
		t.Fatal(err)
	}
	// n1 -> n2, n1 -> n3 (out), n4 -> n1 (in): all three are neighbors.
	if len(ns) != 3 {
		t.Fatalf("Neighbors(n1) = %d nodes, want 3", len(ns))
	}
	ns, err = s.Neighbors("n1", "SIMILAR")
	if err != nil || len(ns) != 3 {
		t.Errorf("typed Neighbors = %d, %v", len(ns), err)
	}
	ns, err = s.Neighbors("n1", "BOUGHT_WITH")
	if err != nil || len(ns) != 0 {
		t.Errorf("Neighbors with absent type = %d, %v", len(ns), err)
	}
	if _, err := s.Neighbors("ghost", ""); err == nil {
		t.Error("Neighbors of unknown node should fail")
	}
}

func TestNeighborsNoDuplicates(t *testing.T) {
	s := New("g")
	s.AddNode("a", "l", nil)
	s.AddNode("b", "l", nil)
	s.AddEdge("a", "b", "T", nil)
	s.AddEdge("b", "a", "T", nil) // reciprocal edge: b appears once
	ns, err := s.Neighbors("a", "")
	if err != nil || len(ns) != 1 {
		t.Errorf("Neighbors with reciprocal edges = %d, %v", len(ns), err)
	}
}

func TestDeleteNode(t *testing.T) {
	s := newSimilarItems(t)
	edgesBefore := s.EdgeCount()
	if edgesBefore != 3 {
		t.Fatalf("EdgeCount = %d, want 3", edgesBefore)
	}
	if !s.DeleteNode("n1") {
		t.Fatal("DeleteNode existing returned false")
	}
	if s.DeleteNode("n1") {
		t.Error("DeleteNode missing returned true")
	}
	if s.NodeCount() != 3 {
		t.Errorf("NodeCount after delete = %d", s.NodeCount())
	}
	if s.EdgeCount() != 0 {
		t.Errorf("EdgeCount after deleting hub = %d, want 0", s.EdgeCount())
	}
	// Remaining nodes lost their edges to n1.
	ns, err := s.Neighbors("n2", "")
	if err != nil || len(ns) != 0 {
		t.Errorf("Neighbors(n2) after delete = %v, %v", ns, err)
	}
	// Label scan no longer includes n1.
	out, err := s.Query(`MATCH (n:items) RETURN n`)
	if err != nil || len(out) != 3 {
		t.Errorf("label scan after delete = %d, %v", len(out), err)
	}
}

func TestDeleteNodeSelfLoop(t *testing.T) {
	s := New("g")
	s.AddNode("a", "l", nil)
	s.AddEdge("a", "a", "T", nil)
	if s.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", s.EdgeCount())
	}
	s.DeleteNode("a")
	if s.EdgeCount() != 0 {
		t.Errorf("EdgeCount after self-loop delete = %d", s.EdgeCount())
	}
}

func TestQueryMatch(t *testing.T) {
	s := newSimilarItems(t)
	tests := []struct {
		q    string
		want int
	}{
		{`MATCH (n:items) RETURN n`, 4},
		{`MATCH (n:items) RETURN n LIMIT 2`, 2},
		{`MATCH (n:items) WHERE n.year > 1990 RETURN n`, 3},
		{`MATCH (n:items) WHERE n.year > 1990 AND n.year < 1995 RETURN n`, 2},
		{`MATCH (n:items) WHERE n.title = 'Wish' RETURN n`, 1},
		{`MATCH (n:items) WHERE n.title != 'Wish' RETURN n`, 3},
		{`MATCH (n:items) WHERE n.title CONTAINS 'compute' RETURN n`, 1},
		{`MATCH (n:items) WHERE n.year <= 1989 RETURN n`, 1},
		{`MATCH (n:items) WHERE n.year >= 1997 RETURN n`, 1},
		{`MATCH (n:items) WHERE n.id = 'n2' RETURN n`, 1},
		{`MATCH (n:items) WHERE n.ghost = 'x' RETURN n`, 0},
		{`MATCH (n:ghosts) RETURN n`, 0},
		{`match (n:items) where n.year > 1990 return n`, 3}, // case-insensitive keywords
	}
	for _, tt := range tests {
		out, err := s.Query(tt.q)
		if err != nil {
			t.Errorf("Query(%s): %v", tt.q, err)
			continue
		}
		if len(out) != tt.want {
			t.Errorf("Query(%s) = %d nodes, want %d", tt.q, len(out), tt.want)
		}
	}
}

func TestQueryNeighbors(t *testing.T) {
	s := newSimilarItems(t)
	out, err := s.Query(`NEIGHBORS n1`)
	if err != nil || len(out) != 3 {
		t.Errorf("NEIGHBORS n1 = %d, %v", len(out), err)
	}
	out, err = s.Query(`NEIGHBORS n1 SIMILAR`)
	if err != nil || len(out) != 3 {
		t.Errorf("NEIGHBORS n1 SIMILAR = %d, %v", len(out), err)
	}
	if _, err := s.Query(`NEIGHBORS ghost`); err == nil {
		t.Error("NEIGHBORS of unknown node should fail")
	}
}

func TestQueryErrors(t *testing.T) {
	s := newSimilarItems(t)
	for _, q := range []string{
		`garbage`,
		`MATCH (n:items) RETURN m`, // variable mismatch
		`MATCH (n:items) WHERE m.year > 1990 RETURN n`, // condition variable mismatch
		`MATCH (n:items) WHERE n.year ~ 1990 RETURN n`, // bad operator
		`MATCH (n:items) WHERE gibberish RETURN n`,     // malformed condition
	} {
		if _, err := s.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestEdgesAccessor(t *testing.T) {
	s := newSimilarItems(t)
	es := s.Edges("n1")
	if len(es) != 3 {
		t.Errorf("Edges(n1) = %d, want 3", len(es))
	}
	if es[0].Props["weight"] == "" {
		t.Error("edge props missing")
	}
}

func TestLabels(t *testing.T) {
	s := New("g")
	s.AddNode("a", "zz", nil)
	s.AddNode("b", "aa", nil)
	got := s.Labels()
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Errorf("Labels() = %v", got)
	}
}
