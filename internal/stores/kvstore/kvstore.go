// Package kvstore implements an embedded key-value store with a Redis-like
// command language. It stands in for the Redis instance of the paper's
// polystore: the shared discounts database.
//
// Unlike Redis, keys live in named buckets so that the store fits the PDM
// notion of data collections: the global key discount.drop.k1:cure:wish
// addresses key "k1:cure:wish" in bucket "drop" of database "discount".
//
// Command language (one command per Do call):
//
//	SET <bucket> <key> <value...>   value is the rest of the line
//	GET <bucket> <key>
//	MGET <bucket> <key> [<key>...]
//	DEL <bucket> <key> [<key>...]
//	EXISTS <bucket> <key>
//	KEYS <bucket> <glob>            glob supports * and ?
//	SCAN <bucket>                   all entries in insertion order
//	LEN <bucket>
//	SETEX <bucket> <key> <seconds> <value...>
//	EXPIRE <bucket> <key> <seconds>
//	TTL <bucket> <key>
package kvstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quepa/internal/telemetry"
)

// Entry is a single key/value pair returned by commands.
type Entry struct {
	Bucket string
	Key    string
	Value  string
}

// Store is an embedded key-value database.
type Store struct {
	name       string
	mu         sync.Mutex
	buckets    map[string]*bucket
	roundTrips atomic.Uint64
	now        func() time.Time // injectable clock for expiry (nil = time.Now)
	tel        telemetry.StoreOps
}

type bucket struct {
	data   map[string]string
	order  []string
	expiry map[string]time.Time // per-key deadline; absent = persistent
}

// New creates an empty key-value database with the given name.
func New(name string) *Store {
	return &Store{name: name, buckets: map[string]*bucket{}, tel: telemetry.NewStoreOps(name)}
}

// Name returns the database name.
func (s *Store) Name() string { return s.name }

// RoundTrips returns the number of public calls served so far.
func (s *Store) RoundTrips() uint64 { return s.roundTrips.Load() }

// Buckets lists bucket names in sorted order.
func (s *Store) Buckets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.buckets))
	for n := range s.buckets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Set stores a value, creating the bucket on first use.
func (s *Store) Set(bucketName, key, value string) {
	s.roundTrips.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		b = &bucket{data: map[string]string{}}
		s.buckets[bucketName] = b
	}
	if _, exists := b.data[key]; !exists {
		b.order = append(b.order, key)
	}
	b.data[key] = value
	delete(b.expiry, key) // a plain SET makes the key persistent again
}

// Get retrieves a value. The boolean reports presence. Expired keys are
// reaped lazily and reported absent.
func (s *Store) Get(bucketName, key string) (string, bool) {
	s.roundTrips.Add(1)
	defer s.tel.Get.Since(telemetry.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return "", false
	}
	if s.expiredLocked(b, key) {
		s.reapLocked(bucketName, b, key)
		return "", false
	}
	v, ok := b.data[key]
	return v, ok
}

// MGet retrieves many values in one round trip, skipping missing keys and
// preserving the order of the found ones.
func (s *Store) MGet(bucketName string, keys []string) []Entry {
	s.roundTrips.Add(1)
	defer s.tel.GetBatch.Since(telemetry.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil
	}
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		if s.expiredLocked(b, k) {
			s.reapLocked(bucketName, b, k)
			continue
		}
		if v, ok := b.data[k]; ok {
			out = append(out, Entry{Bucket: bucketName, Key: k, Value: v})
		}
	}
	return out
}

// Del removes keys, returning how many existed.
func (s *Store) Del(bucketName string, keys ...string) int {
	s.roundTrips.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return 0
	}
	deleted := 0
	for _, k := range keys {
		if _, exists := b.data[k]; exists {
			delete(b.data, k)
			deleted++
		}
	}
	if deleted > 0 {
		kept := b.order[:0]
		for _, k := range b.order {
			if _, exists := b.data[k]; exists {
				kept = append(kept, k)
			}
		}
		b.order = kept
	}
	return deleted
}

// Keys returns the keys of a bucket matching a glob pattern (* and ?), in
// insertion order.
func (s *Store) Keys(bucketName, glob string) []string {
	s.roundTrips.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil
	}
	var out []string
	for _, k := range append([]string(nil), b.order...) {
		if s.expiredLocked(b, k) {
			s.reapLocked(bucketName, b, k)
			continue
		}
		if globMatch(k, glob) {
			out = append(out, k)
		}
	}
	return out
}

// Len returns the number of keys in a bucket.
func (s *Store) Len(bucketName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.buckets[bucketName]; ok {
		return len(b.data)
	}
	return 0
}

// Do parses and executes one command of the textual language.
func (s *Store) Do(command string) ([]Entry, error) {
	defer s.tel.Query.Since(telemetry.Now())
	fields := strings.Fields(command)
	if len(fields) == 0 {
		return nil, fmt.Errorf("kvstore: empty command")
	}
	op := strings.ToUpper(fields[0])
	args := fields[1:]
	switch op {
	case "SET":
		if len(args) < 3 {
			return nil, fmt.Errorf("kvstore: SET requires bucket, key and value")
		}
		// The value is everything after the key, whitespace preserved as a
		// single space between fields.
		value := strings.Join(args[2:], " ")
		s.Set(args[0], args[1], value)
		return []Entry{{Bucket: args[0], Key: args[1], Value: value}}, nil
	case "GET":
		if len(args) != 2 {
			return nil, fmt.Errorf("kvstore: GET requires bucket and key")
		}
		v, ok := s.Get(args[0], args[1])
		if !ok {
			return nil, nil
		}
		return []Entry{{Bucket: args[0], Key: args[1], Value: v}}, nil
	case "MGET":
		if len(args) < 2 {
			return nil, fmt.Errorf("kvstore: MGET requires bucket and at least one key")
		}
		return s.MGet(args[0], args[1:]), nil
	case "DEL":
		if len(args) < 2 {
			return nil, fmt.Errorf("kvstore: DEL requires bucket and at least one key")
		}
		n := s.Del(args[0], args[1:]...)
		return []Entry{{Bucket: args[0], Key: "deleted", Value: strconv.Itoa(n)}}, nil
	case "EXISTS":
		if len(args) != 2 {
			return nil, fmt.Errorf("kvstore: EXISTS requires bucket and key")
		}
		_, ok := s.Get(args[0], args[1])
		return []Entry{{Bucket: args[0], Key: args[1], Value: strconv.FormatBool(ok)}}, nil
	case "KEYS":
		if len(args) != 2 {
			return nil, fmt.Errorf("kvstore: KEYS requires bucket and glob")
		}
		keys := s.Keys(args[0], args[1])
		out := make([]Entry, len(keys))
		for i, k := range keys {
			out[i] = Entry{Bucket: args[0], Key: k}
		}
		return out, nil
	case "SCAN":
		if len(args) != 1 {
			return nil, fmt.Errorf("kvstore: SCAN requires bucket")
		}
		s.roundTrips.Add(1)
		s.mu.Lock()
		defer s.mu.Unlock()
		b, ok := s.buckets[args[0]]
		if !ok {
			return nil, nil
		}
		out := make([]Entry, 0, len(b.order))
		for _, k := range append([]string(nil), b.order...) {
			if s.expiredLocked(b, k) {
				s.reapLocked(args[0], b, k)
				continue
			}
			out = append(out, Entry{Bucket: args[0], Key: k, Value: b.data[k]})
		}
		return out, nil
	case "LEN":
		if len(args) != 1 {
			return nil, fmt.Errorf("kvstore: LEN requires bucket")
		}
		return []Entry{{Bucket: args[0], Key: "len", Value: strconv.Itoa(s.Len(args[0]))}}, nil
	case "SETEX", "EXPIRE", "TTL":
		return s.doTTLCommand(op, args)
	default:
		return nil, fmt.Errorf("kvstore: unknown command %q", op)
	}
}

// globMatch implements * (any sequence) and ? (any single byte) matching.
func globMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, sStar := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '*':
			star = pi
			sStar = si
			pi++
		case star >= 0:
			pi = star + 1
			sStar++
			si = sStar
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
