package kvstore

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	s := New("discount")
	s.Set("drop", "k1:cure:wish", "40%")
	v, ok := s.Get("drop", "k1:cure:wish")
	if !ok || v != "40%" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("drop", "missing"); ok {
		t.Error("missing key reported present")
	}
	if _, ok := s.Get("nobucket", "k"); ok {
		t.Error("missing bucket reported present")
	}
	// Overwrite keeps a single entry.
	s.Set("drop", "k1:cure:wish", "50%")
	if s.Len("drop") != 1 {
		t.Errorf("Len after overwrite = %d", s.Len("drop"))
	}
	v, _ = s.Get("drop", "k1:cure:wish")
	if v != "50%" {
		t.Errorf("overwritten value = %q", v)
	}
}

func TestMGetOrderAndSkips(t *testing.T) {
	s := New("db")
	s.Set("b", "k1", "v1")
	s.Set("b", "k2", "v2")
	s.Set("b", "k3", "v3")
	got := s.MGet("b", []string{"k3", "nope", "k1"})
	if len(got) != 2 || got[0].Key != "k3" || got[1].Key != "k1" {
		t.Errorf("MGet = %+v", got)
	}
	if s.MGet("ghost", []string{"k"}) != nil {
		t.Error("MGet on missing bucket should return nil")
	}
}

func TestDel(t *testing.T) {
	s := New("db")
	s.Set("b", "k1", "v1")
	s.Set("b", "k2", "v2")
	if n := s.Del("b", "k1", "ghost"); n != 1 {
		t.Errorf("Del = %d, want 1", n)
	}
	if s.Len("b") != 1 {
		t.Errorf("Len after Del = %d", s.Len("b"))
	}
	keys := s.Keys("b", "*")
	if len(keys) != 1 || keys[0] != "k2" {
		t.Errorf("Keys after Del = %v", keys)
	}
	if n := s.Del("ghost", "k"); n != 0 {
		t.Errorf("Del on missing bucket = %d", n)
	}
}

func TestKeysGlob(t *testing.T) {
	s := New("db")
	for _, k := range []string{"k1:cure:wish", "k2:cure:head", "j9:other", "k10:x"} {
		s.Set("drop", k, "v")
	}
	tests := []struct {
		glob string
		want int
	}{
		{"k*", 3},
		{"*cure*", 2},
		{"k?:*", 2},
		{"*", 4},
		{"zzz", 0},
		{"k1:cure:wish", 1},
	}
	for _, tt := range tests {
		if got := s.Keys("drop", tt.glob); len(got) != tt.want {
			t.Errorf("Keys(%q) = %v, want %d entries", tt.glob, got, tt.want)
		}
	}
}

func TestGlobMatchProperties(t *testing.T) {
	// '*' matches anything.
	if err := quick.Check(func(s string) bool { return globMatch(s, "*") }, nil); err != nil {
		t.Error(err)
	}
	// A glob equal to the string (no metacharacters) matches it.
	f := func(s string) bool {
		if strings.ContainsAny(s, "*?") {
			return true
		}
		return globMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoCommands(t *testing.T) {
	s := New("db")
	tests := []struct {
		cmd     string
		wantN   int
		wantErr bool
	}{
		{"SET drop k1 40%", 1, false},
		{"SET drop k2 multi word value", 1, false},
		{"GET drop k1", 1, false},
		{"GET drop ghost", 0, false},
		{"MGET drop k1 k2 ghost", 2, false},
		{"EXISTS drop k1", 1, false},
		{"KEYS drop k*", 2, false},
		{"SCAN drop", 2, false},
		{"LEN drop", 1, false},
		{"DEL drop k1", 1, false},
		{"SCAN ghostbucket", 0, false},
		{"", 0, true},
		{"BOGUS x y", 0, true},
		{"SET drop k1", 0, true},
		{"GET drop", 0, true},
		{"MGET drop", 0, true},
		{"DEL drop", 0, true},
		{"EXISTS drop", 0, true},
		{"KEYS drop", 0, true},
		{"SCAN", 0, true},
		{"LEN", 0, true},
	}
	for _, tt := range tests {
		got, err := s.Do(tt.cmd)
		if (err != nil) != tt.wantErr {
			t.Errorf("Do(%q) error = %v, wantErr %v", tt.cmd, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && len(got) != tt.wantN {
			t.Errorf("Do(%q) returned %d entries, want %d", tt.cmd, len(got), tt.wantN)
		}
	}
	// SET with multi-word value preserves the words.
	out, err := s.Do("GET drop k2")
	if err != nil || len(out) != 1 || out[0].Value != "multi word value" {
		t.Errorf("multi-word value: %+v, %v", out, err)
	}
	// Lowercase commands are accepted.
	if _, err := s.Do("get drop k2"); err != nil {
		t.Errorf("lowercase command: %v", err)
	}
}

func TestBucketsSorted(t *testing.T) {
	s := New("db")
	s.Set("zz", "k", "v")
	s.Set("aa", "k", "v")
	got := s.Buckets()
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Errorf("Buckets() = %v", got)
	}
}

func TestRoundTripsCounted(t *testing.T) {
	s := New("db")
	s.Set("b", "k", "v")
	before := s.RoundTrips()
	s.Get("b", "k")
	s.MGet("b", []string{"k"})
	s.Keys("b", "*")
	if got := s.RoundTrips() - before; got != 3 {
		t.Errorf("round trips = %d, want 3", got)
	}
}
