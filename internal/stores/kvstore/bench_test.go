package kvstore

import (
	"fmt"
	"testing"
)

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s := New("bench")
	for i := 0; i < n; i++ {
		s.Set("b", fmt.Sprintf("k%d", i), fmt.Sprintf("value-%d", i))
	}
	return s
}

func BenchmarkGet(b *testing.B) {
	s := benchStore(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("b", fmt.Sprintf("k%d", i%10000)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMGet100(b *testing.B) {
	s := benchStore(b, 10000)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i*101%10000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.MGet("b", keys); len(got) != 100 {
			b.Fatal("short read")
		}
	}
}

func BenchmarkKeysGlob(b *testing.B) {
	s := benchStore(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Keys("b", "k1?3*")
	}
}
