package kvstore

import (
	"testing"
	"time"
)

// fakeClock is a settable time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTTLStore() (*Store, *fakeClock) {
	s := New("discount")
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.SetClock(clk.now)
	return s, clk
}

func TestTTLExpiry(t *testing.T) {
	s, clk := newTTLStore()
	s.SetWithTTL("drop", "k1", "40%", 10*time.Second)
	if v, ok := s.Get("drop", "k1"); !ok || v != "40%" {
		t.Fatalf("fresh key: %q, %v", v, ok)
	}
	clk.advance(9 * time.Second)
	if _, ok := s.Get("drop", "k1"); !ok {
		t.Fatal("key expired early")
	}
	clk.advance(2 * time.Second)
	if _, ok := s.Get("drop", "k1"); ok {
		t.Fatal("expired key still readable")
	}
	// Reaped, not just hidden.
	if s.Len("drop") != 0 {
		t.Errorf("Len after expiry = %d", s.Len("drop"))
	}
}

func TestTTLReapOnBulkReads(t *testing.T) {
	s, clk := newTTLStore()
	s.Set("drop", "keep", "v")
	s.SetWithTTL("drop", "gone", "v", time.Second)
	clk.advance(2 * time.Second)

	if got := s.MGet("drop", []string{"keep", "gone"}); len(got) != 1 || got[0].Key != "keep" {
		t.Errorf("MGet = %+v", got)
	}
	s.SetWithTTL("drop", "gone2", "v", time.Second)
	clk.advance(2 * time.Second)
	if got := s.Keys("drop", "*"); len(got) != 1 {
		t.Errorf("Keys = %v", got)
	}
	s.SetWithTTL("drop", "gone3", "v", time.Second)
	clk.advance(2 * time.Second)
	if got, err := s.Do("SCAN drop"); err != nil || len(got) != 1 {
		t.Errorf("SCAN = %+v, %v", got, err)
	}
}

func TestExpireCommandSemantics(t *testing.T) {
	s, clk := newTTLStore()
	s.Set("b", "k", "v")
	if !s.Expire("b", "k", 5*time.Second) {
		t.Fatal("Expire on existing key returned false")
	}
	if s.Expire("b", "ghost", time.Second) || s.Expire("nobucket", "k", time.Second) {
		t.Error("Expire on missing key/bucket returned true")
	}
	remaining, expires, ok := s.TTL("b", "k")
	if !ok || !expires || remaining != 5*time.Second {
		t.Errorf("TTL = %v, %v, %v", remaining, expires, ok)
	}
	// A plain SET clears the deadline.
	s.Set("b", "k", "v2")
	if _, expires, ok := s.TTL("b", "k"); !ok || expires {
		t.Error("SET did not clear expiry")
	}
	// Non-positive TTL deletes immediately.
	s.Set("b", "k2", "v")
	s.Expire("b", "k2", 0)
	if _, ok := s.Get("b", "k2"); ok {
		t.Error("zero TTL did not delete")
	}
	clk.advance(time.Hour)
	if _, _, ok := s.TTL("b", "ghost"); ok {
		t.Error("TTL on missing key reported ok")
	}
}

func TestTTLTextCommands(t *testing.T) {
	s, clk := newTTLStore()
	if _, err := s.Do("SETEX drop k1 10 multi word value"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Do("GET drop k1")
	if err != nil || len(out) != 1 || out[0].Value != "multi word value" {
		t.Fatalf("GET after SETEX = %+v, %v", out, err)
	}
	out, err = s.Do("TTL drop k1")
	if err != nil || out[0].Value != "10" {
		t.Errorf("TTL = %+v, %v", out, err)
	}
	s.Do("SET drop persistent v")
	out, _ = s.Do("TTL drop persistent")
	if out[0].Value != "-1" {
		t.Errorf("persistent TTL = %q", out[0].Value)
	}
	out, _ = s.Do("TTL drop ghost")
	if out[0].Value != "-2" {
		t.Errorf("missing TTL = %q", out[0].Value)
	}
	if _, err := s.Do("EXPIRE drop k1 3"); err != nil {
		t.Fatal(err)
	}
	clk.advance(4 * time.Second)
	if out, _ := s.Do("GET drop k1"); len(out) != 0 {
		t.Error("key survived shortened expiry")
	}
	// Error paths.
	for _, cmd := range []string{
		"SETEX drop k 10",  // missing value
		"SETEX drop k x v", // bad seconds
		"SETEX drop k 0 v", // non-positive
		"EXPIRE drop k",    // missing seconds
		"EXPIRE drop k x",  // bad seconds
		"TTL drop",         // missing key
	} {
		if _, err := s.Do(cmd); err == nil {
			t.Errorf("Do(%q) should fail", cmd)
		}
	}
}

func TestSetClockNilRestoresRealTime(t *testing.T) {
	s, _ := newTTLStore()
	s.SetClock(nil)
	s.SetWithTTL("b", "k", "v", time.Hour)
	if _, ok := s.Get("b", "k"); !ok {
		t.Error("key with real-clock TTL missing")
	}
}
