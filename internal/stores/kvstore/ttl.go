package kvstore

import (
	"fmt"
	"strconv"
	"time"
)

// This file adds Redis-style key expiry. Entries may carry a deadline;
// expired entries are reaped lazily when touched by a read, which composes
// with QUEPA's lazy index deletion: an expired discount disappears from the
// A' index the first time an augmentation fails to fetch it.
//
// Commands:
//
//	SETEX <bucket> <key> <seconds> <value...>
//	EXPIRE <bucket> <key> <seconds>
//	TTL <bucket> <key>            -> seconds, -1 no expiry, -2 missing
//
// The clock is injectable for tests via SetClock.

// SetClock replaces the store's time source (nil restores time.Now).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	s.now = now
}

func (s *Store) clock() func() time.Time {
	if s.now == nil {
		return time.Now
	}
	return s.now
}

// SetWithTTL stores a value that expires after ttl.
func (s *Store) SetWithTTL(bucketName, key, value string, ttl time.Duration) {
	s.Set(bucketName, key, value)
	s.Expire(bucketName, key, ttl)
}

// Expire sets the remaining lifetime of an existing key, reporting whether
// the key exists. A non-positive ttl deletes the key immediately.
func (s *Store) Expire(bucketName, key string, ttl time.Duration) bool {
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if _, exists := b.data[key]; !exists {
		s.mu.Unlock()
		return false
	}
	if ttl <= 0 {
		s.mu.Unlock()
		s.Del(bucketName, key)
		return true
	}
	if b.expiry == nil {
		b.expiry = map[string]time.Time{}
	}
	b.expiry[key] = s.clock()().Add(ttl)
	s.mu.Unlock()
	return true
}

// TTL reports the remaining lifetime: (d, true) for expiring keys,
// (0, true) with d == -1 marked by ok for persistent keys... Specifically:
// ok is false when the key does not exist; expires is false when the key
// has no deadline.
func (s *Store) TTL(bucketName, key string) (remaining time.Duration, expires, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, found := s.buckets[bucketName]
	if !found {
		return 0, false, false
	}
	if s.expiredLocked(b, key) {
		s.reapLocked(bucketName, b, key)
		return 0, false, false
	}
	if _, exists := b.data[key]; !exists {
		return 0, false, false
	}
	deadline, has := b.expiry[key]
	if !has {
		return 0, false, true
	}
	return deadline.Sub(s.clock()()), true, true
}

// expiredLocked reports whether key has passed its deadline.
func (s *Store) expiredLocked(b *bucket, key string) bool {
	deadline, has := b.expiry[key]
	return has && !s.clock()().Before(deadline)
}

// reapLocked removes an expired key.
func (s *Store) reapLocked(bucketName string, b *bucket, key string) {
	delete(b.data, key)
	delete(b.expiry, key)
	kept := b.order[:0]
	for _, k := range b.order {
		if _, exists := b.data[k]; exists {
			kept = append(kept, k)
		}
	}
	b.order = kept
}

// doTTLCommand handles the expiry commands of the textual language.
func (s *Store) doTTLCommand(op string, args []string) ([]Entry, error) {
	switch op {
	case "SETEX":
		if len(args) < 4 {
			return nil, fmt.Errorf("kvstore: SETEX requires bucket, key, seconds and value")
		}
		secs, err := strconv.Atoi(args[2])
		if err != nil || secs <= 0 {
			return nil, fmt.Errorf("kvstore: bad SETEX seconds %q", args[2])
		}
		value := joinFields(args[3:])
		s.SetWithTTL(args[0], args[1], value, time.Duration(secs)*time.Second)
		return []Entry{{Bucket: args[0], Key: args[1], Value: value}}, nil
	case "EXPIRE":
		if len(args) != 3 {
			return nil, fmt.Errorf("kvstore: EXPIRE requires bucket, key and seconds")
		}
		secs, err := strconv.Atoi(args[2])
		if err != nil {
			return nil, fmt.Errorf("kvstore: bad EXPIRE seconds %q", args[2])
		}
		ok := s.Expire(args[0], args[1], time.Duration(secs)*time.Second)
		return []Entry{{Bucket: args[0], Key: args[1], Value: strconv.FormatBool(ok)}}, nil
	case "TTL":
		if len(args) != 2 {
			return nil, fmt.Errorf("kvstore: TTL requires bucket and key")
		}
		remaining, expires, ok := s.TTL(args[0], args[1])
		v := "-2" // missing, Redis convention
		switch {
		case ok && expires:
			v = strconv.Itoa(int(remaining.Seconds()))
		case ok:
			v = "-1" // persistent
		}
		return []Entry{{Bucket: args[0], Key: args[1], Value: v}}, nil
	default:
		return nil, fmt.Errorf("kvstore: unknown command %q", op)
	}
}

func joinFields(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += " "
		}
		out += f
	}
	return out
}
