package docstore

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
)

// filter is a compiled document predicate.
type filter interface {
	matches(d *Document) (bool, error)
}

// allFilter matches every document (the empty filter {}).
type allFilter struct{}

func (allFilter) matches(*Document) (bool, error) { return true, nil }

// andFilter / orFilter combine sub-filters.
type andFilter struct{ subs []filter }

func (f andFilter) matches(d *Document) (bool, error) {
	for _, s := range f.subs {
		ok, err := s.matches(d)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

type orFilter struct{ subs []filter }

func (f orFilter) matches(d *Document) (bool, error) {
	for _, s := range f.subs {
		ok, err := s.matches(d)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// fieldFilter applies one operator to one dot-path field.
type fieldFilter struct {
	path string
	op   string // $eq, $ne, $gt, $gte, $lt, $lte, $in, $regex
	arg  any
	re   *regexp.Regexp // compiled for $regex
}

func (f fieldFilter) matches(d *Document) (bool, error) {
	v, present := lookupPath(d.Body, f.path)
	switch f.op {
	case "$eq":
		return present && compareAny(v, f.arg) == 0, nil
	case "$ne":
		// Mongo semantics: $ne matches documents where the field is absent too.
		return !present || compareAny(v, f.arg) != 0, nil
	case "$gt":
		return present && compareAny(v, f.arg) > 0, nil
	case "$gte":
		return present && compareAny(v, f.arg) >= 0, nil
	case "$lt":
		return present && compareAny(v, f.arg) < 0, nil
	case "$lte":
		return present && compareAny(v, f.arg) <= 0, nil
	case "$in":
		if !present {
			return false, nil
		}
		list, ok := f.arg.([]any)
		if !ok {
			return false, fmt.Errorf("docstore: $in requires an array")
		}
		for _, cand := range list {
			if compareAny(v, cand) == 0 {
				return true, nil
			}
		}
		return false, nil
	case "$nin":
		list, ok := f.arg.([]any)
		if !ok {
			return false, fmt.Errorf("docstore: $nin requires an array")
		}
		if !present {
			return true, nil // Mongo: $nin matches absent fields
		}
		for _, cand := range list {
			if compareAny(v, cand) == 0 {
				return false, nil
			}
		}
		return true, nil
	case "$exists":
		want, ok := f.arg.(bool)
		if !ok {
			return false, fmt.Errorf("docstore: $exists requires a boolean")
		}
		return present == want, nil
	case "$regex":
		if !present {
			return false, nil
		}
		return f.re.MatchString(scalarString(v)), nil
	default:
		return false, fmt.Errorf("docstore: unknown operator %q", f.op)
	}
}

// lookupPath resolves a dot path against a decoded JSON value. Numeric path
// components index into arrays. Additionally, a path into an array of scalars
// matches if any element matches (Mongo's implicit array traversal), which is
// handled by the caller via compareAny on the array value.
func lookupPath(v any, path string) (any, bool) {
	if path == "" {
		return v, true
	}
	cur := v
	for _, part := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			nxt, ok := node[part]
			if !ok {
				return nil, false
			}
			cur = nxt
		case []any:
			idx := -1
			if _, err := fmt.Sscanf(part, "%d", &idx); err != nil || idx < 0 || idx >= len(node) {
				return nil, false
			}
			cur = node[idx]
		default:
			return nil, false
		}
	}
	return cur, true
}

// compareAny orders two decoded JSON scalars. Numbers compare numerically;
// everything else compares through its string rendering. When the left value
// is an array, the comparison succeeds (returns 0) if any element equals the
// right value — Mongo's implicit array membership for equality.
func compareAny(a, b any) int {
	if arr, ok := a.([]any); ok {
		for _, el := range arr {
			if compareAny(el, b) == 0 {
				return 0
			}
		}
		return -1
	}
	fa, aNum := a.(float64)
	fb, bNum := b.(float64)
	if aNum && bNum {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(scalarString(a), scalarString(b))
}

// parseFilter compiles a JSON filter expression. The empty string and "{}"
// compile to the match-everything filter.
func parseFilter(filterJSON string) (filter, error) {
	filterJSON = strings.TrimSpace(filterJSON)
	if filterJSON == "" || filterJSON == "{}" {
		return allFilter{}, nil
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(filterJSON), &raw); err != nil {
		return nil, fmt.Errorf("docstore: invalid filter JSON: %w", err)
	}
	return compileFilter(raw)
}

func compileFilter(raw map[string]any) (filter, error) {
	var subs []filter
	for key, val := range raw {
		switch key {
		case "$and", "$or":
			list, ok := val.([]any)
			if !ok {
				return nil, fmt.Errorf("docstore: %s requires an array of filters", key)
			}
			var inner []filter
			for _, el := range list {
				m, ok := el.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("docstore: %s elements must be objects", key)
				}
				f, err := compileFilter(m)
				if err != nil {
					return nil, err
				}
				inner = append(inner, f)
			}
			if key == "$and" {
				subs = append(subs, andFilter{subs: inner})
			} else {
				subs = append(subs, orFilter{subs: inner})
			}
		default:
			if strings.HasPrefix(key, "$") {
				return nil, fmt.Errorf("docstore: unknown top-level operator %q", key)
			}
			f, err := compileField(key, val)
			if err != nil {
				return nil, err
			}
			subs = append(subs, f...)
		}
	}
	if len(subs) == 0 {
		return allFilter{}, nil
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return andFilter{subs: subs}, nil
}

func compileField(path string, val any) ([]filter, error) {
	ops, isOps := val.(map[string]any)
	if !isOps {
		return []filter{fieldFilter{path: path, op: "$eq", arg: val}}, nil
	}
	// Distinguish {"field": {"$gt": 3}} from equality against a literal
	// object: an operator object has only $-prefixed keys.
	allDollar := len(ops) > 0
	for k := range ops {
		if !strings.HasPrefix(k, "$") {
			allDollar = false
			break
		}
	}
	if !allDollar {
		return []filter{fieldFilter{path: path, op: "$eq", arg: val}}, nil
	}
	var out []filter
	for op, arg := range ops {
		ff := fieldFilter{path: path, op: op, arg: arg}
		switch op {
		case "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin", "$exists":
		case "$regex":
			pat, ok := arg.(string)
			if !ok {
				return nil, fmt.Errorf("docstore: $regex requires a string pattern")
			}
			re, err := regexp.Compile("(?i)" + pat)
			if err != nil {
				return nil, fmt.Errorf("docstore: bad $regex %q: %w", pat, err)
			}
			ff.re = re
		default:
			return nil, fmt.Errorf("docstore: unknown operator %q on field %q", op, path)
		}
		out = append(out, ff)
	}
	return out, nil
}
