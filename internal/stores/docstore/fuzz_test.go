package docstore

import "testing"

// FuzzParseFilter drives the filter compiler with arbitrary JSON: it must
// never panic, and compiled filters must evaluate without panicking.
func FuzzParseFilter(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"a": 1}`,
		`{"a": {"$gt": 3, "$lt": 9}}`,
		`{"$or": [{"a": 1}, {"b": {"$regex": "x"}}]}`,
		`{"$and": [{"a": {"$in": [1, 2]}}, {"b": {"$exists": true}}]}`,
		`{"a.b.c": {"$nin": ["x"]}}`,
		`{"a": {"$regex": "["}}`,
		`[1,2]`,
		`{"$and": 5}`,
	} {
		f.Add(seed)
	}
	doc := &Document{ID: "d", Body: map[string]any{
		"a": 1.0, "b": "x", "nested": map[string]any{"c": []any{1.0, "two"}},
	}}
	f.Fuzz(func(t *testing.T, filterJSON string) {
		flt, err := parseFilter(filterJSON)
		if err != nil {
			return
		}
		flt.matches(doc) // must not panic
	})
}

// FuzzQueryParse ensures the textual query splitter never panics.
func FuzzQueryParse(f *testing.F) {
	f.Add(`albums.find({"a": 1})`)
	f.Add(`c.count({})`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, q string) {
		ParseQuery(q)
	})
}
