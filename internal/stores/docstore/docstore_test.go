package docstore

import (
	"strings"
	"testing"
)

func newCatalogue(t *testing.T) *Store {
	t.Helper()
	s := New("catalogue")
	docs := []string{
		`{"_id": "d1", "title": "Wish", "artist": "The Cure", "artist_id": "a1", "year": 1992, "tracks": ["Open", "High", "Apart"]}`,
		`{"_id": "d2", "title": "Disintegration", "artist": "The Cure", "artist_id": "a1", "year": 1989}`,
		`{"_id": "d3", "title": "OK Computer", "artist": "Radiohead", "artist_id": "a2", "year": 1997, "label": {"name": "Parlophone", "country": "UK"}}`,
		`{"_id": "d4", "title": "Dummy", "artist": "Portishead", "artist_id": "a3", "year": 1994}`,
	}
	for _, d := range docs {
		if _, err := s.Insert("albums", d); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return s
}

func TestInsertAndGet(t *testing.T) {
	s := newCatalogue(t)
	d, ok := s.Get("albums", "d1")
	if !ok {
		t.Fatal("Get d1 missing")
	}
	if d.Fields()["title"] != "Wish" {
		t.Errorf("title = %q", d.Fields()["title"])
	}
	if _, ok := s.Get("albums", "ghost"); ok {
		t.Error("missing doc reported present")
	}
	if _, ok := s.Get("ghosts", "d1"); ok {
		t.Error("missing collection reported present")
	}
}

func TestInsertGeneratedID(t *testing.T) {
	s := New("db")
	id, err := s.Insert("c", `{"a": 1}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "doc:") {
		t.Errorf("generated id = %q", id)
	}
	if _, ok := s.Get("c", id); !ok {
		t.Error("generated-id doc not retrievable")
	}
}

func TestInsertErrors(t *testing.T) {
	s := newCatalogue(t)
	if _, err := s.Insert("albums", `{"_id": "d1"}`); err == nil {
		t.Error("duplicate _id should fail")
	}
	if _, err := s.Insert("albums", `{"_id": 42}`); err == nil {
		t.Error("non-string _id should fail")
	}
	if _, err := s.Insert("albums", `{"_id": ""}`); err == nil {
		t.Error("empty _id should fail")
	}
	if _, err := s.Insert("albums", `not json`); err == nil {
		t.Error("invalid JSON should fail")
	}
}

func TestFindFilters(t *testing.T) {
	s := newCatalogue(t)
	tests := []struct {
		filter string
		want   []string
	}{
		{`{}`, []string{"d1", "d2", "d3", "d4"}},
		{``, []string{"d1", "d2", "d3", "d4"}},
		{`{"artist": "The Cure"}`, []string{"d1", "d2"}},
		{`{"year": 1992}`, []string{"d1"}},
		{`{"year": {"$gt": 1992}}`, []string{"d3", "d4"}},
		{`{"year": {"$gte": 1992}}`, []string{"d1", "d3", "d4"}},
		{`{"year": {"$lt": 1990}}`, []string{"d2"}},
		{`{"year": {"$lte": 1989}}`, []string{"d2"}},
		{`{"year": {"$ne": 1992}}`, []string{"d2", "d3", "d4"}},
		{`{"artist": {"$in": ["Radiohead", "Portishead"]}}`, []string{"d3", "d4"}},
		{`{"title": {"$regex": "wish"}}`, []string{"d1"}},
		{`{"title": {"$regex": "^D"}}`, []string{"d2", "d4"}},
		{`{"artist": "The Cure", "year": 1989}`, []string{"d2"}},
		{`{"$or": [{"year": 1992}, {"year": 1994}]}`, []string{"d1", "d4"}},
		{`{"$and": [{"artist": "The Cure"}, {"year": {"$gt": 1990}}]}`, []string{"d1"}},
		{`{"label.name": "Parlophone"}`, []string{"d3"}},
		{`{"tracks": "High"}`, []string{"d1"}}, // implicit array membership
		{`{"tracks.1": "High"}`, []string{"d1"}},
		{`{"ghostfield": "x"}`, nil},
		{`{"year": {"$gt": 1990, "$lt": 1995}}`, []string{"d1", "d4"}},
	}
	for _, tt := range tests {
		docs, err := s.Find("albums", tt.filter)
		if err != nil {
			t.Errorf("Find(%s): %v", tt.filter, err)
			continue
		}
		var got []string
		for _, d := range docs {
			got = append(got, d.ID)
		}
		if strings.Join(got, ",") != strings.Join(tt.want, ",") {
			t.Errorf("Find(%s) = %v, want %v", tt.filter, got, tt.want)
		}
	}
}

func TestFindErrors(t *testing.T) {
	s := newCatalogue(t)
	for _, filter := range []string{
		`{"$bogus": []}`,
		`{"a": {"$bogus": 1}}`,
		`{"a": {"$regex": "["}}`,
		`{"a": {"$regex": 42}}`,
		`{"$and": "notarray"}`,
		`{"$or": [42]}`,
		`invalid`,
	} {
		if _, err := s.Find("albums", filter); err == nil {
			t.Errorf("Find(%s) should fail", filter)
		}
	}
	if _, err := s.Find("ghosts", `{}`); err == nil {
		t.Error("Find on unknown collection should fail")
	}
	// $in with a non-array arg fails at match time.
	if _, err := s.Find("albums", `{"year": {"$in": 1992}}`); err == nil {
		t.Error("$in with non-array should fail")
	}
}

func TestCountAndQuery(t *testing.T) {
	s := newCatalogue(t)
	n, err := s.Count("albums", `{"artist": "The Cure"}`)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}

	docs, err := s.Query(`albums.find({"year": {"$gt": 1990}})`)
	if err != nil || len(docs) != 3 {
		t.Errorf("Query find: %d docs, %v", len(docs), err)
	}
	docs, err = s.Query(`albums.count({})`)
	if err != nil || len(docs) != 1 || docs[0].Fields()["count"] != "4" {
		t.Errorf("Query count: %+v, %v", docs, err)
	}
	if _, err := s.Query(`albums.drop({})`); err == nil {
		t.Error("unknown verb should fail")
	}
	if _, err := s.Query(`garbage`); err == nil {
		t.Error("malformed query should fail")
	}
}

func TestParseQuery(t *testing.T) {
	c, v, f, err := ParseQuery(`albums.find({"a": 1})`)
	if err != nil || c != "albums" || v != "find" || f != `{"a": 1}` {
		t.Errorf("ParseQuery = %q %q %q %v", c, v, f, err)
	}
	if _, _, _, err := ParseQuery(`albums.find`); err == nil {
		t.Error("missing parentheses should fail")
	}
}

func TestGetBatch(t *testing.T) {
	s := newCatalogue(t)
	docs := s.GetBatch("albums", []string{"d3", "ghost", "d1"})
	if len(docs) != 2 || docs[0].ID != "d3" || docs[1].ID != "d1" {
		t.Errorf("GetBatch = %+v", docs)
	}
	if s.GetBatch("ghosts", []string{"d1"}) != nil {
		t.Error("GetBatch on missing collection should be nil")
	}
}

func TestDelete(t *testing.T) {
	s := newCatalogue(t)
	if !s.Delete("albums", "d2") {
		t.Error("Delete existing returned false")
	}
	if s.Delete("albums", "d2") {
		t.Error("Delete missing returned true")
	}
	if s.Delete("ghosts", "d2") {
		t.Error("Delete on missing collection returned true")
	}
	if s.Len("albums") != 3 {
		t.Errorf("Len after delete = %d", s.Len("albums"))
	}
	docs, _ := s.Find("albums", `{}`)
	if len(docs) != 3 {
		t.Errorf("Find after delete = %d docs", len(docs))
	}
}

func TestFlatten(t *testing.T) {
	s := New("db")
	_, err := s.Insert("c", `{"_id": "x", "a": {"b": {"c": 1.5}}, "arr": [true, null, "s"], "n": 3}`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Get("c", "x")
	f := d.Fields()
	want := map[string]string{
		"_id": "x", "a.b.c": "1.5", "arr.0": "true", "arr.1": "null", "arr.2": "s", "n": "3",
	}
	for k, v := range want {
		if f[k] != v {
			t.Errorf("Fields[%q] = %q, want %q", k, f[k], v)
		}
	}
	if len(f) != len(want) {
		t.Errorf("Fields has %d entries, want %d: %v", len(f), len(want), f)
	}
}

func TestDocumentJSON(t *testing.T) {
	s := newCatalogue(t)
	d, _ := s.Get("albums", "d4")
	j := d.JSON()
	if !strings.Contains(j, `"title":"Dummy"`) {
		t.Errorf("JSON() = %s", j)
	}
}

func TestCollectionsSorted(t *testing.T) {
	s := New("db")
	s.Insert("zz", `{"a": 1}`)
	s.Insert("aa", `{"a": 1}`)
	got := s.Collections()
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Errorf("Collections() = %v", got)
	}
}

func TestExistsAndNin(t *testing.T) {
	s := newCatalogue(t)
	tests := []struct {
		filter string
		want   int
	}{
		{`{"label": {"$exists": true}}`, 1}, // only d3 has a label
		{`{"label": {"$exists": false}}`, 3},
		{`{"tracks": {"$exists": true}}`, 1}, // only d1
		{`{"artist": {"$nin": ["The Cure"]}}`, 2},
		{`{"ghost": {"$nin": ["x"]}}`, 4}, // absent fields match $nin
		{`{"year": {"$nin": [1992, 1989]}}`, 2},
	}
	for _, tt := range tests {
		docs, err := s.Find("albums", tt.filter)
		if err != nil {
			t.Errorf("Find(%s): %v", tt.filter, err)
			continue
		}
		if len(docs) != tt.want {
			t.Errorf("Find(%s) = %d docs, want %d", tt.filter, len(docs), tt.want)
		}
	}
	if _, err := s.Find("albums", `{"a": {"$exists": "yes"}}`); err == nil {
		t.Error("$exists with non-boolean should fail")
	}
	if _, err := s.Find("albums", `{"a": {"$nin": 42}}`); err == nil {
		t.Error("$nin with non-array should fail")
	}
}
