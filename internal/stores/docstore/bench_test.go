package docstore

import (
	"fmt"
	"testing"
)

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s := New("bench")
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`{"_id": "d%d", "title": "Album %d", "year": %d, "label": {"name": "L%d"}}`,
			i, i, 1970+i%55, i%20)
		if _, err := s.Insert("albums", doc); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkFindEquality(b *testing.B) {
	s := benchStore(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Find("albums", `{"year": 1999}`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindRange(b *testing.B) {
	s := benchStore(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Find("albums", `{"year": {"$gte": 1990, "$lt": 2000}}`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetBatchDocs(b *testing.B) {
	s := benchStore(b, 5000)
	ids := make([]string, 100)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%d", i*37%5000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.GetBatch("albums", ids); len(got) != 100 {
			b.Fatal("short read")
		}
	}
}

func BenchmarkFlatten(b *testing.B) {
	s := benchStore(b, 1)
	d, _ := s.Get("albums", "d0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := &Document{ID: d.ID, Body: d.Body}
		if len(fresh.Fields()) == 0 {
			b.Fatal("no fields")
		}
	}
}
