// Package docstore implements an embedded JSON document store with a
// MongoDB-like filter language. It stands in for the MongoDB instance of the
// paper's polystore: the warehouse department's catalogue database.
//
// Documents are JSON objects identified by a string "_id" field (generated
// when absent). Queries are expressed either through the typed Find API or
// through the textual form accepted by Query:
//
//	<collection>.find(<filter>)
//	<collection>.count(<filter>)
//
// where <filter> is a JSON object combining equality ({"artist": "The Cure"}),
// comparison operators ({"year": {"$gt": 1990}} with $gt/$gte/$lt/$lte/$ne/
// $regex/$in) and the logical operators {"$and": [...]} / {"$or": [...]}.
// Nested fields are addressed with dot paths ("label.name").
package docstore

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"quepa/internal/telemetry"
)

// Document is a stored JSON object plus its identifier.
type Document struct {
	ID     string
	Body   map[string]any
	fields map[string]string // lazily built flattened view
}

// Fields returns a flattened field/value view of the document: nested objects
// use dot paths, arrays use numeric path components, scalars are rendered
// with JSON formatting conventions (no quotes on strings).
func (d *Document) Fields() map[string]string {
	if d.fields == nil {
		d.fields = map[string]string{}
		flattenInto(d.fields, "", d.Body)
	}
	return d.fields
}

// JSON renders the document body as compact JSON.
func (d *Document) JSON() string {
	b, err := json.Marshal(d.Body)
	if err != nil {
		return "{}"
	}
	return string(b)
}

func flattenInto(out map[string]string, prefix string, v any) {
	switch val := v.(type) {
	case map[string]any:
		for k, sub := range val {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenInto(out, p, sub)
		}
	case []any:
		for i, sub := range val {
			p := strconv.Itoa(i)
			if prefix != "" {
				p = prefix + "." + p
			}
			flattenInto(out, p, sub)
		}
	default:
		out[prefix] = scalarString(v)
	}
}

func scalarString(v any) string {
	switch val := v.(type) {
	case nil:
		return "null"
	case string:
		return val
	case bool:
		return strconv.FormatBool(val)
	case float64:
		return strconv.FormatFloat(val, 'g', -1, 64)
	case json.Number:
		return val.String()
	default:
		b, err := json.Marshal(val)
		if err != nil {
			return fmt.Sprint(val)
		}
		return string(b)
	}
}

// Store is an embedded document database.
type Store struct {
	name        string
	mu          sync.RWMutex
	collections map[string]*collection
	roundTrips  atomic.Uint64
	nextID      uint64
	tel         telemetry.StoreOps
}

type collection struct {
	docs  map[string]*Document
	order []string
}

// New creates an empty document database with the given name.
func New(name string) *Store {
	return &Store{name: name, collections: map[string]*collection{}, tel: telemetry.NewStoreOps(name)}
}

// Name returns the database name.
func (s *Store) Name() string { return s.name }

// RoundTrips returns the number of public calls served so far.
func (s *Store) RoundTrips() uint64 { return s.roundTrips.Load() }

// Collections lists collection names in sorted order.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of documents in a collection.
func (s *Store) Len(collectionName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.collections[collectionName]; ok {
		return len(c.docs)
	}
	return 0
}

// Insert stores a document given as a JSON string. A missing "_id" gets a
// generated one. It returns the document id.
func (s *Store) Insert(collectionName, jsonBody string) (string, error) {
	var body map[string]any
	dec := json.NewDecoder(strings.NewReader(jsonBody))
	if err := dec.Decode(&body); err != nil {
		return "", fmt.Errorf("docstore: invalid document JSON: %w", err)
	}
	return s.InsertMap(collectionName, body)
}

// InsertMap stores a document given as a decoded JSON object. The map is
// owned by the store afterwards and must not be mutated by the caller.
func (s *Store) InsertMap(collectionName string, body map[string]any) (string, error) {
	s.roundTrips.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[collectionName]
	if !ok {
		c = &collection{docs: map[string]*Document{}}
		s.collections[collectionName] = c
	}
	var id string
	if raw, ok := body["_id"]; ok {
		id, ok = raw.(string)
		if !ok || id == "" {
			return "", fmt.Errorf("docstore: _id must be a non-empty string, got %v", raw)
		}
	} else {
		s.nextID++
		id = "doc:" + strconv.FormatUint(s.nextID, 10)
		body["_id"] = id
	}
	if _, dup := c.docs[id]; dup {
		return "", fmt.Errorf("docstore: duplicate _id %q in collection %q", id, collectionName)
	}
	c.docs[id] = &Document{ID: id, Body: body}
	c.order = append(c.order, id)
	return id, nil
}

// Get retrieves one document by id. The boolean reports presence.
func (s *Store) Get(collectionName, id string) (*Document, bool) {
	s.roundTrips.Add(1)
	defer s.tel.Get.Since(telemetry.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return nil, false
	}
	d, ok := c.docs[id]
	return d, ok
}

// GetBatch retrieves many documents by id in one round trip, preserving the
// order of found ids and skipping missing ones.
func (s *Store) GetBatch(collectionName string, ids []string) []*Document {
	s.roundTrips.Add(1)
	defer s.tel.GetBatch.Since(telemetry.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return nil
	}
	out := make([]*Document, 0, len(ids))
	for _, id := range ids {
		if d, ok := c.docs[id]; ok {
			out = append(out, d)
		}
	}
	return out
}

// Delete removes a document by id, reporting whether it existed.
func (s *Store) Delete(collectionName, id string) bool {
	s.roundTrips.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return false
	}
	if _, exists := c.docs[id]; !exists {
		return false
	}
	delete(c.docs, id)
	for i, k := range c.order {
		if k == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return true
}

// Find returns the documents of a collection matching a filter given as a
// JSON string ("{}" or "" matches everything), in insertion order.
func (s *Store) Find(collectionName, filterJSON string) ([]*Document, error) {
	f, err := parseFilter(filterJSON)
	if err != nil {
		return nil, err
	}
	s.roundTrips.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return nil, fmt.Errorf("docstore: unknown collection %q", collectionName)
	}
	var out []*Document
	for _, id := range c.order {
		d := c.docs[id]
		match, err := f.matches(d)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, d)
		}
	}
	return out, nil
}

// Count returns the number of documents matching a filter.
func (s *Store) Count(collectionName, filterJSON string) (int, error) {
	docs, err := s.Find(collectionName, filterJSON)
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// queryRE matches the textual query form "<collection>.<verb>(<filter>)".
var queryRE = regexp.MustCompile(`(?s)^\s*([A-Za-z0-9_-]+)\.(find|count)\((.*)\)\s*$`)

// ParseQuery splits a textual query into collection, verb and filter.
// Exposed for the validator, which must classify queries (count is an
// aggregate and therefore not augmentable) without executing them.
func ParseQuery(q string) (collectionName, verb, filter string, err error) {
	m := queryRE.FindStringSubmatch(q)
	if m == nil {
		return "", "", "", fmt.Errorf("docstore: malformed query %q: want collection.find({...}) or collection.count({...})", q)
	}
	return m[1], m[2], strings.TrimSpace(m[3]), nil
}

// Query executes the textual query form. find returns the matching
// documents; count returns a single synthetic document {"count": n}.
func (s *Store) Query(q string) ([]*Document, error) {
	defer s.tel.Query.Since(telemetry.Now())
	collectionName, verb, filter, err := ParseQuery(q)
	if err != nil {
		return nil, err
	}
	switch verb {
	case "find":
		return s.Find(collectionName, filter)
	case "count":
		n, err := s.Count(collectionName, filter)
		if err != nil {
			return nil, err
		}
		return []*Document{{ID: "count", Body: map[string]any{"count": float64(n)}}}, nil
	default:
		return nil, fmt.Errorf("docstore: unknown verb %q", verb)
	}
}
