package relstore

// This file defines the abstract syntax tree of the SQL dialect understood by
// the engine. The dialect covers the fragment the paper's experiments need:
// table creation, inserts, and SELECT with WHERE / ORDER BY / LIMIT plus the
// aggregate functions that the augmentation validator must recognize and
// reject (queries with aggregates cannot be augmented, Section III-A).

// statement is the interface implemented by every parsed SQL statement.
type statement interface{ stmt() }

// colType is a declared column type. Storage is dynamically typed (values are
// strings compared numerically when both sides parse as numbers), so the
// declared type is used only for validation and metadata.
type colType int

const (
	typeText colType = iota
	typeInt
	typeFloat
)

func (t colType) String() string {
	switch t {
	case typeInt:
		return "INT"
	case typeFloat:
		return "FLOAT"
	default:
		return "TEXT"
	}
}

// columnDef is one column of a CREATE TABLE statement.
type columnDef struct {
	name       string
	typ        colType
	primaryKey bool
}

// createTableStmt is CREATE TABLE name (col TYPE [PRIMARY KEY], ...).
type createTableStmt struct {
	table   string
	columns []columnDef
}

func (*createTableStmt) stmt() {}

// createIndexStmt is CREATE INDEX ON table (column).
type createIndexStmt struct {
	table  string
	column string
}

func (*createIndexStmt) stmt() {}

// insertStmt is INSERT INTO table [(cols)] VALUES (...), (...).
type insertStmt struct {
	table   string
	columns []string   // empty means "all columns in table order"
	rows    [][]string // literal values per row
}

func (*insertStmt) stmt() {}

// deleteStmt is DELETE FROM table [WHERE expr].
type deleteStmt struct {
	table string
	where expr // nil means delete all rows
}

func (*deleteStmt) stmt() {}

// updateStmt is UPDATE table SET col = literal [, ...] [WHERE expr].
type updateStmt struct {
	table string
	set   map[string]string
	where expr
}

func (*updateStmt) stmt() {}

// aggFunc enumerates the supported aggregate functions.
type aggFunc int

const (
	aggNone aggFunc = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

func (a aggFunc) String() string {
	switch a {
	case aggCount:
		return "COUNT"
	case aggSum:
		return "SUM"
	case aggAvg:
		return "AVG"
	case aggMin:
		return "MIN"
	case aggMax:
		return "MAX"
	default:
		return ""
	}
}

// selectItem is one projection of a SELECT list: either a plain column,
// "*" (star), or an aggregate over a column or "*".
type selectItem struct {
	star   bool
	column string
	agg    aggFunc
}

// joinClause is an INNER JOIN of a second table on an equality condition:
// FROM t1 JOIN t2 ON t1.a = t2.b. Joined rows expose their columns under
// qualified names ("t1.a").
type joinClause struct {
	table    string // right-hand table
	leftCol  string // column of the FROM table
	rightCol string // column of the joined table
}

// selectStmt is the SELECT statement.
type selectStmt struct {
	items    []selectItem
	distinct bool
	table    string
	join     *joinClause // nil for single-table queries
	where    expr        // nil when absent
	orderBy  string
	orderDir string // "ASC" or "DESC"; empty when no ORDER BY
	limit    int    // -1 when no LIMIT
	offset   int    // 0 when no OFFSET
}

func (*selectStmt) stmt() {}

// hasAggregate reports whether any projection is an aggregate function.
// The augmentation validator uses this to reject non-augmentable queries.
func (s *selectStmt) hasAggregate() bool {
	for _, it := range s.items {
		if it.agg != aggNone {
			return true
		}
	}
	return false
}

// expr is a boolean or comparison expression in a WHERE clause.
type expr interface{ exprNode() }

// binaryExpr is AND / OR over two sub-expressions.
type binaryExpr struct {
	op    string // "AND" or "OR"
	left  expr
	right expr
}

func (*binaryExpr) exprNode() {}

// notExpr negates a sub-expression.
type notExpr struct{ inner expr }

func (*notExpr) exprNode() {}

// compareExpr is column OP literal, where OP is one of = != <> < > <= >= LIKE.
type compareExpr struct {
	column string
	op     string
	value  string
}

func (*compareExpr) exprNode() {}

// inExpr is column IN (v1, v2, ...) or column NOT IN (...).
type inExpr struct {
	column string
	values []string
	negate bool
}

func (*inExpr) exprNode() {}

// betweenExpr is column BETWEEN lo AND hi (inclusive on both ends), or the
// NOT BETWEEN negation.
type betweenExpr struct {
	column string
	lo, hi string
	negate bool
}

func (*betweenExpr) exprNode() {}
