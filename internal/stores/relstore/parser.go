package relstore

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream produced by lex.
type parser struct {
	toks []token
	pos  int
}

// parse tokenizes and parses a single SQL statement.
func parse(input string) (statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("relstore: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// expectKeyword consumes the next token, requiring it to be the given keyword.
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("relstore: expected %s at offset %d, found %q", kw, t.pos, t.text)
	}
	return nil
}

// expectSymbol consumes the next token, requiring it to be the given symbol.
func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("relstore: expected %q at offset %d, found %q", sym, t.pos, t.text)
	}
	return nil
}

// expectIdent consumes the next token, requiring an identifier, and returns it.
func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("relstore: expected identifier at offset %d, found %q", t.pos, t.text)
	}
	return t.text, nil
}

// acceptKeyword consumes the keyword if it is next and reports whether it did.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

// acceptSymbol consumes the symbol if it is next and reports whether it did.
func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseStatement() (statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("relstore: expected statement keyword at offset %d, found %q", t.pos, t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "CREATE":
		return p.parseCreate()
	case "DELETE":
		return p.parseDelete()
	case "UPDATE":
		return p.parseUpdate()
	default:
		return nil, fmt.Errorf("relstore: unsupported statement %q", t.text)
	}
}

func (p *parser) parseCreate() (statement, error) {
	p.next() // CREATE
	if p.acceptKeyword("TABLE") {
		return p.parseCreateTable()
	}
	if p.acceptKeyword("INDEX") {
		return p.parseCreateIndex()
	}
	return nil, fmt.Errorf("relstore: expected TABLE or INDEX after CREATE")
}

func (p *parser) parseCreateTable() (statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	st := &createTableStmt{table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		def := columnDef{name: col, typ: typeText}
		switch {
		case p.acceptKeyword("INT"):
			def.typ = typeInt
		case p.acceptKeyword("FLOAT"):
			def.typ = typeFloat
		case p.acceptKeyword("TEXT"):
			def.typ = typeText
		default:
			return nil, fmt.Errorf("relstore: column %q missing type (TEXT, INT or FLOAT)", col)
		}
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			def.primaryKey = true
		}
		st.columns = append(st.columns, def)
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	return st, nil
}

func (p *parser) parseCreateIndex() (statement, error) {
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &createIndexStmt{table: table, column: col}, nil
}

func (p *parser) parseInsert() (statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &insertStmt{table: table}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.columns = append(st.columns, col)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []string
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
		st.rows = append(st.rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &deleteStmt{table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

func (p *parser) parseUpdate() (statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &updateStmt{table: table, set: map[string]string{}}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		st.set[col] = v
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

func (p *parser) parseSelect() (statement, error) {
	p.next() // SELECT
	st := &selectStmt{limit: -1}
	st.distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.items = append(st.items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.table = table
	if p.acceptKeyword("JOIN") {
		join, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		st.join = join
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	if p.acceptKeyword("GROUP") {
		return nil, fmt.Errorf("relstore: GROUP BY is not supported")
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		st.orderBy = col
		st.orderDir = "ASC"
		if p.acceptKeyword("DESC") {
			st.orderDir = "DESC"
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("relstore: expected number after LIMIT, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("relstore: invalid LIMIT %q", t.text)
		}
		st.limit = n
	}
	if p.acceptKeyword("OFFSET") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("relstore: expected number after OFFSET, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("relstore: invalid OFFSET %q", t.text)
		}
		st.offset = n
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "*" {
		p.next()
		return selectItem{star: true}, nil
	}
	if t.kind == tokKeyword {
		var agg aggFunc
		switch t.text {
		case "COUNT":
			agg = aggCount
		case "SUM":
			agg = aggSum
		case "AVG":
			agg = aggAvg
		case "MIN":
			agg = aggMin
		case "MAX":
			agg = aggMax
		default:
			return selectItem{}, fmt.Errorf("relstore: unexpected keyword %q in select list", t.text)
		}
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return selectItem{}, err
		}
		item := selectItem{agg: agg}
		if p.acceptSymbol("*") {
			if agg != aggCount {
				return selectItem{}, fmt.Errorf("relstore: %s(*) is not allowed; only COUNT(*)", agg)
			}
			item.star = true
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return selectItem{}, err
			}
			item.column = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return selectItem{}, err
		}
		return item, nil
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{column: col}, nil
}

// parseColumnRef parses a plain or table-qualified column name ("a" or
// "t.a"), returning its textual form.
func (p *parser) parseColumnRef() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		return name + "." + col, nil
	}
	return name, nil
}

// parseJoin parses "t2 ON t1.a = t2.b" after the JOIN keyword.
func (p *parser) parseJoin() (*joinClause, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	left, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	right, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	return &joinClause{table: table, leftCol: left, rightCol: right}, nil
}

// parseExpr parses an OR-expression (lowest precedence).
func (p *parser) parseExpr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "OR", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "AND", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	}
	if p.acceptSymbol("(") {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr, error) {
	col, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	t := p.next()
	switch {
	case t.kind == tokSymbol && isCompareOp(t.text):
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "<>" {
			op = "!="
		}
		return &compareExpr{column: col, op: op, value: v}, nil
	case t.kind == tokKeyword && t.text == "LIKE":
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &compareExpr{column: col, op: "LIKE", value: v}, nil
	case t.kind == tokKeyword && t.text == "NOT":
		if p.acceptKeyword("BETWEEN") {
			return p.parseBetween(col, true)
		}
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		vals, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return &inExpr{column: col, values: vals, negate: true}, nil
	case t.kind == tokKeyword && t.text == "IN":
		vals, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return &inExpr{column: col, values: vals}, nil
	case t.kind == tokKeyword && t.text == "BETWEEN":
		return p.parseBetween(col, false)
	default:
		return nil, fmt.Errorf("relstore: expected comparison operator after %q at offset %d, found %q", col, t.pos, t.text)
	}
}

func isCompareOp(s string) bool {
	switch s {
	case "=", "!=", "<>", "<", ">", "<=", ">=":
		return true
	}
	return false
}

// parseBetween parses the "lo AND hi" tail of a BETWEEN predicate.
func (p *parser) parseBetween(col string, negate bool) (expr, error) {
	lo, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &betweenExpr{column: col, lo: lo, hi: hi, negate: negate}, nil
}

func (p *parser) parseLiteralList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var vals []string
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return vals, nil
	}
}

// parseLiteral accepts a string or number literal and returns its text value.
func (p *parser) parseLiteral() (string, error) {
	t := p.next()
	switch t.kind {
	case tokString, tokNumber:
		return t.text, nil
	default:
		return "", fmt.Errorf("relstore: expected literal at offset %d, found %q", t.pos, t.text)
	}
}
