package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// This file executes INNER JOIN queries: FROM t1 JOIN t2 ON t1.a = t2.b.
// Joined rows expose every column under its qualified name ("t1.a");
// unqualified names resolve when they are unambiguous across the two tables.
// Joins serve local querying only — the augmentation validator rejects them,
// because a joined row is not a data object with a global key.

// joined is one output row of the hash join before projection.
type joined struct {
	leftKey, rightKey string
	values            map[string]string // qualified name -> value
	lookup            func(string) (string, bool)
}

func (s *Store) runJoinSelect(sel *selectStmt) ([]Row, error) {
	left, ok := s.tables[sel.table]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %q", sel.table)
	}
	right, ok := s.tables[sel.join.table]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %q", sel.join.table)
	}
	if sel.table == sel.join.table {
		return nil, fmt.Errorf("relstore: self-joins are not supported")
	}
	if sel.hasAggregate() {
		return nil, fmt.Errorf("relstore: aggregates over joins are not supported")
	}
	leftOn, err := resolveColumn(left, sel.table, sel.join.leftCol)
	if err != nil {
		return nil, err
	}
	rightOn, err := resolveColumn(right, sel.join.table, sel.join.rightCol)
	if err != nil {
		return nil, err
	}

	// Hash join: build on the right table, probe with the left.
	build := map[string][]string{}
	for _, rk := range right.order {
		v := right.rows[rk][rightOn]
		build[v] = append(build[v], rk)
	}

	// ambiguous tracks unqualified names present in both tables.
	ambiguous := map[string]bool{}
	for name := range left.colIdx {
		if _, dup := right.colIdx[name]; dup {
			ambiguous[name] = true
		}
	}
	makeLookup := func(lv, rv []string) func(string) (string, bool) {
		return func(ref string) (string, bool) {
			if tbl, col, qualified := strings.Cut(ref, "."); qualified {
				switch tbl {
				case sel.table:
					if ci, ok := left.colIdx[col]; ok {
						return lv[ci], true
					}
				case sel.join.table:
					if ci, ok := right.colIdx[col]; ok {
						return rv[ci], true
					}
				}
				return "", false
			}
			if ambiguous[ref] {
				return "", false // force qualification
			}
			if ci, ok := left.colIdx[ref]; ok {
				return lv[ci], true
			}
			if ci, ok := right.colIdx[ref]; ok {
				return rv[ci], true
			}
			return "", false
		}
	}

	var out []joined
	for _, lk := range left.order {
		lv := left.rows[lk]
		for _, rk := range build[lv[leftOn]] {
			rv := right.rows[rk]
			lookup := makeLookup(lv, rv)
			if sel.where != nil {
				match, err := evalExpr(sel.where, lookup)
				if err != nil {
					return nil, err
				}
				if !match {
					continue
				}
			}
			out = append(out, joined{leftKey: lk, rightKey: rk, lookup: lookup})
		}
	}

	if sel.orderBy != "" {
		probeOK := false
		if len(out) > 0 {
			_, probeOK = out[0].lookup(sel.orderBy)
		}
		if len(out) > 0 && !probeOK {
			return nil, fmt.Errorf("relstore: unknown or ambiguous ORDER BY column %q", sel.orderBy)
		}
		sort.SliceStable(out, func(i, j int) bool {
			a, _ := out[i].lookup(sel.orderBy)
			b, _ := out[j].lookup(sel.orderBy)
			c := compareValues(a, b)
			if sel.orderDir == "DESC" {
				return c > 0
			}
			return c < 0
		})
	}
	if sel.offset > 0 {
		if sel.offset >= len(out) {
			out = nil
		} else {
			out = out[sel.offset:]
		}
	}
	if sel.limit >= 0 && len(out) > sel.limit {
		out = out[:sel.limit]
	}

	// Projection: star expands to every qualified column of both tables.
	rows := make([]Row, 0, len(out))
	seen := map[string]bool{}
	joinedName := sel.table + " JOIN " + sel.join.table
	for _, j := range out {
		values := map[string]string{}
		for _, it := range sel.items {
			if it.star {
				lk := j.leftKey
				rk := j.rightKey
				lv := left.rows[lk]
				rv := right.rows[rk]
				for i, c := range left.cols {
					values[sel.table+"."+c.name] = lv[i]
				}
				for i, c := range right.cols {
					values[sel.join.table+"."+c.name] = rv[i]
				}
				continue
			}
			v, ok := j.lookup(it.column)
			if !ok {
				return nil, fmt.Errorf("relstore: unknown or ambiguous column %q in join projection", it.column)
			}
			values[it.column] = v
		}
		row := Row{Table: joinedName, Key: j.leftKey + "\x1f" + j.rightKey, Values: values}
		if sel.distinct {
			sig := rowSignature(row)
			if seen[sig] {
				continue
			}
			seen[sig] = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// resolveColumn resolves a possibly qualified column reference against one
// table, returning the column index.
func resolveColumn(t *table, tableName, ref string) (int, error) {
	if tbl, col, qualified := strings.Cut(ref, "."); qualified {
		if tbl != tableName {
			return 0, fmt.Errorf("relstore: column %q does not belong to table %q", ref, tableName)
		}
		ref = col
	}
	ci, ok := t.colIdx[ref]
	if !ok {
		return 0, fmt.Errorf("relstore: unknown column %q in table %q", ref, tableName)
	}
	return ci, nil
}
