package relstore

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies SQL lexemes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString // single-quoted literal, quotes stripped
	tokNumber
	tokSymbol // punctuation and operators: ( ) , * = != <> < > <= >=
)

// token is a single SQL lexeme with its position for error reporting.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int    // byte offset in the input
}

// keywords recognized by the dialect. Anything else alphabetic is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "IN": true, "ORDER": true, "BY": true, "BETWEEN": true, "OFFSET": true,
	"ASC": true, "DESC": true, "LIMIT": true, "INSERT": true, "INTO": true,
	"VALUES": true, "CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"PRIMARY": true, "KEY": true, "TEXT": true, "INT": true, "FLOAT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DELETE": true, "UPDATE": true, "SET": true, "DISTINCT": true,
	"GROUP": true, "HAVING": true, "JOIN": true,
}

// lex tokenizes a SQL string. It returns a descriptive error on the first
// malformed lexeme (currently only unterminated string literals).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					// Doubled quote is an escaped quote inside the literal.
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("relstore: unterminated string literal at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<' || c == '>' || c == '!':
			start := i
			op := string(c)
			i++
			if i < n && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				op += string(input[i])
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("relstore: stray '!' at offset %d", start)
			}
			toks = append(toks, token{kind: tokSymbol, text: op, pos: start})
		case strings.ContainsRune("(),*=.;", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			i++
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentRune(rune(c)):
			start := i
			for i < n && isIdentRune(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			return nil, fmt.Errorf("relstore: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
