package relstore

import (
	"strconv"
	"strings"
)

// This file renders SELECT statements back to SQL text. The augmentation
// validator uses it to rewrite queries so that the identifiers of the
// returned data objects are part of the projection (step 3 of the paper's
// Fig. 2): a query like SELECT name FROM inventory is rewritten to
// SELECT id, name FROM inventory before execution.

// EnsureKeyColumn returns the statement's SQL with the given key column added
// to the projection when the statement is a non-aggregate SELECT that does
// not already project it (directly or via *). The boolean reports whether a
// rewrite happened; when false, the returned string is the rendering of the
// original statement.
func (st Statement) EnsureKeyColumn(keyColumn string) (string, bool) {
	sel, ok := st.inner.(*selectStmt)
	if !ok || sel.hasAggregate() {
		return renderStatement(st.inner), false
	}
	for _, it := range sel.items {
		if it.star || it.column == keyColumn {
			return renderSelect(sel), false
		}
	}
	rewritten := *sel
	rewritten.items = append([]selectItem{{column: keyColumn}}, sel.items...)
	return renderSelect(&rewritten), true
}

func renderStatement(st statement) string {
	if sel, ok := st.(*selectStmt); ok {
		return renderSelect(sel)
	}
	// Only SELECTs are ever rendered; other statements are not rewritten.
	return ""
}

func renderSelect(sel *selectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if sel.distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range sel.items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.agg != aggNone:
			b.WriteString(it.agg.String())
			b.WriteByte('(')
			if it.star {
				b.WriteByte('*')
			} else {
				b.WriteString(it.column)
			}
			b.WriteByte(')')
		case it.star:
			b.WriteByte('*')
		default:
			b.WriteString(it.column)
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(sel.table)
	if sel.where != nil {
		b.WriteString(" WHERE ")
		renderExpr(&b, sel.where)
	}
	if sel.orderBy != "" {
		b.WriteString(" ORDER BY ")
		b.WriteString(sel.orderBy)
		b.WriteByte(' ')
		b.WriteString(sel.orderDir)
	}
	if sel.limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(sel.limit))
	}
	if sel.offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(sel.offset))
	}
	return b.String()
}

func renderExpr(b *strings.Builder, e expr) {
	switch n := e.(type) {
	case *binaryExpr:
		b.WriteByte('(')
		renderExpr(b, n.left)
		b.WriteByte(' ')
		b.WriteString(n.op)
		b.WriteByte(' ')
		renderExpr(b, n.right)
		b.WriteByte(')')
	case *notExpr:
		b.WriteString("NOT (")
		renderExpr(b, n.inner)
		b.WriteByte(')')
	case *compareExpr:
		b.WriteString(n.column)
		b.WriteByte(' ')
		b.WriteString(n.op)
		b.WriteByte(' ')
		renderLiteral(b, n.value)
	case *inExpr:
		b.WriteString(n.column)
		if n.negate {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, v := range n.values {
			if i > 0 {
				b.WriteString(", ")
			}
			renderLiteral(b, v)
		}
		b.WriteByte(')')
	case *betweenExpr:
		b.WriteString(n.column)
		if n.negate {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		renderLiteral(b, n.lo)
		b.WriteString(" AND ")
		renderLiteral(b, n.hi)
	}
}

// renderLiteral quotes a value as a SQL string literal unless it is a plain
// number, doubling embedded quotes.
func renderLiteral(b *strings.Builder, v string) {
	if _, err := strconv.ParseFloat(v, 64); err == nil && v != "" {
		b.WriteString(v)
		return
	}
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(v, "'", "''"))
	b.WriteByte('\'')
}
