package relstore

import (
	"strings"
	"testing"
)

// newSalesDB builds inventory + sales tables for join testing.
func newSalesDB(t *testing.T) *Store {
	t.Helper()
	s := newInventory(t)
	mustExec(t, s, `CREATE TABLE sales (sid TEXT PRIMARY KEY, item TEXT, customer TEXT, total FLOAT)`)
	mustExec(t, s, `INSERT INTO sales VALUES
		('s1', 'a32', 'John', 20.0),
		('s2', 'a32', 'Mary', 19.0),
		('s3', 'a34', 'John', 22.0),
		('s4', 'zzz', 'Ghost', 1.0)`)
	return s
}

func TestInnerJoinBasic(t *testing.T) {
	s := newSalesDB(t)
	rows := mustSelect(t, s, `SELECT * FROM sales JOIN inventory ON sales.item = inventory.id`)
	// s4 references a missing item: inner join drops it.
	if len(rows) != 3 {
		t.Fatalf("join returned %d rows, want 3", len(rows))
	}
	r := rows[0]
	if r.Table != "sales JOIN inventory" {
		t.Errorf("joined table name = %q", r.Table)
	}
	if r.Values["sales.customer"] != "John" || r.Values["inventory.name"] != "Wish" {
		t.Errorf("joined row = %+v", r.Values)
	}
	// Star projection exposes every column of both tables, qualified.
	if len(r.Values) != 8 {
		t.Errorf("star join projected %d columns: %v", len(r.Values), r.Values)
	}
}

func TestJoinProjectionAndWhere(t *testing.T) {
	s := newSalesDB(t)
	rows := mustSelect(t, s, `SELECT sales.customer, inventory.name FROM sales JOIN inventory ON sales.item = inventory.id WHERE inventory.artist = 'Cure' AND total > 19.5`)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Values["sales.customer"] != "John" || rows[0].Values["inventory.name"] != "Wish" {
		t.Errorf("row = %+v", rows[0].Values)
	}
	// Unqualified unambiguous columns resolve ("total" only in sales).
	rows = mustSelect(t, s, `SELECT customer FROM sales JOIN inventory ON item = id WHERE total < 19.5`)
	if len(rows) != 1 || rows[0].Values["customer"] != "Mary" {
		t.Errorf("unqualified join = %+v", rows)
	}
}

func TestJoinOrderLimitDistinct(t *testing.T) {
	s := newSalesDB(t)
	rows := mustSelect(t, s, `SELECT customer, total FROM sales JOIN inventory ON item = id ORDER BY total DESC LIMIT 2`)
	if len(rows) != 2 || rows[0].Values["total"] != "22.0" {
		t.Fatalf("ordered join = %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT DISTINCT customer FROM sales JOIN inventory ON item = id`)
	if len(rows) != 2 { // John, Mary
		t.Errorf("distinct join = %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT customer FROM sales JOIN inventory ON item = id ORDER BY total ASC OFFSET 2`)
	if len(rows) != 1 {
		t.Errorf("offset join = %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT customer FROM sales JOIN inventory ON item = id OFFSET 10`)
	if len(rows) != 0 {
		t.Errorf("past-end offset = %+v", rows)
	}
}

func TestJoinErrors(t *testing.T) {
	s := newSalesDB(t)
	// "artist" is unique but "name"... inventory.name vs sales has no name;
	// create ambiguity with a column present in both tables.
	mustExec(t, s, `CREATE TABLE promos (pid TEXT PRIMARY KEY, item TEXT, name TEXT)`)
	mustExec(t, s, `INSERT INTO promos VALUES ('p1', 'a32', 'summer')`)

	errCases := []string{
		`SELECT * FROM ghost JOIN inventory ON a = b`,
		`SELECT * FROM sales JOIN ghost ON a = b`,
		`SELECT * FROM sales JOIN sales ON item = item`,
		`SELECT * FROM sales JOIN inventory ON ghost = id`,
		`SELECT * FROM sales JOIN inventory ON item = ghost`,
		`SELECT * FROM sales JOIN inventory ON inventory.id = sales.item`, // left col qualified with wrong table
		`SELECT COUNT(*) FROM sales JOIN inventory ON item = id`,
		`SELECT name FROM promos JOIN inventory ON promos.item = inventory.id`, // ambiguous "name"
		`SELECT ghost FROM sales JOIN inventory ON item = id`,
		`SELECT customer FROM sales JOIN inventory ON item = id ORDER BY ghost`,
		`SELECT * FROM sales JOIN inventory ON item = id WHERE ghost = '1'`,
	}
	for _, sql := range errCases {
		if _, err := s.Select(sql); err == nil {
			t.Errorf("%s: expected error", sql)
		}
	}
	// Qualified disambiguation fixes the ambiguous case.
	rows := mustSelect(t, s, `SELECT promos.name, inventory.name FROM promos JOIN inventory ON promos.item = inventory.id`)
	if len(rows) != 1 || rows[0].Values["promos.name"] != "summer" || rows[0].Values["inventory.name"] != "Wish" {
		t.Errorf("qualified projection = %+v", rows)
	}
}

func TestJoinRowKeys(t *testing.T) {
	s := newSalesDB(t)
	rows := mustSelect(t, s, `SELECT customer FROM sales JOIN inventory ON item = id`)
	seen := map[string]bool{}
	for _, r := range rows {
		if !strings.Contains(r.Key, "\x1f") {
			t.Errorf("join key %q lacks separator", r.Key)
		}
		if seen[r.Key] {
			t.Errorf("duplicate join key %q", r.Key)
		}
		seen[r.Key] = true
	}
}

func TestJoinStatementInspection(t *testing.T) {
	st, err := Parse(`SELECT * FROM sales JOIN inventory ON item = id`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasJoin() || !st.IsSelect() {
		t.Error("join statement misinspected")
	}
	st, err = Parse(`SELECT * FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasJoin() {
		t.Error("single-table select reported as join")
	}
}
