package relstore

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCompareValues(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1},
		{"2", "1", 1},
		{"2", "2", 0},
		{"10", "9", 1},     // numeric, not lexicographic
		{"1.5", "1.50", 0}, // numeric equality
		{"abc", "abd", -1}, // string fallback
		{"abc", "abc", 0},
		{"1", "a", -1}, // mixed falls back to string: "1" < "a"
		{"-3", "2", -1},
		{"", "", 0},
	}
	for _, tt := range tests {
		if got := compareValues(tt.a, tt.b); got != tt.want {
			t.Errorf("compareValues(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMatchLike(t *testing.T) {
	tests := []struct {
		value, pattern string
		want           bool
	}{
		{"Wish", "%wish%", true},
		{"Wish", "wish", true}, // case-insensitive
		{"Wishbone", "%wish%", true},
		{"A Wish Come True", "%wish%", true},
		{"fish", "%wish%", false},
		{"Dummy", "_ummy", true},
		{"Dummy", "__mmy", true},
		{"Dummy", "_mmy", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"ab", "a%b%c", false},
		{"abxbc", "a%b%c", true},
		{"100%", "100%", true},
		{"abc", "%%", true},
	}
	for _, tt := range tests {
		if got := matchLike(tt.value, tt.pattern); got != tt.want {
			t.Errorf("matchLike(%q, %q) = %v, want %v", tt.value, tt.pattern, got, tt.want)
		}
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// Property: a bare '%' pattern matches everything.
	all := func(s string) bool { return matchLike(s, "%") }
	if err := quick.Check(all, nil); err != nil {
		t.Error(err)
	}
	// Property: a pattern equal to the lowercase value always matches
	// (when the value contains no wildcard metacharacters).
	self := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return matchLike(s, strings.ToLower(s))
	}
	if err := quick.Check(self, nil); err != nil {
		t.Error(err)
	}
	// Property: %s% matches any string that contains s.
	contains := func(prefix, s, suffix string) bool {
		if strings.ContainsAny(s, "%_") || s == "" {
			return true
		}
		return matchLike(prefix+s+suffix, "%"+strings.ToLower(s)+"%")
	}
	if err := quick.Check(contains, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalExprUnknownColumn(t *testing.T) {
	lookup := func(string) (string, bool) { return "", false }
	for _, e := range []expr{
		&compareExpr{column: "ghost", op: "=", value: "1"},
		&inExpr{column: "ghost", values: []string{"1"}},
	} {
		if _, err := evalExpr(e, lookup); err == nil {
			t.Errorf("evalExpr(%T) with unknown column should fail", e)
		}
	}
}

func TestEvalExprShortCircuit(t *testing.T) {
	// The right side references an unknown column; short-circuiting must
	// prevent the error when the left side already decides the outcome.
	lookup := func(col string) (string, bool) {
		if col == "a" {
			return "1", true
		}
		return "", false
	}
	andExpr := &binaryExpr{op: "AND",
		left:  &compareExpr{column: "a", op: "=", value: "2"}, // false
		right: &compareExpr{column: "ghost", op: "=", value: "1"},
	}
	if v, err := evalExpr(andExpr, lookup); err != nil || v {
		t.Errorf("AND short-circuit: v=%v err=%v", v, err)
	}
	orExpr := &binaryExpr{op: "OR",
		left:  &compareExpr{column: "a", op: "=", value: "1"}, // true
		right: &compareExpr{column: "ghost", op: "=", value: "1"},
	}
	if v, err := evalExpr(orExpr, lookup); err != nil || !v {
		t.Errorf("OR short-circuit: v=%v err=%v", v, err)
	}
}
