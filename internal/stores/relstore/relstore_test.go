package relstore

import (
	"fmt"
	"strings"
	"testing"
)

// newInventory builds the running example's inventory table.
func newInventory(t *testing.T) *Store {
	t.Helper()
	s := New("transactions")
	mustExec(t, s, `CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT, price FLOAT)`)
	mustExec(t, s, `INSERT INTO inventory VALUES
		('a32', 'Cure', 'Wish', 18.5),
		('a33', 'Cure', 'Disintegration', 17.0),
		('a34', 'Radiohead', 'OK Computer', 21.0),
		('a35', 'Portishead', 'Dummy', 15.5)`)
	return s
}

func mustExec(t *testing.T, s *Store, sql string) int {
	t.Helper()
	n, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return n
}

func mustSelect(t *testing.T, s *Store, sql string) []Row {
	t.Helper()
	rows, err := s.Select(sql)
	if err != nil {
		t.Fatalf("Select(%s): %v", sql, err)
	}
	return rows
}

func TestCreateInsertSelect(t *testing.T) {
	s := newInventory(t)
	rows := mustSelect(t, s, `SELECT * FROM inventory WHERE name LIKE '%wish%'`)
	if len(rows) != 1 {
		t.Fatalf("LIKE query returned %d rows, want 1", len(rows))
	}
	if rows[0].Key != "a32" || rows[0].Values["artist"] != "Cure" {
		t.Errorf("unexpected row %+v", rows[0])
	}
}

func TestSelectComparisons(t *testing.T) {
	s := newInventory(t)
	tests := []struct {
		where string
		want  []string
	}{
		{`price > 17.0`, []string{"a32", "a34"}},
		{`price >= 17.0`, []string{"a32", "a33", "a34"}},
		{`price < 17.0`, []string{"a35"}},
		{`price <= 15.5`, []string{"a35"}},
		{`artist = 'Cure'`, []string{"a32", "a33"}},
		{`artist != 'Cure'`, []string{"a34", "a35"}},
		{`artist <> 'Cure'`, []string{"a34", "a35"}},
		{`artist = 'Cure' AND price > 18`, []string{"a32"}},
		{`artist = 'Radiohead' OR artist = 'Portishead'`, []string{"a34", "a35"}},
		{`NOT artist = 'Cure'`, []string{"a34", "a35"}},
		{`(artist = 'Cure' OR artist = 'Radiohead') AND price > 18`, []string{"a32", "a34"}},
		{`id IN ('a32', 'a35', 'zzz')`, []string{"a32", "a35"}},
		{`id NOT IN ('a32', 'a33', 'a34')`, []string{"a35"}},
		{`name LIKE 'D%'`, []string{"a33", "a35"}},
		{`name LIKE '_ummy'`, []string{"a35"}},
	}
	for _, tt := range tests {
		rows := mustSelect(t, s, `SELECT id FROM inventory WHERE `+tt.where)
		var got []string
		for _, r := range rows {
			got = append(got, r.Key)
		}
		if fmt.Sprint(got) != fmt.Sprint(tt.want) {
			t.Errorf("WHERE %s: got %v, want %v", tt.where, got, tt.want)
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	s := newInventory(t)
	rows := mustSelect(t, s, `SELECT id FROM inventory ORDER BY price DESC LIMIT 2`)
	if len(rows) != 2 || rows[0].Key != "a34" || rows[1].Key != "a32" {
		t.Fatalf("ORDER BY price DESC LIMIT 2 = %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT id FROM inventory ORDER BY price ASC`)
	if rows[0].Key != "a35" {
		t.Errorf("ORDER BY price ASC first row = %v", rows[0].Key)
	}
	rows = mustSelect(t, s, `SELECT id FROM inventory LIMIT 0`)
	if len(rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(rows))
	}
}

func TestAggregates(t *testing.T) {
	s := newInventory(t)
	tests := []struct {
		sql   string
		label string
		want  string
	}{
		{`SELECT COUNT(*) FROM inventory`, "COUNT(*)", "4"},
		{`SELECT COUNT(*) FROM inventory WHERE artist = 'Cure'`, "COUNT(*)", "2"},
		{`SELECT SUM(price) FROM inventory WHERE artist = 'Cure'`, "SUM(price)", "35.5"},
		{`SELECT AVG(price) FROM inventory WHERE artist = 'Cure'`, "AVG(price)", "17.75"},
		{`SELECT MIN(price) FROM inventory`, "MIN(price)", "15.5"},
		{`SELECT MAX(price) FROM inventory`, "MAX(price)", "21"},
	}
	for _, tt := range tests {
		rows := mustSelect(t, s, tt.sql)
		if len(rows) != 1 {
			t.Fatalf("%s returned %d rows", tt.sql, len(rows))
		}
		if got := rows[0].Values[tt.label]; got != tt.want {
			t.Errorf("%s = %q, want %q", tt.sql, got, tt.want)
		}
	}
	if _, err := s.Select(`SELECT id, COUNT(*) FROM inventory`); err == nil {
		t.Error("mixing aggregate and plain column should fail")
	}
	if _, err := s.Select(`SELECT SUM(artist) FROM inventory`); err == nil {
		t.Error("SUM over non-numeric column should fail")
	}
}

func TestDistinct(t *testing.T) {
	s := newInventory(t)
	rows := mustSelect(t, s, `SELECT DISTINCT artist FROM inventory`)
	if len(rows) != 3 {
		t.Errorf("DISTINCT artist returned %d rows, want 3", len(rows))
	}
}

func TestGetAndGetBatch(t *testing.T) {
	s := newInventory(t)
	row, ok, err := s.Get("inventory", "a33")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if row.Values["name"] != "Disintegration" {
		t.Errorf("Get returned %+v", row)
	}
	if _, ok, _ := s.Get("inventory", "missing"); ok {
		t.Error("Get of missing key reported present")
	}
	if _, _, err := s.Get("nope", "a"); err == nil {
		t.Error("Get on unknown table should fail")
	}

	rows, err := s.GetBatch("inventory", []string{"a35", "missing", "a32"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Key != "a35" || rows[1].Key != "a32" {
		t.Errorf("GetBatch = %+v", rows)
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	s := newInventory(t)
	if n := mustExec(t, s, `UPDATE inventory SET price = 19.0 WHERE id = 'a32'`); n != 1 {
		t.Errorf("UPDATE affected %d rows", n)
	}
	row, _, _ := s.Get("inventory", "a32")
	if row.Values["price"] != "19.0" {
		t.Errorf("price after update = %q", row.Values["price"])
	}
	if n := mustExec(t, s, `DELETE FROM inventory WHERE artist = 'Cure'`); n != 2 {
		t.Errorf("DELETE affected %d rows", n)
	}
	if s.Len("inventory") != 2 {
		t.Errorf("rows after delete = %d", s.Len("inventory"))
	}
	if _, ok, _ := s.Get("inventory", "a32"); ok {
		t.Error("deleted row still present")
	}
	if _, err := s.Exec(`UPDATE inventory SET id = 'x'`); err == nil {
		t.Error("updating primary key should fail")
	}
}

func TestSecondaryIndex(t *testing.T) {
	s := newInventory(t)
	mustExec(t, s, `CREATE INDEX ON inventory (artist)`)
	rows := mustSelect(t, s, `SELECT id FROM inventory WHERE artist = 'Cure'`)
	if len(rows) != 2 {
		t.Fatalf("indexed lookup returned %d rows", len(rows))
	}
	// Index stays consistent under DML.
	mustExec(t, s, `INSERT INTO inventory VALUES ('a40', 'Cure', 'Pornography', 16.0)`)
	mustExec(t, s, `DELETE FROM inventory WHERE id = 'a32'`)
	mustExec(t, s, `UPDATE inventory SET artist = 'The Cure' WHERE id = 'a33'`)
	rows = mustSelect(t, s, `SELECT id FROM inventory WHERE artist = 'Cure'`)
	if len(rows) != 1 || rows[0].Key != "a40" {
		t.Errorf("index after DML: %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT id FROM inventory WHERE artist = 'The Cure'`)
	if len(rows) != 1 || rows[0].Key != "a33" {
		t.Errorf("index after update: %+v", rows)
	}
	if _, err := s.Exec(`CREATE INDEX ON inventory (artist)`); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := s.Exec(`CREATE INDEX ON inventory (ghost)`); err == nil {
		t.Error("index on unknown column should fail")
	}
}

func TestPrimaryKeyFastPath(t *testing.T) {
	s := newInventory(t)
	rows := mustSelect(t, s, `SELECT * FROM inventory WHERE id = 'a34'`)
	if len(rows) != 1 || rows[0].Values["artist"] != "Radiohead" {
		t.Fatalf("pk fast path: %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT * FROM inventory WHERE id = 'nope'`)
	if len(rows) != 0 {
		t.Errorf("pk fast path for missing key: %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT * FROM inventory WHERE id IN ('a32', 'a34')`)
	if len(rows) != 2 {
		t.Errorf("pk IN fast path returned %d rows", len(rows))
	}
}

func TestRowIDTables(t *testing.T) {
	s := New("db")
	mustExec(t, s, `CREATE TABLE logs (msg TEXT)`)
	mustExec(t, s, `INSERT INTO logs VALUES ('one'), ('two')`)
	rows := mustSelect(t, s, `SELECT * FROM logs`)
	if len(rows) != 2 {
		t.Fatalf("rowid table scan: %d rows", len(rows))
	}
	if !strings.HasPrefix(rows[0].Key, "rowid:") {
		t.Errorf("synthetic key = %q", rows[0].Key)
	}
	pk, err := s.PrimaryKey("logs")
	if err != nil || pk != "rowid" {
		t.Errorf("PrimaryKey = %q, %v", pk, err)
	}
	rows = mustSelect(t, s, `SELECT * FROM logs WHERE rowid = 'rowid:1'`)
	if len(rows) != 1 || rows[0].Values["msg"] != "one" {
		t.Errorf("rowid lookup: %+v", rows)
	}
}

func TestErrorCases(t *testing.T) {
	s := newInventory(t)
	errCases := []string{
		`SELECT * FROM ghost`,
		`SELECT ghost FROM inventory`,
		`SELECT * FROM inventory WHERE ghost = '1'`,
		`SELECT * FROM inventory ORDER BY ghost`,
		`INSERT INTO ghost VALUES ('a')`,
		`INSERT INTO inventory (id) VALUES ('a32')`, // duplicate pk
		`INSERT INTO inventory (ghost) VALUES ('x')`,
		`INSERT INTO inventory (id, artist) VALUES ('z')`, // arity mismatch
		`DELETE FROM ghost`,
		`UPDATE ghost SET a = '1'`,
		`SELECT * FROM inventory WHERE`,
		`SELECT`,
		`FROM inventory`,
		`SELECT * FROM inventory GROUP BY artist`,
		`SELECT * FROM inventory LIMIT 'x'`,
		`SELECT SUM(*) FROM inventory`,
		`CREATE TABLE inventory (id TEXT PRIMARY KEY)`, // duplicate table
		`CREATE TABLE bad ()`,
		`CREATE TABLE bad (a TEXT, a INT)`,
		`CREATE TABLE bad (a TEXT PRIMARY KEY, b INT PRIMARY KEY)`,
	}
	for _, sql := range errCases {
		_, selErr := s.Select(sql)
		_, execErr := s.Exec(sql)
		if selErr == nil && execErr == nil {
			t.Errorf("%s: expected an error from Select or Exec", sql)
		}
	}
	if _, err := s.Exec(`SELECT * FROM inventory`); err == nil {
		t.Error("Exec of SELECT should direct caller to Select")
	}
	if _, err := s.Select(`DELETE FROM inventory`); err == nil {
		t.Error("Select of DELETE should fail")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, sql := range []string{
		`SELECT * FROM t WHERE a = 'unterminated`,
		`SELECT * FROM t WHERE a ! b`,
		"SELECT \x00 FROM t",
	} {
		if _, err := parse(sql); err == nil {
			t.Errorf("parse(%q) should fail", sql)
		}
	}
}

func TestStatementInspection(t *testing.T) {
	st, err := Parse(`SELECT COUNT(*) FROM inventory`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsSelect() || !st.HasAggregate() || st.Table() != "inventory" {
		t.Errorf("inspection of aggregate select: %+v", st)
	}
	st, err = Parse(`SELECT * FROM inventory WHERE id = 'a1'`)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasAggregate() || !st.SelectsStar() {
		t.Error("star select misinspected")
	}
	st, err = Parse(`SELECT name FROM inventory`)
	if err != nil {
		t.Fatal(err)
	}
	if st.SelectsStar() {
		t.Error("column select reported as star")
	}
	st, err = Parse(`INSERT INTO x VALUES ('1')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.IsSelect() || st.Table() != "x" {
		t.Error("insert misinspected")
	}
}

func TestRoundTripCounter(t *testing.T) {
	s := newInventory(t) // 2 Execs
	before := s.RoundTrips()
	mustSelect(t, s, `SELECT * FROM inventory`)
	s.Get("inventory", "a32")
	s.GetBatch("inventory", []string{"a32"})
	if got := s.RoundTrips() - before; got != 3 {
		t.Errorf("round trips = %d, want 3", got)
	}
}

func TestTablesAndColumns(t *testing.T) {
	s := newInventory(t)
	if got := s.Tables(); len(got) != 1 || got[0] != "inventory" {
		t.Errorf("Tables() = %v", got)
	}
	cols, err := s.Columns("inventory")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"id", "artist", "name", "price"}
	if fmt.Sprint(cols) != fmt.Sprint(want) {
		t.Errorf("Columns() = %v, want %v", cols, want)
	}
	if _, err := s.Columns("ghost"); err == nil {
		t.Error("Columns on unknown table should fail")
	}
}

func TestEscapedQuote(t *testing.T) {
	s := New("db")
	mustExec(t, s, `CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES ('1', 'it''s here')`)
	rows := mustSelect(t, s, `SELECT * FROM t WHERE v = 'it''s here'`)
	if len(rows) != 1 {
		t.Fatalf("escaped quote round trip failed: %+v", rows)
	}
}

func TestBetween(t *testing.T) {
	s := newInventory(t)
	tests := []struct {
		where string
		want  int
	}{
		{`price BETWEEN 16 AND 19`, 2},     // a32 (18.5), a33 (17.0)
		{`price BETWEEN 15.5 AND 15.5`, 1}, // inclusive bounds
		{`price NOT BETWEEN 16 AND 19`, 2}, // a34 (21.0), a35 (15.5)
		{`price BETWEEN 100 AND 200`, 0},
		{`artist BETWEEN 'C' AND 'D'`, 2}, // string range: Cure twice
	}
	for _, tt := range tests {
		rows := mustSelect(t, s, `SELECT id FROM inventory WHERE `+tt.where)
		if len(rows) != tt.want {
			t.Errorf("WHERE %s: %d rows, want %d", tt.where, len(rows), tt.want)
		}
	}
	if _, err := s.Select(`SELECT id FROM inventory WHERE price BETWEEN 16`); err == nil {
		t.Error("BETWEEN without AND should fail")
	}
	if _, err := s.Select(`SELECT id FROM inventory WHERE ghost BETWEEN 1 AND 2`); err == nil {
		t.Error("BETWEEN on unknown column should fail")
	}
}

func TestLimitOffset(t *testing.T) {
	s := newInventory(t)
	rows := mustSelect(t, s, `SELECT id FROM inventory ORDER BY price ASC LIMIT 2 OFFSET 1`)
	if len(rows) != 2 || rows[0].Key != "a33" || rows[1].Key != "a32" {
		t.Fatalf("LIMIT 2 OFFSET 1 = %+v", rows)
	}
	rows = mustSelect(t, s, `SELECT id FROM inventory OFFSET 3`)
	if len(rows) != 1 {
		t.Errorf("OFFSET 3 = %d rows", len(rows))
	}
	rows = mustSelect(t, s, `SELECT id FROM inventory OFFSET 100`)
	if len(rows) != 0 {
		t.Errorf("past-end OFFSET = %d rows", len(rows))
	}
	if _, err := s.Select(`SELECT id FROM inventory OFFSET 'x'`); err == nil {
		t.Error("non-numeric OFFSET should fail")
	}
}

func TestBetweenRenderRoundTrip(t *testing.T) {
	st, err := Parse(`SELECT name FROM inventory WHERE price BETWEEN 10 AND 20 OR name NOT BETWEEN 'A' AND 'B' LIMIT 3 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, ok := st.EnsureKeyColumn("id")
	if !ok {
		t.Fatal("expected rewrite")
	}
	if _, err := Parse(rewritten); err != nil {
		t.Fatalf("rendered SQL %q does not parse: %v", rewritten, err)
	}
	if !strings.Contains(rewritten, "BETWEEN 10 AND 20") || !strings.Contains(rewritten, "OFFSET 2") {
		t.Errorf("rendered = %q", rewritten)
	}
}
