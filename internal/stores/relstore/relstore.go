// Package relstore implements an embedded relational engine with a small SQL
// dialect. It stands in for the MySQL instance of the paper's polystore: the
// sales department's transactions database, queried with SQL, with primary
// keys and secondary indexes providing the key-based access paths the
// augmentation operator needs.
//
// The engine is deliberately self-contained (stdlib only) and safe for
// concurrent use. DDL and DML go through Exec, queries through Select; both
// accept the textual dialect documented in the package-level grammar below.
//
// Grammar (informal):
//
//	CREATE TABLE t (col TEXT|INT|FLOAT [PRIMARY KEY], ...)
//	CREATE INDEX ON t (col)
//	INSERT INTO t [(cols)] VALUES (lit, ...), (...)
//	UPDATE t SET col = lit [, ...] [WHERE expr]
//	DELETE FROM t [WHERE expr]
//	SELECT */cols/aggs FROM t [WHERE expr] [ORDER BY col [ASC|DESC]] [LIMIT n]
//
// with expr combining comparisons (=, !=, <>, <, >, <=, >=, LIKE, IN) with
// AND, OR, NOT and parentheses. Aggregates are COUNT, SUM, AVG, MIN, MAX.
package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"quepa/internal/telemetry"
)

// Row is a query result: the owning table, the row's primary key (or
// synthetic row id) and the projected column values.
type Row struct {
	Table  string
	Key    string
	Values map[string]string
}

// Store is an embedded relational database.
type Store struct {
	name       string
	mu         sync.RWMutex
	tables     map[string]*table
	roundTrips atomic.Uint64
	tel        telemetry.StoreOps
}

type table struct {
	name      string
	cols      []columnDef
	colIdx    map[string]int
	pk        int                            // index into cols, -1 when the table has a synthetic rowid
	rows      map[string][]string            // key -> values (parallel to cols)
	order     []string                       // insertion order of keys for deterministic scans
	indexes   map[string]map[string][]string // column -> value -> keys
	nextRowID uint64
}

// New creates an empty relational database with the given name.
func New(name string) *Store {
	return &Store{name: name, tables: map[string]*table{}, tel: telemetry.NewStoreOps(name)}
}

// Name returns the database name.
func (s *Store) Name() string { return s.name }

// RoundTrips returns the number of public engine calls served so far.
func (s *Store) RoundTrips() uint64 { return s.roundTrips.Load() }

// Tables lists the table names in sorted order.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Columns returns the declared column names of a table in declaration order.
func (s *Store) Columns(tableName string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %q", tableName)
	}
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.name
	}
	return names, nil
}

// Exec parses and executes a DDL or DML statement, returning the number of
// affected rows (0 for DDL).
func (s *Store) Exec(sql string) (int, error) {
	s.roundTrips.Add(1)
	st, err := parse(sql)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch st := st.(type) {
	case *createTableStmt:
		return 0, s.createTable(st)
	case *createIndexStmt:
		return 0, s.createIndex(st)
	case *insertStmt:
		return s.insert(st)
	case *deleteStmt:
		return s.delete(st)
	case *updateStmt:
		return s.update(st)
	case *selectStmt:
		return 0, fmt.Errorf("relstore: use Select for queries")
	default:
		return 0, fmt.Errorf("relstore: unsupported statement %T", st)
	}
}

// Select parses and executes a SELECT statement.
func (s *Store) Select(sql string) ([]Row, error) {
	s.roundTrips.Add(1)
	defer s.tel.Query.Since(telemetry.Now())
	st, err := parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("relstore: Select requires a SELECT statement")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.runSelect(sel)
}

// Parse exposes statement parsing for the validator, which must inspect a
// query (e.g. for aggregates) without executing it. The returned Statement is
// opaque outside this package; use the Inspect helpers.
func Parse(sql string) (Statement, error) {
	st, err := parse(sql)
	if err != nil {
		return Statement{}, err
	}
	return Statement{st}, nil
}

// Statement is a parsed SQL statement handle exposed to the validator.
type Statement struct{ inner statement }

// IsSelect reports whether the statement is a SELECT.
func (st Statement) IsSelect() bool {
	_, ok := st.inner.(*selectStmt)
	return ok
}

// HasAggregate reports whether the statement is a SELECT using aggregates.
func (st Statement) HasAggregate() bool {
	sel, ok := st.inner.(*selectStmt)
	return ok && sel.hasAggregate()
}

// HasJoin reports whether the statement is a SELECT joining two tables.
// Joined rows are not data objects, so the validator rejects such queries
// in augmented mode.
func (st Statement) HasJoin() bool {
	sel, ok := st.inner.(*selectStmt)
	return ok && sel.join != nil
}

// Table returns the table the statement targets, if any.
func (st Statement) Table() string {
	switch n := st.inner.(type) {
	case *selectStmt:
		return n.table
	case *insertStmt:
		return n.table
	case *deleteStmt:
		return n.table
	case *updateStmt:
		return n.table
	case *createTableStmt:
		return n.table
	case *createIndexStmt:
		return n.table
	}
	return ""
}

// SelectsStar reports whether the statement is a SELECT * query, i.e. one
// that already projects every column including the primary key. The
// validator rewrites other SELECTs to include the key.
func (st Statement) SelectsStar() bool {
	sel, ok := st.inner.(*selectStmt)
	if !ok {
		return false
	}
	for _, it := range sel.items {
		if it.star && it.agg == aggNone {
			return true
		}
	}
	return false
}

// Get retrieves one row by primary key. The boolean reports presence.
func (s *Store) Get(tableName, key string) (Row, bool, error) {
	s.roundTrips.Add(1)
	defer s.tel.Get.Since(telemetry.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return Row{}, false, fmt.Errorf("relstore: unknown table %q", tableName)
	}
	vals, ok := t.rows[key]
	if !ok {
		return Row{}, false, nil
	}
	return t.materialize(key, vals), true, nil
}

// GetBatch retrieves many rows by primary key in one round trip, preserving
// the order of found keys and skipping missing ones.
func (s *Store) GetBatch(tableName string, keys []string) ([]Row, error) {
	s.roundTrips.Add(1)
	defer s.tel.GetBatch.Since(telemetry.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %q", tableName)
	}
	out := make([]Row, 0, len(keys))
	for _, k := range keys {
		if vals, ok := t.rows[k]; ok {
			out = append(out, t.materialize(k, vals))
		}
	}
	return out, nil
}

func (t *table) materialize(key string, vals []string) Row {
	m := make(map[string]string, len(t.cols))
	for i, c := range t.cols {
		m[c.name] = vals[i]
	}
	return Row{Table: t.name, Key: key, Values: m}
}

func (s *Store) createTable(st *createTableStmt) error {
	if _, dup := s.tables[st.table]; dup {
		return fmt.Errorf("relstore: table %q already exists", st.table)
	}
	if len(st.columns) == 0 {
		return fmt.Errorf("relstore: table %q has no columns", st.table)
	}
	t := &table{
		name:    st.table,
		cols:    st.columns,
		colIdx:  map[string]int{},
		pk:      -1,
		rows:    map[string][]string{},
		indexes: map[string]map[string][]string{},
	}
	for i, c := range st.columns {
		if _, dup := t.colIdx[c.name]; dup {
			return fmt.Errorf("relstore: duplicate column %q in table %q", c.name, st.table)
		}
		t.colIdx[c.name] = i
		if c.primaryKey {
			if t.pk >= 0 {
				return fmt.Errorf("relstore: table %q declares multiple primary keys", st.table)
			}
			t.pk = i
		}
	}
	s.tables[st.table] = t
	return nil
}

func (s *Store) createIndex(st *createIndexStmt) error {
	t, ok := s.tables[st.table]
	if !ok {
		return fmt.Errorf("relstore: unknown table %q", st.table)
	}
	ci, ok := t.colIdx[st.column]
	if !ok {
		return fmt.Errorf("relstore: unknown column %q in table %q", st.column, st.table)
	}
	if _, dup := t.indexes[st.column]; dup {
		return fmt.Errorf("relstore: index on %s(%s) already exists", st.table, st.column)
	}
	idx := map[string][]string{}
	for _, key := range t.order {
		v := t.rows[key][ci]
		idx[v] = append(idx[v], key)
	}
	t.indexes[st.column] = idx
	return nil
}

func (s *Store) insert(st *insertStmt) (int, error) {
	t, ok := s.tables[st.table]
	if !ok {
		return 0, fmt.Errorf("relstore: unknown table %q", st.table)
	}
	cols := st.columns
	if len(cols) == 0 {
		cols = make([]string, len(t.cols))
		for i, c := range t.cols {
			cols[i] = c.name
		}
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		ci, ok := t.colIdx[c]
		if !ok {
			return 0, fmt.Errorf("relstore: unknown column %q in table %q", c, st.table)
		}
		positions[i] = ci
	}
	inserted := 0
	for _, literals := range st.rows {
		if len(literals) != len(cols) {
			return inserted, fmt.Errorf("relstore: row has %d values for %d columns", len(literals), len(cols))
		}
		vals := make([]string, len(t.cols))
		for i, lit := range literals {
			vals[positions[i]] = lit
		}
		var key string
		if t.pk >= 0 {
			key = vals[t.pk]
			if key == "" {
				return inserted, fmt.Errorf("relstore: empty primary key in table %q", st.table)
			}
			if _, dup := t.rows[key]; dup {
				return inserted, fmt.Errorf("relstore: duplicate primary key %q in table %q", key, st.table)
			}
		} else {
			t.nextRowID++
			key = "rowid:" + strconv.FormatUint(t.nextRowID, 10)
		}
		t.rows[key] = vals
		t.order = append(t.order, key)
		for col, idx := range t.indexes {
			v := vals[t.colIdx[col]]
			idx[v] = append(idx[v], key)
		}
		inserted++
	}
	return inserted, nil
}

func (s *Store) delete(st *deleteStmt) (int, error) {
	t, ok := s.tables[st.table]
	if !ok {
		return 0, fmt.Errorf("relstore: unknown table %q", st.table)
	}
	var kept []string
	deleted := 0
	for _, key := range t.order {
		vals := t.rows[key]
		match := true
		if st.where != nil {
			var err error
			match, err = evalExpr(st.where, t.lookupFunc(key, vals))
			if err != nil {
				return deleted, err
			}
		}
		if !match {
			kept = append(kept, key)
			continue
		}
		for col, idx := range t.indexes {
			v := vals[t.colIdx[col]]
			idx[v] = removeKey(idx[v], key)
		}
		delete(t.rows, key)
		deleted++
	}
	t.order = kept
	return deleted, nil
}

func (s *Store) update(st *updateStmt) (int, error) {
	t, ok := s.tables[st.table]
	if !ok {
		return 0, fmt.Errorf("relstore: unknown table %q", st.table)
	}
	for col := range st.set {
		if _, ok := t.colIdx[col]; !ok {
			return 0, fmt.Errorf("relstore: unknown column %q in table %q", col, st.table)
		}
		if t.pk >= 0 && t.colIdx[col] == t.pk {
			return 0, fmt.Errorf("relstore: updating the primary key is not supported")
		}
	}
	updated := 0
	for _, key := range t.order {
		vals := t.rows[key]
		match := true
		if st.where != nil {
			var err error
			match, err = evalExpr(st.where, t.lookupFunc(key, vals))
			if err != nil {
				return updated, err
			}
		}
		if !match {
			continue
		}
		for col, newVal := range st.set {
			ci := t.colIdx[col]
			if idx, indexed := t.indexes[col]; indexed {
				old := vals[ci]
				idx[old] = removeKey(idx[old], key)
				idx[newVal] = append(idx[newVal], key)
			}
			vals[ci] = newVal
		}
		updated++
	}
	return updated, nil
}

func removeKey(keys []string, key string) []string {
	for i, k := range keys {
		if k == key {
			return append(keys[:i], keys[i+1:]...)
		}
	}
	return keys
}

// lookupFunc builds the column resolver used by expression evaluation.
// The pseudo-column "rowid" resolves to the row key for tables without a
// declared primary key.
func (t *table) lookupFunc(key string, vals []string) func(string) (string, bool) {
	return func(col string) (string, bool) {
		if ci, ok := t.colIdx[col]; ok {
			return vals[ci], true
		}
		if col == "rowid" {
			return key, true
		}
		return "", false
	}
}

func (s *Store) runSelect(sel *selectStmt) ([]Row, error) {
	if sel.join != nil {
		return s.runJoinSelect(sel)
	}
	t, ok := s.tables[sel.table]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %q", sel.table)
	}
	for _, it := range sel.items {
		if it.column != "" {
			if _, ok := t.colIdx[it.column]; !ok {
				return nil, fmt.Errorf("relstore: unknown column %q in table %q", it.column, sel.table)
			}
		}
	}

	keys, scanned, err := t.candidateKeys(sel.where)
	if err != nil {
		return nil, err
	}

	var matched []string
	for _, key := range keys {
		vals, ok := t.rows[key]
		if !ok {
			continue
		}
		match := true
		// When candidateKeys already applied the full predicate via an index
		// fast path, scanned is false and the predicate must still be checked
		// because index candidates are a superset only for partial pushdown;
		// we re-evaluate unconditionally for correctness (cheap, in-memory).
		_ = scanned
		if sel.where != nil {
			match, err = evalExpr(sel.where, t.lookupFunc(key, vals))
			if err != nil {
				return nil, err
			}
		}
		if match {
			matched = append(matched, key)
		}
	}

	if sel.orderBy != "" {
		ci, ok := t.colIdx[sel.orderBy]
		if !ok {
			return nil, fmt.Errorf("relstore: unknown ORDER BY column %q", sel.orderBy)
		}
		asc := sel.orderDir != "DESC"
		sort.SliceStable(matched, func(i, j int) bool {
			c := compareValues(t.rows[matched[i]][ci], t.rows[matched[j]][ci])
			if asc {
				return c < 0
			}
			return c > 0
		})
	}

	if sel.hasAggregate() {
		return t.aggregate(sel, matched)
	}

	if sel.offset > 0 {
		if sel.offset >= len(matched) {
			matched = nil
		} else {
			matched = matched[sel.offset:]
		}
	}
	if sel.limit >= 0 && len(matched) > sel.limit {
		matched = matched[:sel.limit]
	}

	out := make([]Row, 0, len(matched))
	seen := map[string]bool{}
	for _, key := range matched {
		row := t.project(sel, key)
		if sel.distinct {
			sig := rowSignature(row)
			if seen[sig] {
				continue
			}
			seen[sig] = true
		}
		out = append(out, row)
	}
	return out, nil
}

// candidateKeys returns the keys to examine for a WHERE clause, using the
// primary key or a secondary index when the clause's top level allows it.
// The boolean reports whether a full scan was used.
func (t *table) candidateKeys(where expr) ([]string, bool, error) {
	if where != nil {
		if cmp, ok := where.(*compareExpr); ok && cmp.op == "=" {
			if t.pk >= 0 && t.colIdx[cmp.column] == t.pk {
				if _, exists := t.rows[cmp.value]; exists {
					return []string{cmp.value}, false, nil
				}
				return nil, false, nil
			}
			if idx, ok := t.indexes[cmp.column]; ok {
				return append([]string(nil), idx[cmp.value]...), false, nil
			}
		}
		if in, ok := where.(*inExpr); ok && !in.negate {
			if t.pk >= 0 && t.colIdx[in.column] == t.pk {
				var keys []string
				for _, v := range in.values {
					if _, exists := t.rows[v]; exists {
						keys = append(keys, v)
					}
				}
				return keys, false, nil
			}
		}
	}
	return t.order, true, nil
}

func (t *table) project(sel *selectStmt, key string) Row {
	vals := t.rows[key]
	m := map[string]string{}
	for _, it := range sel.items {
		if it.star {
			for i, c := range t.cols {
				m[c.name] = vals[i]
			}
			continue
		}
		m[it.column] = vals[t.colIdx[it.column]]
	}
	return Row{Table: t.name, Key: key, Values: m}
}

func rowSignature(r Row) string {
	names := make([]string, 0, len(r.Values))
	for n := range r.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb []byte
	for _, n := range names {
		sb = append(sb, n...)
		sb = append(sb, 0x1)
		sb = append(sb, r.Values[n]...)
		sb = append(sb, 0x2)
	}
	return string(sb)
}

func (t *table) aggregate(sel *selectStmt, keys []string) ([]Row, error) {
	m := map[string]string{}
	for _, it := range sel.items {
		if it.agg == aggNone {
			return nil, fmt.Errorf("relstore: mixing aggregates and plain columns is not supported")
		}
		label := it.agg.String() + "("
		if it.star {
			label += "*"
		} else {
			label += it.column
		}
		label += ")"
		if it.agg == aggCount {
			m[label] = strconv.Itoa(len(keys))
			continue
		}
		ci := t.colIdx[it.column]
		var sum float64
		var minV, maxV float64
		count := 0
		for _, key := range keys {
			f, err := strconv.ParseFloat(t.rows[key][ci], 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: non-numeric value %q in %s", t.rows[key][ci], label)
			}
			if count == 0 {
				minV, maxV = f, f
			} else {
				if f < minV {
					minV = f
				}
				if f > maxV {
					maxV = f
				}
			}
			sum += f
			count++
		}
		switch it.agg {
		case aggSum:
			m[label] = formatFloat(sum)
		case aggAvg:
			if count == 0 {
				m[label] = "0"
			} else {
				m[label] = formatFloat(sum / float64(count))
			}
		case aggMin:
			if count == 0 {
				m[label] = ""
			} else {
				m[label] = formatFloat(minV)
			}
		case aggMax:
			if count == 0 {
				m[label] = ""
			} else {
				m[label] = formatFloat(maxV)
			}
		}
	}
	return []Row{{Table: t.name, Key: "aggregate", Values: m}}, nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// PrimaryKey returns the primary-key column of a table, or "rowid" when the
// table uses synthetic row ids.
func (s *Store) PrimaryKey(tableName string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return "", fmt.Errorf("relstore: unknown table %q", tableName)
	}
	if t.pk < 0 {
		return "rowid", nil
	}
	return t.cols[t.pk].name, nil
}

// Len returns the number of rows in a table (0 for unknown tables).
func (s *Store) Len(tableName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tables[tableName]; ok {
		return len(t.order)
	}
	return 0
}
