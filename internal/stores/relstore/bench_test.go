package relstore

import (
	"fmt"
	"testing"
)

func benchTable(b *testing.B, rows int) *Store {
	b.Helper()
	s := New("bench")
	if _, err := s.Exec(`CREATE TABLE t (id TEXT PRIMARY KEY, seq INT, name TEXT, price FLOAT)`); err != nil {
		b.Fatal(err)
	}
	batch := ""
	for i := 0; i < rows; i++ {
		if batch != "" {
			batch += ","
		}
		batch += fmt.Sprintf("('k%d', %d, 'name %d', %d.5)", i, i, i%100, i%40)
		if (i+1)%500 == 0 {
			if _, err := s.Exec("INSERT INTO t VALUES " + batch); err != nil {
				b.Fatal(err)
			}
			batch = ""
		}
	}
	if batch != "" {
		if _, err := s.Exec("INSERT INTO t VALUES " + batch); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkSelectPrimaryKey(b *testing.B) {
	s := benchTable(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(fmt.Sprintf(`SELECT * FROM t WHERE id = 'k%d'`, i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectFullScan(b *testing.B) {
	s := benchTable(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(`SELECT id FROM t WHERE price > 35`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectLike(b *testing.B) {
	s := benchTable(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(`SELECT id FROM t WHERE name LIKE '%42%'`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetBatch(b *testing.B) {
	s := benchTable(b, 10000)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i*97%10000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetBatch("t", keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const q = `SELECT id, name FROM t WHERE (price > 10 AND name LIKE '%x%') OR id IN ('a', 'b') ORDER BY price DESC LIMIT 10 OFFSET 5`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
