package relstore

import "testing"

func TestEnsureKeyColumn(t *testing.T) {
	tests := []struct {
		sql         string
		key         string
		want        string
		wantRewrite bool
	}{
		{
			`SELECT name FROM inventory WHERE name LIKE '%wish%'`,
			"id",
			`SELECT id, name FROM inventory WHERE name LIKE '%wish%'`,
			true,
		},
		{
			`SELECT * FROM inventory`,
			"id",
			`SELECT * FROM inventory`,
			false,
		},
		{
			`SELECT id, name FROM inventory`,
			"id",
			`SELECT id, name FROM inventory`,
			false,
		},
		{
			`SELECT COUNT(*) FROM inventory`,
			"id",
			`SELECT COUNT(*) FROM inventory`,
			false,
		},
		{
			`SELECT name FROM inventory WHERE a = 'x' AND (b > 3 OR c IN ('p', 'q')) ORDER BY name DESC LIMIT 5`,
			"id",
			`SELECT id, name FROM inventory WHERE (a = 'x' AND (b > 3 OR c IN ('p', 'q'))) ORDER BY name DESC LIMIT 5`,
			true,
		},
		{
			`SELECT DISTINCT artist FROM inventory WHERE NOT price < 10`,
			"id",
			`SELECT DISTINCT id, artist FROM inventory WHERE NOT (price < 10)`,
			true,
		},
		{
			`SELECT name FROM inventory WHERE note = 'it''s'`,
			"id",
			`SELECT id, name FROM inventory WHERE note = 'it''s'`,
			true,
		},
	}
	for _, tt := range tests {
		st, err := Parse(tt.sql)
		if err != nil {
			t.Fatalf("Parse(%s): %v", tt.sql, err)
		}
		got, rewrote := st.EnsureKeyColumn(tt.key)
		if got != tt.want || rewrote != tt.wantRewrite {
			t.Errorf("EnsureKeyColumn(%s):\n got  %q (rewrite=%v)\n want %q (rewrite=%v)",
				tt.sql, got, rewrote, tt.want, tt.wantRewrite)
		}
		// The rewritten SQL must itself parse.
		if _, err := Parse(got); err != nil {
			t.Errorf("rewritten SQL %q does not parse: %v", got, err)
		}
	}
}

func TestRenderedQueryEquivalence(t *testing.T) {
	// The rewritten query must return the same rows as the original, plus
	// the key column.
	s := newInventory(t)
	st, err := Parse(`SELECT name FROM inventory WHERE artist = 'Cure' ORDER BY price ASC`)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, ok := st.EnsureKeyColumn("id")
	if !ok {
		t.Fatal("expected a rewrite")
	}
	rows := mustSelect(t, s, rewritten)
	if len(rows) != 2 {
		t.Fatalf("rewritten query rows = %d", len(rows))
	}
	if rows[0].Values["id"] != "a33" || rows[0].Values["name"] != "Disintegration" {
		t.Errorf("rewritten first row = %+v", rows[0])
	}
}

func TestEnsureKeyColumnNonSelect(t *testing.T) {
	st, err := Parse(`INSERT INTO t VALUES ('1')`)
	if err != nil {
		t.Fatal(err)
	}
	got, rewrote := st.EnsureKeyColumn("id")
	if got != "" || rewrote {
		t.Errorf("non-select rewrite = %q, %v", got, rewrote)
	}
}
