package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// compareValues orders two stored values. When both parse as floating-point
// numbers they compare numerically; otherwise they compare as strings. This
// dynamic typing mirrors lightweight engines and keeps the storage uniform.
func compareValues(a, b string) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// matchLike implements the SQL LIKE operator: '%' matches any (possibly
// empty) sequence, '_' matches exactly one character. Matching is
// case-insensitive, following MySQL's default collation, which the paper's
// running example relies on ("name like '%wish%'" matching "Wish").
func matchLike(value, pattern string) bool {
	return likeMatch(strings.ToLower(value), strings.ToLower(pattern))
}

func likeMatch(v, p string) bool {
	// Iterative matcher with backtracking on the last '%' seen.
	vi, pi := 0, 0
	star, vStar := -1, 0
	for vi < len(v) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == v[vi]):
			vi++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			vStar = vi
			pi++
		case star >= 0:
			pi = star + 1
			vStar++
			vi = vStar
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// evalExpr evaluates a WHERE expression against a row presented as a
// column-name → value lookup. Unknown columns evaluate to an error so typos
// surface instead of silently filtering everything out.
func evalExpr(e expr, lookup func(string) (string, bool)) (bool, error) {
	switch n := e.(type) {
	case *binaryExpr:
		l, err := evalExpr(n.left, lookup)
		if err != nil {
			return false, err
		}
		// Short-circuit evaluation.
		if n.op == "AND" && !l {
			return false, nil
		}
		if n.op == "OR" && l {
			return true, nil
		}
		return evalExpr(n.right, lookup)
	case *notExpr:
		v, err := evalExpr(n.inner, lookup)
		return !v, err
	case *compareExpr:
		v, ok := lookup(n.column)
		if !ok {
			return false, fmt.Errorf("relstore: unknown column %q", n.column)
		}
		switch n.op {
		case "=":
			return compareValues(v, n.value) == 0, nil
		case "!=":
			return compareValues(v, n.value) != 0, nil
		case "<":
			return compareValues(v, n.value) < 0, nil
		case ">":
			return compareValues(v, n.value) > 0, nil
		case "<=":
			return compareValues(v, n.value) <= 0, nil
		case ">=":
			return compareValues(v, n.value) >= 0, nil
		case "LIKE":
			return matchLike(v, n.value), nil
		default:
			return false, fmt.Errorf("relstore: unknown operator %q", n.op)
		}
	case *inExpr:
		v, ok := lookup(n.column)
		if !ok {
			return false, fmt.Errorf("relstore: unknown column %q", n.column)
		}
		found := false
		for _, candidate := range n.values {
			if compareValues(v, candidate) == 0 {
				found = true
				break
			}
		}
		return found != n.negate, nil
	case *betweenExpr:
		v, ok := lookup(n.column)
		if !ok {
			return false, fmt.Errorf("relstore: unknown column %q", n.column)
		}
		in := compareValues(v, n.lo) >= 0 && compareValues(v, n.hi) <= 0
		return in != n.negate, nil
	default:
		return false, fmt.Errorf("relstore: unknown expression node %T", e)
	}
}
