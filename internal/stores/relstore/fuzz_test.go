package relstore

import "testing"

// FuzzParse drives the SQL lexer and parser with arbitrary input: they must
// never panic, and whatever parses must render back (via EnsureKeyColumn)
// into SQL that parses again.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`SELECT * FROM t`,
		`SELECT a, b FROM t WHERE a = 'x' AND (b > 3 OR c IN ('p', 'q'))`,
		`SELECT COUNT(*) FROM t`,
		`SELECT DISTINCT a FROM t WHERE a LIKE '%x%' ORDER BY a DESC LIMIT 3 OFFSET 1`,
		`SELECT a FROM t WHERE b BETWEEN 1 AND 2`,
		`INSERT INTO t (a, b) VALUES ('1', 2), ('3', 4)`,
		`CREATE TABLE t (a TEXT PRIMARY KEY, b INT, c FLOAT)`,
		`UPDATE t SET a = 'x' WHERE b != 1`,
		`DELETE FROM t WHERE a NOT IN ('1')`,
		`SELECT * FROM t WHERE v = 'it''s'`,
		"SELECT \x00 FROM t",
		`)(`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := parse(input)
		if err != nil {
			return
		}
		sel, ok := st.(*selectStmt)
		if !ok {
			return
		}
		rendered := renderSelect(sel)
		if _, err := parse(rendered); err != nil {
			t.Fatalf("rendered SQL %q (from %q) does not re-parse: %v", rendered, input, err)
		}
	})
}

// FuzzLikeMatch checks that the LIKE matcher never panics and that a '%'
// prefix+suffix pattern built from the value always matches.
func FuzzLikeMatch(f *testing.F) {
	f.Add("Wish", "%wish%")
	f.Add("", "%")
	f.Add("a_b", "a__b")
	f.Fuzz(func(t *testing.T, value, pattern string) {
		matchLike(value, pattern) // must not panic
		if !matchLike(value, "%") {
			t.Fatal("bare %% must match everything")
		}
	})
}
