package connector

import (
	"context"
	"errors"
	"testing"

	"quepa/internal/core"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

var ctx = context.Background()

// The four connectors must all satisfy core.Store and core.Counter.
var (
	_ core.Store   = (*Relational)(nil)
	_ core.Store   = (*Document)(nil)
	_ core.Store   = (*KeyValue)(nil)
	_ core.Store   = (*Graph)(nil)
	_ core.Counter = (*Relational)(nil)
	_ core.Counter = (*Document)(nil)
	_ core.Counter = (*KeyValue)(nil)
	_ core.Counter = (*Graph)(nil)
	_ KeyResolver  = (*Relational)(nil)
	_ KeyResolver  = (*Document)(nil)
)

func newRelational(t *testing.T) *Relational {
	t.Helper()
	db := relstore.New("transactions")
	if _, err := db.Exec(`CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Disintegration')`); err != nil {
		t.Fatal(err)
	}
	return NewRelational(db)
}

func TestRelationalConnector(t *testing.T) {
	c := newRelational(t)
	if c.Name() != "transactions" || c.Kind() != core.KindRelational {
		t.Errorf("identity: %s %v", c.Name(), c.Kind())
	}
	if cols := c.Collections(); len(cols) != 1 || cols[0] != "inventory" {
		t.Errorf("Collections = %v", cols)
	}
	o, err := c.Get(ctx, "inventory", "a32")
	if err != nil {
		t.Fatal(err)
	}
	if o.GK.String() != "transactions.inventory.a32" || o.Fields["name"] != "Wish" {
		t.Errorf("Get object = %v", o)
	}
	if _, err := c.Get(ctx, "inventory", "nope"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing key error = %v", err)
	}
	objs, err := c.GetBatch(ctx, "inventory", []string{"a33", "missing", "a32"})
	if err != nil || len(objs) != 2 {
		t.Fatalf("GetBatch = %v, %v", objs, err)
	}
	objs, err = c.Query(ctx, `SELECT * FROM inventory WHERE name LIKE '%wish%'`)
	if err != nil || len(objs) != 1 || objs[0].GK.Key != "a32" {
		t.Errorf("Query = %v, %v", objs, err)
	}
	if kf, err := c.KeyField(ctx, "inventory"); err != nil || kf != "id" {
		t.Errorf("KeyField = %q, %v", kf, err)
	}
}

func TestDocumentConnector(t *testing.T) {
	db := docstore.New("catalogue")
	if _, err := db.Insert("albums", `{"_id": "d1", "title": "Wish", "label": {"name": "Fiction"}}`); err != nil {
		t.Fatal(err)
	}
	c := NewDocument(db)
	if c.Kind() != core.KindDocument {
		t.Error("kind")
	}
	o, err := c.Get(ctx, "albums", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Fields["label.name"] != "Fiction" {
		t.Errorf("flattened fields = %v", o.Fields)
	}
	if _, err := c.Get(ctx, "albums", "nope"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing doc error = %v", err)
	}
	objs, err := c.Query(ctx, `albums.find({"title": "Wish"})`)
	if err != nil || len(objs) != 1 || objs[0].GK.Collection != "albums" {
		t.Errorf("Query = %v, %v", objs, err)
	}
	if _, err := c.Query(ctx, `bogus`); err == nil {
		t.Error("bad query should fail")
	}
	if kf, _ := c.KeyField(ctx, "albums"); kf != "_id" {
		t.Errorf("KeyField = %q", kf)
	}
	objs, err = c.GetBatch(ctx, "albums", []string{"d1", "ghost"})
	if err != nil || len(objs) != 1 {
		t.Errorf("GetBatch = %v, %v", objs, err)
	}
}

func TestKeyValueConnector(t *testing.T) {
	db := kvstore.New("discount")
	db.Set("drop", "k1:cure:wish", "40%")
	c := NewKeyValue(db)
	if c.Kind() != core.KindKeyValue {
		t.Error("kind")
	}
	o, err := c.Get(ctx, "drop", "k1:cure:wish")
	if err != nil {
		t.Fatal(err)
	}
	if o.GK.String() != "discount.drop.k1:cure:wish" || o.Fields[core.ValueField] != "40%" {
		t.Errorf("Get = %v", o)
	}
	if _, err := c.Get(ctx, "drop", "nope"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing entry error = %v", err)
	}
	objs, err := c.Query(ctx, "KEYS drop *")
	if err != nil || len(objs) != 1 {
		t.Errorf("Query = %v, %v", objs, err)
	}
	if _, err := c.Query(ctx, "NOPE x"); err == nil {
		t.Error("bad command should fail")
	}
	objs, err = c.GetBatch(ctx, "drop", []string{"k1:cure:wish", "ghost"})
	if err != nil || len(objs) != 1 {
		t.Errorf("GetBatch = %v, %v", objs, err)
	}
}

func TestGraphConnector(t *testing.T) {
	db := graphstore.New("similar-items")
	db.AddNode("n1", "items", map[string]string{"title": "Wish"})
	db.AddNode("n2", "items", map[string]string{"title": "Disintegration"})
	db.AddNode("p1", "people", nil)
	db.AddEdge("n1", "n2", "SIMILAR", nil)
	c := NewGraph(db)
	if c.Kind() != core.KindGraph {
		t.Error("kind")
	}
	o, err := c.Get(ctx, "items", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if o.GK.String() != "similar-items.items.n1" || o.Fields["title"] != "Wish" {
		t.Errorf("Get = %v", o)
	}
	// A node fetched under the wrong label (collection) is not found.
	if _, err := c.Get(ctx, "people", "n1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("cross-label Get error = %v", err)
	}
	objs, err := c.GetBatch(ctx, "items", []string{"n1", "p1", "n2"})
	if err != nil || len(objs) != 2 {
		t.Errorf("GetBatch filters labels: %v, %v", objs, err)
	}
	objs, err = c.Query(ctx, `NEIGHBORS n1`)
	if err != nil || len(objs) != 1 || objs[0].GK.Key != "n2" {
		t.Errorf("Query = %v, %v", objs, err)
	}
	if _, err := c.Query(ctx, `garbage`); err == nil {
		t.Error("bad query should fail")
	}
}

func TestContextCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	rc := newRelational(t)
	stores := []core.Store{
		rc,
		NewDocument(docstore.New("d")),
		NewKeyValue(kvstore.New("k")),
		NewGraph(graphstore.New("g")),
	}
	for _, s := range stores {
		if _, err := s.Get(cancelled, "c", "k"); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Get with cancelled ctx = %v", s.Name(), err)
		}
		if _, err := s.GetBatch(cancelled, "c", []string{"k"}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: GetBatch with cancelled ctx = %v", s.Name(), err)
		}
		if _, err := s.Query(cancelled, "q"); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Query with cancelled ctx = %v", s.Name(), err)
		}
	}
}
