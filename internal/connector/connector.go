// Package connector adapts each native storage engine to the core.Store
// interface so that the augmenters, the validator and the middleware
// baselines can reach every database of the polystore uniformly while each
// engine keeps its own query language (the paper's Connectors component,
// Section III-A: "each connector is able to communicate with a specific
// database system by sending queries in the local language and returning the
// result; data objects are parsed into an internal representation").
package connector

import (
	"context"
	"fmt"

	"quepa/internal/core"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

// KeyResolver is implemented by connectors that can report the name of the
// column/field acting as object identifier for a collection. The validator
// uses it to rewrite queries so identifiers appear in the result. The context
// matters for remote resolvers (a wire client pays a round trip); local
// connectors only honor cancellation.
type KeyResolver interface {
	KeyField(ctx context.Context, collection string) (string, error)
}

// Relational adapts a relstore database.
type Relational struct{ db *relstore.Store }

// NewRelational wraps a relational engine.
func NewRelational(db *relstore.Store) *Relational { return &Relational{db: db} }

// Name returns the database name.
func (c *Relational) Name() string { return c.db.Name() }

// Kind reports the engine family.
func (c *Relational) Kind() core.StoreKind { return core.KindRelational }

// Collections lists the tables.
func (c *Relational) Collections() []string { return c.db.Tables() }

// RoundTrips reports the engine's served request count.
func (c *Relational) RoundTrips() uint64 { return c.db.RoundTrips() }

// KeyField returns the primary-key column of a table.
func (c *Relational) KeyField(ctx context.Context, collection string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return c.db.PrimaryKey(collection)
}

// Get retrieves one row as a data object.
func (c *Relational) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	row, ok, err := c.db.Get(collection, key)
	if err != nil {
		return core.Object{}, err
	}
	if !ok {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.Name(), collection, key, core.ErrNotFound)
	}
	return c.rowObject(row), nil
}

// GetBatch retrieves many rows in one round trip.
func (c *Relational) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := c.db.GetBatch(collection, keys)
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(rows))
	for i, r := range rows {
		out[i] = c.rowObject(r)
	}
	return out, nil
}

// Query executes a SQL SELECT.
func (c *Relational) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := c.db.Select(query)
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(rows))
	for i, r := range rows {
		out[i] = c.rowObject(r)
	}
	return out, nil
}

func (c *Relational) rowObject(r relstore.Row) core.Object {
	return core.NewObject(core.NewGlobalKey(c.Name(), r.Table, r.Key), r.Values)
}

// Document adapts a docstore database.
type Document struct{ db *docstore.Store }

// NewDocument wraps a document engine.
func NewDocument(db *docstore.Store) *Document { return &Document{db: db} }

// Name returns the database name.
func (c *Document) Name() string { return c.db.Name() }

// Kind reports the engine family.
func (c *Document) Kind() core.StoreKind { return core.KindDocument }

// Collections lists the document collections.
func (c *Document) Collections() []string { return c.db.Collections() }

// RoundTrips reports the engine's served request count.
func (c *Document) RoundTrips() uint64 { return c.db.RoundTrips() }

// KeyField returns the identifier field of documents.
func (c *Document) KeyField(context.Context, string) (string, error) { return "_id", nil }

// Get retrieves one document as a data object.
func (c *Document) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	d, ok := c.db.Get(collection, key)
	if !ok {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.Name(), collection, key, core.ErrNotFound)
	}
	return c.docObject(collection, d), nil
}

// GetBatch retrieves many documents in one round trip.
func (c *Document) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	docs := c.db.GetBatch(collection, keys)
	out := make([]core.Object, len(docs))
	for i, d := range docs {
		out[i] = c.docObject(collection, d)
	}
	return out, nil
}

// Query executes a collection.find(...)/count(...) query.
func (c *Document) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	collection, _, _, err := docstore.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	docs, err := c.db.Query(query)
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(docs))
	for i, d := range docs {
		out[i] = c.docObject(collection, d)
	}
	return out, nil
}

func (c *Document) docObject(collection string, d *docstore.Document) core.Object {
	return core.NewObject(core.NewGlobalKey(c.Name(), collection, d.ID), d.Fields())
}

// KeyValue adapts a kvstore database.
type KeyValue struct{ db *kvstore.Store }

// NewKeyValue wraps a key-value engine.
func NewKeyValue(db *kvstore.Store) *KeyValue { return &KeyValue{db: db} }

// Name returns the database name.
func (c *KeyValue) Name() string { return c.db.Name() }

// Kind reports the engine family.
func (c *KeyValue) Kind() core.StoreKind { return core.KindKeyValue }

// Collections lists the buckets.
func (c *KeyValue) Collections() []string { return c.db.Buckets() }

// RoundTrips reports the engine's served request count.
func (c *KeyValue) RoundTrips() uint64 { return c.db.RoundTrips() }

// Get retrieves one entry as a data object.
func (c *KeyValue) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	v, ok := c.db.Get(collection, key)
	if !ok {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.Name(), collection, key, core.ErrNotFound)
	}
	return c.entryObject(kvstore.Entry{Bucket: collection, Key: key, Value: v}), nil
}

// GetBatch retrieves many entries in one MGET round trip.
func (c *KeyValue) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries := c.db.MGet(collection, keys)
	out := make([]core.Object, len(entries))
	for i, e := range entries {
		out[i] = c.entryObject(e)
	}
	return out, nil
}

// Query executes one command of the kv command language.
func (c *KeyValue) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := c.db.Do(query)
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(entries))
	for i, e := range entries {
		out[i] = c.entryObject(e)
	}
	return out, nil
}

func (c *KeyValue) entryObject(e kvstore.Entry) core.Object {
	return core.NewObject(
		core.NewGlobalKey(c.Name(), e.Bucket, e.Key),
		map[string]string{core.ValueField: e.Value},
	)
}

// Graph adapts a graphstore database. Node labels act as collections.
type Graph struct{ db *graphstore.Store }

// NewGraph wraps a graph engine.
func NewGraph(db *graphstore.Store) *Graph { return &Graph{db: db} }

// Name returns the database name.
func (c *Graph) Name() string { return c.db.Name() }

// Kind reports the engine family.
func (c *Graph) Kind() core.StoreKind { return core.KindGraph }

// Collections lists the node labels.
func (c *Graph) Collections() []string { return c.db.Labels() }

// RoundTrips reports the engine's served request count.
func (c *Graph) RoundTrips() uint64 { return c.db.RoundTrips() }

// Get retrieves one node as a data object. The node must carry the requested
// label (collection): global keys are collection-scoped.
func (c *Graph) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	n, ok := c.db.GetNode(key)
	if !ok || n.Label != collection {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.Name(), collection, key, core.ErrNotFound)
	}
	return c.nodeObject(n), nil
}

// GetBatch retrieves many nodes in one round trip.
func (c *Graph) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes := c.db.GetNodes(keys)
	var out []core.Object
	for _, n := range nodes {
		if n.Label == collection {
			out = append(out, c.nodeObject(n))
		}
	}
	return out, nil
}

// Query executes a MATCH or NEIGHBORS statement.
func (c *Graph) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes, err := c.db.Query(query)
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(nodes))
	for i, n := range nodes {
		out[i] = c.nodeObject(n)
	}
	return out, nil
}

func (c *Graph) nodeObject(n *graphstore.Node) core.Object {
	fields := make(map[string]string, len(n.Props))
	for k, v := range n.Props {
		fields[k] = v
	}
	return core.NewObject(core.NewGlobalKey(c.Name(), n.Label, n.ID), fields)
}

// Engine exposes the underlying relational engine (administration paths:
// DDL, bulk loads, deletes outside the augmentation flow).
func (c *Relational) Engine() *relstore.Store { return c.db }

// Engine exposes the underlying document engine.
func (c *Document) Engine() *docstore.Store { return c.db }

// Engine exposes the underlying key-value engine.
func (c *KeyValue) Engine() *kvstore.Store { return c.db }

// Engine exposes the underlying graph engine.
func (c *Graph) Engine() *graphstore.Store { return c.db }
