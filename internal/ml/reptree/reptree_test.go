package reptree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := Train([]Example{{Features: nil}}, nil, Config{}); err == nil {
		t.Error("no features should fail")
	}
	if _, err := Train([]Example{{Features: []float64{1}}}, []string{"a", "b"}, Config{}); err == nil {
		t.Error("name mismatch should fail")
	}
	if _, err := Train([]Example{
		{Features: []float64{1}},
		{Features: []float64{1, 2}},
	}, []string{"x"}, Config{}); err == nil {
		t.Error("ragged features should fail")
	}
}

func TestLearnsStepFunction(t *testing.T) {
	// target = 10 for x <= 5, 100 for x > 5.
	var examples []Example
	for x := 0.0; x <= 10; x += 0.5 {
		target := 10.0
		if x > 5 {
			target = 100
		}
		examples = append(examples, Example{Features: []float64{x}, Target: target})
	}
	tree, err := Train(examples, []string{"x"}, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{2}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Predict(2) = %g", got)
	}
	if got := tree.Predict([]float64{8}); math.Abs(got-100) > 1e-9 {
		t.Errorf("Predict(8) = %g", got)
	}
}

func TestApproximatesPiecewise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(x, y float64) float64 {
		switch {
		case x < 3:
			return 5
		case y < 5:
			return 50
		default:
			return 500
		}
	}
	var examples []Example
	for i := 0; i < 600; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		examples = append(examples, Example{Features: []float64{x, y}, Target: f(x, y)})
	}
	tree, err := Train(examples, []string{"x", "y"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	const n = 300
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		d := tree.Predict([]float64{x, y}) - f(x, y)
		mse += d * d
	}
	mse /= n
	if mse > 500 { // target variance is ~40k; the tree must do far better
		t.Errorf("MSE = %g on a piecewise-constant target", mse)
	}
}

func TestConstantTarget(t *testing.T) {
	examples := []Example{
		{Features: []float64{1}, Target: 7},
		{Features: []float64{2}, Target: 7},
		{Features: []float64{3}, Target: 7},
	}
	tree, err := Train(examples, []string{"x"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("constant target grew depth %d", tree.Depth())
	}
	if got := tree.Predict([]float64{99}); got != 7 {
		t.Errorf("Predict = %g", got)
	}
}

func TestMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var examples []Example
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		examples = append(examples, Example{Features: []float64{x}, Target: x})
	}
	tree, err := Train(examples, []string{"x"}, Config{MaxDepth: 4, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 4 {
		t.Errorf("depth %d exceeds limit", tree.Depth())
	}
}

func TestPruningReducesOverfit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	noisy := func() []Example {
		var out []Example
		for i := 0; i < 500; i++ {
			x := rng.Float64() * 10
			target := 10.0
			if x > 5 {
				target = 100
			}
			out = append(out, Example{Features: []float64{x, rng.Float64()}, Target: target + rng.NormFloat64()*15})
		}
		return out
	}
	examples := noisy()
	unpruned, err := Train(examples, []string{"x", "noise"}, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(examples, []string{"x", "noise"}, Config{MinLeaf: 1, Prune: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Depth() > unpruned.Depth() {
		t.Errorf("pruned deeper than unpruned: %d > %d", pruned.Depth(), unpruned.Depth())
	}
	// Pruned tree still captures the step.
	if pruned.Predict([]float64{1, 0.5}) > 60 || pruned.Predict([]float64{9, 0.5}) < 60 {
		t.Error("pruned tree lost the step")
	}
}

func TestStringRendering(t *testing.T) {
	examples := []Example{
		{Features: []float64{1}, Target: 1},
		{Features: []float64{2}, Target: 1},
		{Features: []float64{8}, Target: 9},
		{Features: []float64{9}, Target: 9},
	}
	tree, err := Train(examples, []string{"size"}, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if !strings.Contains(s, "size <=") {
		t.Errorf("rendering = %q", s)
	}
}
