// Package reptree implements a regression tree in the style of Weka's
// REPTree: binary splits chosen by variance reduction, grown fast, then
// pruned by reduced-error pruning on a held-out subset of the training data.
// The paper trains three such trees (T2, T3, T4) to predict BATCH_SIZE,
// THREADS_SIZE and CACHE_SIZE for a query (Section V, Phase 2).
package reptree

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Example is one training instance: a dense feature vector and a numeric
// target.
type Example struct {
	Features []float64
	Target   float64
}

// Config controls induction.
type Config struct {
	// MaxDepth bounds the tree height; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of examples per leaf (default 3).
	MinLeaf int
	// PruneFraction is the share of examples held out for reduced-error
	// pruning (default 0.25; 0 < f < 1). Set Prune to enable.
	PruneFraction float64
	// Prune enables reduced-error pruning.
	Prune bool
	// Seed drives the train/holdout shuffle.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 3
	}
	if c.PruneFraction <= 0 || c.PruneFraction >= 1 {
		c.PruneFraction = 0.25
	}
	return c
}

// Tree is a trained regression tree.
type Tree struct {
	root         *node
	featureNames []string
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	value     float64 // leaf prediction (mean target)
	n         int
}

// Train induces a regression tree from examples.
func Train(examples []Example, featureNames []string, cfg Config) (*Tree, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("reptree: empty training set")
	}
	width := len(examples[0].Features)
	if width == 0 {
		return nil, fmt.Errorf("reptree: examples have no features")
	}
	if len(featureNames) != width {
		return nil, fmt.Errorf("reptree: %d feature names for %d features", len(featureNames), width)
	}
	for i, ex := range examples {
		if len(ex.Features) != width {
			return nil, fmt.Errorf("reptree: example %d has %d features, want %d", i, len(ex.Features), width)
		}
	}
	cfg = cfg.withDefaults()

	grow := examples
	var holdout []Example
	if cfg.Prune && len(examples) >= 8 {
		shuffled := make([]Example, len(examples))
		copy(shuffled, examples)
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		cut := int(float64(len(shuffled)) * cfg.PruneFraction)
		if cut < 1 {
			cut = 1
		}
		holdout, grow = shuffled[:cut], shuffled[cut:]
	}

	t := &Tree{featureNames: featureNames}
	t.root = build(grow, cfg, 0)
	if len(holdout) > 0 {
		pruneREP(t.root, holdout)
	}
	return t, nil
}

// Predict returns the tree's estimate for a feature vector.
func (t *Tree) Predict(features []float64) float64 {
	n := t.root
	for n.left != nil {
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree height (a single leaf has depth 1).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.left == nil {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the tree in indented form.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, n *node, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.left == nil {
		fmt.Fprintf(b, "%s=> %.4g (%d)\n", pad, n.value, n.n)
		return
	}
	fmt.Fprintf(b, "%s%s <= %g?\n", pad, t.featureNames[n.feature], n.threshold)
	t.render(b, n.left, indent+1)
	fmt.Fprintf(b, "%s%s > %g?\n", pad, t.featureNames[n.feature], n.threshold)
	t.render(b, n.right, indent+1)
}

func build(examples []Example, cfg Config, d int) *node {
	n := &node{value: mean(examples), n: len(examples)}
	if len(examples) < 2*cfg.MinLeaf || (cfg.MaxDepth > 0 && d >= cfg.MaxDepth-1) || sse(examples, n.value) == 0 {
		return n
	}
	feature, threshold, ok := bestSplit(examples, cfg.MinLeaf)
	if !ok {
		return n
	}
	var left, right []Example
	for _, ex := range examples {
		if ex.Features[feature] <= threshold {
			left = append(left, ex)
		} else {
			right = append(right, ex)
		}
	}
	n.feature = feature
	n.threshold = threshold
	n.left = build(left, cfg, d+1)
	n.right = build(right, cfg, d+1)
	return n
}

func mean(examples []Example) float64 {
	s := 0.0
	for _, ex := range examples {
		s += ex.Target
	}
	return s / float64(len(examples))
}

func sse(examples []Example, m float64) float64 {
	s := 0.0
	for _, ex := range examples {
		d := ex.Target - m
		s += d * d
	}
	return s
}

// bestSplit maximizes variance reduction (equivalently, minimizes the sum of
// child SSEs) with an O(n log n) sweep per feature.
func bestSplit(examples []Example, minLeaf int) (int, float64, bool) {
	width := len(examples[0].Features)
	n := len(examples)
	total := sse(examples, mean(examples))
	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0

	type fv struct{ f, t float64 }
	col := make([]fv, n)
	for f := 0; f < width; f++ {
		for i, ex := range examples {
			col[i] = fv{f: ex.Features[f], t: ex.Target}
		}
		sort.Slice(col, func(i, j int) bool { return col[i].f < col[j].f })
		// Prefix sums for incremental SSE.
		sumL, sumSqL := 0.0, 0.0
		sumT, sumSqT := 0.0, 0.0
		for _, v := range col {
			sumT += v.t
			sumSqT += v.t * v.t
		}
		for i := 0; i+1 < n; i++ {
			sumL += col[i].t
			sumSqL += col[i].t * col[i].t
			if col[i].f == col[i+1].f {
				continue
			}
			nl := i + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/float64(nl)
			sumR := sumT - sumL
			sseR := (sumSqT - sumSqL) - sumR*sumR/float64(nr)
			gain := total - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (col[i].f + col[i+1].f) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

// pruneREP collapses subtrees whose holdout SSE does not beat the leaf's.
func pruneREP(n *node, holdout []Example) float64 {
	if n.left == nil {
		return sse(holdout, n.value)
	}
	var left, right []Example
	for _, ex := range holdout {
		if ex.Features[n.feature] <= n.threshold {
			left = append(left, ex)
		} else {
			right = append(right, ex)
		}
	}
	childSSE := pruneREP(n.left, left) + pruneREP(n.right, right)
	leafSSE := sse(holdout, n.value)
	if leafSSE <= childSSE {
		n.left, n.right = nil, nil
		return leafSSE
	}
	return childSSE
}
