// Package c45 implements a C4.5-style decision-tree classifier over numeric
// features: binary splits chosen by gain ratio, with pessimistic error
// pruning. It stands in for the Weka J48 classifier the paper trains as T1,
// the model that picks the augmenter for a query (Section V, Phase 2).
//
// Categorical inputs (e.g. the target database) are one-hot encoded by the
// caller; all features reaching the tree are float64.
package c45

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Example is one training instance: a dense feature vector and a class label.
type Example struct {
	Features []float64
	Label    string
}

// Config controls tree induction.
type Config struct {
	// MaxDepth bounds the tree height; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of examples per leaf (default 2).
	MinLeaf int
	// Prune enables pessimistic subtree replacement after induction.
	Prune bool
	// PruneConfidence is the z-like factor of the pessimistic error
	// estimate (default 0.69, roughly Weka's CF=0.25).
	PruneConfidence float64
}

func (c Config) withDefaults() Config {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.PruneConfidence <= 0 {
		c.PruneConfidence = 0.69
	}
	return c
}

// Tree is a trained classifier.
type Tree struct {
	root         *node
	featureNames []string
	labels       []string
}

type node struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *node // feature <= threshold
	right     *node // feature > threshold
	// Leaves (left == nil).
	label string
	// Statistics for pruning and rendering.
	n      int
	errs   int // training errors if this node were a leaf with `label`
	counts map[string]int
}

// Train induces a tree from examples. featureNames are used only for
// rendering and must match the feature vector length.
func Train(examples []Example, featureNames []string, cfg Config) (*Tree, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("c45: empty training set")
	}
	width := len(examples[0].Features)
	if width == 0 {
		return nil, fmt.Errorf("c45: examples have no features")
	}
	if len(featureNames) != width {
		return nil, fmt.Errorf("c45: %d feature names for %d features", len(featureNames), width)
	}
	for i, ex := range examples {
		if len(ex.Features) != width {
			return nil, fmt.Errorf("c45: example %d has %d features, want %d", i, len(ex.Features), width)
		}
		if ex.Label == "" {
			return nil, fmt.Errorf("c45: example %d has an empty label", i)
		}
	}
	cfg = cfg.withDefaults()
	t := &Tree{featureNames: featureNames}
	t.root = build(examples, cfg, 0)
	if cfg.Prune {
		prune(t.root, cfg.PruneConfidence)
	}
	labelSet := map[string]bool{}
	for _, ex := range examples {
		labelSet[ex.Label] = true
	}
	for l := range labelSet {
		t.labels = append(t.labels, l)
	}
	sort.Strings(t.labels)
	return t, nil
}

// Predict returns the class label for a feature vector.
func (t *Tree) Predict(features []float64) string {
	n := t.root
	for n.left != nil {
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Labels returns the class labels seen during training, sorted.
func (t *Tree) Labels() []string { return t.labels }

// Depth returns the tree height (a single leaf has depth 1).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.left == nil {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leaves(t.root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.left == nil {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}

// String renders the tree in an indented if/else form like the paper's
// Fig. 8.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, n *node, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.left == nil {
		fmt.Fprintf(b, "%s=> %s (%d)\n", pad, n.label, n.n)
		return
	}
	fmt.Fprintf(b, "%s%s <= %g?\n", pad, t.featureNames[n.feature], n.threshold)
	t.render(b, n.left, indent+1)
	fmt.Fprintf(b, "%s%s > %g?\n", pad, t.featureNames[n.feature], n.threshold)
	t.render(b, n.right, indent+1)
}

func build(examples []Example, cfg Config, d int) *node {
	n := leafOf(examples)
	if n.errs == 0 || len(examples) < 2*cfg.MinLeaf || (cfg.MaxDepth > 0 && d >= cfg.MaxDepth-1) {
		return n
	}
	feature, threshold, ok := bestSplit(examples, cfg.MinLeaf)
	if !ok {
		return n
	}
	var left, right []Example
	for _, ex := range examples {
		if ex.Features[feature] <= threshold {
			left = append(left, ex)
		} else {
			right = append(right, ex)
		}
	}
	n.feature = feature
	n.threshold = threshold
	n.left = build(left, cfg, d+1)
	n.right = build(right, cfg, d+1)
	return n
}

// leafOf builds a majority-class leaf for the examples.
func leafOf(examples []Example) *node {
	counts := map[string]int{}
	for _, ex := range examples {
		counts[ex.Label]++
	}
	best, bestN := "", -1
	// Deterministic majority: ties broken by label order.
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return &node{label: best, n: len(examples), errs: len(examples) - bestN, counts: counts}
}

// bestSplit finds the (feature, threshold) pair with the highest gain ratio.
func bestSplit(examples []Example, minLeaf int) (int, float64, bool) {
	baseEntropy := entropyOf(examples)
	width := len(examples[0].Features)
	bestRatio := 1e-9
	bestFeature, bestThreshold := -1, 0.0

	values := make([]float64, len(examples))
	for f := 0; f < width; f++ {
		for i, ex := range examples {
			values[i] = ex.Features[f]
		}
		sort.Float64s(values)
		for i := 0; i+1 < len(values); i++ {
			if values[i] == values[i+1] {
				continue
			}
			threshold := (values[i] + values[i+1]) / 2
			gain, split := gainOf(examples, f, threshold, baseEntropy, minLeaf)
			if split <= 0 {
				continue
			}
			ratio := gain / split
			if ratio > bestRatio {
				bestRatio, bestFeature, bestThreshold = ratio, f, threshold
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

func gainOf(examples []Example, feature int, threshold, baseEntropy float64, minLeaf int) (gain, splitInfo float64) {
	leftCounts := map[string]int{}
	rightCounts := map[string]int{}
	nl, nr := 0, 0
	for _, ex := range examples {
		if ex.Features[feature] <= threshold {
			leftCounts[ex.Label]++
			nl++
		} else {
			rightCounts[ex.Label]++
			nr++
		}
	}
	if nl < minLeaf || nr < minLeaf {
		return 0, 0
	}
	n := float64(len(examples))
	pl, pr := float64(nl)/n, float64(nr)/n
	gain = baseEntropy - pl*entropyCounts(leftCounts, nl) - pr*entropyCounts(rightCounts, nr)
	splitInfo = -pl*math.Log2(pl) - pr*math.Log2(pr)
	return gain, splitInfo
}

func entropyOf(examples []Example) float64 {
	counts := map[string]int{}
	for _, ex := range examples {
		counts[ex.Label]++
	}
	return entropyCounts(counts, len(examples))
}

func entropyCounts(counts map[string]int, n int) float64 {
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		e -= p * math.Log2(p)
	}
	return e
}

// prune performs pessimistic subtree replacement: a subtree collapses to a
// leaf when the leaf's pessimistic error estimate does not exceed the
// subtree's.
func prune(n *node, confidence float64) (subtreeErrs float64) {
	if n.left == nil {
		return pessimistic(n.errs, n.n, confidence)
	}
	childErrs := prune(n.left, confidence) + prune(n.right, confidence)
	leafErrs := pessimistic(n.errs, n.n, confidence)
	if leafErrs <= childErrs {
		n.left, n.right = nil, nil
		return leafErrs
	}
	return childErrs
}

// pessimistic is the classic continuity-corrected error estimate
// e + z*sqrt(e*(1-e/n)) with e = errs + 0.5.
func pessimistic(errs, n int, confidence float64) float64 {
	e := float64(errs) + 0.5
	return e + confidence*math.Sqrt(e*(1-e/float64(n)))
}
