package c45

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := Train([]Example{{Features: nil, Label: "a"}}, nil, Config{}); err == nil {
		t.Error("no features should fail")
	}
	if _, err := Train([]Example{{Features: []float64{1}, Label: "a"}}, []string{"x", "y"}, Config{}); err == nil {
		t.Error("name/width mismatch should fail")
	}
	if _, err := Train([]Example{
		{Features: []float64{1}, Label: "a"},
		{Features: []float64{1, 2}, Label: "b"},
	}, []string{"x"}, Config{}); err == nil {
		t.Error("ragged features should fail")
	}
	if _, err := Train([]Example{{Features: []float64{1}, Label: ""}}, []string{"x"}, Config{}); err == nil {
		t.Error("empty label should fail")
	}
}

func TestLearnsThreshold(t *testing.T) {
	// y = "big" iff x > 5: trivially separable.
	var examples []Example
	for x := 0.0; x <= 10; x++ {
		label := "small"
		if x > 5 {
			label = "big"
		}
		examples = append(examples, Example{Features: []float64{x}, Label: label})
	}
	tree, err := Train(examples, []string{"x"}, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		x    float64
		want string
	}{{0, "small"}, {5, "small"}, {6, "big"}, {100, "big"}} {
		if got := tree.Predict([]float64{tc.x}); got != tc.want {
			t.Errorf("Predict(%g) = %q, want %q", tc.x, got, tc.want)
		}
	}
	if got := tree.Labels(); len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Errorf("Labels = %v", got)
	}
}

func TestLearnsConjunction(t *testing.T) {
	// label = "yes" iff x > 3 AND y <= 7: needs two levels.
	var examples []Example
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		label := "no"
		if x > 3 && y <= 7 {
			label = "yes"
		}
		examples = append(examples, Example{Features: []float64{x, y}, Label: label})
	}
	tree, err := Train(examples, []string{"x", "y"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		want := "no"
		if x > 3 && y <= 7 {
			want = "yes"
		}
		if tree.Predict([]float64{x, y}) == want {
			correct++
		}
	}
	if correct < 190 {
		t.Errorf("accuracy %d/200 on a separable concept", correct)
	}
}

func TestSingleClassYieldsLeaf(t *testing.T) {
	examples := []Example{
		{Features: []float64{1}, Label: "only"},
		{Features: []float64{2}, Label: "only"},
		{Features: []float64{3}, Label: "only"},
	}
	tree, err := Train(examples, []string{"x"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 || tree.Leaves() != 1 {
		t.Errorf("depth=%d leaves=%d, want a single leaf", tree.Depth(), tree.Leaves())
	}
	if tree.Predict([]float64{-100}) != "only" {
		t.Error("single-class prediction wrong")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var examples []Example
	for i := 0; i < 300; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		label := "a"
		if x+y+z > 1.5 {
			label = "b"
		}
		examples = append(examples, Example{Features: []float64{x, y, z}, Label: label})
	}
	tree, err := Train(examples, []string{"x", "y", "z"}, Config{MaxDepth: 3, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Errorf("depth %d exceeds MaxDepth 3", tree.Depth())
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func() []Example {
		var out []Example
		for i := 0; i < 400; i++ {
			x := rng.Float64() * 10
			label := "lo"
			if x > 5 {
				label = "hi"
			}
			if rng.Float64() < 0.15 { // label noise
				if label == "lo" {
					label = "hi"
				} else {
					label = "lo"
				}
			}
			out = append(out, Example{Features: []float64{x, rng.Float64()}, Label: label})
		}
		return out
	}
	examples := gen()
	unpruned, err := Train(examples, []string{"x", "noise"}, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(examples, []string{"x", "noise"}, Config{MinLeaf: 1, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() > unpruned.Leaves() {
		t.Errorf("pruned tree larger: %d > %d leaves", pruned.Leaves(), unpruned.Leaves())
	}
	// Pruned tree still learns the main threshold.
	if pruned.Predict([]float64{1, 0.5}) != "lo" || pruned.Predict([]float64{9, 0.5}) != "hi" {
		t.Error("pruned tree lost the concept")
	}
}

func TestStringRendering(t *testing.T) {
	examples := []Example{
		{Features: []float64{1}, Label: "a"},
		{Features: []float64{2}, Label: "a"},
		{Features: []float64{8}, Label: "b"},
		{Features: []float64{9}, Label: "b"},
	}
	tree, err := Train(examples, []string{"size"}, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if !strings.Contains(s, "size <=") || !strings.Contains(s, "=> a") || !strings.Contains(s, "=> b") {
		t.Errorf("rendering = %q", s)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Equal class counts: the lexicographically first label wins.
	examples := []Example{
		{Features: []float64{1}, Label: "zzz"},
		{Features: []float64{1}, Label: "aaa"},
	}
	tree, err := Train(examples, []string{"x"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{1}) != "aaa" {
		t.Error("tie not broken deterministically")
	}
}
