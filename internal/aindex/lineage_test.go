package aindex

import (
	"bytes"
	"strings"
	"testing"

	"quepa/internal/core"
)

func TestLineageInsertAndRead(t *testing.T) {
	li := NewLineageIndex()
	if err := li.Insert(core.NewIdentity(albumD1, invA32, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := li.Insert(core.NewIdentity(albumD1, discount1, 0.8)); err != nil {
		t.Fatal(err)
	}
	// The underlying index behaves like a plain one, closure included.
	if _, ok := li.Index().Relation(invA32, discount1); !ok {
		t.Fatal("materialized edge missing")
	}
	if got := len(li.Asserted()); got != 2 {
		t.Errorf("Asserted = %d", got)
	}
	if err := li.Insert(core.NewIdentity(albumD1, albumD1, 0.5)); err == nil {
		t.Error("invalid assertion accepted")
	}
}

func TestLineageTracksDerivation(t *testing.T) {
	li := NewLineageIndex()
	li.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	li.Insert(core.NewIdentity(albumD1, discount1, 0.8))
	// The inferred invA32~discount1 edge derives from the second assertion.
	if !li.DerivedFrom(invA32, discount1, albumD1, discount1) {
		t.Error("inferred edge not linked to its triggering assertion")
	}
	if li.DerivedFrom(albumD1, invA32, salesS8, invA32) {
		t.Error("derivation from an unrelated assertion reported")
	}
}

func TestCascadingDeletion(t *testing.T) {
	li := NewLineageIndex()
	li.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	li.Insert(core.NewIdentity(albumD1, discount1, 0.8))
	li.Insert(core.NewMatching(salesS8, invA32, 0.7))

	// Forget the d1~discount assertion: the inferred edges through it must
	// vanish (unlike the index's default lazy policy, which keeps them).
	ok, err := li.DeleteCascading(albumD1, discount1)
	if err != nil || !ok {
		t.Fatalf("DeleteCascading = %v, %v", ok, err)
	}
	if _, exists := li.Index().Relation(albumD1, discount1); exists {
		t.Error("deleted assertion still present")
	}
	if _, exists := li.Index().Relation(invA32, discount1); exists {
		t.Error("edge inferred via the deleted assertion survived the cascade")
	}
	if _, exists := li.Index().Relation(discount1, salesS8); exists {
		t.Error("matching propagated via the deleted assertion survived")
	}
	// Independent assertions survive.
	if _, exists := li.Index().Relation(albumD1, invA32); !exists {
		t.Error("independent assertion lost in cascade")
	}
	if _, exists := li.Index().Relation(salesS8, invA32); !exists {
		t.Error("independent matching lost in cascade")
	}
	// Matching propagation across the surviving identity is rebuilt.
	if _, exists := li.Index().Relation(salesS8, albumD1); !exists {
		t.Error("re-derivable inferred edge not rebuilt")
	}
	if err := li.Index().Validate(); err != nil {
		t.Error(err)
	}
	// Deleting a non-assertion is a no-op.
	ok, err = li.DeleteCascading(albumD1, discount1)
	if err != nil || ok {
		t.Errorf("second delete = %v, %v", ok, err)
	}
}

func TestCascadeKeepsIndependentlySupportedEdge(t *testing.T) {
	li := NewLineageIndex()
	// The same edge asserted directly AND inferable via a chain.
	li.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	li.Insert(core.NewIdentity(invA32, discount1, 0.85))
	li.Insert(core.NewIdentity(albumD1, discount1, 0.95)) // direct assertion of the inferable edge

	ok, err := li.DeleteCascading(invA32, discount1)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// albumD1~discount1 was asserted on its own: it must survive with its
	// asserted probability.
	r, exists := li.Index().Relation(albumD1, discount1)
	if !exists {
		t.Fatal("directly asserted edge lost in cascade")
	}
	if r.Prob != 0.95 {
		t.Errorf("surviving probability = %g, want the asserted 0.95", r.Prob)
	}
	// And the closure re-derives invA32~discount1 through the two surviving
	// identities (0.9 × 0.95), replacing the forgotten direct assertion.
	r, exists = li.Index().Relation(invA32, discount1)
	if !exists {
		t.Fatal("re-derivable edge not rebuilt")
	}
	if r.Prob > 0.86 {
		t.Errorf("rebuilt probability %g still reflects the deleted assertion", r.Prob)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	ix.Insert(core.NewIdentity(albumD1, discount1, 0.8))
	ix.Insert(core.NewMatching(salesS8, invA32, 0.7))

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NodeCount() != ix.NodeCount() || loaded.EdgeCount() != ix.EdgeCount() {
		t.Fatalf("loaded %d/%d, want %d/%d nodes/edges",
			loaded.NodeCount(), loaded.EdgeCount(), ix.NodeCount(), ix.EdgeCount())
	}
	for _, e := range ix.Edges() {
		got, ok := loaded.Relation(e.From, e.To)
		if !ok || got.Type != e.Type || got.Prob != e.Prob {
			t.Errorf("edge %v lost or changed: %v, %v", e, got, ok)
		}
	}
	if err := loaded.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadIndexErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"from": "nodots", "to": "a.b.c", "type": "identity", "p": 0.5}`,
		`{"from": "a.b.c", "to": "nodots", "type": "identity", "p": 0.5}`,
		`{"from": "a.b.c", "to": "a.b.d", "type": "sorcery", "p": 0.5}`,
		`{"from": "a.b.c", "to": "a.b.d", "type": "identity", "p": 1.5}`,
		`{"from": "a.b.c", "to": "a.b.c", "type": "identity", "p": 0.5}`,
	}
	for _, c := range cases {
		if _, err := ReadIndex(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("ReadIndex(%s) should fail", c)
		}
	}
	// Empty lines are tolerated.
	ix, err := ReadIndex(strings.NewReader("\n\n"))
	if err != nil || ix.EdgeCount() != 0 {
		t.Errorf("empty input: %v, %d edges", err, ix.EdgeCount())
	}
}

func TestPersistLargeIndex(t *testing.T) {
	ix := New()
	keys := make([]core.GlobalKey, 60)
	for i := range keys {
		keys[i] = core.NewGlobalKey("db", "c", string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	for i := 0; i+1 < len(keys); i++ {
		typ := core.Matching
		if i%3 == 0 {
			typ = core.Identity
		}
		if err := ix.Insert(core.PRelation{From: keys[i], To: keys[i+1], Type: typ, Prob: 0.7}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.EdgeCount() != ix.EdgeCount() {
		t.Errorf("edges = %d, want %d", loaded.EdgeCount(), ix.EdgeCount())
	}
}
