package aindex

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"quepa/internal/core"
)

// This file persists an A' index in two formats:
//
//   - JSON lines (WriteTo/ReadIndex) — one p-relation per line, the
//     human-greppable interchange format quepa-collect emits and
//     quepa-server -index loads (the paper deploys one A' index replica per
//     instance);
//   - a versioned binary snapshot (WriteSnapshot/ReadSnapshot) — the
//     checkpoint format of the durability subsystem (internal/wal): a sorted
//     key table followed by the canonical edge list as key-id pairs, stamped
//     with the WAL epoch fence the snapshot corresponds to and trailed by a
//     CRC32C of everything before it, so recovery can tell a valid
//     checkpoint from a torn one.

// persistedEdge is the on-disk form of one p-relation.
type persistedEdge struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Type string  `json:"type"` // "identity" or "matching"
	Prob float64 `json:"p"`
}

// WriteTo streams every edge of the index (including materialized inferred
// ones) as JSON lines. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	enc := json.NewEncoder(bw)
	for _, e := range ix.Edges() {
		rec := persistedEdge{
			From: e.From.String(),
			To:   e.To.String(),
			Type: e.Type.String(),
			Prob: e.Prob,
		}
		// Encoder writes a trailing newline: exactly one record per line.
		if err := enc.Encode(&rec); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// countWriter counts the bytes that actually reached the destination.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ReadIndex loads an index from the JSON-lines form produced by WriteTo.
// Edges are installed verbatim (no re-materialization: the dump already
// contains the closure), so loading is linear in the file size.
func ReadIndex(r io.Reader) (*Index, error) {
	ix := New()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec persistedEdge
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		from, err := core.ParseGlobalKey(rec.From)
		if err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		to, err := core.ParseGlobalKey(rec.To)
		if err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		var typ core.RelType
		switch rec.Type {
		case "identity":
			typ = core.Identity
		case "matching":
			typ = core.Matching
		default:
			return nil, fmt.Errorf("aindex: line %d: unknown relation type %q", line, rec.Type)
		}
		rel := core.PRelation{From: from, To: to, Type: typ, Prob: rec.Prob}
		if err := rel.Validate(); err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		ix.mu.Lock()
		ix.setEdgeLocked(from, to, typ, rec.Prob)
		ix.mu.Unlock()
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	// The loader bypassed Insert, so no mutation epochs advanced; freeze the
	// snapshot once over the finished adjacency before handing the index out.
	ix.RefreshSnapshot()
	return ix, nil
}

// Binary snapshot format, version 1. All integers little-endian.
//
//	magic   "QPCK"                         4 bytes
//	version uint16                         currently 1
//	epoch   uint64                         WAL epoch fence of the snapshot
//	nodes   uint32                         key-table size
//	keys    nodes × (uvarint len + bytes)  gk.String(), sorted ascending
//	edges   uint32                         canonical edge count (From <= To)
//	        edges × (uvarint from-id, uvarint to-id, uint8 type, uint64 prob bits)
//	crc     uint32                         CRC32C of every preceding byte
//
// The key table is the sorted key order and the edge list is Edges()'s
// canonical order, so two snapshots of equal indexes at equal epochs are
// byte-identical.

const (
	snapshotMagic   = "QPCK"
	snapshotVersion = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees writes into a running CRC32C and a byte count.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.n += int64(n)
	return n, err
}

// WriteSnapshot serializes a canonical edge list (as produced by Edges or
// EdgesWithEpoch) in the binary snapshot format, stamped with the given WAL
// epoch. It returns the number of bytes written.
func WriteSnapshot(w io.Writer, edges []core.PRelation, epoch uint64) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}

	// Key table: every distinct endpoint, sorted. Edges() is sorted by
	// (From, To) with From <= To, so collecting and sorting the union is
	// deterministic.
	keySet := make(map[core.GlobalKey]struct{}, 2*len(edges))
	for _, e := range edges {
		keySet[e.From] = struct{}{}
		keySet[e.To] = struct{}{}
	}
	keys := make([]core.GlobalKey, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sortKeys(keys)
	ids := make(map[core.GlobalKey]uint64, len(keys))
	for i, k := range keys {
		ids[k] = uint64(i)
	}

	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}
	if _, err := io.WriteString(cw, snapshotMagic); err != nil {
		return cw.n, err
	}
	var fixed [8]byte
	binary.LittleEndian.PutUint16(fixed[:2], snapshotVersion)
	if _, err := cw.Write(fixed[:2]); err != nil {
		return cw.n, err
	}
	binary.LittleEndian.PutUint64(fixed[:], epoch)
	if _, err := cw.Write(fixed[:8]); err != nil {
		return cw.n, err
	}
	binary.LittleEndian.PutUint32(fixed[:4], uint32(len(keys)))
	if _, err := cw.Write(fixed[:4]); err != nil {
		return cw.n, err
	}
	for _, k := range keys {
		s := k.String()
		if err := writeUvarint(uint64(len(s))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, s); err != nil {
			return cw.n, err
		}
	}
	binary.LittleEndian.PutUint32(fixed[:4], uint32(len(edges)))
	if _, err := cw.Write(fixed[:4]); err != nil {
		return cw.n, err
	}
	for _, e := range edges {
		if err := writeUvarint(ids[e.From]); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(ids[e.To]); err != nil {
			return cw.n, err
		}
		fixed[0] = byte(e.Type)
		if _, err := cw.Write(fixed[:1]); err != nil {
			return cw.n, err
		}
		binary.LittleEndian.PutUint64(fixed[:], math.Float64bits(e.Prob))
		if _, err := cw.Write(fixed[:8]); err != nil {
			return cw.n, err
		}
	}
	// CRC trailer over everything written so far (not itself CRC'd).
	binary.LittleEndian.PutUint32(fixed[:4], cw.crc)
	if _, err := bw.Write(fixed[:4]); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// crcReader mirrors crcWriter on the read side.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, castagnoli, []byte{b})
	}
	return b, err
}

// ReadSnapshot loads a binary snapshot, verifying structure, every relation,
// and the CRC trailer. It returns the index and the WAL epoch the snapshot
// was stamped with. Any malformation — bad magic, unknown version, an
// out-of-range id, a relation that fails validation, a CRC mismatch — is an
// error; recovery treats such a checkpoint as invalid and falls back to the
// previous one.
func ReadSnapshot(r io.Reader) (*Index, uint64, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	var buf [8]byte
	if _, err := io.ReadFull(cr, buf[:4]); err != nil {
		return nil, 0, fmt.Errorf("aindex: snapshot magic: %w", err)
	}
	if string(buf[:4]) != snapshotMagic {
		return nil, 0, fmt.Errorf("aindex: bad snapshot magic %q", buf[:4])
	}
	if _, err := io.ReadFull(cr, buf[:2]); err != nil {
		return nil, 0, fmt.Errorf("aindex: snapshot version: %w", err)
	}
	if v := binary.LittleEndian.Uint16(buf[:2]); v != snapshotVersion {
		return nil, 0, fmt.Errorf("aindex: unsupported snapshot version %d", v)
	}
	if _, err := io.ReadFull(cr, buf[:8]); err != nil {
		return nil, 0, fmt.Errorf("aindex: snapshot epoch: %w", err)
	}
	epoch := binary.LittleEndian.Uint64(buf[:8])
	if _, err := io.ReadFull(cr, buf[:4]); err != nil {
		return nil, 0, fmt.Errorf("aindex: snapshot key count: %w", err)
	}
	nKeys := binary.LittleEndian.Uint32(buf[:4])
	const maxKeys = 1 << 28 // refuse absurd allocations from corrupt headers
	if nKeys > maxKeys {
		return nil, 0, fmt.Errorf("aindex: snapshot claims %d keys", nKeys)
	}
	keys := make([]core.GlobalKey, nKeys)
	for i := range keys {
		l, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot key %d length: %w", i, err)
		}
		if l > 1<<20 {
			return nil, 0, fmt.Errorf("aindex: snapshot key %d length %d", i, l)
		}
		raw := make([]byte, l)
		if _, err := io.ReadFull(cr, raw); err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot key %d: %w", i, err)
		}
		gk, err := core.ParseGlobalKey(string(raw))
		if err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot key %d: %w", i, err)
		}
		keys[i] = gk
	}
	if _, err := io.ReadFull(cr, buf[:4]); err != nil {
		return nil, 0, fmt.Errorf("aindex: snapshot edge count: %w", err)
	}
	nEdges := binary.LittleEndian.Uint32(buf[:4])
	if nEdges > maxKeys {
		return nil, 0, fmt.Errorf("aindex: snapshot claims %d edges", nEdges)
	}
	ix := New()
	for i := uint32(0); i < nEdges; i++ {
		from, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot edge %d: %w", i, err)
		}
		to, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot edge %d: %w", i, err)
		}
		if from >= uint64(nKeys) || to >= uint64(nKeys) {
			return nil, 0, fmt.Errorf("aindex: snapshot edge %d references key %d of %d", i, max(from, to), nKeys)
		}
		if _, err := io.ReadFull(cr, buf[:1]); err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot edge %d type: %w", i, err)
		}
		typ := core.RelType(buf[0])
		if _, err := io.ReadFull(cr, buf[:8]); err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot edge %d prob: %w", i, err)
		}
		prob := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		rel := core.PRelation{From: keys[from], To: keys[to], Type: typ, Prob: prob}
		if err := rel.Validate(); err != nil {
			return nil, 0, fmt.Errorf("aindex: snapshot edge %d: %w", i, err)
		}
		ix.mu.Lock()
		ix.setEdgeLocked(rel.From, rel.To, typ, prob)
		ix.mu.Unlock()
	}
	sum := cr.crc
	if _, err := io.ReadFull(cr.r, buf[:4]); err != nil {
		return nil, 0, fmt.Errorf("aindex: snapshot crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:4]); got != sum {
		return nil, 0, fmt.Errorf("aindex: snapshot crc mismatch: stored %08x, computed %08x", got, sum)
	}
	ix.RefreshSnapshot()
	return ix, epoch, nil
}
