package aindex

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"quepa/internal/core"
)

// This file persists an A' index as JSON lines — one p-relation per line —
// so a collector-built index can be saved once and loaded by every QUEPA
// instance (the paper deploys one A' index replica per instance).

// persistedEdge is the on-disk form of one p-relation.
type persistedEdge struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Type string  `json:"type"` // "identity" or "matching"
	Prob float64 `json:"p"`
}

// WriteTo streams every edge of the index (including materialized inferred
// ones) as JSON lines. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	enc := json.NewEncoder(bw)
	for _, e := range ix.Edges() {
		rec := persistedEdge{
			From: e.From.String(),
			To:   e.To.String(),
			Type: e.Type.String(),
			Prob: e.Prob,
		}
		// Encoder writes a trailing newline: exactly one record per line.
		if err := enc.Encode(&rec); err != nil {
			return total, err
		}
	}
	if err := bw.Flush(); err != nil {
		return total, err
	}
	return total, nil
}

// ReadIndex loads an index from the JSON-lines form produced by WriteTo.
// Edges are installed verbatim (no re-materialization: the dump already
// contains the closure), so loading is linear in the file size.
func ReadIndex(r io.Reader) (*Index, error) {
	ix := New()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec persistedEdge
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		from, err := core.ParseGlobalKey(rec.From)
		if err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		to, err := core.ParseGlobalKey(rec.To)
		if err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		var typ core.RelType
		switch rec.Type {
		case "identity":
			typ = core.Identity
		case "matching":
			typ = core.Matching
		default:
			return nil, fmt.Errorf("aindex: line %d: unknown relation type %q", line, rec.Type)
		}
		rel := core.PRelation{From: from, To: to, Type: typ, Prob: rec.Prob}
		if err := rel.Validate(); err != nil {
			return nil, fmt.Errorf("aindex: line %d: %w", line, err)
		}
		ix.mu.Lock()
		ix.setEdgeLocked(from, to, typ, rec.Prob)
		ix.mu.Unlock()
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	// The loader bypassed Insert, so no mutation epochs advanced; freeze the
	// snapshot once over the finished adjacency before handing the index out.
	ix.RefreshSnapshot()
	return ix, nil
}
