package aindex

import (
	"reflect"
	"testing"

	"quepa/internal/core"
)

// memJournal records Log calls for assertions.
type memJournal struct {
	batches [][]JournalOp
	epochs  []uint64
}

func (j *memJournal) Log(ops []JournalOp, epoch uint64) {
	cp := make([]JournalOp, len(ops))
	copy(cp, ops)
	j.batches = append(j.batches, cp)
	j.epochs = append(j.epochs, epoch)
}

func TestJournalObservesMutationsInOrder(t *testing.T) {
	ix := New()
	j := &memJournal{}
	ix.SetJournal(j)

	r1 := prel("pg.users.1", "mongo.profiles.a", core.Identity, 0.9)
	r2 := prel("pg.users.2", "mongo.profiles.a", core.Matching, 0.7)
	if err := ix.Insert(r1); err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertRaw(r2); err != nil {
		t.Fatal(err)
	}
	if !ix.RemoveObject(core.MustParseGlobalKey("pg.users.2")) {
		t.Fatal("remove missed")
	}
	// Removing an absent key must not be journaled: replay would succeed but
	// the batch is pure noise.
	if ix.RemoveObject(core.MustParseGlobalKey("pg.users.99")) {
		t.Fatal("phantom removal")
	}

	want := [][]JournalOp{
		{{Kind: OpInsert, Rel: r1}},
		{{Kind: OpInsertRaw, Rel: r2}},
		{{Kind: OpRemove, Key: core.MustParseGlobalKey("pg.users.2")}},
	}
	if !reflect.DeepEqual(j.batches, want) {
		t.Fatalf("journal batches:\n got %+v\nwant %+v", j.batches, want)
	}
	for i := 1; i < len(j.epochs); i++ {
		if j.epochs[i] <= j.epochs[i-1] {
			t.Fatalf("epochs not strictly increasing: %v", j.epochs)
		}
	}

	// Replaying the journal into a fresh index reproduces the edges exactly.
	replay := New()
	for _, batch := range j.batches {
		for _, op := range batch {
			switch op.Kind {
			case OpInsert:
				if err := replay.Insert(op.Rel); err != nil {
					t.Fatal(err)
				}
			case OpInsertRaw:
				if err := replay.InsertRaw(op.Rel); err != nil {
					t.Fatal(err)
				}
			case OpRemove:
				replay.RemoveObject(op.Key)
			}
		}
	}
	if !reflect.DeepEqual(replay.Edges(), ix.Edges()) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", replay.Edges(), ix.Edges())
	}
}

func TestAdvanceEpochIsForwardOnly(t *testing.T) {
	ix := New()
	ix.AdvanceEpoch(10)
	j := &memJournal{}
	ix.SetJournal(j)
	if err := ix.Insert(prel("a.b.1", "c.d.2", core.Identity, 0.9)); err != nil {
		t.Fatal(err)
	}
	if len(j.epochs) != 1 || j.epochs[0] != 11 {
		t.Fatalf("epoch after AdvanceEpoch(10) = %v, want [11]", j.epochs)
	}
	ix.AdvanceEpoch(5) // backwards: refused
	if err := ix.Insert(prel("a.b.3", "c.d.4", core.Identity, 0.9)); err != nil {
		t.Fatal(err)
	}
	if j.epochs[1] != 12 {
		t.Fatalf("epoch moved backwards: %v", j.epochs)
	}
}

func TestReplaceComponentSwapsAtomically(t *testing.T) {
	ix := New()
	// Two components: {1,a} and {2,y}.
	if err := ix.Insert(prel("pg.users.1", "mongo.profiles.a", core.Identity, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(prel("pg.users.2", "neo.people.y", core.Matching, 0.7)); err != nil {
		t.Fatal(err)
	}
	j := &memJournal{}
	ix.SetJournal(j)

	// Replace component {1,a} with a rebuilt version {1,a,b}.
	repl, err := BulkLoad([]core.PRelation{
		prel("pg.users.1", "mongo.profiles.a", core.Identity, 0.95),
		prel("mongo.profiles.a", "neo.people.b", core.Identity, 0.91),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.ReplaceComponent([]core.GlobalKey{
		core.MustParseGlobalKey("pg.users.1"),
		core.MustParseGlobalKey("mongo.profiles.a"),
	}, repl)

	// One journal batch, one epoch, removes before raw inserts.
	if len(j.batches) != 1 {
		t.Fatalf("ReplaceComponent journaled %d batches, want 1", len(j.batches))
	}
	sawInsert := false
	for _, op := range j.batches[0] {
		switch op.Kind {
		case OpRemove:
			if sawInsert {
				t.Fatal("remove after insert in replacement batch")
			}
		case OpInsertRaw:
			sawInsert = true
		default:
			t.Fatalf("unexpected op kind %d", op.Kind)
		}
	}

	// The untouched component survives; the replaced one matches repl.
	want := New()
	for _, r := range repl.Edges() {
		if err := want.InsertRaw(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := want.Insert(prel("pg.users.2", "neo.people.y", core.Matching, 0.7)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ix.Edges(), want.Edges()) {
		t.Fatalf("post-swap edges:\n got %v\nwant %v", ix.Edges(), want.Edges())
	}

	// Pure removal: nil replacement drops the component.
	ix.ReplaceComponent([]core.GlobalKey{
		core.MustParseGlobalKey("pg.users.2"),
		core.MustParseGlobalKey("neo.people.y"),
	}, nil)
	if ix.Contains(core.MustParseGlobalKey("pg.users.2")) {
		t.Fatal("pure removal left the component behind")
	}
}
