// Package aindex implements the A' index of QUEPA (Section III-B/C): a graph
// whose nodes are the global keys of the polystore's data objects and whose
// edges are the identity and matching p-relations between them, each carrying
// a probability.
//
// The index enforces the paper's Consistency Condition at insertion time by
// materializing inferred p-relations:
//
//   - identity is transitive: inserting a ~ b merges the identity classes of
//     a and b, adding the missing identity edges with the product of the
//     probabilities along the connecting path (paper Fig. 4);
//   - matching propagates over identity (o1 ≡ o2 and o2 ~ o3 imply o1 ≡ o3):
//     every member of an identity class shares the class's matching edges.
//
// Deletion is lazy: an object is removed only when the augmenter discovers,
// during a fetch, that it no longer exists in the polystore. Because inferred
// edges are materialized, removing the node that induced them keeps them in
// place, matching the paper's chosen deletion strategy.
package aindex

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// Hot-path instrumentation handles, resolved once.
var (
	reachHist = telemetry.NewHistogram("quepa_aindex_reach_duration_seconds",
		"latency of A' index reachability lookups (one per origin object)", nil)
	reachHits = telemetry.NewCounter("quepa_aindex_reach_keys_total",
		"global keys returned by A' index reachability lookups")
	removals = telemetry.NewCounter("quepa_aindex_removals_total",
		"objects lazily removed from the A' index after a fetch miss")
)

// edge is one stored p-relation endpoint.
type edge struct {
	typ  core.RelType
	prob float64
}

// Index is the in-memory A' index. It is safe for concurrent use.
type Index struct {
	mu    sync.RWMutex
	adj   map[core.GlobalKey]map[core.GlobalKey]edge
	edges int

	// Read-optimized snapshot machinery (snapshot.go). epoch counts
	// mutations and is bumped inside the write critical section; snap holds
	// the latest frozen CSR view, stamped with the epoch it was built at.
	// The rebuild fields coordinate the single background rebuild goroutine.
	epoch          atomic.Uint64
	snap           atomic.Pointer[snapshot]
	rebuilds       atomic.Uint64
	debounce       atomic.Int64 // rebuild debounce override, nanoseconds
	rebuildMu      sync.Mutex
	rebuildRunning bool
	rebuildPending bool

	// journal, when non-nil, observes every mutation inside the write
	// critical section (journal.go). The WAL manager installs itself here so
	// crash recovery can replay mutations in application order.
	journal Journal

	// invalidate, when non-nil, is called after component-level surgery
	// (ReplaceComponent) commits — the one mutation class whose effects a
	// purely epoch-keyed result cache must not wait out, because rebalances
	// swap whole shards at once. Ordinary mutations rely on the epoch bump
	// alone. Stored atomically so reads need no lock.
	invalidate atomic.Pointer[func()]
}

// New returns an empty index with a fresh (empty) snapshot installed, so
// reads on an unmutated index take the lock-free path from the start.
func New() *Index {
	ix := &Index{adj: map[core.GlobalKey]map[core.GlobalKey]edge{}}
	ix.snap.Store(buildSnapshot(ix.adj, 0, 0))
	return ix
}

// NodeCount returns the number of global keys present in the index.
func (ix *Index) NodeCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.adj)
}

// EdgeCount returns the number of (undirected) p-relations in the index,
// including materialized inferred ones.
func (ix *Index) EdgeCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.edges
}

// Insert adds a p-relation and materializes every p-relation inferable from
// it under the Consistency Condition. Inserting an edge that already exists
// keeps the higher probability; inserting an identity where a matching edge
// exists upgrades it.
func (ix *Index) Insert(r core.PRelation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	ix.mu.Lock()
	ix.insertLocked(r)
	e := ix.epoch.Add(1)
	if ix.journal != nil {
		ix.journal.Log([]JournalOp{{Kind: OpInsert, Rel: r}}, e)
	}
	ix.mu.Unlock()
	ix.scheduleRebuild()
	return nil
}

// insertLocked materializes r and its consistency-condition closure. The
// caller holds the write lock — or owns the index exclusively, as the bulk
// loader's per-component shards do — and is responsible for the epoch bump.
func (ix *Index) insertLocked(r core.PRelation) {
	if r.Type == core.Matching {
		// Matching propagates across the identity classes of both endpoints.
		clsFrom := ix.identityClassLocked(r.From) // includes r.From with prob 1
		clsTo := ix.identityClassLocked(r.To)
		for x, px := range clsFrom {
			for y, py := range clsTo {
				if x == y {
					continue
				}
				ix.setEdgeLocked(x, y, core.Matching, px*r.Prob*py)
			}
		}
		return
	}

	// Identity: merge the two classes into one clique (paper Fig. 4), then
	// share all matching edges across the merged class.
	clsFrom := ix.identityClassLocked(r.From)
	clsTo := ix.identityClassLocked(r.To)
	for x, px := range clsFrom {
		for y, py := range clsTo {
			if x == y {
				continue
			}
			ix.setEdgeLocked(x, y, core.Identity, px*r.Prob*py)
		}
	}
	// Collect the matching edges of every member of the merged class, then
	// propagate each to the members that miss it. The propagated probability
	// follows the path member ~ owner ≡ partner: the identity probability
	// between the receiving member and the member that owns the matching
	// edge, times the matching probability — independent of insertion order.
	merged := ix.identityClassLocked(r.From)
	type match struct {
		owner   core.GlobalKey
		partner core.GlobalKey
		prob    float64
	}
	var matches []match
	for member := range merged {
		for nb, e := range ix.adj[member] {
			if e.typ == core.Matching {
				matches = append(matches, match{owner: member, partner: nb, prob: e.prob})
			}
		}
	}
	for _, m := range matches {
		for member := range merged {
			if member == m.partner || member == m.owner {
				continue
			}
			link, ok := ix.edgeLocked(member, m.owner)
			if !ok {
				continue // not actually connected (defensive)
			}
			ix.setEdgeLocked(member, m.partner, core.Matching, link.prob*m.prob)
		}
	}
}

// identityClassLocked returns the identity class of gk as a map from member
// to the best path probability from gk (gk itself maps to 1). Identity
// classes are maintained as cliques, so direct neighbors suffice; the
// traversal is still transitive for robustness against partially built
// indexes (e.g. bulk loads that bypass materialization).
//
// The traversal is hop-synchronous with frozen frontier values and requeues
// a node whenever its probability improves, running to the fixed point: the
// result is the true maximum product over all connecting paths, independent
// of map iteration order. (An earlier version read the live probability of
// a frontier node and never requeued improved nodes, which made closure
// probabilities depend on iteration order — and insertion nondeterministic.)
// Termination: probabilities only increase strictly, and the achievable
// values are products over simple paths, a finite set.
func (ix *Index) identityClassLocked(gk core.GlobalKey) map[core.GlobalKey]float64 {
	cls := map[core.GlobalKey]float64{gk: 1}
	frontier := map[core.GlobalKey]float64{gk: 1}
	for len(frontier) > 0 {
		next := map[core.GlobalKey]float64{}
		for cur, curProb := range frontier {
			for nb, e := range ix.adj[cur] {
				if e.typ != core.Identity {
					continue
				}
				p := curProb * e.prob
				if old, seen := cls[nb]; !seen || p > old {
					cls[nb] = p
					if p > next[nb] {
						next[nb] = p
					}
				}
			}
		}
		frontier = next
	}
	return cls
}

// setEdgeLocked installs an undirected edge, keeping the stronger of the old
// and new variants: identity beats matching, and within a type the higher
// probability wins.
func (ix *Index) setEdgeLocked(a, b core.GlobalKey, typ core.RelType, prob float64) {
	if prob > 1 {
		prob = 1
	}
	if prob <= 0 {
		return
	}
	old, exists := ix.edgeLocked(a, b)
	if exists {
		if old.typ == core.Identity && typ == core.Matching {
			return // identity subsumes matching
		}
		if old.typ == typ && old.prob >= prob {
			return
		}
	}
	if ix.adj[a] == nil {
		ix.adj[a] = map[core.GlobalKey]edge{}
	}
	if ix.adj[b] == nil {
		ix.adj[b] = map[core.GlobalKey]edge{}
	}
	if !exists {
		ix.edges++
	}
	e := edge{typ: typ, prob: prob}
	ix.adj[a][b] = e
	ix.adj[b][a] = e
}

func (ix *Index) edgeLocked(a, b core.GlobalKey) (edge, bool) {
	e, ok := ix.adj[a][b]
	return e, ok
}

// Relation reports the stored p-relation between two global keys, if any.
func (ix *Index) Relation(a, b core.GlobalKey) (core.PRelation, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	e, ok := ix.edgeLocked(a, b)
	if !ok {
		return core.PRelation{}, false
	}
	return core.PRelation{From: a, To: b, Type: e.typ, Prob: e.prob}, true
}

// Contains reports whether a global key is present in the index.
func (ix *Index) Contains(gk core.GlobalKey) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.adj[gk]
	return ok
}

// RemoveObject deletes a global key and its incident edges. It implements
// the lazy-deletion policy: the augmenter calls it when a fetch reveals the
// object no longer exists. Inferred edges between the remaining nodes stay.
func (ix *Index) RemoveObject(gk core.GlobalKey) bool {
	return ix.RemoveObjectCtx(context.Background(), gk)
}

// RemoveObjectCtx is RemoveObject with the triggering request's context, so a
// context-aware journal (the WAL) can hang its durability spans inside the
// trace of the request whose fetch revealed the stale object.
func (ix *Index) RemoveObjectCtx(ctx context.Context, gk core.GlobalKey) bool {
	ix.mu.Lock()
	if !ix.removeObjectLocked(gk) {
		ix.mu.Unlock()
		return false
	}
	e := ix.epoch.Add(1)
	if ix.journal != nil {
		ix.logCtxLocked(ctx, []JournalOp{{Kind: OpRemove, Key: gk}}, e)
	}
	ix.mu.Unlock()
	removals.Inc()
	ix.scheduleRebuild()
	return true
}

// removeObjectLocked deletes gk and its incident edges under the write lock,
// without touching the epoch or the journal; the caller owns both.
func (ix *Index) removeObjectLocked(gk core.GlobalKey) bool {
	nbs, ok := ix.adj[gk]
	if !ok {
		return false
	}
	for nb := range nbs {
		delete(ix.adj[nb], gk)
		ix.edges--
	}
	delete(ix.adj, gk)
	return true
}

// Hit is one global key reachable through the index, with the probability of
// the best path leading to it and the hop distance at which it was first
// reached.
type Hit struct {
	Key  core.GlobalKey
	Prob float64
	Dist int
}

// ReachStats summarizes the work of one reachability traversal: index nodes
// expanded (frontier entries processed, including the start) and adjacency
// edges scanned. The explain Recorder attributes them to the profiled query.
type ReachStats struct {
	Nodes int
	Edges int
	// Snapshot reports whether the traversal was served lock-free from the
	// CSR snapshot rather than the locked adjacency maps.
	Snapshot bool
}

// Reach returns the global keys reachable from gk within level+1 hops — the
// augmentation primitive α of Definition 2: level 0 reaches the direct
// p-relations of gk, each further level expands one hop more. The starting
// key is not included. Probabilities are the maximum product over all paths
// within the hop bound; results are ordered by decreasing probability (ties
// broken by key order) as Definition 3 requires.
func (ix *Index) Reach(gk core.GlobalKey, level int) []Hit {
	return ix.reach(gk, level, nil)
}

// ReachWithStats is Reach plus a count of the traversal work performed —
// the augmenter uses it when a query is being profiled.
func (ix *Index) ReachWithStats(gk core.GlobalKey, level int) ([]Hit, ReachStats) {
	var stats ReachStats
	hits := ix.reach(gk, level, &stats)
	return hits, stats
}

func (ix *Index) reach(gk core.GlobalKey, level int, stats *ReachStats) []Hit {
	if level < 0 {
		return nil
	}
	start := telemetry.Now()
	// Fast path: a snapshot stamped with the current mutation epoch serves
	// the traversal lock-free. The snapshot pointer is loaded before the
	// epoch, so a mutation between the two loads can only make the check
	// fail, never pass with stale data.
	if s := ix.snap.Load(); s != nil && s.epoch == ix.epoch.Load() {
		hits := s.reach(gk, level, stats)
		if stats != nil {
			stats.Snapshot = true
		}
		reachSnapshot.Inc()
		reachHits.Add(uint64(len(hits)))
		reachHist.Since(start)
		return hits
	}
	// The snapshot is behind the adjacency (a mutation's debounced rebuild
	// has not landed yet). Serve from the locked traversal so lazy deletions
	// take effect immediately, and make sure a rebuild is on its way.
	reachFallback.Inc()
	ix.scheduleRebuild()
	hits := ix.reachLocked(gk, level, stats)
	reachHits.Add(uint64(len(hits)))
	reachHist.Since(start)
	return hits
}

// reachLocked is the reference traversal over the mutable adjacency maps.
// The snapshot fast path (snapshot.go) replicates it operation for
// operation; TestSnapshotReachMatchesLocked pins the equivalence.
func (ix *Index) reachLocked(gk core.GlobalKey, level int, stats *ReachStats) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	maxHops := level + 1
	best := map[core.GlobalKey]Hit{gk: {Key: gk, Prob: 1, Dist: 0}}
	frontier := map[core.GlobalKey]float64{gk: 1}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		next := map[core.GlobalKey]float64{}
		for cur, curProb := range frontier {
			if stats != nil {
				stats.Nodes++
				stats.Edges += len(ix.adj[cur])
			}
			for nb, e := range ix.adj[cur] {
				p := curProb * e.prob
				old, seen := best[nb]
				if !seen || p > old.Prob {
					dist := hop
					if seen && old.Dist < hop {
						dist = old.Dist
					}
					best[nb] = Hit{Key: nb, Prob: p, Dist: dist}
					if p > next[nb] {
						next[nb] = p
					}
				}
			}
		}
		frontier = next
	}

	out := make([]Hit, 0, len(best)-1)
	for k, h := range best {
		if k == gk {
			continue
		}
		out = append(out, h)
	}
	SortHits(out)
	return out
}

// Neighbors returns the direct p-relations of gk (its level-0 reach)
// together with their types, ordered by decreasing probability. Augmented
// exploration uses it to render clickable links.
func (ix *Index) Neighbors(gk core.GlobalKey) []core.PRelation {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nbs := ix.adj[gk]
	out := make([]core.PRelation, 0, len(nbs))
	for nb, e := range nbs {
		out = append(out, core.PRelation{From: gk, To: nb, Type: e.typ, Prob: e.prob})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].To.Compare(out[j].To) < 0
	})
	return out
}

// SortHits orders hits by decreasing probability, breaking ties by key.
// Keys within a reach result are unique, so the comparison is a strict
// total order and every correct sort yields the same permutation; the
// hand-rolled quicksort keeps the snapshot Reach fast path free of
// sort.Slice's reflection and closure allocations.
func SortHits(hits []Hit) { sortHits(hits) }

func hitLess(a, b Hit) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	return a.Key.Compare(b.Key) < 0
}

func sortHits(h []Hit) {
	for len(h) > 12 {
		p := partitionHits(h)
		if p < len(h)-p-1 {
			sortHits(h[:p])
			h = h[p+1:]
		} else {
			sortHits(h[p+1:])
			h = h[:p]
		}
	}
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && hitLess(h[j], h[j-1]); j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

func partitionHits(h []Hit) int {
	mid, last := len(h)/2, len(h)-1
	h[mid], h[last] = h[last], h[mid]
	pivot := h[last]
	i := 0
	for j := 0; j < last; j++ {
		if hitLess(h[j], pivot) {
			h[i], h[j] = h[j], h[i]
			i++
		}
	}
	h[i], h[last] = h[last], h[i]
	return i
}

// Keys returns every global key in the index, sorted. Intended for tools and
// tests; it copies the key set under the read lock.
func (ix *Index) Keys() []core.GlobalKey {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]core.GlobalKey, 0, len(ix.adj))
	for k := range ix.adj {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Validate checks the structural invariants of the index: symmetry of the
// adjacency, probability bounds, and the Consistency Condition. It is meant
// for tests and for integrity checks after bulk loads.
func (ix *Index) Validate() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for a, nbs := range ix.adj {
		for b, e := range nbs {
			back, ok := ix.adj[b][a]
			if !ok {
				return fmt.Errorf("aindex: edge %v -> %v has no reverse", a, b)
			}
			if back != e {
				return fmt.Errorf("aindex: asymmetric edge %v <-> %v", a, b)
			}
			if e.prob <= 0 || e.prob > 1 {
				return fmt.Errorf("aindex: edge %v <-> %v has probability %g", a, b, e.prob)
			}
		}
	}
	// Consistency Condition: o1 ≡ o2 and o2 ~ o3 imply o1 ≡ o3 (or stronger:
	// an identity between o1 and o3).
	for o2, nbs := range ix.adj {
		for o1, e12 := range nbs {
			if e12.typ != core.Matching {
				continue
			}
			for o3, e23 := range nbs {
				if e23.typ != core.Identity || o3 == o1 {
					continue
				}
				if _, ok := ix.adj[o1][o3]; !ok {
					return fmt.Errorf("aindex: consistency violation: %v ≡ %v, %v ~ %v, but no %v ≡ %v",
						o1, o2, o2, o3, o1, o3)
				}
			}
		}
	}
	return nil
}

// Edges exports every p-relation of the index exactly once (normalized so
// From <= To), in deterministic order. The middleware baselines use it to
// materialize the index as a join relation.
func (ix *Index) Edges() []core.PRelation {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.edgesLocked()
}

func (ix *Index) edgesLocked() []core.PRelation {
	out := make([]core.PRelation, 0, ix.edges)
	for a, nbs := range ix.adj {
		for b, e := range nbs {
			if a.Compare(b) < 0 {
				out = append(out, core.PRelation{From: a, To: b, Type: e.typ, Prob: e.prob})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].From.Compare(out[j].From); c != 0 {
			return c < 0
		}
		return out[i].To.Compare(out[j].To) < 0
	})
	return out
}

// InsertRaw installs a p-relation WITHOUT enforcing the Consistency
// Condition: no transitive identities, no matching propagation. It exists
// for bulk loads of already-closed dumps (ReadIndex) and for the ablation
// experiment that quantifies what materialization buys (bench "ablation").
// Regular callers should use Insert.
func (ix *Index) InsertRaw(r core.PRelation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	ix.mu.Lock()
	ix.setEdgeLocked(r.From, r.To, r.Type, r.Prob)
	e := ix.epoch.Add(1)
	if ix.journal != nil {
		ix.journal.Log([]JournalOp{{Kind: OpInsertRaw, Rel: r}}, e)
	}
	ix.mu.Unlock()
	ix.scheduleRebuild()
	return nil
}

// Clone returns a deep copy of the index. The paper's deployment gives each
// QUEPA instance "its own A' index replica"; Clone produces such replicas
// from a master index built once (by the collector or a ReadIndex load).
func (ix *Index) Clone() *Index {
	ix.mu.RLock()
	out := New()
	out.edges = ix.edges
	for a, nbs := range ix.adj {
		m := make(map[core.GlobalKey]edge, len(nbs))
		for b, e := range nbs {
			m[b] = e
		}
		out.adj[a] = m
	}
	ix.mu.RUnlock()
	// The empty snapshot New installed does not describe the copied
	// adjacency; freeze a real one so the replica reads lock-free at once.
	out.RefreshSnapshot()
	return out
}
