package aindex

import (
	"strings"
	"sync"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

var (
	pathsRecorded = telemetry.NewCounter("quepa_aindex_paths_recorded_total",
		"full exploration paths registered in the D_P repository")
	promotions = telemetry.NewCounter("quepa_aindex_promotions_total",
		"exploration paths promoted to matching p-relations")
)

// This file implements the promotion of p-relations (Section III-D(a)): the
// system tracks the full paths users traverse during augmented exploration in
// a repository D_P; when the number of visits of a path reaches a
// length-dependent threshold, a matching p-relation between the path's
// endpoints is added to the index as a shortcut, with probability equal to
// the average of the probabilities along the path.

// PromotionPolicy controls when a traversed path is promoted to a matching
// p-relation. The threshold decreases as the path gets longer, "since the
// longer is a path the less likely it is to be traversed" (paper Example 8).
type PromotionPolicy struct {
	// BaseThreshold is the number of visits required for the shortest
	// promotable path (length 2, i.e. three nodes).
	BaseThreshold int
	// Decay is subtracted from the threshold for each extra hop.
	Decay int
	// MinThreshold floors the threshold.
	MinThreshold int
}

// DefaultPromotionPolicy mirrors the spirit of the paper's setting: paths of
// length 2 need 10 visits, each extra hop lowers the bar by 2, never below 3.
var DefaultPromotionPolicy = PromotionPolicy{BaseThreshold: 10, Decay: 2, MinThreshold: 3}

// Threshold returns the visit count required for a path of the given length
// (number of edges).
func (p PromotionPolicy) Threshold(pathLen int) int {
	t := p.BaseThreshold - (pathLen-2)*p.Decay
	if t < p.MinThreshold {
		t = p.MinThreshold
	}
	return t
}

// PathTracker is the D_P repository: it counts traversals of exploration
// paths and promotes them into the index according to the policy.
type PathTracker struct {
	mu     sync.Mutex
	index  *Index
	policy PromotionPolicy
	visits map[string]int
}

// NewPathTracker creates a tracker feeding promotions into the given index.
func NewPathTracker(index *Index, policy PromotionPolicy) *PathTracker {
	if policy.BaseThreshold <= 0 {
		policy = DefaultPromotionPolicy
	}
	return &PathTracker{index: index, policy: policy, visits: map[string]int{}}
}

// Record registers a fully traversed exploration path v0, ..., vk (k > 1,
// per the paper's definition of full path). It returns true when the path's
// visit count reached the threshold and a matching p-relation between v0 and
// vk was added (or refreshed) in the index.
//
// The promoted edge's probability is the average of the probabilities of the
// path's edges, read from the index at promotion time.
func (t *PathTracker) Record(path []core.GlobalKey) bool {
	if len(path) < 3 {
		return false // paths of length < 2 edges are not "full paths"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pathsRecorded.Inc()
	sig := pathSignature(path)
	t.visits[sig]++
	pathLen := len(path) - 1
	if t.visits[sig] < t.policy.Threshold(pathLen) {
		return false
	}
	// Reset the counter so a long-lived system can re-promote after the
	// edge is lazily deleted.
	t.visits[sig] = 0

	var sum float64
	edges := 0
	for i := 0; i+1 < len(path); i++ {
		if r, ok := t.index.Relation(path[i], path[i+1]); ok {
			sum += r.Prob
			edges++
		}
	}
	if edges == 0 {
		return false // path no longer exists in the index
	}
	avg := sum / float64(edges)
	err := t.index.Insert(core.NewMatching(path[0], path[len(path)-1], avg))
	if err == nil {
		promotions.Inc()
	}
	return err == nil
}

// Visits reports how many times a path has been recorded since the last
// promotion. Intended for tests and introspection endpoints.
func (t *PathTracker) Visits(path []core.GlobalKey) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.visits[pathSignature(path)]
}

func pathSignature(path []core.GlobalKey) string {
	parts := make([]string, len(path))
	for i, gk := range path {
		parts[i] = gk.String()
	}
	return strings.Join(parts, "\x1f")
}
