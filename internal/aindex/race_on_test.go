//go:build race

package aindex

// raceEnabled reports that this test binary was built with -race, which
// instruments sync.Pool and skews allocation counts.
const raceEnabled = true
