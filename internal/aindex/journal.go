// Mutation journal hook and component-level surgery.
//
// The durability subsystem (internal/wal) needs to observe every mutation of
// the A' index — explicit inserts, lazy deletions triggered by the augmenter,
// path promotions, incremental-collection deltas — in exactly the order they
// were applied, because crash recovery replays the journal and the result
// must be byte-identical to the pre-crash index. Rather than threading a log
// through every caller, the index itself exposes a Journal: mutators invoke
// it inside their write critical section, so the journal order IS the
// application order, and the epoch passed along is the PR 5 snapshot epoch
// the mutation produced — the WAL's batch fences align with the snapshot
// epochs by construction.
package aindex

import (
	"context"
	"sort"

	"quepa/internal/core"
)

// OpKind discriminates journal operations.
type OpKind uint8

const (
	// OpInsert is a full Insert: replay materializes the consistency-
	// condition closure again, which is deterministic, so logging the logical
	// relation suffices.
	OpInsert OpKind = iota + 1
	// OpInsertRaw installs a relation verbatim (closure already materialized
	// by the writer — bulk loads, component replacements).
	OpInsertRaw
	// OpRemove deletes a global key and its incident edges.
	OpRemove
)

// JournalOp is one logged index mutation. Inserts carry Rel; removes carry
// Key.
type JournalOp struct {
	Kind OpKind
	Rel  core.PRelation
	Key  core.GlobalKey
}

// Journal observes index mutations. Log is invoked while the index write
// lock is held, with the operations of one atomic mutation and the mutation
// epoch after applying it; epochs are therefore strictly increasing across
// calls. Implementations must be fast, must not call back into the index,
// and must not retain the ops slice.
type Journal interface {
	Log(ops []JournalOp, epoch uint64)
}

// ContextJournal is the optional extension a Journal implements to receive
// the mutating request's context — the WAL manager uses it to attach its
// append/fsync spans to the distributed trace of the request that paid for
// the durability work. Mutations arriving through ctx-less entry points call
// plain Log.
type ContextJournal interface {
	Journal
	LogCtx(ctx context.Context, ops []JournalOp, epoch uint64)
}

// logCtxLocked routes one journaled batch through LogCtx when the journal
// supports it and the caller actually has a context worth threading.
func (ix *Index) logCtxLocked(ctx context.Context, ops []JournalOp, epoch uint64) {
	if cj, ok := ix.journal.(ContextJournal); ok && ctx != nil {
		cj.LogCtx(ctx, ops, epoch)
		return
	}
	ix.journal.Log(ops, epoch)
}

// SetJournal installs (or, with nil, removes) the mutation journal. Existing
// state is not replayed: callers snapshot the index first (checkpoint) and
// journal only what changes afterwards.
func (ix *Index) SetJournal(j Journal) {
	ix.mu.Lock()
	ix.journal = j
	ix.mu.Unlock()
}

// Epoch returns the current mutation epoch. Result caches key their entries
// by it: any mutation bumps the epoch, so entries computed against an older
// index state simply stop validating and age out of the LRU.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

// SetInvalidationHook installs (or, with nil, removes) a callback invoked
// after every ReplaceComponent commits. Component surgery is the mutation
// class where epoch aging is not enough for derived caches: a cluster
// rebalance or an incremental-collection apply swaps a whole region of the
// index at once, and any result computed against the old region must become
// unservable immediately, not after LRU pressure. The hook runs outside the
// index locks and must not call back into mutators.
func (ix *Index) SetInvalidationHook(f func()) {
	if f == nil {
		ix.invalidate.Store(nil)
		return
	}
	ix.invalidate.Store(&f)
}

// EdgesWithEpoch returns the canonical edge list together with the mutation
// epoch it corresponds to, read atomically under the lock. Checkpoints use
// it to stamp a snapshot with the exact epoch fence that separates the edges
// already inside it from the journal batches that still need replaying.
func (ix *Index) EdgesWithEpoch() ([]core.PRelation, uint64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.edgesLocked(), ix.epoch.Load()
}

// AdvanceEpoch moves the mutation epoch forward to at least e and freezes a
// fresh snapshot at it. Crash recovery calls it after replaying the journal
// tail, so that post-recovery mutations produce epochs strictly greater than
// anything already fenced in the log. Moving the epoch backwards is refused.
func (ix *Index) AdvanceEpoch(e uint64) {
	ix.mu.Lock()
	if ix.epoch.Load() < e {
		ix.epoch.Store(e)
	}
	ix.mu.Unlock()
	ix.RefreshSnapshot()
}

// ReplaceComponent atomically removes the given keys and installs every edge
// of repl in their place, as one journaled mutation (one epoch). It is the
// apply step of incremental collection: the collector rebuilds the affected
// connected component offline with BulkLoad and swaps it in here, instead of
// rebuilding the whole index. The replacement's edges are expected to be
// disjoint from the surviving adjacency (a rebuilt component only references
// its own keys); edges that do overlap merge under the usual
// stronger-relation-wins rule. repl may be nil for a pure removal.
func (ix *Index) ReplaceComponent(remove []core.GlobalKey, repl *Index) {
	var replEdges []core.PRelation
	if repl != nil {
		replEdges = repl.Edges()
	}
	// Deterministic removal order, so the journaled batch replays the exact
	// operation sequence this call performs.
	removed := make([]core.GlobalKey, len(remove))
	copy(removed, remove)
	sort.Slice(removed, func(i, j int) bool { return removed[i].Compare(removed[j]) < 0 })

	ix.mu.Lock()
	var ops []JournalOp
	if ix.journal != nil {
		ops = make([]JournalOp, 0, len(removed)+len(replEdges))
	}
	for _, gk := range removed {
		if ix.removeObjectLocked(gk) && ops != nil {
			ops = append(ops, JournalOp{Kind: OpRemove, Key: gk})
		}
	}
	for _, e := range replEdges {
		ix.setEdgeLocked(e.From, e.To, e.Type, e.Prob)
		if ops != nil {
			ops = append(ops, JournalOp{Kind: OpInsertRaw, Rel: e})
		}
	}
	e := ix.epoch.Add(1)
	if ix.journal != nil {
		ix.journal.Log(ops, e)
	}
	ix.mu.Unlock()
	ix.scheduleRebuild()
	if f := ix.invalidate.Load(); f != nil {
		(*f)()
	}
}
