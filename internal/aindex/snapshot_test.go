package aindex

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// waitFresh blocks until the asynchronous rebuild catches the snapshot up
// with the mutation epoch (or the deadline passes).
func waitFresh(t *testing.T, ix *Index) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ix.SnapshotInfo().Fresh {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("snapshot never caught up with the mutation epoch")
}

// TestSnapshotReachMatchesLocked pins the tentpole read-path invariant: the
// lock-free CSR traversal returns exactly the hits and work stats of the
// locked reference traversal, for every origin and level, across seeds.
func TestSnapshotReachMatchesLocked(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		ix, keys := buildRandomIndexT(t, 150, seed)
		ix.RefreshSnapshot()
		s := ix.snap.Load()
		if s == nil || s.epoch != ix.epoch.Load() {
			t.Fatal("refreshed snapshot not fresh")
		}
		for _, level := range []int{0, 1, 2, 3} {
			for _, k := range keys {
				var ls, ss ReachStats
				locked := ix.reachLocked(k, level, &ls)
				snap := s.reach(k, level, &ss)
				if len(locked) != len(snap) {
					t.Fatalf("seed %d key %v level %d: %d snapshot hits, %d locked",
						seed, k, level, len(snap), len(locked))
				}
				for i := range locked {
					if locked[i] != snap[i] {
						t.Fatalf("seed %d key %v level %d hit %d: snapshot %+v, locked %+v",
							seed, k, level, i, snap[i], locked[i])
					}
				}
				if ss.Nodes != ls.Nodes || ss.Edges != ls.Edges {
					t.Fatalf("seed %d key %v level %d: snapshot stats %+v, locked %+v",
						seed, k, level, ss, ls)
				}
			}
		}
		// Unknown origin: same accounting as the locked traversal.
		var ss ReachStats
		if hits := s.reach(core.NewGlobalKey("no", "such", "key"), 2, &ss); len(hits) != 0 || ss.Nodes != 1 || ss.Edges != 0 {
			t.Errorf("seed %d unknown origin: hits=%v stats=%+v", seed, hits, ss)
		}
	}
}

// TestSnapshotStalenessAndFallback walks the freshness state machine: a
// mutation makes the snapshot stale (Reach falls back to the locked path and
// sees the mutation immediately), a refresh puts reads back on the lock-free
// path with identical results.
func TestSnapshotStalenessAndFallback(t *testing.T) {
	ix := New()
	// Park the async rebuild so this test controls freshness on its own.
	ix.SetRebuildDebounce(time.Hour)
	a := core.NewGlobalKey("db1", "c", "a")
	b := core.NewGlobalKey("db2", "c", "b")
	c := core.NewGlobalKey("db3", "c", "c")
	if err := ix.Insert(core.NewIdentity(a, b, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(core.NewMatching(b, c, 0.7)); err != nil {
		t.Fatal(err)
	}

	if ix.SnapshotInfo().Fresh {
		t.Fatal("snapshot fresh right after mutations with rebuild parked")
	}
	hits, st := ix.ReachWithStats(a, 1)
	if st.Snapshot {
		t.Error("stale snapshot served a traversal")
	}
	if len(hits) != 2 {
		t.Fatalf("fallback reach = %v, want 2 hits", hits)
	}

	ix.RefreshSnapshot()
	if !ix.SnapshotInfo().Fresh {
		t.Fatal("snapshot stale right after RefreshSnapshot")
	}
	hits2, st2 := ix.ReachWithStats(a, 1)
	if !st2.Snapshot {
		t.Error("fresh snapshot not used")
	}
	if len(hits2) != len(hits) {
		t.Fatalf("snapshot reach = %v, fallback was %v", hits2, hits)
	}
	for i := range hits {
		if hits[i] != hits2[i] {
			t.Errorf("hit %d: snapshot %+v, fallback %+v", i, hits2[i], hits[i])
		}
	}

	// Lazy deletion must take effect immediately, before any rebuild.
	if !ix.RemoveObject(b) {
		t.Fatal("RemoveObject(b) = false")
	}
	hits3, st3 := ix.ReachWithStats(a, 1)
	if st3.Snapshot {
		t.Error("stale snapshot served a traversal after removal")
	}
	for _, h := range hits3 {
		if h.Key == b {
			t.Errorf("removed object still reachable: %v", hits3)
		}
	}
}

// TestSnapshotRebuildAsync verifies the debounced background rebuild lands on
// its own after mutations, without any explicit RefreshSnapshot call.
func TestSnapshotRebuildAsync(t *testing.T) {
	ix := New()
	a := core.NewGlobalKey("db1", "c", "a")
	b := core.NewGlobalKey("db2", "c", "b")
	if err := ix.Insert(core.NewMatching(a, b, 0.8)); err != nil {
		t.Fatal(err)
	}
	waitFresh(t, ix)
	if _, st := ix.ReachWithStats(a, 0); !st.Snapshot {
		t.Error("reach not on the snapshot path after the async rebuild")
	}
	info := ix.SnapshotInfo()
	if info.Nodes != 2 || info.Edges != 1 || info.Rebuilds == 0 {
		t.Errorf("snapshot info = %+v", info)
	}
}

// TestReachDuringRebuildChurn hammers lock-free readers against concurrent
// mutators and snapshot rebuilds (run under -race). A nanosecond debounce
// forces a rebuild after virtually every mutation.
func TestReachDuringRebuildChurn(t *testing.T) {
	ix := New()
	ix.SetRebuildDebounce(time.Nanosecond)
	keys := make([]core.GlobalKey, 64)
	for i := range keys {
		keys[i] = core.NewGlobalKey(fmt.Sprintf("db%d", i%5), "c", fmt.Sprintf("k%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				if rng.Intn(10) == 0 {
					ix.RemoveObject(keys[rng.Intn(len(keys))])
					continue
				}
				a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
				if a == b {
					continue
				}
				typ := core.Matching
				if rng.Intn(3) == 0 {
					typ = core.Identity
				}
				ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.5 + rng.Float64()/2})
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 500; i++ {
				k := keys[rng.Intn(len(keys))]
				level := rng.Intn(3)
				if rng.Intn(2) == 0 {
					ix.Reach(k, level)
				} else {
					hits, _ := ix.ReachWithStats(k, level)
					for j := 1; j < len(hits); j++ {
						if hitLess(hits[j], hits[j-1]) {
							t.Errorf("unsorted hits under churn: %+v", hits)
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// After the dust settles the snapshot must converge and agree with the
	// locked traversal.
	ix.RefreshSnapshot()
	s := ix.snap.Load()
	for _, k := range keys {
		var ls, ss ReachStats
		locked := ix.reachLocked(k, 2, &ls)
		snap := s.reach(k, 2, &ss)
		if len(locked) != len(snap) {
			t.Fatalf("post-churn divergence at %v: %d vs %d hits", k, len(snap), len(locked))
		}
		for i := range locked {
			if locked[i] != snap[i] {
				t.Fatalf("post-churn hit %d at %v: %+v vs %+v", i, k, snap[i], locked[i])
			}
		}
	}
}

// TestSnapshotReachAllocs is the kill switch for the lock-free fast path:
// a snapshot Reach must allocate nothing beyond the result slice. A
// regression (lost pooling, map rebuilds, sort.Slice creeping back in) fails
// this immediately.
func TestSnapshotReachAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments sync.Pool and skews allocation counts")
	}
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)

	ix, keys := buildRandomIndexT(t, 500, 9)
	// Let pending debounced rebuilds drain, then freeze the final snapshot:
	// AllocsPerRun reads the global allocation counter, so no background
	// rebuild may run while it measures.
	waitFresh(t, ix)
	time.Sleep(20 * time.Millisecond)
	ix.RefreshSnapshot()
	k := keys[3]
	if _, st := ix.ReachWithStats(k, 1); !st.Snapshot {
		t.Fatal("fast path not active")
	}
	ix.Reach(k, 1) // warm the scratch pool

	for _, level := range []int{0, 1, 2} {
		avg := testing.AllocsPerRun(100, func() {
			ix.Reach(k, level)
		})
		// One alloc for the result slice; header-growth slack only.
		if avg > 2 {
			t.Errorf("level %d: snapshot Reach allocates %.1f/op, want <= 2", level, avg)
		}
	}
}

// TestScratchStampWraparound drives the visited stamps across the uint32
// wraparound boundary: traversals must stay correct when the stamp resets
// and the mark arrays are re-zeroed.
func TestScratchStampWraparound(t *testing.T) {
	ix, keys := buildRandomIndexT(t, 40, 4)
	ix.RefreshSnapshot()
	s := ix.snap.Load()

	want := s.reach(keys[0], 2, nil)
	sc := s.getScratch()
	sc.stamp = math.MaxUint32 - 1
	sc.nstamp = math.MaxUint32 - 1
	// Poison the mark arrays with values a lapsed stamp could collide with.
	for i := range sc.mark {
		sc.mark[i] = 1
		sc.nmark[i] = 1
	}
	s.pool.Put(sc)

	for round := 0; round < 4; round++ { // crosses MaxUint32 on round 2
		got := s.reach(keys[0], 2, nil)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d hits, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d hit %d: %+v, want %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestReachNegativeLevel pins the guard shared by both paths.
func TestReachNegativeLevel(t *testing.T) {
	ix, keys := buildRandomIndexT(t, 10, 2)
	if hits := ix.Reach(keys[0], -1); hits != nil {
		t.Errorf("Reach(level -1) = %v, want nil", hits)
	}
}
