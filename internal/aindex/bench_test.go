package aindex

import (
	"fmt"
	"math/rand"
	"testing"

	"quepa/internal/core"
)

// buildRandomIndex creates an index with n keys and ~2n edges.
func buildRandomIndex(n int, seed int64) (*Index, []core.GlobalKey) {
	rng := rand.New(rand.NewSource(seed))
	ix := New()
	keys := make([]core.GlobalKey, n)
	for i := range keys {
		keys[i] = core.NewGlobalKey(fmt.Sprintf("db%d", i%7), "c", fmt.Sprintf("k%d", i))
	}
	for i := 0; i < 2*n; i++ {
		a := keys[rng.Intn(n)]
		b := keys[rng.Intn(n)]
		if a == b {
			continue
		}
		typ := core.Matching
		if rng.Intn(5) == 0 {
			typ = core.Identity
		}
		ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.6 + 0.4*rng.Float64()})
	}
	return ix, keys
}

func BenchmarkInsertMatching(b *testing.B) {
	ix := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		from := core.NewGlobalKey("db", "c", fmt.Sprintf("a%d", i))
		to := core.NewGlobalKey("db", "c", fmt.Sprintf("b%d", i))
		ix.Insert(core.NewMatching(from, to, 0.7))
	}
}

func BenchmarkInsertIdentityWithClosure(b *testing.B) {
	// Worst-ish case: identities chained into one growing class would be
	// quadratic; bound class size by cycling through many chains.
	ix := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chain := i % 1024
		from := core.NewGlobalKey("db", "c", fmt.Sprintf("x%d-%d", chain, i/1024))
		to := core.NewGlobalKey("db", "c", fmt.Sprintf("x%d-%d", chain, i/1024+1))
		ix.Insert(core.NewIdentity(from, to, 0.9))
	}
}

func BenchmarkReach(b *testing.B) {
	ix, keys := buildRandomIndex(5000, 1)
	for _, level := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Reach(keys[i%len(keys)], level)
			}
		})
	}
}

// BenchmarkReachSnapshot isolates the lock-free CSR fast path: the snapshot
// is frozen up front, so every iteration is a pooled-scratch traversal.
func BenchmarkReachSnapshot(b *testing.B) {
	ix, keys := buildRandomIndex(5000, 1)
	ix.RefreshSnapshot()
	for _, level := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Reach(keys[i%len(keys)], level)
			}
		})
	}
}

// BenchmarkReachLockedFallback measures the pre-snapshot reference
// traversal the fallback path still uses — the baseline BenchmarkReachSnapshot
// is compared against.
func BenchmarkReachLockedFallback(b *testing.B) {
	ix, keys := buildRandomIndex(5000, 1)
	for _, level := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.reachLocked(keys[i%len(keys)], level, nil)
			}
		})
	}
}

// randomRelsBench produces the relation list buildRandomIndex would insert,
// for loading benchmarks that need the relations themselves.
func randomRelsBench(n int, seed int64) []core.PRelation {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]core.GlobalKey, n)
	for i := range keys {
		keys[i] = core.NewGlobalKey(fmt.Sprintf("db%d", i%7), "c", fmt.Sprintf("k%d", i))
	}
	var rels []core.PRelation
	for i := 0; i < 2*n; i++ {
		a := keys[rng.Intn(n)]
		b := keys[rng.Intn(n)]
		if a == b {
			continue
		}
		typ := core.Matching
		if rng.Intn(5) == 0 {
			typ = core.Identity
		}
		rels = append(rels, core.PRelation{From: a, To: b, Type: typ, Prob: 0.6 + 0.4*rng.Float64()})
	}
	return rels
}

// BenchmarkBulkLoad compares the offline component-parallel load against the
// sequential Insert loop it replaces.
func BenchmarkBulkLoad(b *testing.B) {
	rels := randomRelsBench(2000, 6)
	b.Run("insert-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix := New()
			for _, r := range rels {
				if err := ix.Insert(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("bulkload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BulkLoad(rels); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEdgesExport(b *testing.B) {
	ix, _ := buildRandomIndex(5000, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(ix.Edges()) == 0 {
			b.Fatal("no edges")
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	ix, keys := buildRandomIndex(5000, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Neighbors(keys[i%len(keys)])
	}
}
