package aindex

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"quepa/internal/core"
)

func gk(s string) core.GlobalKey { return core.MustParseGlobalKey(s) }

// Running-example keys (paper Figs. 1, 3, 4).
var (
	albumD1   = gk("catalogue.albums.d1")
	discount1 = gk("discount.drop.k1:cure:wish")
	invA32    = gk("transactions.inventory.a32")
	salesS8   = gk("transactions.sales.s8")
	detailI1  = gk("transactions.sales_details.i1")
)

func TestInsertAndRelation(t *testing.T) {
	ix := New()
	if err := ix.Insert(core.NewIdentity(albumD1, invA32, 0.9)); err != nil {
		t.Fatal(err)
	}
	r, ok := ix.Relation(albumD1, invA32)
	if !ok || r.Type != core.Identity || r.Prob != 0.9 {
		t.Errorf("Relation = %+v, %v", r, ok)
	}
	// Symmetric access.
	r, ok = ix.Relation(invA32, albumD1)
	if !ok || r.Prob != 0.9 {
		t.Errorf("reverse Relation = %+v, %v", r, ok)
	}
	if ix.NodeCount() != 2 || ix.EdgeCount() != 1 {
		t.Errorf("counts = %d nodes, %d edges", ix.NodeCount(), ix.EdgeCount())
	}
	if err := ix.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInsertRejectsInvalid(t *testing.T) {
	ix := New()
	if err := ix.Insert(core.NewIdentity(albumD1, albumD1, 0.9)); err == nil {
		t.Error("self-relation should be rejected")
	}
	if err := ix.Insert(core.NewIdentity(albumD1, invA32, 1.5)); err == nil {
		t.Error("probability > 1 should be rejected")
	}
	if err := ix.Insert(core.NewIdentity(albumD1, invA32, 0)); err == nil {
		t.Error("probability 0 should be rejected")
	}
}

// TestIdentityTransitivity reproduces the paper's Fig. 4: inserting
// d1 ~0.8 k1 when k1 ~0.85 a32 exists materializes d1 ~0.68 a32.
func TestIdentityTransitivity(t *testing.T) {
	ix := New()
	if err := ix.Insert(core.NewIdentity(discount1, invA32, 0.85)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(core.NewIdentity(albumD1, discount1, 0.8)); err != nil {
		t.Fatal(err)
	}
	r, ok := ix.Relation(albumD1, invA32)
	if !ok || r.Type != core.Identity {
		t.Fatalf("inferred identity missing: %+v, %v", r, ok)
	}
	if math.Abs(r.Prob-0.68) > 1e-9 {
		t.Errorf("inferred probability = %g, want 0.68 (= 0.8 * 0.85)", r.Prob)
	}
	if err := ix.Validate(); err != nil {
		t.Error(err)
	}
}

// TestMatchingPropagation verifies the Consistency Condition: o1 ≡ o2 and
// o2 ~ o3 imply o1 ≡ o3, in both insertion orders.
func TestMatchingPropagation(t *testing.T) {
	// Order 1: matching first, then identity.
	ix := New()
	ix.Insert(core.NewMatching(salesS8, invA32, 0.7))
	ix.Insert(core.NewIdentity(invA32, albumD1, 0.9))
	r, ok := ix.Relation(salesS8, albumD1)
	if !ok || r.Type != core.Matching {
		t.Fatalf("order 1: inferred matching missing")
	}
	if math.Abs(r.Prob-0.63) > 1e-9 {
		t.Errorf("order 1: probability = %g, want 0.63", r.Prob)
	}
	if err := ix.Validate(); err != nil {
		t.Error(err)
	}

	// Order 2: identity first, then matching.
	ix2 := New()
	ix2.Insert(core.NewIdentity(invA32, albumD1, 0.9))
	ix2.Insert(core.NewMatching(salesS8, invA32, 0.7))
	r, ok = ix2.Relation(salesS8, albumD1)
	if !ok || r.Type != core.Matching {
		t.Fatalf("order 2: inferred matching missing")
	}
	if math.Abs(r.Prob-0.63) > 1e-9 {
		t.Errorf("order 2: probability = %g, want 0.63", r.Prob)
	}
	if err := ix2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIdentityClassMergeSharesMatchings(t *testing.T) {
	// Two separate identity classes, each with a matching partner; inserting
	// the bridging identity must give every class member every matching.
	ix := New()
	a1, a2 := gk("da.c.1"), gk("da.c.2")
	b1, b2 := gk("db.c.1"), gk("db.c.2")
	m1, m2 := gk("dm.c.1"), gk("dm.c.2")
	ix.Insert(core.NewIdentity(a1, a2, 0.9))
	ix.Insert(core.NewIdentity(b1, b2, 0.8))
	ix.Insert(core.NewMatching(a1, m1, 0.7))
	ix.Insert(core.NewMatching(b1, m2, 0.6))
	ix.Insert(core.NewIdentity(a1, b1, 0.95))

	// Identity clique across the merged class.
	for _, pair := range [][2]core.GlobalKey{{a1, b1}, {a1, b2}, {a2, b1}, {a2, b2}} {
		r, ok := ix.Relation(pair[0], pair[1])
		if !ok || r.Type != core.Identity {
			t.Errorf("identity %v <-> %v missing after merge", pair[0], pair[1])
		}
	}
	// Matchings shared across the merged class.
	for _, member := range []core.GlobalKey{a1, a2, b1, b2} {
		for _, m := range []core.GlobalKey{m1, m2} {
			if r, ok := ix.Relation(member, m); !ok || r.Type != core.Matching {
				t.Errorf("matching %v ≡ %v missing after merge", member, m)
			}
		}
	}
	if err := ix.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdgeUpgrade(t *testing.T) {
	ix := New()
	ix.Insert(core.NewMatching(albumD1, invA32, 0.7))
	// Identity replaces matching.
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	r, _ := ix.Relation(albumD1, invA32)
	if r.Type != core.Identity || r.Prob != 0.9 {
		t.Errorf("after upgrade: %+v", r)
	}
	// Matching does not downgrade identity.
	ix.Insert(core.NewMatching(albumD1, invA32, 0.99))
	r, _ = ix.Relation(albumD1, invA32)
	if r.Type != core.Identity {
		t.Errorf("matching downgraded identity: %+v", r)
	}
	// Same type keeps max probability.
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.5))
	r, _ = ix.Relation(albumD1, invA32)
	if r.Prob != 0.9 {
		t.Errorf("lower probability overwrote: %+v", r)
	}
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.95))
	r, _ = ix.Relation(albumD1, invA32)
	if r.Prob != 0.95 {
		t.Errorf("higher probability ignored: %+v", r)
	}
	if ix.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", ix.EdgeCount())
	}
}

// TestReachExample4 reproduces the paper's Example 4: the level-0
// augmentation of catalogue.albums.d1 returns the discount entry and the
// inventory tuple; level 1 additionally reaches the sales details.
func TestReachExample4(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(albumD1, discount1, 0.8))
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	ix.Insert(core.NewMatching(invA32, detailI1, 0.75))

	hits := ix.Reach(albumD1, 0)
	// Note: the consistency materialization adds discount1~invA32 and
	// albumD1≡detailI1, so level 0 already reaches detailI1 through the
	// materialized edge — exactly what the index is for.
	if len(hits) != 3 {
		t.Fatalf("level 0 hits = %d, want 3 (2 direct + 1 materialized)", len(hits))
	}
	if hits[0].Key != invA32 || hits[0].Prob != 0.9 {
		t.Errorf("top hit = %+v, want inventory a32 at 0.9", hits[0])
	}
	if hits[1].Key != discount1 || hits[1].Prob != 0.8 {
		t.Errorf("second hit = %+v, want discount at 0.8", hits[1])
	}

	hits1 := ix.Reach(albumD1, 1)
	if len(hits1) < len(hits) {
		t.Errorf("level 1 reached fewer objects than level 0")
	}
}

func TestReachLevelMonotone(t *testing.T) {
	// Property: the reach at level n+1 contains the reach at level n, and
	// probabilities never decrease.
	ix := New()
	rng := rand.New(rand.NewSource(42))
	keys := make([]core.GlobalKey, 20)
	for i := range keys {
		keys[i] = core.NewGlobalKey("db", "c", string(rune('a'+i)))
	}
	for i := 0; i < 40; i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if a == b {
			continue
		}
		typ := core.Matching
		if rng.Intn(3) == 0 {
			typ = core.Identity
		}
		ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.5 + rng.Float64()/2})
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	for level := 0; level < 3; level++ {
		cur := ix.Reach(keys[0], level)
		next := ix.Reach(keys[0], level+1)
		curProbs := map[core.GlobalKey]float64{}
		for _, h := range cur {
			curProbs[h.Key] = h.Prob
		}
		nextProbs := map[core.GlobalKey]float64{}
		for _, h := range next {
			nextProbs[h.Key] = h.Prob
		}
		for k, p := range curProbs {
			np, ok := nextProbs[k]
			if !ok {
				t.Fatalf("level %d reached %v but level %d does not", level, k, level+1)
			}
			if np < p-1e-12 {
				t.Fatalf("probability of %v decreased from %g to %g", k, p, np)
			}
		}
	}
}

func TestReachOrdering(t *testing.T) {
	ix := New()
	ix.Insert(core.NewMatching(albumD1, salesS8, 0.6))
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	ix.Insert(core.NewMatching(albumD1, detailI1, 0.6)) // tie with salesS8
	hits := ix.Reach(albumD1, 0)
	if hits[0].Prob < hits[1].Prob || hits[1].Prob < hits[2].Prob {
		t.Errorf("hits not ordered by probability: %+v", hits)
	}
	// Deterministic tie-break by key.
	if hits[1].Key.Compare(hits[2].Key) >= 0 {
		t.Errorf("tie not broken by key order: %+v", hits)
	}
}

func TestReachEdgeCases(t *testing.T) {
	ix := New()
	if hits := ix.Reach(albumD1, 0); len(hits) != 0 {
		t.Errorf("reach on empty index = %v", hits)
	}
	if hits := ix.Reach(albumD1, -1); len(hits) != 0 {
		t.Errorf("negative level = %v", hits)
	}
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	if hits := ix.Reach(gk("no.such.key"), 0); len(hits) != 0 {
		t.Errorf("reach from unknown key = %v", hits)
	}
}

func TestRemoveObject(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(albumD1, discount1, 0.8))
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	// Materialization added discount1 ~ invA32 too: 3 edges total.
	if ix.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", ix.EdgeCount())
	}
	if !ix.RemoveObject(albumD1) {
		t.Fatal("RemoveObject returned false")
	}
	if ix.RemoveObject(albumD1) {
		t.Error("second RemoveObject returned true")
	}
	if ix.Contains(albumD1) {
		t.Error("removed key still present")
	}
	// The inferred edge between the survivors is kept (lazy deletion keeps
	// relations inferred via the deleted node).
	if _, ok := ix.Relation(discount1, invA32); !ok {
		t.Error("inferred edge lost on removal")
	}
	if ix.EdgeCount() != 1 {
		t.Errorf("EdgeCount after removal = %d, want 1", ix.EdgeCount())
	}
	if err := ix.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	ix.Insert(core.NewMatching(albumD1, salesS8, 0.6))
	nbs := ix.Neighbors(albumD1)
	if len(nbs) != 2 {
		t.Fatalf("Neighbors = %d", len(nbs))
	}
	if nbs[0].To != invA32 || nbs[0].Type != core.Identity {
		t.Errorf("first neighbor = %+v", nbs[0])
	}
	if nbs[1].To != salesS8 || nbs[1].Type != core.Matching {
		t.Errorf("second neighbor = %+v", nbs[1])
	}
	if ix.Neighbors(gk("no.such.key")) == nil {
		// empty, not nil-checked: just must not panic
		t.Log("neighbors of unknown key is empty")
	}
}

func TestKeysSorted(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(gk("b.c.1"), gk("a.c.1"), 0.9))
	keys := ix.Keys()
	if len(keys) != 2 || keys[0].Database != "a" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestConsistencyProperty(t *testing.T) {
	// Property: after any random insertion sequence, Validate passes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		keys := make([]core.GlobalKey, 8)
		for i := range keys {
			keys[i] = core.NewGlobalKey("db", "c", string(rune('a'+i)))
		}
		for i := 0; i < 15; i++ {
			a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
			if a == b {
				continue
			}
			typ := core.Matching
			if rng.Intn(2) == 0 {
				typ = core.Identity
			}
			if err := ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.5 + rng.Float64()/2}); err != nil {
				return false
			}
		}
		return ix.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertAndReach(t *testing.T) {
	// The index must tolerate concurrent writers and readers (multiple
	// QUEPA instances share one process in tests; the paper's deployment
	// gives each instance a replica, but the structure must still be safe).
	ix := New()
	keys := make([]core.GlobalKey, 64)
	for i := range keys {
		keys[i] = core.NewGlobalKey("db", "c", fmt.Sprintf("k%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
				if a == b {
					continue
				}
				typ := core.Matching
				if rng.Intn(3) == 0 {
					typ = core.Identity
				}
				ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.5 + rng.Float64()/2})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix.Reach(keys[(r*13+i)%len(keys)], 1)
				ix.Neighbors(keys[i%len(keys)])
			}
		}(r)
	}
	wg.Wait()
	if err := ix.Validate(); err != nil {
		t.Errorf("index invalid after concurrent load: %v", err)
	}
}

func TestInsertIdempotent(t *testing.T) {
	ix := New()
	r := core.NewIdentity(albumD1, invA32, 0.9)
	for i := 0; i < 3; i++ {
		if err := ix.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if ix.EdgeCount() != 1 || ix.NodeCount() != 2 {
		t.Errorf("idempotence violated: %d edges, %d nodes", ix.EdgeCount(), ix.NodeCount())
	}
}

func TestReachSymmetry(t *testing.T) {
	// Property: the A' graph is undirected, so if a reaches b with the best
	// probability p within n hops, b reaches a with the same p.
	ix, keys := buildRandomIndexT(t, 30, 77)
	for _, level := range []int{0, 1} {
		fwd := map[[2]core.GlobalKey]float64{}
		for _, from := range keys {
			for _, h := range ix.Reach(from, level) {
				fwd[[2]core.GlobalKey{from, h.Key}] = h.Prob
			}
		}
		for pair, p := range fwd {
			back, ok := fwd[[2]core.GlobalKey{pair[1], pair[0]}]
			if !ok {
				t.Fatalf("level %d: %v reaches %v but not vice versa", level, pair[0], pair[1])
			}
			if diff := back - p; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("level %d: asymmetric probability %g vs %g", level, p, back)
			}
		}
	}
}

func buildRandomIndexT(t *testing.T, n int, seed int64) (*Index, []core.GlobalKey) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ix := New()
	keys := make([]core.GlobalKey, n)
	for i := range keys {
		keys[i] = core.NewGlobalKey("db", "c", fmt.Sprintf("k%d", i))
	}
	for i := 0; i < 2*n; i++ {
		a, b := keys[rng.Intn(n)], keys[rng.Intn(n)]
		if a == b {
			continue
		}
		typ := core.Matching
		if rng.Intn(4) == 0 {
			typ = core.Identity
		}
		if err := ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.6 + 0.4*rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	return ix, keys
}

func TestInsertionOrderIndependence(t *testing.T) {
	// Property: the final index (edges, types, probabilities) is the same
	// for every insertion order of the same relation set. This is the
	// regression test for the matching-propagation path probability, which
	// once depended on whether the identity or the matching arrived first.
	rels := []core.PRelation{
		core.NewIdentity(albumD1, invA32, 0.9),
		core.NewIdentity(albumD1, discount1, 0.8),
		core.NewMatching(salesS8, invA32, 0.7),
		core.NewMatching(detailI1, albumD1, 0.65),
	}
	signature := func(perm []int) map[string]string {
		ix := New()
		for _, i := range perm {
			if err := ix.Insert(rels[i]); err != nil {
				t.Fatal(err)
			}
		}
		out := map[string]string{}
		for _, e := range ix.Edges() {
			out[e.From.String()+"|"+e.To.String()] = fmt.Sprintf("%v:%.9f", e.Type, e.Prob)
		}
		return out
	}
	var perms [][]int
	var permute func(cur, rest []int)
	permute = func(cur, rest []int) {
		if len(rest) == 0 {
			perms = append(perms, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest...)[:i], rest[i+1:]...)
			permute(append(cur, rest[i]), next)
		}
	}
	permute(nil, []int{0, 1, 2, 3})

	want := signature(perms[0])
	for _, perm := range perms[1:] {
		got := signature(perm)
		if len(got) != len(want) {
			t.Fatalf("order %v: %d edges, want %d", perm, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("order %v: edge %s = %s, want %s", perm, k, got[k], v)
			}
		}
	}
}

func TestClone(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	ix.Insert(core.NewMatching(salesS8, invA32, 0.7))
	replica := ix.Clone()
	if replica.EdgeCount() != ix.EdgeCount() || replica.NodeCount() != ix.NodeCount() {
		t.Fatalf("clone size mismatch: %d/%d vs %d/%d",
			replica.EdgeCount(), replica.NodeCount(), ix.EdgeCount(), ix.NodeCount())
	}
	// Replicas evolve independently: lazy deletion on one instance must not
	// affect the master.
	replica.RemoveObject(invA32)
	if !ix.Contains(invA32) {
		t.Error("mutating the replica changed the master")
	}
	fresh := gk("new.db.object")
	ix.Insert(core.NewMatching(albumD1, fresh, 0.6))
	if replica.Contains(fresh) {
		t.Error("mutating the master changed the replica")
	}
	if err := replica.Validate(); err != nil {
		t.Error(err)
	}
}

// TestReachWithStats verifies the instrumented traversal returns the same
// hits as Reach plus a faithful account of the index work performed.
func TestReachWithStats(t *testing.T) {
	ix := New()
	ix.Insert(core.NewIdentity(albumD1, discount1, 0.8))
	ix.Insert(core.NewIdentity(albumD1, invA32, 0.9))
	ix.Insert(core.NewMatching(invA32, detailI1, 0.75))

	for _, level := range []int{0, 1, 2} {
		plain := ix.Reach(albumD1, level)
		hits, st := ix.ReachWithStats(albumD1, level)
		if len(hits) != len(plain) {
			t.Fatalf("level %d: %d hits with stats, %d without", level, len(hits), len(plain))
		}
		for i := range hits {
			if hits[i] != plain[i] {
				t.Errorf("level %d hit %d: %+v != %+v", level, i, hits[i], plain[i])
			}
		}
		// The traversal expanded at least the origin, scanning an edge for
		// every hit it produced; deeper levels expand the hits too.
		if st.Nodes < 1 || st.Edges < len(hits) {
			t.Errorf("level %d stats = %+v for %d hits", level, st, len(hits))
		}
		if level > 0 && st.Nodes < len(hits) {
			t.Errorf("level %d: expanded %d nodes for %d hits", level, st.Nodes, len(hits))
		}
	}

	// Unknown origin: the origin itself is expanded, nothing else.
	hits, st := ix.ReachWithStats(gk("x.y.z"), 3)
	if len(hits) != 0 || st.Nodes != 1 || st.Edges != 0 {
		t.Errorf("unknown origin: hits=%v stats=%+v", hits, st)
	}
}
