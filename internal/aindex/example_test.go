package aindex_test

import (
	"fmt"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

// Example reproduces the paper's Fig. 4: inserting an identity p-relation
// materializes the transitive consequence with the product of the
// probabilities along the path.
func Example() {
	gk := core.MustParseGlobalKey
	d1 := gk("catalogue.albums.d1")
	k1 := gk("discount.drop.k1:cure:wish")
	a32 := gk("transactions.inventory.a32")

	ix := aindex.New()
	ix.Insert(core.NewIdentity(k1, a32, 0.85))
	ix.Insert(core.NewIdentity(d1, k1, 0.8))

	if r, ok := ix.Relation(d1, a32); ok {
		fmt.Printf("inferred: %v ~ %v with p = %.2f\n", r.From.Key, r.To.Key, r.Prob)
	}
	// Output:
	// inferred: d1 ~ a32 with p = 0.68
}

// ExampleIndex_Reach shows the augmentation primitive: the global keys
// reachable from an object at a given level, probability-ordered.
func ExampleIndex_Reach() {
	gk := core.MustParseGlobalKey
	ix := aindex.New()
	ix.Insert(core.NewIdentity(gk("a.c.1"), gk("b.c.1"), 0.9))
	ix.Insert(core.NewMatching(gk("a.c.1"), gk("d.c.1"), 0.6))

	for _, hit := range ix.Reach(gk("a.c.1"), 0) {
		fmt.Printf("%s p=%.1f\n", hit.Key.Database, hit.Prob)
	}
	// Output:
	// b p=0.9
	// d p=0.6
}
