// Read-optimized reachability snapshots.
//
// The mutable Index guards a map-of-maps adjacency with an RWMutex, and the
// original Reach retook that lock and allocated per-hop maps on every call.
// This file freezes the adjacency into a compressed-sparse-row (CSR) view —
// dense int32 node ids, one offsets slice, neighbor/probability columns
// sorted within each row — stamped with the mutation epoch it was built
// from. Readers load the snapshot through an atomic pointer and traverse it
// lock-free with a pooled, stamp-cleared visited table; the only allocation
// on the fast path is the result slice.
//
// Mutations (Insert, InsertRaw, RemoveObject) bump the epoch inside their
// critical section, which makes the current snapshot stale: Reach then falls
// back to the locked map traversal — so lazy deletions take effect
// immediately — and a single background goroutine rebuilds the snapshot
// after a bounded debounce, coalescing mutation bursts into one rebuild.
package aindex

import (
	"math"
	"sync"
	"time"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// Snapshot-path instrumentation handles, resolved once.
var (
	snapshotRebuilds = telemetry.NewCounter("quepa_aindex_snapshot_rebuilds_total",
		"CSR reachability snapshots rebuilt after index mutations")
	reachSnapshot = telemetry.NewCounter("quepa_aindex_reach_snapshot_total",
		"reachability lookups served lock-free from the CSR snapshot")
	reachFallback = telemetry.NewCounter("quepa_aindex_reach_fallback_total",
		"reachability lookups served by the locked traversal (snapshot stale)")
)

// defaultRebuildDebounce bounds how long a mutated index keeps serving
// fallback traversals before the asynchronous rebuild freezes a fresh
// snapshot. Long enough to coalesce a burst of inserts or lazy deletions
// into one rebuild, short enough that read traffic is back on the lock-free
// path almost immediately.
const defaultRebuildDebounce = 2 * time.Millisecond

// snapshot is a frozen CSR view of the adjacency at one mutation epoch.
// Every field is immutable after construction; readers share the snapshot
// through Index.snap with no synchronization beyond the atomic load.
type snapshot struct {
	epoch uint64
	ids   map[core.GlobalKey]int32 // key -> dense node id
	keys  []core.GlobalKey         // id -> key, sorted by key
	off   []int32                  // CSR row offsets, len(keys)+1
	nbr   []int32                  // neighbor ids, sorted within each row
	prob  []float64                // edge probabilities, parallel to nbr
	pool  sync.Pool                // *reachScratch sized for this snapshot
}

// buildSnapshot freezes the adjacency into CSR form. The caller must hold at
// least the index read lock so the map and the epoch are a consistent pair.
func buildSnapshot(adj map[core.GlobalKey]map[core.GlobalKey]edge, edges int, epoch uint64) *snapshot {
	n := len(adj)
	s := &snapshot{
		epoch: epoch,
		ids:   make(map[core.GlobalKey]int32, n),
		keys:  make([]core.GlobalKey, 0, n),
		off:   make([]int32, n+1),
		nbr:   make([]int32, 0, 2*edges),
		prob:  make([]float64, 0, 2*edges),
	}
	for k := range adj {
		s.keys = append(s.keys, k)
	}
	sortKeys(s.keys)
	for i, k := range s.keys {
		s.ids[k] = int32(i)
	}
	for i, k := range s.keys {
		row := len(s.nbr)
		for b, e := range adj[k] {
			s.nbr = append(s.nbr, s.ids[b])
			s.prob = append(s.prob, e.prob)
		}
		sortRow(s.nbr[row:], s.prob[row:])
		s.off[i+1] = int32(len(s.nbr))
	}
	return s
}

func sortKeys(keys []core.GlobalKey) {
	// Insertion-based quicksort over the key order; rows reference ids, so
	// the id assignment must be the sorted key order (deterministic layout).
	for len(keys) > 16 {
		mid, last := len(keys)/2, len(keys)-1
		keys[mid], keys[last] = keys[last], keys[mid]
		pivot := keys[last]
		i := 0
		for j := 0; j < last; j++ {
			if keys[j].Compare(pivot) < 0 {
				keys[i], keys[j] = keys[j], keys[i]
				i++
			}
		}
		keys[i], keys[last] = keys[last], keys[i]
		if i < len(keys)-i-1 {
			sortKeys(keys[:i])
			keys = keys[i+1:]
		} else {
			sortKeys(keys[i+1:])
			keys = keys[:i]
		}
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].Compare(keys[j-1]) < 0; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// sortRow co-sorts one CSR row by neighbor id. Rows are node degrees —
// short in practice — so insertion sort handles the common case and a
// quicksort pass splits larger rows first. Neighbor ids within a row are
// distinct, so no equal-pivot pathology exists.
func sortRow(ids []int32, probs []float64) {
	for len(ids) > 24 {
		p := partitionRow(ids, probs)
		if p < len(ids)-p-1 {
			sortRow(ids[:p], probs[:p])
			ids, probs = ids[p+1:], probs[p+1:]
		} else {
			sortRow(ids[p+1:], probs[p+1:])
			ids, probs = ids[:p], probs[:p]
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
			probs[j], probs[j-1] = probs[j-1], probs[j]
		}
	}
}

func partitionRow(ids []int32, probs []float64) int {
	mid, last := len(ids)/2, len(ids)-1
	ids[mid], ids[last] = ids[last], ids[mid]
	probs[mid], probs[last] = probs[last], probs[mid]
	pivot := ids[last]
	i := 0
	for j := 0; j < last; j++ {
		if ids[j] < pivot {
			ids[i], ids[j] = ids[j], ids[i]
			probs[i], probs[j] = probs[j], probs[i]
			i++
		}
	}
	ids[i], ids[last] = ids[last], ids[i]
	probs[i], probs[last] = probs[last], probs[i]
	return i
}

// reachScratch is the reusable visited table of one snapshot traversal.
// Stamps make clearing O(1): an entry of mark/nmark is live only while it
// equals the current stamp, so consecutive traversals reuse the dense
// arrays without zeroing them.
type reachScratch struct {
	prob     []float64 // best path probability per node
	dist     []int32   // hop at which the node was first reached
	mark     []uint32  // visited stamp
	nmark    []uint32  // next-frontier membership stamp
	npos     []int32   // position in the next frontier, valid under nmark
	frontier []int32
	fprob    []float64
	next     []int32
	nprob    []float64
	seen     []int32 // visited nodes in discovery order (excludes the start)
	stamp    uint32
	nstamp   uint32
}

func (s *snapshot) getScratch() *reachScratch {
	if sc, ok := s.pool.Get().(*reachScratch); ok {
		return sc
	}
	n := len(s.keys)
	// frontier/next/seen never exceed n entries (frontier membership is
	// deduplicated per hop), so capacity n means no append ever grows them.
	return &reachScratch{
		prob:     make([]float64, n),
		dist:     make([]int32, n),
		mark:     make([]uint32, n),
		nmark:    make([]uint32, n),
		npos:     make([]int32, n),
		frontier: make([]int32, 0, n),
		fprob:    make([]float64, 0, n),
		next:     make([]int32, 0, n),
		nprob:    make([]float64, 0, n),
		seen:     make([]int32, 0, n),
	}
}

// reach runs the hop-synchronous best-path traversal over the frozen CSR
// rows. It mirrors Index.reachLocked operation for operation — same hop
// bound, same strict-improvement rule, same first-hop distance — so a query
// answered from the snapshot is indistinguishable from one answered under
// the lock. The caller guarantees level >= 0.
func (s *snapshot) reach(gk core.GlobalKey, level int, stats *ReachStats) []Hit {
	start, ok := s.ids[gk]
	if !ok {
		// The locked traversal still expands the unknown origin (one node,
		// zero edges); keep the accounting identical.
		if stats != nil {
			stats.Nodes++
		}
		return nil
	}
	sc := s.getScratch()

	if sc.stamp == math.MaxUint32 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.stamp = 0
	}
	sc.stamp++
	sc.seen = sc.seen[:0]
	sc.prob[start] = 1
	sc.dist[start] = 0
	sc.mark[start] = sc.stamp

	frontier, fprob := sc.frontier[:0], sc.fprob[:0]
	next, nprob := sc.next[:0], sc.nprob[:0]
	frontier = append(frontier, start)
	fprob = append(fprob, 1)

	maxHops := level + 1
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		if sc.nstamp == math.MaxUint32 {
			for i := range sc.nmark {
				sc.nmark[i] = 0
			}
			sc.nstamp = 0
		}
		sc.nstamp++
		next, nprob = next[:0], nprob[:0]
		for k, cur := range frontier {
			curProb := fprob[k]
			lo, hi := s.off[cur], s.off[cur+1]
			if stats != nil {
				stats.Nodes++
				stats.Edges += int(hi - lo)
			}
			for e := lo; e < hi; e++ {
				nb := s.nbr[e]
				p := curProb * s.prob[e]
				if sc.mark[nb] != sc.stamp {
					sc.mark[nb] = sc.stamp
					sc.prob[nb] = p
					sc.dist[nb] = int32(hop)
					sc.seen = append(sc.seen, nb)
				} else if p > sc.prob[nb] {
					sc.prob[nb] = p
					// dist keeps the first hop the node was seen at.
				} else {
					continue
				}
				// The node's best probability improved this hop: (re)join
				// the next frontier carrying the current best.
				if sc.nmark[nb] == sc.nstamp {
					nprob[sc.npos[nb]] = sc.prob[nb]
				} else {
					sc.nmark[nb] = sc.nstamp
					sc.npos[nb] = int32(len(next))
					next = append(next, nb)
					nprob = append(nprob, sc.prob[nb])
				}
			}
		}
		frontier, next = next, frontier
		fprob, nprob = nprob, fprob
	}
	sc.frontier, sc.fprob, sc.next, sc.nprob = frontier, fprob, next, nprob

	out := make([]Hit, 0, len(sc.seen))
	for _, id := range sc.seen {
		out = append(out, Hit{Key: s.keys[id], Prob: sc.prob[id], Dist: int(sc.dist[id])})
	}
	s.pool.Put(sc)
	sortHits(out)
	return out
}

// SnapshotInfo reports the state of the read-optimized snapshot for
// diagnostics (GET /stats): whether it is current with the mutation epoch,
// its size, and how many rebuilds this index has performed.
type SnapshotInfo struct {
	Fresh    bool   `json:"fresh"`
	Epoch    uint64 `json:"epoch"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Rebuilds uint64 `json:"rebuilds"`
}

// SnapshotInfo returns the current snapshot diagnostics.
func (ix *Index) SnapshotInfo() SnapshotInfo {
	info := SnapshotInfo{Rebuilds: ix.rebuilds.Load()}
	if s := ix.snap.Load(); s != nil {
		info.Epoch = s.epoch
		info.Nodes = len(s.keys)
		info.Edges = len(s.nbr) / 2
		info.Fresh = s.epoch == ix.epoch.Load()
	}
	return info
}

// RefreshSnapshot synchronously freezes a fresh CSR snapshot from the
// current adjacency. Bulk loaders call it once after installing everything;
// the asynchronous rebuild loop calls it after the debounce. Concurrent
// readers keep using the previous snapshot (or the locked fallback) until
// the atomic store lands.
func (ix *Index) RefreshSnapshot() {
	ix.mu.RLock()
	epoch := ix.epoch.Load() // under the lock: no mutator between this and the map read
	s := buildSnapshot(ix.adj, ix.edges, epoch)
	ix.mu.RUnlock()
	ix.snap.Store(s)
	ix.rebuilds.Add(1)
	snapshotRebuilds.Inc()
}

// SetRebuildDebounce overrides the delay between a mutation and the
// asynchronous snapshot rebuild. d <= 0 restores the default. Tests use
// tiny values to force rebuild churn under load.
func (ix *Index) SetRebuildDebounce(d time.Duration) {
	ix.debounce.Store(int64(d))
}

func (ix *Index) rebuildDebounce() time.Duration {
	if d := ix.debounce.Load(); d > 0 {
		return time.Duration(d)
	}
	return defaultRebuildDebounce
}

// scheduleRebuild makes sure an asynchronous rebuild is on its way: it
// starts the single rebuild goroutine, or flags a re-run if one is already
// working. Mutators call it after releasing the write lock.
func (ix *Index) scheduleRebuild() {
	ix.rebuildMu.Lock()
	if ix.rebuildRunning {
		ix.rebuildPending = true
		ix.rebuildMu.Unlock()
		return
	}
	ix.rebuildRunning = true
	ix.rebuildMu.Unlock()
	go ix.rebuildLoop()
}

// rebuildLoop sleeps out the debounce (coalescing a burst of mutations into
// one rebuild), freezes a fresh snapshot, and exits once the snapshot has
// caught up with the mutation epoch and nobody re-scheduled meanwhile. A
// mutator that slips in after the staleness check below either sees
// rebuildRunning still true (and sets rebuildPending before we re-check) or
// finds rebuildRunning false and starts a new loop — no wakeup is lost.
func (ix *Index) rebuildLoop() {
	for {
		time.Sleep(ix.rebuildDebounce())
		ix.RefreshSnapshot()
		ix.rebuildMu.Lock()
		pending := ix.rebuildPending
		ix.rebuildPending = false
		if !pending && !ix.snapshotStale() {
			ix.rebuildRunning = false
			ix.rebuildMu.Unlock()
			return
		}
		ix.rebuildMu.Unlock()
	}
}

func (ix *Index) snapshotStale() bool {
	s := ix.snap.Load()
	return s == nil || s.epoch != ix.epoch.Load()
}
