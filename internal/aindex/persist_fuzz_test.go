package aindex

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"quepa/internal/core"
)

// mkIndex builds an index from (from, to, type, prob) quads.
func mkIndex(t testing.TB, rels ...core.PRelation) *Index {
	t.Helper()
	ix := New()
	for _, r := range rels {
		if err := ix.Insert(r); err != nil {
			t.Fatalf("insert %v: %v", r, err)
		}
	}
	return ix
}

func prel(from, to string, typ core.RelType, prob float64) core.PRelation {
	return core.PRelation{
		From: core.MustParseGlobalKey(from),
		To:   core.MustParseGlobalKey(to),
		Type: typ,
		Prob: prob,
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ix := mkIndex(t,
		prel("pg.users.1", "mongo.profiles.a", core.Identity, 0.95),
		prel("mongo.profiles.a", "neo.people.x", core.Identity, 0.92),
		prel("pg.users.2", "neo.people.y", core.Matching, 0.7),
		prel("redis.cache.k1:v.2", "pg.users.1", core.Matching, 0.61), // dotted local key
	)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if !reflect.DeepEqual(back.Edges(), ix.Edges()) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", back.Edges(), ix.Edges())
	}
}

// TestReadIndexRejectsInvalidLines pins the hardening contract: malformed
// input fails loudly with the offending line number, instead of smuggling a
// NaN probability or an unknown edge type into a live index.
func TestReadIndexRejectsInvalidLines(t *testing.T) {
	good := `{"from":"pg.users.1","to":"mongo.profiles.a","type":"identity","p":0.9}`
	cases := []struct {
		name string
		line string
		want string // substring of the error
	}{
		{"nan prob", `{"from":"pg.users.1","to":"mongo.profiles.a","type":"identity","p":null}`, "line 2"},
		{"zero prob", `{"from":"pg.users.1","to":"mongo.profiles.a","type":"identity","p":0}`, "line 2"},
		{"negative prob", `{"from":"pg.users.1","to":"mongo.profiles.a","type":"matching","p":-0.4}`, "line 2"},
		{"over-unit prob", `{"from":"pg.users.1","to":"mongo.profiles.a","type":"matching","p":1.5}`, "line 2"},
		{"unknown type", `{"from":"pg.users.1","to":"mongo.profiles.a","type":"similar","p":0.9}`, `unknown relation type "similar"`},
		{"bad from key", `{"from":"nodots","to":"mongo.profiles.a","type":"identity","p":0.9}`, "line 2"},
		{"bad to key", `{"from":"pg.users.1","to":"alsobad","type":"identity","p":0.9}`, "line 2"},
		{"self loop", `{"from":"pg.users.1","to":"pg.users.1","type":"identity","p":0.9}`, "line 2"},
		{"not json", `{"from":`, "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadIndex(strings.NewReader(good + "\n" + tc.line + "\n"))
			if err == nil {
				t.Fatalf("ReadIndex accepted %s", tc.line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Infinity can only arrive via the binary path (JSON has no Inf literal),
	// but the Validate guard must reject it all the same.
	inf := core.PRelation{
		From: core.MustParseGlobalKey("pg.users.1"),
		To:   core.MustParseGlobalKey("mongo.profiles.a"),
		Type: core.Identity,
		Prob: math.Inf(1),
	}
	if err := inf.Validate(); err == nil {
		t.Error("Validate accepted +Inf probability")
	}
	nan := inf
	nan.Prob = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("Validate accepted NaN probability")
	}
}

// FuzzJSONRoundTrip feeds arbitrary relation quads through WriteTo/ReadIndex:
// whatever Insert accepts must survive the trip byte-exactly, and ReadIndex
// must never panic or accept a relation Validate would reject.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add("pg", "users", "1", "mongo", "profiles", "a", true, 0.9)
	f.Add("a", "b", "k.with.dots", "c", "d", "x", false, 0.5)
	f.Add("db1", "c1", "k1", "db2", "c2", "k2", true, 1.0)
	f.Fuzz(func(t *testing.T, db1, col1, key1, db2, col2, key2 string, identity bool, prob float64) {
		from := core.NewGlobalKey(db1, col1, key1)
		to := core.NewGlobalKey(db2, col2, key2)
		typ := core.Matching
		if identity {
			typ = core.Identity
		}
		rel := core.PRelation{From: from, To: to, Type: typ, Prob: prob}
		if rel.Validate() != nil {
			return // Insert would refuse it; nothing to round-trip
		}
		// Keys whose textual form does not survive the interchange format are
		// out of scope: components with dots re-parse differently, and
		// invalid UTF-8 is replaced with U+FFFD by the JSON encoder.
		if rt, err := core.ParseGlobalKey(from.String()); err != nil || rt != from {
			return
		}
		if rt, err := core.ParseGlobalKey(to.String()); err != nil || rt != to {
			return
		}
		if !utf8.ValidString(from.String()) || !utf8.ValidString(to.String()) {
			return
		}
		ix := New()
		if err := ix.Insert(rel); err != nil {
			t.Fatalf("insert of validated relation failed: %v", err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		back, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadIndex of own output: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(back.Edges(), ix.Edges()) {
			t.Fatalf("round trip mismatch:\n got %v\nwant %v", back.Edges(), ix.Edges())
		}
	})
}

// FuzzReadIndexArbitrary throws arbitrary bytes at the loader: it may error,
// but must never panic and must never hand back an index with an invalid
// edge.
func FuzzReadIndexArbitrary(f *testing.F) {
	f.Add([]byte(`{"from":"pg.users.1","to":"mongo.profiles.a","type":"identity","p":0.9}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"from":"a.b.c","to":"d.e.f","type":"matching","p":5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range ix.Edges() {
			if verr := e.Validate(); verr != nil {
				t.Fatalf("loader accepted invalid edge %v: %v", e, verr)
			}
		}
	})
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	ix := mkIndex(t,
		prel("pg.users.1", "mongo.profiles.a", core.Identity, 0.95),
		prel("mongo.profiles.a", "neo.people.x", core.Identity, 0.92),
		prel("pg.users.2", "neo.people.y", core.Matching, 0.7),
	)
	edges := ix.Edges()
	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, edges, 1234)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteSnapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	back, epoch, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if epoch != 1234 {
		t.Errorf("epoch = %d, want 1234", epoch)
	}
	if !reflect.DeepEqual(back.Edges(), edges) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", back.Edges(), edges)
	}

	// Byte determinism: same edges, same epoch => identical bytes.
	var buf2 bytes.Buffer
	if _, err := WriteSnapshot(&buf2, ix.Edges(), 1234); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot serialization is not deterministic")
	}
}

func TestBinarySnapshotRejectsCorruption(t *testing.T) {
	ix := mkIndex(t,
		prel("pg.users.1", "mongo.profiles.a", core.Identity, 0.95),
		prel("pg.users.2", "neo.people.y", core.Matching, 0.7),
	)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, ix.Edges(), 7); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Every single-byte corruption must be detected (structure check or CRC
	// trailer), and every truncation must error rather than return a partial
	// index.
	for pos := 0; pos < len(pristine); pos++ {
		mut := append([]byte(nil), pristine...)
		mut[pos] ^= 0x01
		if _, _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d went undetected", pos)
		}
	}
	for cut := 0; cut < len(pristine); cut++ {
		if _, _, err := ReadSnapshot(bytes.NewReader(pristine[:cut])); err == nil {
			t.Errorf("truncation at %d went undetected", cut)
		}
	}
}

// FuzzReadSnapshot throws arbitrary bytes at the binary loader.
func FuzzReadSnapshot(f *testing.F) {
	ix := New()
	for i := 0; i < 4; i++ {
		rel := prel(
			fmt.Sprintf("pg.users.%d", i),
			fmt.Sprintf("mongo.profiles.%d", i%2),
			core.Identity, 0.9)
		if err := ix.Insert(rel); err != nil {
			f.Fatal(err)
		}
	}
	var seed bytes.Buffer
	if _, err := WriteSnapshot(&seed, ix.Edges(), 9); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("QPCK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, _, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range loaded.Edges() {
			if verr := e.Validate(); verr != nil {
				t.Fatalf("snapshot loader accepted invalid edge %v: %v", e, verr)
			}
		}
	})
}
