package aindex

import (
	"math"
	"testing"

	"quepa/internal/core"
)

func newPathIndex(t *testing.T) (*Index, []core.GlobalKey) {
	t.Helper()
	ix := New()
	path := []core.GlobalKey{
		gk("d1.c.v1"), gk("d2.c.v2"), gk("d3.c.v3"), gk("d4.c.v4"),
	}
	// A chain of matching edges (identities would materialize shortcuts on
	// their own and muddy the test).
	probs := []float64{0.8, 0.6, 0.7}
	for i := 0; i+1 < len(path); i++ {
		if err := ix.Insert(core.NewMatching(path[i], path[i+1], probs[i])); err != nil {
			t.Fatal(err)
		}
	}
	return ix, path
}

func TestThresholdDecreasesWithLength(t *testing.T) {
	p := PromotionPolicy{BaseThreshold: 10, Decay: 2, MinThreshold: 3}
	if p.Threshold(2) != 10 || p.Threshold(3) != 8 || p.Threshold(4) != 6 {
		t.Errorf("thresholds = %d, %d, %d", p.Threshold(2), p.Threshold(3), p.Threshold(4))
	}
	if p.Threshold(10) != 3 {
		t.Errorf("long path threshold = %d, want floor 3", p.Threshold(10))
	}
}

func TestPromotionAddsShortcut(t *testing.T) {
	ix, path := newPathIndex(t)
	tr := NewPathTracker(ix, PromotionPolicy{BaseThreshold: 3, Decay: 0, MinThreshold: 1})

	// Path of 3 edges, threshold 3: first two visits do nothing.
	for i := 0; i < 2; i++ {
		if tr.Record(path) {
			t.Fatalf("visit %d promoted early", i+1)
		}
	}
	if _, ok := ix.Relation(path[0], path[3]); ok {
		t.Fatal("shortcut exists before threshold")
	}
	if !tr.Record(path) {
		t.Fatal("third visit did not promote")
	}
	r, ok := ix.Relation(path[0], path[3])
	if !ok || r.Type != core.Matching {
		t.Fatalf("shortcut missing: %+v, %v", r, ok)
	}
	// Probability is the average of the path's edges: (0.8+0.6+0.7)/3 = 0.7.
	if math.Abs(r.Prob-0.7) > 1e-9 {
		t.Errorf("shortcut probability = %g, want 0.7", r.Prob)
	}
	// Counter reset after promotion.
	if tr.Visits(path) != 0 {
		t.Errorf("visits after promotion = %d", tr.Visits(path))
	}
}

func TestShortPathsNotPromoted(t *testing.T) {
	ix, path := newPathIndex(t)
	tr := NewPathTracker(ix, PromotionPolicy{BaseThreshold: 1, Decay: 0, MinThreshold: 1})
	// A two-node path (single edge) is not a "full path".
	for i := 0; i < 5; i++ {
		if tr.Record(path[:2]) {
			t.Fatal("single-edge path promoted")
		}
	}
	if tr.Visits(path[:2]) != 0 {
		t.Error("short path should not even be counted")
	}
}

func TestPromotionOfVanishedPath(t *testing.T) {
	ix, path := newPathIndex(t)
	tr := NewPathTracker(ix, PromotionPolicy{BaseThreshold: 1, Decay: 0, MinThreshold: 1})
	// Remove the whole chain before the promoting visit.
	for _, k := range path {
		ix.RemoveObject(k)
	}
	if tr.Record(path) {
		t.Error("promotion on a vanished path should fail")
	}
}

func TestDefaultPolicyFallback(t *testing.T) {
	ix, _ := newPathIndex(t)
	tr := NewPathTracker(ix, PromotionPolicy{})
	if tr.policy.BaseThreshold != DefaultPromotionPolicy.BaseThreshold {
		t.Error("zero policy should fall back to the default")
	}
}

func TestDistinctPathsCountedSeparately(t *testing.T) {
	ix, path := newPathIndex(t)
	tr := NewPathTracker(ix, PromotionPolicy{BaseThreshold: 2, Decay: 0, MinThreshold: 2})
	other := []core.GlobalKey{path[3], path[2], path[1], path[0]} // reversed = different path
	tr.Record(path)
	tr.Record(other)
	if tr.Visits(path) != 1 || tr.Visits(other) != 1 {
		t.Errorf("visits = %d, %d", tr.Visits(path), tr.Visits(other))
	}
}
