//go:build !race

package aindex

const raceEnabled = false
