package aindex

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"quepa/internal/core"
)

// randomRels generates a relation list with several connected components:
// keys are split into clusters, most relations stay inside a cluster and a
// few bridge clusters, so the bulk loader's component partitioning is
// exercised on both sides.
func randomRels(n int, seed int64) []core.PRelation {
	rng := rand.New(rand.NewSource(seed))
	const clusters, perCluster = 4, 6
	keys := make([][]core.GlobalKey, clusters)
	for c := range keys {
		keys[c] = make([]core.GlobalKey, perCluster)
		for i := range keys[c] {
			keys[c][i] = core.NewGlobalKey(fmt.Sprintf("db%d", c%3), "c", fmt.Sprintf("g%dk%d", c, i))
		}
	}
	var rels []core.PRelation
	for len(rels) < n {
		c := rng.Intn(clusters)
		a := keys[c][rng.Intn(perCluster)]
		var b core.GlobalKey
		if rng.Intn(8) == 0 { // occasional bridge between clusters
			b = keys[rng.Intn(clusters)][rng.Intn(perCluster)]
		} else {
			b = keys[c][rng.Intn(perCluster)]
		}
		if a == b {
			continue
		}
		typ := core.Matching
		if rng.Intn(3) == 0 {
			typ = core.Identity
		}
		rels = append(rels, core.PRelation{From: a, To: b, Type: typ, Prob: 0.5 + rng.Float64()/2})
	}
	return rels
}

// equalEdges compares two exported edge lists exactly — types, keys and
// float64 probabilities bit for bit.
func equalEdges(a, b []core.PRelation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBulkLoadMatchesSequential pins the tentpole build-path invariant: the
// offline closure computed by BulkLoad is byte-identical to replaying the
// relations through sequential Inserts, for every worker count, across
// random relation sets.
func TestBulkLoadMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rels := randomRels(40, seed)
		seq := New()
		for _, r := range rels {
			if err := seq.Insert(r); err != nil {
				return false
			}
		}
		want := seq.Edges()
		for _, workers := range []int{0, 1, 3, 16} {
			bulk, err := BulkLoadWorkers(rels, workers)
			if err != nil {
				t.Logf("seed %d workers %d: %v", seed, workers, err)
				return false
			}
			if !equalEdges(want, bulk.Edges()) {
				t.Logf("seed %d workers %d: %d bulk edges vs %d sequential",
					seed, workers, bulk.EdgeCount(), seq.EdgeCount())
				return false
			}
			if err := bulk.Validate(); err != nil {
				t.Logf("seed %d workers %d: %v", seed, workers, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBulkLoadSnapshotFresh: a bulk-loaded index must come with its
// lock-free snapshot already installed — the whole point of the offline
// build is that the first read is already fast.
func TestBulkLoadSnapshotFresh(t *testing.T) {
	rels := randomRels(30, 5)
	ix, err := BulkLoad(rels)
	if err != nil {
		t.Fatal(err)
	}
	info := ix.SnapshotInfo()
	if !info.Fresh {
		t.Fatalf("bulk-loaded snapshot stale: %+v", info)
	}
	if info.Nodes != ix.NodeCount() || info.Edges != ix.EdgeCount() {
		t.Errorf("snapshot info %+v vs index %d nodes / %d edges",
			info, ix.NodeCount(), ix.EdgeCount())
	}
	if _, st := ix.ReachWithStats(rels[0].From, 1); !st.Snapshot {
		t.Error("first reach on a bulk-loaded index missed the snapshot path")
	}
}

// TestBulkLoadReachMatchesSequential double-checks the equivalence at the
// query surface, not just the edge export.
func TestBulkLoadReachMatchesSequential(t *testing.T) {
	rels := randomRels(50, 11)
	seq := New()
	for _, r := range rels {
		if err := seq.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seq.Keys() {
		for _, level := range []int{0, 1, 2} {
			a := seq.Reach(k, level)
			b := bulk.Reach(k, level)
			if len(a) != len(b) {
				t.Fatalf("key %v level %d: %d vs %d hits", k, level, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("key %v level %d hit %d: %+v vs %+v", k, level, i, b[i], a[i])
				}
			}
		}
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	ix, err := BulkLoad(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NodeCount() != 0 || ix.EdgeCount() != 0 {
		t.Errorf("empty load produced %d nodes, %d edges", ix.NodeCount(), ix.EdgeCount())
	}
	if !ix.SnapshotInfo().Fresh {
		t.Error("empty index snapshot not fresh")
	}
}

func TestBulkLoadRejectsInvalid(t *testing.T) {
	a := core.NewGlobalKey("db", "c", "a")
	b := core.NewGlobalKey("db", "c", "b")
	bad := []core.PRelation{
		core.NewMatching(a, b, 0.8),
		{From: a, To: b, Type: core.Identity, Prob: 1.5}, // out of range
	}
	if _, err := BulkLoad(bad); err == nil {
		t.Error("invalid relation accepted")
	}
}

// TestBulkLoadAfterLoadMutable: a bulk-loaded index is a normal index —
// subsequent Inserts keep enforcing the Consistency Condition and the
// snapshot machinery keeps tracking mutations.
func TestBulkLoadAfterLoadMutable(t *testing.T) {
	rels := randomRels(20, 3)
	ix, err := BulkLoad(rels)
	if err != nil {
		t.Fatal(err)
	}
	x := core.NewGlobalKey("new", "c", "x")
	if err := ix.Insert(core.NewIdentity(rels[0].From, x, 0.9)); err != nil {
		t.Fatal(err)
	}
	if ix.SnapshotInfo().Fresh {
		// Possible but unlikely: the async rebuild already landed. Either
		// way the index must validate and contain the new node.
		t.Log("async rebuild landed before the check (ok)")
	}
	if !ix.Contains(x) {
		t.Error("insert after bulk load lost")
	}
	if err := ix.Validate(); err != nil {
		t.Error(err)
	}
}
