// Offline bulk construction of the A' index.
//
// Insert materializes the consistency-condition closure of each relation
// under the global write lock, so building an index from N collector
// relations costs N lock acquisitions with closure work serialized inside
// each. BulkLoad computes the same closure offline: relations are grouped
// into connected components (closure never crosses a component — both the
// identity-clique merge and matching propagation only touch keys already
// connected to the inserted relation), each component is replayed into a
// private unshared shard by a pool of workers, and the finished adjacency is
// installed into the result index in one locked swap.
//
// Replaying a component in input order performs exactly the multiplications
// and max-comparisons the sequential Insert loop performs for that
// component's relations — operations on disjoint components commute because
// they share no state — so the loaded index is byte-identical to one built
// by N sequential Inserts (TestBulkLoadMatchesSequential pins this).
package aindex

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"quepa/internal/core"
)

// BulkLoad builds a fresh index from a relation set, materializing the
// consistency-condition closure offline with GOMAXPROCS workers. The result
// is identical to inserting the relations in order with Insert, and comes
// with a fresh reachability snapshot already installed.
func BulkLoad(rels []core.PRelation) (*Index, error) {
	return BulkLoadWorkers(rels, 0)
}

// BulkLoadWorkers is BulkLoad with an explicit worker count (0 selects
// GOMAXPROCS). The worker count never affects the result, only the wall
// time.
func BulkLoadWorkers(rels []core.PRelation, workers int) (*Index, error) {
	for i := range rels {
		if err := rels[i].Validate(); err != nil {
			return nil, fmt.Errorf("aindex: bulk load relation %d: %w", i, err)
		}
	}

	// Union-find over the relation endpoints. Matching relations join their
	// endpoints too: inserting a matching edge reads the identity classes of
	// both sides, so a component's closure depends on every relation whose
	// endpoints connect to it, identity or matching.
	parent := make(map[core.GlobalKey]core.GlobalKey, 2*len(rels))
	var find func(core.GlobalKey) core.GlobalKey
	find = func(k core.GlobalKey) core.GlobalKey {
		p, ok := parent[k]
		if !ok || p == k {
			if !ok {
				parent[k] = k
			}
			return k
		}
		root := find(p)
		parent[k] = root
		return root
	}
	for _, r := range rels {
		ra, rb := find(r.From), find(r.To)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Partition the relations by component, preserving input order within
	// each: that order is what makes the per-component replay literally the
	// sequential replay restricted to the component.
	groups := make(map[core.GlobalKey][]core.PRelation)
	var roots []core.GlobalKey
	for _, r := range rels {
		root := find(r.From)
		if _, ok := groups[root]; !ok {
			roots = append(roots, root)
		}
		groups[root] = append(groups[root], r)
	}

	out := New()
	if len(roots) == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}

	// Workers claim whole components off a shared cursor and replay them
	// into a private shard index — unshared, so insertLocked needs no lock.
	// Shards touch disjoint key sets, which makes the final merge a plain
	// map union.
	shards := make([]*Index, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := New()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(roots) {
					break
				}
				for _, r := range groups[roots[i]] {
					shard.insertLocked(r)
				}
			}
			shards[w] = shard
		}(w)
	}
	wg.Wait()

	out.mu.Lock()
	for _, shard := range shards {
		for k, nbs := range shard.adj {
			out.adj[k] = nbs
		}
		out.edges += shard.edges
	}
	out.epoch.Add(1)
	out.mu.Unlock()
	out.RefreshSnapshot()
	return out, nil
}
