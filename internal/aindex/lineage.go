package aindex

import (
	"sort"
	"sync"

	"quepa/internal/core"
)

// This file implements the lineage system the paper names as the extension
// covering data-oblivion use cases (Section III-C(b)): "we will embed a
// lineage system that allows cascading deletions of inferred p-relations".
//
// A LineageIndex wraps an Index and records, for every materialized edge,
// which *asserted* p-relations (the ones explicitly inserted) it derives
// from. Deleting an asserted relation can then cascade: every edge whose
// every derivation involves the deleted assertion disappears with it, while
// edges that are independently supported survive.

// assertionID identifies one asserted p-relation by its normalized endpoint
// pair (direction-insensitive, like the index itself).
type assertionID struct {
	a, b core.GlobalKey
}

func newAssertionID(x, y core.GlobalKey) assertionID {
	if x.Compare(y) > 0 {
		x, y = y, x
	}
	return assertionID{a: x, b: y}
}

// derivation is one way an edge was obtained: the set of assertions whose
// combination produced it. An edge inserted directly has a derivation
// containing only its own assertion.
type derivation map[assertionID]bool

func (d derivation) contains(id assertionID) bool { return d[id] }

// LineageIndex is an A' index that tracks the provenance of every edge and
// supports cascading deletion of asserted p-relations. It is safe for
// concurrent use.
type LineageIndex struct {
	mu    sync.Mutex
	index *Index
	// derivations maps each edge (normalized pair) to the list of
	// alternative derivations supporting it.
	derivations map[assertionID][]derivation
	// asserted records the relations inserted explicitly, so they can be
	// re-inserted to rebuild after a cascade.
	asserted map[assertionID]core.PRelation
}

// NewLineageIndex creates an empty lineage-tracking index.
func NewLineageIndex() *LineageIndex {
	return &LineageIndex{
		index:       New(),
		derivations: map[assertionID][]derivation{},
		asserted:    map[assertionID]core.PRelation{},
	}
}

// Index exposes the underlying A' index (read paths: Reach, Neighbors, ...).
func (li *LineageIndex) Index() *Index { return li.index }

// Insert adds an asserted p-relation, materializes its consequences in the
// underlying index, and records which edges the assertion (co-)derives.
func (li *LineageIndex) Insert(r core.PRelation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	li.mu.Lock()
	defer li.mu.Unlock()

	id := newAssertionID(r.From, r.To)
	if old, dup := li.asserted[id]; !dup || r.Prob > old.Prob || (old.Type == core.Matching && r.Type == core.Identity) {
		li.asserted[id] = r
	}

	before := li.edgeSet()
	if err := li.index.Insert(r); err != nil {
		return err
	}
	after := li.index.Edges()

	// Every edge that is new, or whose stored relation changed, gains a
	// derivation involving this assertion. The direct edge derives from the
	// assertion alone; inferred edges derive from the assertion plus the
	// assertions supporting the edges they were composed from. Tracking the
	// exact composition would require instrumenting the closure; the sound
	// over-approximation below ties every newly materialized edge to the
	// triggering assertion, which is what cascading oblivion needs: if the
	// assertion is forgotten, everything that appeared because of it goes.
	for _, e := range after {
		eid := newAssertionID(e.From, e.To)
		prev, existed := before[eid]
		if existed && prev == relSignature(e) {
			continue
		}
		d := derivation{id: true}
		if eid != id {
			// Inferred edge: also supported by itself if asserted directly
			// elsewhere; the self-derivation is added when that happens.
		}
		li.derivations[eid] = append(li.derivations[eid], d)
	}
	return nil
}

func relSignature(r core.PRelation) [2]float64 {
	return [2]float64{float64(r.Type), r.Prob}
}

func (li *LineageIndex) edgeSet() map[assertionID][2]float64 {
	out := map[assertionID][2]float64{}
	for _, e := range li.index.Edges() {
		out[newAssertionID(e.From, e.To)] = relSignature(e)
	}
	return out
}

// Asserted returns the explicitly inserted p-relations, sorted.
func (li *LineageIndex) Asserted() []core.PRelation {
	li.mu.Lock()
	defer li.mu.Unlock()
	out := make([]core.PRelation, 0, len(li.asserted))
	for _, r := range li.asserted {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].From.Compare(out[j].From); c != 0 {
			return c < 0
		}
		return out[i].To.Compare(out[j].To) < 0
	})
	return out
}

// DeleteCascading removes an asserted p-relation and every edge that exists
// only because of it, by rebuilding the index from the surviving
// assertions. It reports whether the assertion existed.
//
// Rebuilding is the reference implementation of oblivion: it guarantees
// that no trace of the deleted assertion survives, including probability
// contributions to re-derivable edges (an edge reachable through another
// assertion chain reappears, but with the probability that chain alone
// supports). The cost is O(assertions × closure); for the index sizes of
// the evaluation (~100k assertions) a rebuild completes in seconds and
// oblivion requests are rare by nature.
func (li *LineageIndex) DeleteCascading(from, to core.GlobalKey) (bool, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	id := newAssertionID(from, to)
	if _, ok := li.asserted[id]; !ok {
		return false, nil
	}
	delete(li.asserted, id)

	rebuilt := New()
	for _, r := range li.asserted {
		if err := rebuilt.Insert(r); err != nil {
			return false, err
		}
	}
	li.index = rebuilt
	li.derivations = map[assertionID][]derivation{}
	for aid := range li.asserted {
		li.derivations[aid] = []derivation{{aid: true}}
	}
	return true, nil
}

// DerivedFrom reports whether the edge between a and b has a recorded
// derivation involving the asserted relation between x and y.
func (li *LineageIndex) DerivedFrom(a, b, x, y core.GlobalKey) bool {
	li.mu.Lock()
	defer li.mu.Unlock()
	target := newAssertionID(x, y)
	for _, d := range li.derivations[newAssertionID(a, b)] {
		if d.contains(target) {
			return true
		}
	}
	return false
}
