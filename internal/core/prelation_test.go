package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPRelationValidate(t *testing.T) {
	a := MustParseGlobalKey("catalogue.albums.d1")
	b := MustParseGlobalKey("transactions.inventory.a32")
	tests := []struct {
		name    string
		r       PRelation
		wantErr bool
	}{
		{"valid identity", NewIdentity(a, b, 0.9), false},
		{"valid matching", NewMatching(a, b, 0.6), false},
		{"probability one", NewIdentity(a, b, 1.0), false},
		{"zero probability", NewIdentity(a, b, 0), true},
		{"negative probability", NewIdentity(a, b, -0.1), true},
		{"probability above one", NewIdentity(a, b, 1.01), true},
		{"self relation", NewIdentity(a, a, 0.9), true},
		{"invalid endpoint", NewIdentity(GlobalKey{}, b, 0.9), true},
		{"unknown type", PRelation{From: a, To: b, Type: RelType(7), Prob: 0.5}, true},
	}
	for _, tt := range tests {
		if err := tt.r.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() error = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestPRelationReverse(t *testing.T) {
	a := MustParseGlobalKey("d.c.a")
	b := MustParseGlobalKey("d.c.b")
	r := NewMatching(a, b, 0.7)
	rev := r.Reverse()
	if rev.From != b || rev.To != a || rev.Type != Matching || rev.Prob != 0.7 {
		t.Errorf("Reverse() = %+v", rev)
	}
	if rev.Reverse() != r {
		t.Error("double Reverse should be identity")
	}
}

func TestPRelationReverseProperty(t *testing.T) {
	// Property: Reverse preserves validity and is an involution.
	f := func(p float64) bool {
		prob := math.Mod(math.Abs(p), 1)
		if prob == 0 {
			prob = 0.5
		}
		r := NewIdentity(MustParseGlobalKey("x.y.1"), MustParseGlobalKey("x.y.2"), prob)
		return r.Reverse().Reverse() == r && (r.Validate() == nil) == (r.Reverse().Validate() == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelTypeString(t *testing.T) {
	if Identity.String() != "identity" || Matching.String() != "matching" {
		t.Error("RelType names wrong")
	}
	if RelType(42).String() != "unknown" {
		t.Error("unknown RelType should stringify as unknown")
	}
}

func TestPRelationString(t *testing.T) {
	a := MustParseGlobalKey("d.c.a")
	b := MustParseGlobalKey("d.c.b")
	if got := NewIdentity(a, b, 0.8).String(); got != "d.c.a ~(0.8) d.c.b" {
		t.Errorf("identity String() = %q", got)
	}
	if got := NewMatching(a, b, 0.65).String(); got != "d.c.a ≡(0.65) d.c.b" {
		t.Errorf("matching String() = %q", got)
	}
}
