package core

import (
	"sort"
	"strings"
)

// StoreKind enumerates the families of storage engines a polystore database
// can live in. The kind determines which native query language a connector
// accepts and how data objects are rendered back to the user.
type StoreKind int

const (
	// KindRelational is a relational engine queried with SQL (the paper uses MySQL).
	KindRelational StoreKind = iota
	// KindDocument is a document store queried with a JSON filter language
	// (the paper uses MongoDB).
	KindDocument
	// KindKeyValue is a key-value store queried with GET/MGET-style commands
	// (the paper uses Redis).
	KindKeyValue
	// KindGraph is a property-graph store queried with a pattern language
	// (the paper uses Neo4j).
	KindGraph
)

// String returns the lowercase name of the store kind.
func (k StoreKind) String() string {
	switch k {
	case KindRelational:
		return "relational"
	case KindDocument:
		return "document"
	case KindKeyValue:
		return "keyvalue"
	case KindGraph:
		return "graph"
	default:
		return "unknown"
	}
}

// Object is a PDM data object: a uniquely identified piece of data inside a
// collection of a database. A relational tuple, a JSON document, a key-value
// entry and a graph node are all data objects.
//
// Values are kept in a flattened field map so that objects from different
// engines share one internal representation (the paper's connectors "parse
// data objects into an internal representation"). Nested document fields use
// dot-separated paths. A bare key-value entry stores its payload under the
// ValueField name.
type Object struct {
	GK     GlobalKey         // the object's global key within the polystore
	Fields map[string]string // flattened field/value pairs
}

// ValueField is the field name under which engines without named attributes
// (e.g. key-value stores) expose the object's payload.
const ValueField = "value"

// NewObject builds an object from a global key and a field map. The field map
// is used as is; callers must not mutate it afterwards.
func NewObject(gk GlobalKey, fields map[string]string) Object {
	if fields == nil {
		fields = map[string]string{}
	}
	return Object{GK: gk, Fields: fields}
}

// Field returns the value of the named field and whether it is present.
func (o Object) Field(name string) (string, bool) {
	v, ok := o.Fields[name]
	return v, ok
}

// FieldNames returns the object's field names in sorted order, for
// deterministic rendering.
func (o Object) FieldNames() []string {
	names := make([]string, 0, len(o.Fields))
	for name := range o.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Clone returns a deep copy of the object.
func (o Object) Clone() Object {
	fields := make(map[string]string, len(o.Fields))
	for k, v := range o.Fields {
		fields[k] = v
	}
	return Object{GK: o.GK, Fields: fields}
}

// Equal reports whether two objects have the same global key and identical
// field maps.
func (o Object) Equal(other Object) bool {
	if o.GK != other.GK || len(o.Fields) != len(other.Fields) {
		return false
	}
	for k, v := range o.Fields {
		if ov, ok := other.Fields[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the object as "D.C.k{f1: v1, f2: v2}" with fields in sorted
// order. Intended for logs, examples and debugging.
func (o Object) String() string {
	var b strings.Builder
	b.WriteString(o.GK.String())
	b.WriteByte('{')
	for i, name := range o.FieldNames() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(name)
		b.WriteString(": ")
		b.WriteString(o.Fields[name])
	}
	b.WriteByte('}')
	return b.String()
}
