package core

import (
	"context"
	"errors"
)

// ErrNotFound is returned by stores and connectors when a requested object
// does not exist. The augmenter relies on it to implement the lazy-deletion
// policy of the A' index: an object that is no longer present in the
// polystore is dropped from the index when the miss is observed.
var ErrNotFound = errors.New("core: object not found")

// ErrUnsupportedQuery is returned when a local query is syntactically valid
// but uses a feature the engine (or the augmentation validator) does not
// support.
var ErrUnsupportedQuery = errors.New("core: unsupported query")

// Store is the minimal capability a database must expose to participate in a
// polystore. Connectors adapt each native engine (and its wire client) to
// this interface; the augmenters and the middleware baselines speak only
// Store.
//
// Implementations must be safe for concurrent use: the concurrent augmenters
// issue Get and GetBatch from many goroutines at once.
type Store interface {
	// Name returns the database name the store is registered under.
	Name() string

	// Kind reports the family of the underlying engine.
	Kind() StoreKind

	// Collections lists the data collections in the database.
	Collections() []string

	// Get retrieves a single object by collection and local key.
	// It returns ErrNotFound if no such object exists.
	Get(ctx context.Context, collection, key string) (Object, error)

	// GetBatch retrieves many objects of one collection in a single round
	// trip (the paper's BATCH augmenter relies on this being cheaper than
	// len(keys) calls to Get). Missing keys are silently skipped; the result
	// preserves the order of the found keys.
	GetBatch(ctx context.Context, collection string, keys []string) ([]Object, error)

	// Query executes a query written in the engine's native language and
	// returns the matching objects.
	Query(ctx context.Context, query string) ([]Object, error)
}

// Counter is implemented by stores that can report how many round trips they
// have served. The benchmark harness uses it to report queries-saved numbers
// alongside wall-clock times.
type Counter interface {
	// RoundTrips returns the number of requests served since creation.
	RoundTrips() uint64
}
