package core

import "testing"

// FuzzParseGlobalKey: parsing never panics and successful parses round-trip
// through String.
func FuzzParseGlobalKey(f *testing.F) {
	for _, seed := range []string{
		"transactions.sales.s8",
		"discount.drop.k1:cure:wish",
		"a.b.c.d.e",
		"..",
		"",
		"x.y.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		gk, err := ParseGlobalKey(input)
		if err != nil {
			return
		}
		again, err := ParseGlobalKey(gk.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", input, err)
		}
		if again != gk {
			t.Fatalf("round trip changed %v to %v", gk, again)
		}
	})
}
