package core

import (
	"fmt"
	"math"
)

// RelType is the type of a p-relation between two data objects.
type RelType int

const (
	// Identity (written o1 ~ o2) is an equivalence relation stating that the
	// two objects refer to the same real-world entity. It is reflexive,
	// symmetric and transitive.
	Identity RelType = iota
	// Matching (written o1 ≡ o2) states that the two objects share some
	// common information. It is reflexive and symmetric but not necessarily
	// transitive.
	Matching
)

// String returns the lowercase name of the relation type.
func (t RelType) String() string {
	switch t {
	case Identity:
		return "identity"
	case Matching:
		return "matching"
	default:
		return "unknown"
	}
}

// PRelation is a probabilistic relation between two data objects of a
// polystore (Definition 1 of the paper): the relation of the given type holds
// between From and To with probability Prob, 0 < Prob <= 1.
//
// P-relations are symmetric; a PRelation value represents the unordered pair
// {From, To}. The A' index normalizes direction on insertion.
type PRelation struct {
	From GlobalKey
	To   GlobalKey
	Type RelType
	Prob float64
}

// NewIdentity builds an identity p-relation with the given probability.
func NewIdentity(from, to GlobalKey, prob float64) PRelation {
	return PRelation{From: from, To: to, Type: Identity, Prob: prob}
}

// NewMatching builds a matching p-relation with the given probability.
func NewMatching(from, to GlobalKey, prob float64) PRelation {
	return PRelation{From: from, To: to, Type: Matching, Prob: prob}
}

// Validate checks the structural constraints of Definition 1: both endpoints
// must be valid, distinct global keys and the probability must lie in (0, 1].
func (r PRelation) Validate() error {
	if err := r.From.Validate(); err != nil {
		return fmt.Errorf("core: invalid p-relation source: %w", err)
	}
	if err := r.To.Validate(); err != nil {
		return fmt.Errorf("core: invalid p-relation target: %w", err)
	}
	if r.From == r.To {
		return fmt.Errorf("core: p-relation endpoints coincide: %v", r.From)
	}
	// NaN compares false against everything, so the range check alone would
	// wave it through; reject non-finite probabilities explicitly.
	if math.IsNaN(r.Prob) || math.IsInf(r.Prob, 0) || r.Prob <= 0 || r.Prob > 1 {
		return fmt.Errorf("core: p-relation probability %g outside (0, 1]", r.Prob)
	}
	if r.Type != Identity && r.Type != Matching {
		return fmt.Errorf("core: unknown p-relation type %d", int(r.Type))
	}
	return nil
}

// Reverse returns the p-relation with its endpoints swapped. Because
// p-relations are symmetric, the reversed relation carries the same meaning.
func (r PRelation) Reverse() PRelation {
	return PRelation{From: r.To, To: r.From, Type: r.Type, Prob: r.Prob}
}

// String renders the p-relation as "from ~(p) to" or "from ≡(p) to".
func (r PRelation) String() string {
	op := "~"
	if r.Type == Matching {
		op = "≡"
	}
	return fmt.Sprintf("%v %s(%.3g) %v", r.From, op, r.Prob, r.To)
}
