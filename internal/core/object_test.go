package core

import (
	"reflect"
	"testing"
)

func TestObjectFieldAccess(t *testing.T) {
	o := NewObject(MustParseGlobalKey("transactions.inventory.a32"), map[string]string{
		"artist": "Cure",
		"name":   "Wish",
	})
	if v, ok := o.Field("artist"); !ok || v != "Cure" {
		t.Errorf("Field(artist) = %q, %v", v, ok)
	}
	if _, ok := o.Field("missing"); ok {
		t.Error("Field(missing) reported present")
	}
	if got, want := o.FieldNames(), []string{"artist", "name"}; !reflect.DeepEqual(got, want) {
		t.Errorf("FieldNames() = %v, want %v", got, want)
	}
}

func TestNewObjectNilFields(t *testing.T) {
	o := NewObject(MustParseGlobalKey("d.c.k"), nil)
	if o.Fields == nil {
		t.Fatal("NewObject(nil) should allocate an empty field map")
	}
}

func TestObjectCloneIsDeep(t *testing.T) {
	o := NewObject(MustParseGlobalKey("d.c.k"), map[string]string{"a": "1"})
	c := o.Clone()
	c.Fields["a"] = "2"
	if o.Fields["a"] != "1" {
		t.Error("mutating clone affected original")
	}
	if !o.Equal(o.Clone()) {
		t.Error("clone should be Equal to original")
	}
}

func TestObjectEqual(t *testing.T) {
	gk := MustParseGlobalKey("d.c.k")
	base := NewObject(gk, map[string]string{"a": "1", "b": "2"})
	tests := []struct {
		name  string
		other Object
		want  bool
	}{
		{"identical", NewObject(gk, map[string]string{"a": "1", "b": "2"}), true},
		{"different key", NewObject(MustParseGlobalKey("d.c.k2"), map[string]string{"a": "1", "b": "2"}), false},
		{"different value", NewObject(gk, map[string]string{"a": "1", "b": "3"}), false},
		{"missing field", NewObject(gk, map[string]string{"a": "1"}), false},
		{"extra field", NewObject(gk, map[string]string{"a": "1", "b": "2", "c": "3"}), false},
	}
	for _, tt := range tests {
		if got := base.Equal(tt.other); got != tt.want {
			t.Errorf("%s: Equal = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestObjectString(t *testing.T) {
	o := NewObject(MustParseGlobalKey("catalogue.albums.d1"), map[string]string{
		"title": "Wish", "artist": "The Cure",
	})
	want := "catalogue.albums.d1{artist: The Cure, title: Wish}"
	if got := o.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestStoreKindString(t *testing.T) {
	tests := []struct {
		k    StoreKind
		want string
	}{
		{KindRelational, "relational"},
		{KindDocument, "document"},
		{KindKeyValue, "keyvalue"},
		{KindGraph, "graph"},
		{StoreKind(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("StoreKind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}
