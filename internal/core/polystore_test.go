package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// fakeStore is a minimal in-memory Store used to exercise the registry.
type fakeStore struct {
	name    string
	kind    StoreKind
	objects map[string]map[string]Object // collection -> key -> object
}

func newFakeStore(name string, kind StoreKind) *fakeStore {
	return &fakeStore{name: name, kind: kind, objects: map[string]map[string]Object{}}
}

func (f *fakeStore) put(collection, key string, fields map[string]string) {
	if f.objects[collection] == nil {
		f.objects[collection] = map[string]Object{}
	}
	f.objects[collection][key] = NewObject(NewGlobalKey(f.name, collection, key), fields)
}

func (f *fakeStore) Name() string    { return f.name }
func (f *fakeStore) Kind() StoreKind { return f.kind }

func (f *fakeStore) Collections() []string {
	var out []string
	for c := range f.objects {
		out = append(out, c)
	}
	return out
}

func (f *fakeStore) Get(_ context.Context, collection, key string) (Object, error) {
	o, ok := f.objects[collection][key]
	if !ok {
		return Object{}, fmt.Errorf("fake %s/%s/%s: %w", f.name, collection, key, ErrNotFound)
	}
	return o, nil
}

func (f *fakeStore) GetBatch(ctx context.Context, collection string, keys []string) ([]Object, error) {
	var out []Object
	for _, k := range keys {
		if o, err := f.Get(ctx, collection, k); err == nil {
			out = append(out, o)
		}
	}
	return out, nil
}

func (f *fakeStore) Query(context.Context, string) ([]Object, error) {
	return nil, ErrUnsupportedQuery
}

func TestPolystoreRegister(t *testing.T) {
	p := NewPolystore()
	if err := p.Register(newFakeStore("sales", KindRelational)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := p.Register(newFakeStore("sales", KindDocument)); err == nil {
		t.Error("duplicate Register should fail")
	}
	if err := p.Register(nil); err == nil {
		t.Error("Register(nil) should fail")
	}
	if err := p.Register(newFakeStore("", KindDocument)); err == nil {
		t.Error("Register with empty name should fail")
	}
	if p.Size() != 1 {
		t.Errorf("Size() = %d, want 1", p.Size())
	}
}

func TestPolystoreDatabases(t *testing.T) {
	p := NewPolystore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := p.Register(newFakeStore(name, KindKeyValue)); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Databases()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Databases() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Databases()[%d] = %q, want %q (sorted)", i, got[i], want[i])
		}
	}
}

func TestPolystoreDeregister(t *testing.T) {
	p := NewPolystore()
	if err := p.Register(newFakeStore("db", KindGraph)); err != nil {
		t.Fatal(err)
	}
	if !p.Deregister("db") {
		t.Error("Deregister existing database returned false")
	}
	if p.Deregister("db") {
		t.Error("Deregister missing database returned true")
	}
	if _, err := p.Database("db"); err == nil {
		t.Error("Database after Deregister should fail")
	}
}

func TestPolystoreFetch(t *testing.T) {
	p := NewPolystore()
	s := newFakeStore("catalogue", KindDocument)
	s.put("albums", "d1", map[string]string{"title": "Wish"})
	if err := p.Register(s); err != nil {
		t.Fatal(err)
	}

	o, err := p.Fetch(context.Background(), MustParseGlobalKey("catalogue.albums.d1"))
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if v, _ := o.Field("title"); v != "Wish" {
		t.Errorf("fetched object title = %q", v)
	}

	if _, err := p.Fetch(context.Background(), MustParseGlobalKey("catalogue.albums.nope")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Fetch missing: err = %v, want ErrNotFound", err)
	}
	if _, err := p.Fetch(context.Background(), MustParseGlobalKey("unknown.albums.d1")); err == nil {
		t.Error("Fetch from unknown database should fail")
	}
}

func TestPolystoreFetchBatch(t *testing.T) {
	p := NewPolystore()
	s := newFakeStore("kv", KindKeyValue)
	s.put("drop", "k1", map[string]string{ValueField: "40%"})
	s.put("drop", "k2", map[string]string{ValueField: "10%"})
	if err := p.Register(s); err != nil {
		t.Fatal(err)
	}

	out, err := p.FetchBatch(context.Background(), "kv", "drop", []string{"k1", "missing", "k2"})
	if err != nil {
		t.Fatalf("FetchBatch: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("FetchBatch returned %d objects, want 2 (missing key skipped)", len(out))
	}
	if out[0].GK.Key != "k1" || out[1].GK.Key != "k2" {
		t.Errorf("FetchBatch order not preserved: %v, %v", out[0].GK, out[1].GK)
	}

	if _, err := p.FetchBatch(context.Background(), "nope", "drop", []string{"k1"}); err == nil {
		t.Error("FetchBatch on unknown database should fail")
	}
}

func TestPolystoreQueryRouting(t *testing.T) {
	p := NewPolystore()
	if err := p.Register(newFakeStore("db", KindRelational)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query(context.Background(), "db", "anything"); !errors.Is(err, ErrUnsupportedQuery) {
		t.Errorf("Query should surface the store error, got %v", err)
	}
	if _, err := p.Query(context.Background(), "absent", "q"); err == nil {
		t.Error("Query on unknown database should fail")
	}
}
