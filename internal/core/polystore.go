package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Polystore is the registry binding database names to their stores. It is the
// loosely coupled integration point of the system: it holds no data itself,
// only the handles needed to reach each database with its native access
// methods.
//
// A Polystore is safe for concurrent use.
type Polystore struct {
	mu  sync.RWMutex
	dbs map[string]Store
}

// NewPolystore returns an empty polystore.
func NewPolystore() *Polystore {
	return &Polystore{dbs: make(map[string]Store)}
}

// Register adds a database to the polystore under the store's own name.
// Registering a name twice is an error: databases are identified by name in
// every global key, so silently replacing one would corrupt the mapping.
func (p *Polystore) Register(s Store) error {
	if s == nil {
		return fmt.Errorf("core: cannot register nil store")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("core: cannot register store with empty name")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.dbs[name]; dup {
		return fmt.Errorf("core: database %q already registered", name)
	}
	p.dbs[name] = s
	return nil
}

// Deregister removes the named database. It reports whether it was present.
func (p *Polystore) Deregister(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.dbs[name]
	delete(p.dbs, name)
	return ok
}

// Database returns the store registered under name.
func (p *Polystore) Database(name string) (Store, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.dbs[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown database %q", name)
	}
	return s, nil
}

// Databases returns the registered database names in sorted order.
func (p *Polystore) Databases() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.dbs))
	for name := range p.dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of registered databases.
func (p *Polystore) Size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.dbs)
}

// Fetch retrieves the object identified by the global key, routing the
// request to the owning database. It returns ErrNotFound (possibly wrapped)
// when the object does not exist.
func (p *Polystore) Fetch(ctx context.Context, gk GlobalKey) (Object, error) {
	s, err := p.Database(gk.Database)
	if err != nil {
		return Object{}, err
	}
	return s.Get(ctx, gk.Collection, gk.Key)
}

// FetchBatch retrieves many objects of a single database and collection in
// one round trip. Keys that do not exist are skipped.
func (p *Polystore) FetchBatch(ctx context.Context, database, collection string, keys []string) ([]Object, error) {
	s, err := p.Database(database)
	if err != nil {
		return nil, err
	}
	return s.GetBatch(ctx, collection, keys)
}

// Query runs a native-language query against the named database.
func (p *Polystore) Query(ctx context.Context, database, query string) ([]Object, error) {
	s, err := p.Database(database)
	if err != nil {
		return nil, err
	}
	return s.Query(ctx, query)
}
