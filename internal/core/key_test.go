package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseGlobalKey(t *testing.T) {
	tests := []struct {
		in      string
		want    GlobalKey
		wantErr bool
	}{
		{"transactions.sales.s8", GlobalKey{"transactions", "sales", "s8"}, false},
		{"discount.drop.k1:cure:wish", GlobalKey{"discount", "drop", "k1:cure:wish"}, false},
		{"catalogue.albums.d1", GlobalKey{"catalogue", "albums", "d1"}, false},
		// Local keys may contain dots: everything after the second dot is key.
		{"db.coll.a.b.c", GlobalKey{"db", "coll", "a.b.c"}, false},
		{"nodots", GlobalKey{}, true},
		{"only.one", GlobalKey{}, true},
		{".coll.key", GlobalKey{}, true},
		{"db..key", GlobalKey{}, true},
		{"db.coll.", GlobalKey{}, true},
		{"", GlobalKey{}, true},
	}
	for _, tt := range tests {
		got, err := ParseGlobalKey(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseGlobalKey(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseGlobalKey(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestGlobalKeyRoundTrip(t *testing.T) {
	// Property: String followed by ParseGlobalKey is the identity for keys
	// whose database and collection are dot-free and non-empty.
	f := func(db, coll, key string) bool {
		db = sanitizeComponent(db)
		coll = sanitizeComponent(coll)
		if key == "" {
			key = "k"
		}
		gk := NewGlobalKey(db, coll, key)
		parsed, err := ParseGlobalKey(gk.String())
		return err == nil && parsed == gk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeComponent(s string) string {
	s = strings.ReplaceAll(s, ".", "_")
	if s == "" {
		return "x"
	}
	return s
}

func TestMustParseGlobalKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseGlobalKey on malformed input did not panic")
		}
	}()
	MustParseGlobalKey("garbage")
}

func TestGlobalKeyValidate(t *testing.T) {
	tests := []struct {
		gk      GlobalKey
		wantErr bool
	}{
		{GlobalKey{"db", "coll", "key"}, false},
		{GlobalKey{"", "coll", "key"}, true},
		{GlobalKey{"db", "", "key"}, true},
		{GlobalKey{"db", "coll", ""}, true},
		{GlobalKey{"d.b", "coll", "key"}, true},
		{GlobalKey{"db", "co.ll", "key"}, true},
		{GlobalKey{"db", "coll", "key.with.dots"}, false},
	}
	for _, tt := range tests {
		if err := tt.gk.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("Validate(%+v) error = %v, wantErr %v", tt.gk, err, tt.wantErr)
		}
	}
}

func TestGlobalKeyCompare(t *testing.T) {
	a := GlobalKey{"a", "b", "c"}
	b := GlobalKey{"a", "b", "d"}
	c := GlobalKey{"a", "c", "a"}
	d := GlobalKey{"b", "a", "a"}
	if a.Compare(a) != 0 {
		t.Error("Compare(self) != 0")
	}
	for _, pair := range [][2]GlobalKey{{a, b}, {b, c}, {c, d}, {a, d}} {
		if pair[0].Compare(pair[1]) >= 0 {
			t.Errorf("Compare(%v, %v) should be negative", pair[0], pair[1])
		}
		if pair[1].Compare(pair[0]) <= 0 {
			t.Errorf("Compare(%v, %v) should be positive", pair[1], pair[0])
		}
	}
}

func TestGlobalKeyIsZero(t *testing.T) {
	if !(GlobalKey{}).IsZero() {
		t.Error("zero value should report IsZero")
	}
	if (GlobalKey{Database: "d"}).IsZero() {
		t.Error("non-zero value should not report IsZero")
	}
}
