// Package core defines the Polystore Data Model (PDM) of the QUEPA system:
// global keys, data objects, probabilistic relations between objects
// (p-relations), and the polystore registry that binds heterogeneous storage
// engines together.
//
// The model follows Section II of Maccioni & Torlone, "Augmented Access for
// Querying and Exploring a Polystore" (ICDE 2018). A polystore is a set of
// databases, each stored in its own data management system. A database holds
// data collections; a collection holds data objects; an object is a key/value
// pair whose key identifies it uniquely within its collection. The triple
// (database, collection, key) — written D.C.k — identifies an object uniquely
// in the whole polystore and is called its global key.
package core

import (
	"fmt"
	"strings"
)

// GlobalKey identifies a data object uniquely inside a polystore.
// Its textual form is "database.collection.key"; because local keys may
// themselves contain dots (e.g. the Redis key "k1:cure:wish"), only the first
// two dots act as separators when parsing.
type GlobalKey struct {
	Database   string // name of the database inside the polystore
	Collection string // name of the data collection inside the database
	Key        string // local key of the object inside the collection
}

// NewGlobalKey builds a GlobalKey from its three components.
func NewGlobalKey(database, collection, key string) GlobalKey {
	return GlobalKey{Database: database, Collection: collection, Key: key}
}

// ParseGlobalKey parses the textual form "database.collection.key".
// The database and collection components must not be empty and must not
// contain dots; everything after the second dot is the local key verbatim.
func ParseGlobalKey(s string) (GlobalKey, error) {
	first := strings.IndexByte(s, '.')
	if first <= 0 {
		return GlobalKey{}, fmt.Errorf("core: malformed global key %q: missing database component", s)
	}
	rest := s[first+1:]
	second := strings.IndexByte(rest, '.')
	if second <= 0 {
		return GlobalKey{}, fmt.Errorf("core: malformed global key %q: missing collection component", s)
	}
	gk := GlobalKey{
		Database:   s[:first],
		Collection: rest[:second],
		Key:        rest[second+1:],
	}
	if gk.Key == "" {
		return GlobalKey{}, fmt.Errorf("core: malformed global key %q: empty local key", s)
	}
	return gk, nil
}

// MustParseGlobalKey is like ParseGlobalKey but panics on error.
// It is intended for tests and for literals known to be well formed.
func MustParseGlobalKey(s string) GlobalKey {
	gk, err := ParseGlobalKey(s)
	if err != nil {
		panic(err)
	}
	return gk
}

// String renders the global key in its canonical "database.collection.key"
// textual form.
func (gk GlobalKey) String() string {
	return gk.Database + "." + gk.Collection + "." + gk.Key
}

// IsZero reports whether the global key has no components set.
func (gk GlobalKey) IsZero() bool {
	return gk.Database == "" && gk.Collection == "" && gk.Key == ""
}

// Validate checks that all three components are present and that database and
// collection contain no separator dots.
func (gk GlobalKey) Validate() error {
	switch {
	case gk.Database == "":
		return fmt.Errorf("core: global key %v: empty database", gk)
	case gk.Collection == "":
		return fmt.Errorf("core: global key %v: empty collection", gk)
	case gk.Key == "":
		return fmt.Errorf("core: global key %v: empty local key", gk)
	case strings.ContainsRune(gk.Database, '.'):
		return fmt.Errorf("core: global key %v: database name contains a dot", gk)
	case strings.ContainsRune(gk.Collection, '.'):
		return fmt.Errorf("core: global key %v: collection name contains a dot", gk)
	}
	return nil
}

// Compare orders global keys lexicographically by database, then collection,
// then local key. It returns -1, 0 or +1.
func (gk GlobalKey) Compare(other GlobalKey) int {
	if c := strings.Compare(gk.Database, other.Database); c != 0 {
		return c
	}
	if c := strings.Compare(gk.Collection, other.Collection); c != 0 {
		return c
	}
	return strings.Compare(gk.Key, other.Key)
}
