// Package integration exercises the full QUEPA stack end to end: the
// generated Polyphony polystore served over the TCP wire protocol, dialed
// back through wire clients, wrapped with the distributed network profile,
// and queried in augmented mode with every execution strategy — the shape
// of the paper's distributed deployment, in one process.
package integration

import (
	"context"
	"fmt"
	"testing"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/netsim"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

var ctx = context.Background()

// remotePolystore builds a workload polystore, serves every database over
// TCP, and returns a polystore of wire clients plus a shutdown function.
func remotePolystore(t *testing.T, profile netsim.Profile) (*core.Polystore, *aindex.Index, *workload.Built, func()) {
	t.Helper()
	spec := workload.DefaultSpec()
	spec.Artists = 12
	spec.AlbumsPerArtist = 3
	spec.ReplicaRounds = 1
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		t.Fatal(err)
	}

	remote := core.NewPolystore()
	var servers []*wire.Server
	var clients []*wire.Client
	for _, name := range built.Databases() {
		s, err := built.Poly.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := wire.Serve(s, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		cli, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cli)
		var store core.Store = cli
		if profile != (netsim.Profile{}) {
			store = netsim.Wrap(cli, profile, nil)
		}
		if err := remote.Register(store); err != nil {
			t.Fatal(err)
		}
	}
	shutdown := func() {
		for _, c := range clients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	return remote, built.Index, built, shutdown
}

// TestRemoteMatchesLocal is the core integration property: an augmented
// search through TCP wire clients returns exactly the answer the in-process
// polystore returns, for every strategy.
func TestRemoteMatchesLocal(t *testing.T) {
	remote, index, built, shutdown := remotePolystore(t, netsim.Profile{})
	defer shutdown()

	query, err := built.Query("transactions", 8)
	if err != nil {
		t.Fatal(err)
	}
	reference := signature(t, augment.New(built.Poly, index, augment.Config{Strategy: augment.Sequential}), query)

	for _, cfg := range []augment.Config{
		{Strategy: augment.Sequential},
		{Strategy: augment.Batch, BatchSize: 16},
		{Strategy: augment.Inner, ThreadsSize: 4},
		{Strategy: augment.Outer, ThreadsSize: 4},
		{Strategy: augment.OuterBatch, BatchSize: 16, ThreadsSize: 4},
		{Strategy: augment.OuterInner, ThreadsSize: 4},
	} {
		got := signature(t, augment.New(remote, index, cfg), query)
		if got != reference {
			t.Errorf("%v over TCP differs from local:\n got  %s\n want %s", cfg, got, reference)
		}
	}
}

func signature(t *testing.T, aug *augment.Augmenter, query string) string {
	t.Helper()
	answer, err := aug.Search(ctx, "transactions", query, 1)
	if err != nil {
		t.Fatal(err)
	}
	sig := fmt.Sprintf("orig=%d;", len(answer.Original))
	for _, ao := range answer.Augmented {
		sig += fmt.Sprintf("%s:%.5f;", ao.Object.GK, ao.Prob)
	}
	return sig
}

// TestValidatorRewriteOverWire: the key-column rewrite works through the
// wire protocol's keyfield op.
func TestValidatorRewriteOverWire(t *testing.T) {
	remote, index, _, shutdown := remotePolystore(t, netsim.Profile{})
	defer shutdown()
	aug := augment.New(remote, index, augment.Config{Strategy: augment.Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT name FROM inventory WHERE seq < 2`, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range answer.Original {
		if _, ok := o.Field("id"); !ok {
			t.Errorf("rewritten projection lacks id over wire: %v", o)
		}
	}
}

// TestServerShutdownDegradesGracefully: killing a store's server mid-flight
// turns augmented searches into partial answers — the dead store is reported
// in the degraded section while the rest of the polystore keeps answering.
func TestServerShutdownDegradesGracefully(t *testing.T) {
	remote, index, built, shutdown := remotePolystore(t, netsim.Profile{})
	defer shutdown()

	query, err := built.Query("transactions", 4)
	if err != nil {
		t.Fatal(err)
	}
	aug := augment.New(remote, index, augment.Config{Strategy: augment.OuterBatch, BatchSize: 8, ThreadsSize: 4})
	if _, err := aug.Search(ctx, "transactions", query, 0); err != nil {
		t.Fatalf("healthy search failed: %v", err)
	}

	// Kill the catalogue server: its objects are part of every album's
	// identity class, so the augmentation must hit the dead connection.
	// Rebuild a polystore where catalogue points at a closed address.
	dead, err := built.Poly.Database("catalogue")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.Serve(dead, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // server is now gone; the client's pool is stale
	cli.Close()

	broken := core.NewPolystore()
	for _, name := range remote.Databases() {
		if name == "catalogue" {
			if err := broken.Register(cli); err != nil {
				t.Fatal(err)
			}
			continue
		}
		s, err := remote.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := broken.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	aug = augment.New(broken, index, augment.Config{Strategy: augment.OuterBatch, BatchSize: 8, ThreadsSize: 4})
	answer, err := aug.Search(ctx, "transactions", query, 0)
	if err != nil {
		t.Fatalf("search over a dead store aborted instead of degrading: %v", err)
	}
	if len(answer.Degraded) != 1 || answer.Degraded[0].Store != "catalogue" {
		t.Errorf("degraded = %v, want the catalogue store", answer.Degraded)
	}
	if len(answer.Original) == 0 {
		t.Error("original results lost in the partial answer")
	}
}

// TestDistributedBatchingSavesTime reproduces the paper's core distributed
// claim end to end over real TCP: the batched augmenter is much faster than
// the sequential one under cross-region latency.
func TestDistributedBatchingSavesTime(t *testing.T) {
	profile := netsim.Profile{RoundTrip: 2 * time.Millisecond}
	remote, index, built, shutdown := remotePolystore(t, profile)
	defer shutdown()

	query, err := built.Query("transactions", 12)
	if err != nil {
		t.Fatal(err)
	}
	timeOf := func(cfg augment.Config) time.Duration {
		aug := augment.New(remote, index, cfg)
		start := time.Now()
		if _, err := aug.Search(ctx, "transactions", query, 0); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq := timeOf(augment.Config{Strategy: augment.Sequential})
	batch := timeOf(augment.Config{Strategy: augment.Batch, BatchSize: 1000})
	if batch*3 > seq {
		t.Errorf("batching saved too little over TCP: sequential %v vs batch %v", seq, batch)
	}
}

// TestLazyDeletionOverWire: deleting an object behind the wire makes the
// augmenter drop it and remove it from the index, exactly as in-process.
func TestLazyDeletionOverWire(t *testing.T) {
	remote, index, built, shutdown := remotePolystore(t, netsim.Profile{})
	defer shutdown()

	victim := core.NewGlobalKey("catalogue", "albums", "d1")
	if !index.Contains(victim) {
		t.Fatal("fixture broken: d1 not indexed")
	}
	// Delete through the local engine (the server shares it).
	local, err := built.Poly.Database("catalogue")
	if err != nil {
		t.Fatal(err)
	}
	_ = local
	// The docstore connector has no delete in its query language; remove
	// via the engine by rebuilding is overkill — fetch the underlying
	// object list through the polystore and delete directly using the
	// generated spec's docstore. Simplest: issue Get over the wire to pin
	// behavior, then remove via the in-process store handle.
	if _, err := remote.Fetch(ctx, victim); err != nil {
		t.Fatalf("pre-delete fetch failed: %v", err)
	}
	deleteFromDocstore(t, built, "catalogue", "albums", "d1")

	query, err := built.Query("transactions", 3)
	if err != nil {
		t.Fatal(err)
	}
	aug := augment.New(remote, index, augment.Config{Strategy: augment.Batch, BatchSize: 8})
	answer, err := aug.Search(ctx, "transactions", query, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ao := range answer.Augmented {
		if ao.Object.GK == victim {
			t.Error("deleted object still in remote answer")
		}
	}
	if index.Contains(victim) {
		t.Error("deleted object not lazily removed from the index over wire")
	}
}

// deleteFromDocstore digs the document engine out of the workload fixture.
func deleteFromDocstore(t *testing.T, built *workload.Built, db, collection, id string) {
	t.Helper()
	s, err := built.Poly.Database(db)
	if err != nil {
		t.Fatal(err)
	}
	eng, ok := s.(*connector.Document)
	if !ok {
		t.Fatalf("store %T is not a document connector", s)
	}
	if !eng.Engine().Delete(collection, id) {
		t.Fatal("delete failed")
	}
}
