package validator

import (
	"context"
	"errors"
	"testing"

	"quepa/internal/connector"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

var ctx = context.Background()

func newRelConnector(t *testing.T) *connector.Relational {
	t.Helper()
	db := relstore.New("transactions")
	if _, err := db.Exec(`CREATE TABLE inventory (id TEXT PRIMARY KEY, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	return connector.NewRelational(db)
}

func TestRelationalValidation(t *testing.T) {
	c := newRelConnector(t)

	v, err := Validate(ctx, c, `SELECT name FROM inventory WHERE name LIKE '%wish%'`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Rewritten || v.Query != `SELECT id, name FROM inventory WHERE name LIKE '%wish%'` {
		t.Errorf("rewrite = %+v", v)
	}

	v, err = Validate(ctx, c, `SELECT * FROM inventory`)
	if err != nil || v.Rewritten {
		t.Errorf("star query should pass unchanged: %+v, %v", v, err)
	}

	var na *ErrNotAugmentable
	if _, err := Validate(ctx, c, `SELECT COUNT(*) FROM inventory`); !errors.As(err, &na) {
		t.Errorf("aggregate should be not-augmentable, got %v", err)
	}
	if _, err := Validate(ctx, c, `INSERT INTO inventory VALUES ('1', 'x')`); !errors.As(err, &na) {
		t.Errorf("insert should be not-augmentable, got %v", err)
	}
	if _, err := Validate(ctx, c, `garbage sql`); err == nil {
		t.Error("malformed SQL should fail")
	}
	if _, err := Validate(ctx, c, `SELECT name FROM ghost`); err == nil {
		t.Error("unknown table should fail at key resolution")
	}
}

func TestDocumentValidation(t *testing.T) {
	c := connector.NewDocument(docstore.New("catalogue"))
	v, err := Validate(ctx, c, `albums.find({"artist": "The Cure"})`)
	if err != nil || v.Rewritten {
		t.Errorf("find should pass unchanged: %+v, %v", v, err)
	}
	var na *ErrNotAugmentable
	if _, err := Validate(ctx, c, `albums.count({})`); !errors.As(err, &na) {
		t.Errorf("count should be not-augmentable, got %v", err)
	}
	if _, err := Validate(ctx, c, `albums.find`); err == nil {
		t.Error("malformed query should fail")
	}
}

func TestKeyValueValidation(t *testing.T) {
	c := connector.NewKeyValue(kvstore.New("discount"))
	for _, q := range []string{"GET drop k1", "MGET drop k1 k2", "KEYS drop *", "SCAN drop", "EXISTS drop k1", "get drop k1"} {
		if v, err := Validate(ctx, c, q); err != nil || v.Query != q {
			t.Errorf("Validate(%q) = %+v, %v", q, v, err)
		}
	}
	var na *ErrNotAugmentable
	for _, q := range []string{"SET drop k v", "DEL drop k", "LEN drop"} {
		if _, err := Validate(ctx, c, q); !errors.As(err, &na) {
			t.Errorf("Validate(%q) should be not-augmentable, got %v", q, err)
		}
	}
	if _, err := Validate(ctx, c, "BOGUS x"); err == nil {
		t.Error("unknown command should fail")
	}
	if _, err := Validate(ctx, c, "   "); err == nil {
		t.Error("empty command should fail")
	}
}

func TestGraphValidation(t *testing.T) {
	c := connector.NewGraph(graphstore.New("similar-items"))
	for _, q := range []string{
		`MATCH (n:items) RETURN n`,
		`MATCH (n:items) WHERE n.year > 1990 RETURN n`,
		`NEIGHBORS n1`,
		`NEIGHBORS n1 SIMILAR`,
	} {
		if v, err := Validate(ctx, c, q); err != nil || v.Query != q {
			t.Errorf("Validate(%q) = %+v, %v", q, v, err)
		}
	}
	if _, err := Validate(ctx, c, `DROP EVERYTHING`); err == nil {
		t.Error("malformed graph query should fail")
	}
}

func TestJoinNotAugmentable(t *testing.T) {
	db := relstore.New("transactions")
	if _, err := db.Exec(`CREATE TABLE a (id TEXT PRIMARY KEY, x TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE b (id TEXT PRIMARY KEY, y TEXT)`); err != nil {
		t.Fatal(err)
	}
	c := connector.NewRelational(db)
	var na *ErrNotAugmentable
	if _, err := Validate(ctx, c, `SELECT * FROM a JOIN b ON a.x = b.id`); !errors.As(err, &na) {
		t.Errorf("join should be not-augmentable, got %v", err)
	}
}
