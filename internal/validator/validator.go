// Package validator implements the Validator component of the QUEPA
// architecture (Section III-A): before a query is executed in augmented
// mode, the validator (i) checks that the query can be augmented at all —
// aggregate queries cannot, because their results are not data objects with
// global keys — and (ii) rewrites the query, when necessary, so that the
// identifiers of the returned data objects are part of the result.
package validator

import (
	"context"
	"fmt"
	"strings"

	"quepa/internal/core"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/relstore"
)

// ErrNotAugmentable marks queries that are valid for the engine but cannot
// participate in augmentation (aggregates, writes).
type ErrNotAugmentable struct{ Reason string }

func (e *ErrNotAugmentable) Error() string {
	return "validator: query cannot be augmented: " + e.Reason
}

// Validation is the outcome of validating a query.
type Validation struct {
	// Query is the query to execute: the original one, or its rewriting
	// when identifiers had to be added to the projection.
	Query string
	// Rewritten reports whether Query differs from the input.
	Rewritten bool
}

// keyResolver matches connectors that expose the identifier field of a
// collection (connector.KeyResolver, matched structurally to avoid a
// dependency cycle).
type keyResolver interface {
	KeyField(ctx context.Context, collection string) (string, error)
}

// Validate checks that the query can be executed in augmented mode against
// the given store and returns the (possibly rewritten) query to run. The
// context bounds key-field resolution, which is a remote round trip for
// wire-backed stores.
func Validate(ctx context.Context, s core.Store, query string) (Validation, error) {
	switch s.Kind() {
	case core.KindRelational:
		return validateRelational(ctx, s, query)
	case core.KindDocument:
		return validateDocument(query)
	case core.KindKeyValue:
		return validateKeyValue(query)
	case core.KindGraph:
		return validateGraph(query)
	default:
		return Validation{}, fmt.Errorf("validator: unknown store kind %v", s.Kind())
	}
}

func validateRelational(ctx context.Context, s core.Store, query string) (Validation, error) {
	st, err := relstore.Parse(query)
	if err != nil {
		return Validation{}, err
	}
	if !st.IsSelect() {
		return Validation{}, &ErrNotAugmentable{Reason: "only SELECT queries can be augmented"}
	}
	if st.HasAggregate() {
		return Validation{}, &ErrNotAugmentable{Reason: "queries with aggregate functions return values, not data objects"}
	}
	if st.HasJoin() {
		return Validation{}, &ErrNotAugmentable{Reason: "joined rows are not data objects with a global key"}
	}
	// Rewrite so the key column appears in the projection (paper Fig. 2,
	// step 3). The engine reports row keys regardless, but the rewrite makes
	// identifiers visible in the user-facing result, as the paper requires.
	if kr, ok := s.(keyResolver); ok {
		keyField, err := kr.KeyField(ctx, st.Table())
		if err != nil {
			return Validation{}, fmt.Errorf("validator: resolving key column of %q: %w", st.Table(), err)
		}
		rewritten, changed := st.EnsureKeyColumn(keyField)
		return Validation{Query: rewritten, Rewritten: changed}, nil
	}
	return Validation{Query: query}, nil
}

func validateDocument(query string) (Validation, error) {
	_, verb, _, err := docstore.ParseQuery(query)
	if err != nil {
		return Validation{}, err
	}
	if verb == "count" {
		return Validation{}, &ErrNotAugmentable{Reason: "count() is an aggregate"}
	}
	// find() returns whole documents including _id: nothing to rewrite.
	return Validation{Query: query}, nil
}

func validateKeyValue(query string) (Validation, error) {
	fields := strings.Fields(query)
	if len(fields) == 0 {
		return Validation{}, fmt.Errorf("validator: empty key-value command")
	}
	switch strings.ToUpper(fields[0]) {
	case "GET", "MGET", "KEYS", "SCAN", "EXISTS":
		return Validation{Query: query}, nil
	case "LEN":
		return Validation{}, &ErrNotAugmentable{Reason: "LEN is an aggregate"}
	case "SET", "DEL":
		return Validation{}, &ErrNotAugmentable{Reason: "writes cannot be augmented"}
	default:
		return Validation{}, fmt.Errorf("validator: unknown key-value command %q", fields[0])
	}
}

func validateGraph(query string) (Validation, error) {
	if _, ok := graphstore.ClassifyQuery(query); !ok {
		return Validation{}, fmt.Errorf("validator: malformed graph query %q", query)
	}
	// MATCH and NEIGHBORS both return nodes, which carry their ids.
	return Validation{Query: query}, nil
}
