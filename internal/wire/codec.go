// Binary wire codec v2.
//
// Every frame on the wire is still a 4-byte big-endian length followed by a
// body, but the body's first byte now selects the codec: JSON bodies always
// open with '{' (0x7B), so a single reserved byte — binMagic — marks the
// hand-rolled binary encoding. Servers sniff the byte per frame and answer
// in the codec the request arrived in, which is what lets old JSON-only
// clients, new binary clients and mixed-version clusters share one listener.
//
// Codec v2 is negotiated, never assumed: a client opens every connection in
// JSON and offers its maximum version in the meta exchange (request.Codec);
// a v2 server echoes the agreed version back (response.Codec) and only then
// does the client switch its frames to binary. A server that predates the
// field simply omits it, and the client stays on JSON forever.
//
// The binary layout is fixed-order (no field tags): every field of the
// request/response structs is encoded every time, in declaration order, so
// decode is a straight-line scan. Integers are varints, floats are 8-byte
// little-endian IEEE bits (exact, unlike the JSON decimal detour), strings
// are length-prefixed, and the store/collection/field-name slots run through
// a per-frame intern table so a getbatch response naming one collection a
// thousand times ships it once. Both sides append literals to their tables
// under the same deterministic rule, so references always resolve.
//
// Allocation discipline: encoders serialize into sync.Pool-backed buffers
// and issue a single Write per frame (steady-state encode is zero-alloc);
// decoders copy the pooled read buffer into one string and slice every
// decoded string out of it (string headers are free, so decode costs O(1)
// allocations plus the slices/maps of the result itself).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Frame codec versions. codecJSON is the v1 compatibility codec every server
// keeps accepting; codecBinary is the compact frame format of codec v2;
// codecDelta is codec v3, which adds the op-specific compact reach frames the
// delta-frontier scatter ships (generic v2 frames remain valid on a v3
// connection — only reach traffic uses the compact form).
const (
	codecJSON   = 1
	codecBinary = 2
	codecDelta  = 3
)

// binMagic is the first body byte of every codec-v2 frame. It can never
// collide with JSON: a JSON frame body always starts with '{' (0x7B).
const binMagic = 0x02

// binMagicDelta opens a codec-v3 compact reach frame: a reach request or
// response stripped to the fields the op actually uses. A generic v2 frame
// spends ~24 bytes encoding the empty slots of the full request/response
// structs on every scatter leg; the compact form drops them, which is where
// most of the delta-frontier byte reduction beyond front-coding comes from.
const binMagicDelta = 0x03

// internCap bounds the per-frame string intern table. The encoder and the
// decoder apply the identical "append literals while the table has room"
// rule, so their tables stay in lockstep; the cap keeps the encoder's linear
// dedup scan cheap on pathological frames.
const internCap = 64

// Binary op codes, fixed for wire compatibility. 0 is reserved (invalid).
var opCodes = map[string]byte{
	opGet:      1,
	opGetBatch: 2,
	opQuery:    3,
	opMeta:     4,
	opKeyField: 5,
	opReach:    6,
	opSnapshot: 7,
}

var opNames = [...]string{
	1: opGet,
	2: opGetBatch,
	3: opQuery,
	4: opMeta,
	5: opKeyField,
	6: opReach,
	7: opSnapshot,
}

// Response flag bits.
const flagNotFound = 1 << 0

// poolableCap is the largest buffer the codec pools keep. Snapshot frames
// can run to tens of megabytes; recycling those would pin the memory for the
// life of the pool, so oversized buffers are dropped to the collector.
const poolableCap = 1 << 20

// ---------------------------------------------------------------------------
// Encoder

// encoder serializes one frame into a reusable buffer. buf[0:4] is reserved
// for the length header so a finished frame is written with one syscall.
type encoder struct {
	buf    []byte
	tab    []string // intern table, mirrored by the decoder
	fields []string // scratch for deterministic field-name ordering
}

var encPool = sync.Pool{New: func() any { return &encoder{buf: make([]byte, 0, 512)} }}

func getEncoder() *encoder {
	e := encPool.Get().(*encoder)
	e.buf = append(e.buf[:0], 0, 0, 0, 0) // length header placeholder
	return e
}

func putEncoder(e *encoder) {
	if cap(e.buf) > poolableCap {
		return
	}
	// Drop the string references so pooled encoders don't pin payloads.
	for i := range e.tab {
		e.tab[i] = ""
	}
	e.tab = e.tab[:0]
	for i := range e.fields {
		e.fields[i] = ""
	}
	e.fields = e.fields[:0]
	encPool.Put(e)
}

func (e *encoder) u8(b byte)        { e.buf = append(e.buf, b) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) rawBytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) f64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// intern emits s as a 1-based back-reference when the frame already carries
// it, or as a literal (marker 0) that both sides append to their tables.
func (e *encoder) intern(s string) {
	for i, t := range e.tab {
		if t == s {
			e.uvarint(uint64(i + 1))
			return
		}
	}
	e.uvarint(0)
	e.str(s)
	if len(e.tab) < internCap {
		e.tab = append(e.tab, s)
	}
}

// sortedFields fills e.fields with m's keys in sorted order. Insertion sort:
// field maps are tiny and the scratch slice must not allocate per frame.
func (e *encoder) sortedFields(m map[string]string) {
	e.fields = e.fields[:0]
	for k := range m {
		e.fields = append(e.fields, k)
	}
	for i := 1; i < len(e.fields); i++ {
		for j := i; j > 0 && e.fields[j] < e.fields[j-1]; j-- {
			e.fields[j], e.fields[j-1] = e.fields[j-1], e.fields[j]
		}
	}
}

// frontStr emits s as (shared-prefix length with prev, suffix). Over a
// sorted key list — global keys share long "db.collection." prefixes — this
// elides most of every key after the first; the decoder rebuilds each key
// from its predecessor.
func (e *encoder) frontStr(prev, s string) {
	p := 0
	max := len(prev)
	if len(s) < max {
		max = len(s)
	}
	for p < max && prev[p] == s[p] {
		p++
	}
	e.uvarint(uint64(p))
	e.str(s[p:])
}

// finish stamps the length header and returns the complete frame, or a
// typed size violation naming the op.
func (e *encoder) finish(op string) ([]byte, error) {
	body := len(e.buf) - 4
	if body > maxFrame {
		return nil, &FrameTooLargeError{Op: op, Len: body}
	}
	binary.BigEndian.PutUint32(e.buf[:4], uint32(body))
	return e.buf, nil
}

// encodeRequest appends req in the fixed v2 layout. Every field of the
// request struct is encoded, in declaration order.
func (e *encoder) encodeRequest(req *request) error {
	code, ok := opCodes[req.Op]
	if !ok {
		return fmt.Errorf("wire: codec v2 cannot encode op %q", req.Op)
	}
	e.u8(binMagic)
	e.u8(code)
	e.uvarint(req.ID)
	e.intern(req.Collection)
	e.str(req.Key)
	e.uvarint(uint64(len(req.Keys)))
	for _, k := range req.Keys {
		e.str(k)
	}
	e.str(req.Query)
	e.intern(req.Database)
	e.uvarint(uint64(len(req.Probs)))
	for _, p := range req.Probs {
		e.f64(p)
	}
	e.str(req.Trace)
	e.varint(int64(req.Codec))
	e.uvarint(uint64(len(req.Frontier)))
	prev := ""
	for _, k := range req.Frontier {
		e.frontStr(prev, k)
		prev = k
	}
	return nil
}

// encodeDeltaRequest appends req as a codec-v3 compact reach frame: ID,
// trace, and the front-coded frontier with its parallel probs — nothing
// else. Only the reach op has a compact form (the magic byte itself names
// the op; a future compact op would claim its own magic); every other op
// stays on the generic v2 layout even on a v3 connection.
func (e *encoder) encodeDeltaRequest(req *request) error {
	if req.Op != opReach {
		return fmt.Errorf("wire: codec v3 has no compact frame for op %q", req.Op)
	}
	e.u8(binMagicDelta)
	e.uvarint(req.ID)
	// The frontier count carries a has-trace flag in its low bit: scatter
	// legs are untraced unless the query is sampled, so the common case
	// drops the empty trace string's length byte.
	head := uint64(len(req.Frontier)) << 1
	if req.Trace != "" {
		head |= 1
	}
	e.uvarint(head)
	if req.Trace != "" {
		e.str(req.Trace)
	}
	prev := ""
	for _, k := range req.Frontier {
		e.frontStr(prev, k)
		prev = k
	}
	for i := range req.Frontier {
		var p float64
		if i < len(req.Probs) {
			p = req.Probs[i]
		}
		e.f64(p)
	}
	return nil
}

// encodeDeltaResponse appends resp as a codec-v3 compact reach frame: ID,
// error, traversal stats and the front-coded hit list.
func (e *encoder) encodeDeltaResponse(resp *response) {
	e.u8(binMagicDelta)
	e.uvarint(resp.ID)
	// Like the request's trace, the hit count carries a has-error flag in
	// its low bit so the healthy path drops the empty string's length byte.
	head := uint64(len(resp.DHits)) << 1
	if resp.Error != "" {
		head |= 1
	}
	e.uvarint(head)
	if resp.Error != "" {
		e.str(resp.Error)
	}
	// Traversal stats are counts, never negative: uvarint keeps the common
	// 64..127 range in one byte where zigzag varints would need two.
	e.uvarint(uint64(resp.Nodes))
	e.uvarint(uint64(resp.Edges))
	prev := ""
	for _, h := range resp.DHits {
		e.frontStr(prev, h.Key)
		e.f64(h.Prob)
		prev = h.Key
	}
}

// encodeResponse appends resp in the fixed v2 layout. The object list is
// where interning pays: databases, collections and field names repeat across
// a batch and are shipped once per frame.
func (e *encoder) encodeResponse(resp *response) {
	e.u8(binMagic)
	e.uvarint(resp.ID)
	var flags byte
	if resp.NotFound {
		flags |= flagNotFound
	}
	e.u8(flags)
	e.str(resp.Error)
	e.uvarint(uint64(len(resp.Objects)))
	for i := range resp.Objects {
		o := &resp.Objects[i]
		e.intern(o.Database)
		e.intern(o.Collection)
		e.str(o.Key)
		// Field maps use a count+1 scheme so the nil/empty distinction the
		// JSON codec makes ("fields" has no omitempty) survives round trips.
		if o.Fields == nil {
			e.uvarint(0)
		} else {
			e.uvarint(uint64(len(o.Fields)) + 1)
			e.sortedFields(o.Fields)
			for _, name := range e.fields {
				e.intern(name)
				e.str(o.Fields[name])
			}
		}
	}
	e.str(resp.Name)
	e.varint(int64(resp.Kind))
	e.uvarint(uint64(len(resp.Collections)))
	for _, c := range resp.Collections {
		e.str(c)
	}
	e.str(resp.KeyField)
	e.uvarint(uint64(len(resp.Hits)))
	for _, h := range resp.Hits {
		e.str(h.Key)
		e.f64(h.Prob)
	}
	e.varint(int64(resp.Nodes))
	e.varint(int64(resp.Edges))
	e.rawBytes(resp.Snapshot)
	e.uvarint(resp.Epoch)
	e.varint(int64(resp.Codec))
	e.uvarint(uint64(len(resp.DHits)))
	prev := ""
	for _, h := range resp.DHits {
		e.frontStr(prev, h.Key)
		e.f64(h.Prob)
		prev = h.Key
	}
}

// ---------------------------------------------------------------------------
// Decoder

// decoder scans one frame body held as a string: every decoded string is a
// zero-copy substring, so the body's single string conversion is the only
// string allocation a frame costs.
type decoder struct {
	s   string
	off int
	tab []string
}

var decPool = sync.Pool{New: func() any { return new(decoder) }}

func getDecoder(body string) *decoder {
	d := decPool.Get().(*decoder)
	d.s = body
	d.off = 0
	return d
}

func putDecoder(d *decoder) {
	d.s = ""
	for i := range d.tab {
		d.tab[i] = ""
	}
	d.tab = d.tab[:0]
	decPool.Put(d)
}

var (
	errShortFrame     = errors.New("wire: truncated codec-v2 frame")
	errVarintOverflow = errors.New("wire: codec-v2 varint overflow")
	errTrailingBytes  = errors.New("wire: trailing bytes after codec-v2 frame")
	errInternRange    = errors.New("wire: codec-v2 intern reference out of range")
	errFrontPrefix    = errors.New("wire: codec-v2 front-coded prefix exceeds previous key")
)

func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.s) {
		return 0, errShortFrame
	}
	b := d.s[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if d.off >= len(d.s) {
			return 0, errShortFrame
		}
		b := d.s[d.off]
		d.off++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, errVarintOverflow
}

func (d *decoder) varint() (int64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(u >> 1)
	if u&1 != 0 {
		x = ^x
	}
	return x, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.s)-d.off) {
		return "", errShortFrame
	}
	s := d.s[d.off : d.off+int(n)]
	d.off += int(n)
	return s, nil
}

// rawBytes decodes a length-prefixed byte field. Unlike strings, the result
// must be a mutable copy (zero-length decodes to nil, matching omitempty).
func (d *decoder) rawBytes() ([]byte, error) {
	s, err := d.str()
	if err != nil || len(s) == 0 {
		return nil, err
	}
	return []byte(s), nil
}

func (d *decoder) f64() (float64, error) {
	if len(d.s)-d.off < 8 {
		return 0, errShortFrame
	}
	s := d.s[d.off : d.off+8] // little-endian, read in place: no []byte copy
	d.off += 8
	bits := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
	return math.Float64frombits(bits), nil
}

func (d *decoder) intern() (string, error) {
	v, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if v == 0 {
		s, err := d.str()
		if err != nil {
			return "", err
		}
		if len(d.tab) < internCap {
			d.tab = append(d.tab, s)
		}
		return s, nil
	}
	if v > uint64(len(d.tab)) {
		return "", errInternRange
	}
	return d.tab[v-1], nil
}

// frontStr decodes one front-coded string: the shared-prefix length against
// the previous element, then the suffix. A prefix claim longer than the
// previous key marks a corrupted frame. Keys with a nonzero prefix cost one
// concatenation; the first key of a list is still a zero-copy substring.
func (d *decoder) frontStr(prev string) (string, error) {
	p, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if p > uint64(len(prev)) {
		return "", errFrontPrefix
	}
	suffix, err := d.str()
	if err != nil {
		return "", err
	}
	if p == 0 {
		return suffix, nil
	}
	return prev[:p] + suffix, nil
}

// count reads an element count and rejects any claim the remaining bytes
// cannot possibly hold (minSize is the smallest encoding of one element), so
// a corrupted frame can never trigger a giant allocation.
func (d *decoder) count(minSize int) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64((len(d.s)-d.off)/minSize) {
		return 0, errShortFrame
	}
	return int(n), nil
}

// sliceCap bounds an eagerly pre-sized result slice; validated counts above
// it grow by append.
const sliceCap = 4096

// decodeRequestV2 parses a codec-v2 request body. The result matches what a
// JSON round trip of the same struct produces field for field (empty slices
// decode to nil like omitempty does), which is what the equivalence
// properties pin.
func decodeRequestV2(body string, req *request) error {
	if len(body) == 0 || body[0] != binMagic {
		return fmt.Errorf("wire: not a codec-v2 frame")
	}
	d := getDecoder(body)
	defer putDecoder(d)
	d.off = 1
	*req = request{}
	code, err := d.u8()
	if err != nil {
		return err
	}
	if int(code) >= len(opNames) || opNames[code] == "" {
		return fmt.Errorf("wire: codec-v2 frame with unknown op code %d", code)
	}
	req.Op = opNames[code]
	if req.ID, err = d.uvarint(); err != nil {
		return err
	}
	if req.Collection, err = d.intern(); err != nil {
		return err
	}
	if req.Key, err = d.str(); err != nil {
		return err
	}
	nkeys, err := d.count(1)
	if err != nil {
		return err
	}
	if nkeys > 0 {
		keys := make([]string, 0, min(nkeys, sliceCap))
		for i := 0; i < nkeys; i++ {
			k, err := d.str()
			if err != nil {
				return err
			}
			keys = append(keys, k)
		}
		req.Keys = keys
	}
	if req.Query, err = d.str(); err != nil {
		return err
	}
	if req.Database, err = d.intern(); err != nil {
		return err
	}
	nprobs, err := d.count(8)
	if err != nil {
		return err
	}
	if nprobs > 0 {
		probs := make([]float64, 0, min(nprobs, sliceCap))
		for i := 0; i < nprobs; i++ {
			p, err := d.f64()
			if err != nil {
				return err
			}
			probs = append(probs, p)
		}
		req.Probs = probs
	}
	if req.Trace, err = d.str(); err != nil {
		return err
	}
	codecField, err := d.varint()
	if err != nil {
		return err
	}
	req.Codec = int(codecField)
	nfront, err := d.count(2)
	if err != nil {
		return err
	}
	if nfront > 0 {
		frontier := make([]string, 0, min(nfront, sliceCap))
		prev := ""
		for i := 0; i < nfront; i++ {
			k, err := d.frontStr(prev)
			if err != nil {
				return err
			}
			frontier = append(frontier, k)
			prev = k
		}
		req.Frontier = frontier
	}
	if d.off != len(d.s) {
		return errTrailingBytes
	}
	return nil
}

// decodeDeltaRequest parses a codec-v3 compact reach frame into the same
// request struct the generic decoders fill, so the server dispatch path is
// codec-blind.
func decodeDeltaRequest(body string, req *request) error {
	if len(body) == 0 || body[0] != binMagicDelta {
		return fmt.Errorf("wire: not a codec-v3 frame")
	}
	d := getDecoder(body)
	defer putDecoder(d)
	d.off = 1
	*req = request{}
	req.Op = opReach
	var err error
	if req.ID, err = d.uvarint(); err != nil {
		return err
	}
	head, err := d.uvarint()
	if err != nil {
		return err
	}
	if head&1 != 0 {
		if req.Trace, err = d.str(); err != nil {
			return err
		}
	}
	// Min element size 10: a front-coded key (prefix uvarint + suffix
	// length) plus its 8-byte prob in the parallel block — the same sanity
	// bound count() applies, checked by hand because of the flag bit.
	n := int(head >> 1)
	if n > (len(d.s)-d.off)/10 {
		return errShortFrame
	}
	if n > 0 {
		frontier := make([]string, 0, min(n, sliceCap))
		prev := ""
		for i := 0; i < n; i++ {
			k, err := d.frontStr(prev)
			if err != nil {
				return err
			}
			frontier = append(frontier, k)
			prev = k
		}
		probs := make([]float64, 0, min(n, sliceCap))
		for i := 0; i < n; i++ {
			p, err := d.f64()
			if err != nil {
				return err
			}
			probs = append(probs, p)
		}
		req.Frontier = frontier
		req.Probs = probs
	}
	if d.off != len(d.s) {
		return errTrailingBytes
	}
	return nil
}

// decodeDeltaResponse parses a codec-v3 compact reach response.
func decodeDeltaResponse(body string, resp *response) error {
	if len(body) == 0 || body[0] != binMagicDelta {
		return fmt.Errorf("wire: not a codec-v3 frame")
	}
	d := getDecoder(body)
	defer putDecoder(d)
	d.off = 1
	*resp = response{}
	var err error
	if resp.ID, err = d.uvarint(); err != nil {
		return err
	}
	head, err := d.uvarint()
	if err != nil {
		return err
	}
	if head&1 != 0 {
		if resp.Error, err = d.str(); err != nil {
			return err
		}
	}
	nodes, err := d.uvarint()
	if err != nil {
		return err
	}
	resp.Nodes = int(nodes)
	edges, err := d.uvarint()
	if err != nil {
		return err
	}
	resp.Edges = int(edges)
	// Same 10-byte-per-hit sanity bound as the request, checked by hand
	// because of the flag bit.
	ndhits := int(head >> 1)
	if ndhits > (len(d.s)-d.off)/10 {
		return errShortFrame
	}
	if ndhits > 0 {
		dhits := make([]RemoteHit, 0, min(ndhits, sliceCap))
		prev := ""
		for i := 0; i < ndhits; i++ {
			var h RemoteHit
			if h.Key, err = d.frontStr(prev); err != nil {
				return err
			}
			if h.Prob, err = d.f64(); err != nil {
				return err
			}
			dhits = append(dhits, h)
			prev = h.Key
		}
		resp.DHits = dhits
	}
	if d.off != len(d.s) {
		return errTrailingBytes
	}
	return nil
}

// decodeResponseV2 parses a codec-v2 response body with the same JSON-
// equivalent semantics as decodeRequestV2.
func decodeResponseV2(body string, resp *response) error {
	if len(body) == 0 || body[0] != binMagic {
		return fmt.Errorf("wire: not a codec-v2 frame")
	}
	d := getDecoder(body)
	defer putDecoder(d)
	d.off = 1
	*resp = response{}
	var err error
	if resp.ID, err = d.uvarint(); err != nil {
		return err
	}
	flags, err := d.u8()
	if err != nil {
		return err
	}
	resp.NotFound = flags&flagNotFound != 0
	if resp.Error, err = d.str(); err != nil {
		return err
	}
	nobjs, err := d.count(4)
	if err != nil {
		return err
	}
	if nobjs > 0 {
		objs := make([]wireObject, 0, min(nobjs, sliceCap))
		for i := 0; i < nobjs; i++ {
			var o wireObject
			if o.Database, err = d.intern(); err != nil {
				return err
			}
			if o.Collection, err = d.intern(); err != nil {
				return err
			}
			if o.Key, err = d.str(); err != nil {
				return err
			}
			nf, err := d.count(1)
			if err != nil {
				return err
			}
			if nf > 0 { // count+1 scheme: 0 is a nil map
				o.Fields = make(map[string]string, nf-1)
				for j := 0; j < nf-1; j++ {
					name, err := d.intern()
					if err != nil {
						return err
					}
					val, err := d.str()
					if err != nil {
						return err
					}
					o.Fields[name] = val
				}
			}
			objs = append(objs, o)
		}
		resp.Objects = objs
	}
	if resp.Name, err = d.str(); err != nil {
		return err
	}
	kind, err := d.varint()
	if err != nil {
		return err
	}
	resp.Kind = int(kind)
	ncols, err := d.count(1)
	if err != nil {
		return err
	}
	if ncols > 0 {
		cols := make([]string, 0, min(ncols, sliceCap))
		for i := 0; i < ncols; i++ {
			c, err := d.str()
			if err != nil {
				return err
			}
			cols = append(cols, c)
		}
		resp.Collections = cols
	}
	if resp.KeyField, err = d.str(); err != nil {
		return err
	}
	nhits, err := d.count(9)
	if err != nil {
		return err
	}
	if nhits > 0 {
		hits := make([]RemoteHit, 0, min(nhits, sliceCap))
		for i := 0; i < nhits; i++ {
			var h RemoteHit
			if h.Key, err = d.str(); err != nil {
				return err
			}
			if h.Prob, err = d.f64(); err != nil {
				return err
			}
			hits = append(hits, h)
		}
		resp.Hits = hits
	}
	nodes, err := d.varint()
	if err != nil {
		return err
	}
	resp.Nodes = int(nodes)
	edges, err := d.varint()
	if err != nil {
		return err
	}
	resp.Edges = int(edges)
	if resp.Snapshot, err = d.rawBytes(); err != nil {
		return err
	}
	if resp.Epoch, err = d.uvarint(); err != nil {
		return err
	}
	codecField, err := d.varint()
	if err != nil {
		return err
	}
	resp.Codec = int(codecField)
	ndhits, err := d.count(10)
	if err != nil {
		return err
	}
	if ndhits > 0 {
		dhits := make([]RemoteHit, 0, min(ndhits, sliceCap))
		prev := ""
		for i := 0; i < ndhits; i++ {
			var h RemoteHit
			if h.Key, err = d.frontStr(prev); err != nil {
				return err
			}
			if h.Prob, err = d.f64(); err != nil {
				return err
			}
			dhits = append(dhits, h)
			prev = h.Key
		}
		resp.DHits = dhits
	}
	if d.off != len(d.s) {
		return errTrailingBytes
	}
	return nil
}
