package wire

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"

	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/telemetry"
)

// Client is a core.Store backed by a remote wire server. It keeps a small
// pool of TCP connections so that concurrent augmenter goroutines can issue
// parallel round trips.
type Client struct {
	addr        string
	pool        chan net.Conn
	name        string
	kind        core.StoreKind
	collections []string
	roundTrips  atomic.Uint64
	closed      atomic.Bool
}

// DefaultPoolSize is the connection-pool capacity of Dial.
const DefaultPoolSize = 16

// Dial connects to a wire server and fetches the store's metadata.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr, pool: make(chan net.Conn, DefaultPoolSize)}
	resp, err := c.roundTrip(context.Background(), request{Op: opMeta})
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	c.name = resp.Name
	c.kind = core.StoreKind(resp.Kind)
	c.collections = resp.Collections
	return c, nil
}

// Close drops the pooled connections. In-flight requests complete on their
// own connections and are then discarded.
func (c *Client) Close() {
	c.closed.Store(true)
	for {
		select {
		case conn := <-c.pool:
			conn.Close()
		default:
			return
		}
	}
}

// Name returns the remote store's name.
func (c *Client) Name() string { return c.name }

// Kind returns the remote store's kind.
func (c *Client) Kind() core.StoreKind { return c.kind }

// Collections returns the remote store's collections as of Dial time.
func (c *Client) Collections() []string { return c.collections }

// RoundTrips returns the number of requests issued by this client.
func (c *Client) RoundTrips() uint64 { return c.roundTrips.Load() }

func (c *Client) getConn() (net.Conn, error) {
	select {
	case conn := <-c.pool:
		return conn, nil
	default:
		return net.Dial("tcp", c.addr)
	}
}

func (c *Client) putConn(conn net.Conn) {
	if c.closed.Load() {
		conn.Close()
		return
	}
	select {
	case c.pool <- conn:
	default:
		conn.Close()
	}
}

func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	c.roundTrips.Add(1)
	start := telemetry.Now()
	resp, sent, received, err := c.doRoundTrip(req)
	clientHists[req.Op].Since(start)
	if err != nil {
		if ec := clientErrs[req.Op]; ec != nil {
			ec.Inc()
		}
	}
	if rec := explain.FromContext(ctx); rec != nil {
		rec.WireBytes(sent, received)
	}
	return resp, err
}

func (c *Client) doRoundTrip(req request) (response, int, int, error) {
	conn, err := c.getConn()
	if err != nil {
		return response{}, 0, 0, err
	}
	var resp response
	sent, err := writeFrame(conn, req)
	if err != nil {
		conn.Close()
		return response{}, sent, 0, err
	}
	received, err := readFrame(conn, &resp)
	if err != nil {
		conn.Close()
		return response{}, sent, received, err
	}
	c.putConn(conn)
	if resp.Error != "" {
		return response{}, sent, received, fmt.Errorf("wire: remote error: %s", resp.Error)
	}
	return resp, sent, received, nil
}

// Get retrieves one object from the remote store.
func (c *Client) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGet, Collection: collection, Key: key})
	if err != nil {
		return core.Object{}, err
	}
	if resp.NotFound || len(resp.Objects) == 0 {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.name, collection, key, core.ErrNotFound)
	}
	return fromWire(resp.Objects[0]), nil
}

// GetBatch retrieves many objects in one remote round trip.
func (c *Client) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGetBatch, Collection: collection, Keys: keys})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}

// KeyField resolves the identifier field of a remote collection, so the
// augmentation validator can rewrite queries against wire-backed stores.
func (c *Client) KeyField(collection string) (string, error) {
	resp, err := c.roundTrip(context.Background(), request{Op: opKeyField, Collection: collection})
	if err != nil {
		return "", err
	}
	return resp.KeyField, nil
}

// Query executes a native-language query on the remote store.
func (c *Client) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opQuery, Query: query})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}
