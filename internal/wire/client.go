package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/telemetry"
)

// ErrClosed is returned by requests issued after Close.
var ErrClosed = errors.New("wire: client closed")

// remoteError is a reply the server produced deliberately: the round trip
// itself succeeded, so retrying would just replay the same failure.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "wire: remote error: " + e.msg }

// Client is a core.Store backed by a remote wire server. It keeps a small
// pool of TCP connections so that concurrent augmenter goroutines can issue
// parallel round trips, and retries transport failures of idempotent ops
// under its RetryPolicy with a deadline on every attempt.
type Client struct {
	addr        string
	pool        chan net.Conn
	name        string
	kind        core.StoreKind
	collections []string
	roundTrips  atomic.Uint64
	retries     atomic.Uint64
	closed      atomic.Bool
	retrier     *resilience.Retrier
}

// DefaultPoolSize is the connection-pool capacity of Dial.
const DefaultPoolSize = 16

// ClientConfig tunes a Client's resilience behaviour.
type ClientConfig struct {
	// Retry governs transport-failure retries and per-attempt deadlines. The
	// zero value selects resilience defaults; MaxAttempts 1 disables retries.
	Retry resilience.RetryPolicy
}

// Dial connects to a wire server with the default retry policy.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{Retry: resilience.DefaultRetryPolicy()})
}

// DialConfig connects to a wire server and fetches the store's metadata.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{
		addr:    addr,
		pool:    make(chan net.Conn, DefaultPoolSize),
		retrier: resilience.NewRetrier(cfg.Retry),
	}
	resp, err := c.roundTrip(context.Background(), request{Op: opMeta})
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	c.name = resp.Name
	c.kind = core.StoreKind(resp.Kind)
	c.collections = resp.Collections
	return c, nil
}

// SetSleep overrides the backoff sleeper (tests inject a recorder).
func (c *Client) SetSleep(fn func(time.Duration)) { c.retrier.SetSleep(fn) }

// Close drops the pooled connections and fails further requests fast with
// ErrClosed. In-flight requests complete on their own connections, which are
// then discarded (putConn re-checks closed after depositing, so a connection
// racing Close never lingers in the pool).
func (c *Client) Close() {
	c.closed.Store(true)
	c.drainPool()
}

func (c *Client) drainPool() {
	for {
		select {
		case conn := <-c.pool:
			conn.Close()
		default:
			return
		}
	}
}

// Name returns the remote store's name.
func (c *Client) Name() string { return c.name }

// Kind returns the remote store's kind.
func (c *Client) Kind() core.StoreKind { return c.kind }

// Collections returns the remote store's collections as of Dial time.
func (c *Client) Collections() []string { return c.collections }

// RoundTrips returns the number of requests issued by this client.
func (c *Client) RoundTrips() uint64 { return c.roundTrips.Load() }

// Retries returns the number of attempts beyond the first across all
// requests.
func (c *Client) Retries() uint64 { return c.retries.Load() }

func (c *Client) getConn() (net.Conn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case conn := <-c.pool:
		return conn, nil
	default:
		return net.Dial("tcp", c.addr)
	}
}

func (c *Client) putConn(conn net.Conn) {
	if c.closed.Load() {
		conn.Close()
		return
	}
	select {
	case c.pool <- conn:
		// Close may have drained the pool between the check above and the
		// deposit; re-check and drain so the connection cannot leak.
		if c.closed.Load() {
			c.drainPool()
		}
	default:
		conn.Close()
	}
}

// retryableOp marks the idempotent ops: a replayed read returns the same
// answer, so a transport failure is safe to retry.
func retryableOp(op string) bool {
	switch op {
	case opMeta, opGet, opGetBatch, opQuery:
		return true
	}
	return false
}

// transient reports whether a round-trip failure may clear on a fresh
// connection. Remote errors are deliberate replies; a closed client stays
// closed.
func transient(err error) bool {
	var re *remoteError
	return err != nil && !errors.As(err, &re) && !errors.Is(err, ErrClosed)
}

func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	c.roundTrips.Add(1)
	start := telemetry.Now()
	resp, sent, received, err := c.doRoundTrip(req)
	if err != nil && retryableOp(req.Op) {
		// Inlined retry loop (rather than Retrier.Do) so the no-fault path
		// above stays allocation-free: no closure, no context wrapping.
		for attempt := 1; attempt < c.retrier.Policy().MaxAttempts && transient(err) && ctx.Err() == nil; attempt++ {
			d := c.retrier.Backoff(attempt)
			if rec := explain.FromContext(ctx); rec != nil {
				rec.WireRetry(c.name, req.Op, attempt, d, err)
			}
			c.retries.Add(1)
			clientRetries[req.Op].Inc()
			c.retrier.Sleep(d)
			var s, r int
			resp, s, r, err = c.doRoundTrip(req)
			sent += s
			received += r
		}
	}
	clientHists[req.Op].Since(start)
	if err != nil {
		if ec := clientErrs[req.Op]; ec != nil {
			ec.Inc()
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			clientTimeouts[req.Op].Inc()
		}
	}
	if rec := explain.FromContext(ctx); rec != nil {
		rec.WireBytes(sent, received)
	}
	return resp, err
}

func (c *Client) doRoundTrip(req request) (response, int, int, error) {
	conn, err := c.getConn()
	if err != nil {
		return response{}, 0, 0, err
	}
	if t := c.retrier.Policy().AttemptTimeout; t > 0 {
		conn.SetDeadline(time.Now().Add(t))
	}
	var resp response
	sent, err := writeFrame(conn, req)
	if err != nil {
		conn.Close()
		return response{}, sent, 0, err
	}
	received, err := readFrame(conn, &resp)
	if err != nil {
		conn.Close()
		return response{}, sent, received, err
	}
	if c.retrier.Policy().AttemptTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	c.putConn(conn)
	if resp.Error != "" {
		return response{}, sent, received, &remoteError{msg: resp.Error}
	}
	return resp, sent, received, nil
}

// Get retrieves one object from the remote store.
func (c *Client) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGet, Collection: collection, Key: key})
	if err != nil {
		return core.Object{}, err
	}
	if resp.NotFound || len(resp.Objects) == 0 {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.name, collection, key, core.ErrNotFound)
	}
	return fromWire(resp.Objects[0]), nil
}

// GetBatch retrieves many objects in one remote round trip.
func (c *Client) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGetBatch, Collection: collection, Keys: keys})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}

// KeyField resolves the identifier field of a remote collection, so the
// augmentation validator can rewrite queries against wire-backed stores.
func (c *Client) KeyField(collection string) (string, error) {
	resp, err := c.roundTrip(context.Background(), request{Op: opKeyField, Collection: collection})
	if err != nil {
		return "", err
	}
	return resp.KeyField, nil
}

// Query executes a native-language query on the remote store.
func (c *Client) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opQuery, Query: query})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}
