package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/telemetry"
)

// ErrClosed is returned by requests issued after Close.
var ErrClosed = errors.New("wire: client closed")

// errConnBroken marks an attempt that raced a connection's death between
// pick-up and registration; it is transient, so the retry loop redials.
var errConnBroken = errors.New("wire: connection broken")

// remoteError is a reply the server produced deliberately: the round trip
// itself succeeded, so retrying would just replay the same failure.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "wire: remote error: " + e.msg }

// Client is a core.Store backed by a remote wire server. Requests are
// multiplexed: each of the PoolSize TCP connections carries any number of
// in-flight frames tagged with IDs, demuxed by a per-connection reader, so
// concurrent augmenter goroutines share connections instead of convoying on
// a checkout pool. Concurrent Gets against one collection additionally
// aggregate into single getbatch frames (see groupGet). Transport failures
// of idempotent ops are retried per logical request under the RetryPolicy.
type Client struct {
	addr        string
	name        string
	kind        core.StoreKind
	collections []string
	roundTrips  atomic.Uint64 // logical requests issued by callers
	frames      atomic.Uint64 // physical request frames written
	retries     atomic.Uint64
	// Per-direction byte tallies of reach ops only (headers included): the
	// delta-frontier bytes-on-wire measurement needs scatter traffic isolated
	// from get/getbatch fetches sharing the same client.
	reachSent     atomic.Uint64
	reachReceived atomic.Uint64
	nextID        atomic.Uint64
	closed        atomic.Bool
	codec         atomic.Uint32 // negotiated frame codec (codecJSON until meta agrees on v2)
	retrier       *resilience.Retrier

	poolSize  int
	plainKeys bool          // ClientConfig.PlainKeys: never use the Frontier field
	rr        atomic.Uint64 // round-robin cursor over conns
	connMu    sync.Mutex
	conns     []*muxConn // lazily dialed; slots replaced when dead

	gmu       sync.Mutex
	getQueues map[string]*getQueue // natural get-batching, keyed by collection
}

// DefaultPoolSize is the connection cap used when ClientConfig.PoolSize is
// zero. Multiplexing means a few connections go a long way; the default
// mainly spreads demux work across readers.
const DefaultPoolSize = 16

// Codec selection for ClientConfig. The default (auto) negotiates the binary
// v2 codec and falls back to JSON against old servers; CodecJSON pins the
// connection to JSON v1 (the A/B baseline and the escape hatch).
const (
	CodecAuto   = ""
	CodecJSON   = "json"
	CodecBinary = "binary" // explicit form of auto: negotiate v2 when the server has it
)

// ClientConfig tunes a Client's resilience and connection behaviour.
type ClientConfig struct {
	// Retry governs transport-failure retries and per-attempt deadlines. The
	// zero value selects resilience defaults; MaxAttempts 1 disables retries.
	Retry resilience.RetryPolicy
	// PoolSize caps the multiplexed TCP connections requests are spread
	// over. Every connection carries any number of in-flight frames, so this
	// trades demux parallelism against file descriptors. 0 selects
	// DefaultPoolSize.
	PoolSize int
	// Codec selects the frame codec: CodecAuto/CodecBinary negotiate v2 per
	// connection (falling back to JSON against old servers), CodecJSON pins
	// JSON. Anything else fails Dial.
	Codec string
	// PlainKeys ships reach frontiers as plain string lists even on binary
	// connections, bypassing the front-coded Frontier field. The scatter-
	// bytes bench uses it as the LEGACY series to price the delta encoding;
	// production clients leave it false.
	PlainKeys bool
}

// Dial connects to a wire server with the default configuration.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{Retry: resilience.DefaultRetryPolicy()})
}

// DialConfig connects to a wire server and fetches the store's metadata.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	c := &Client{
		addr:      addr,
		poolSize:  cfg.PoolSize,
		plainKeys: cfg.PlainKeys,
		conns:     make([]*muxConn, cfg.PoolSize),
		retrier:   resilience.NewRetrier(cfg.Retry),
		getQueues: map[string]*getQueue{},
	}
	c.codec.Store(codecJSON)
	// The meta exchange doubles as codec negotiation: offer v2 (in a JSON
	// frame, so any server can read it) and switch to binary only when the
	// server confirms. A legacy server omits the echo and JSON sticks.
	offer := 0
	switch cfg.Codec {
	case CodecAuto, CodecBinary:
		offer = codecDelta
	case CodecJSON:
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want %q, %q or %q)", cfg.Codec, CodecAuto, CodecJSON, CodecBinary)
	}
	resp, err := c.roundTrip(context.Background(), request{Op: opMeta, Codec: offer})
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	c.name = resp.Name
	c.kind = core.StoreKind(resp.Kind)
	c.collections = resp.Collections
	if offer >= codecBinary && resp.Codec >= codecBinary {
		c.codec.Store(uint32(min(resp.Codec, offer)))
	}
	return c, nil
}

// Codec reports the negotiated frame codec, "json" or "binary" (binary
// covers both the v2 layout and the v3 compact reach frames).
func (c *Client) Codec() string {
	if c.codec.Load() >= codecBinary {
		return CodecBinary
	}
	return CodecJSON
}

// SetSleep overrides the backoff sleeper (tests inject a recorder).
func (c *Client) SetSleep(fn func(time.Duration)) { c.retrier.SetSleep(fn) }

// Close tears down the connections and fails further requests fast with
// ErrClosed. In-flight requests fail with ErrClosed too (not transient, so
// they do not retry); callers racing Close see a clean, final error.
func (c *Client) Close() {
	c.closed.Store(true)
	c.connMu.Lock()
	conns := make([]*muxConn, 0, len(c.conns))
	for i, mc := range c.conns {
		if mc != nil {
			conns = append(conns, mc)
			c.conns[i] = nil
		}
	}
	c.connMu.Unlock()
	for _, mc := range conns {
		mc.kill(ErrClosed)
	}
}

// Name returns the remote store's name.
func (c *Client) Name() string { return c.name }

// Kind returns the remote store's kind.
func (c *Client) Kind() core.StoreKind { return c.kind }

// Collections returns the remote store's collections as of Dial time.
func (c *Client) Collections() []string { return c.collections }

// RoundTrips returns the number of logical requests issued by this client's
// callers. With multiplexed batching several logical requests may share one
// frame; Frames reports the physical count.
func (c *Client) RoundTrips() uint64 { return c.roundTrips.Load() }

// Frames returns the number of request frames actually written to the wire.
func (c *Client) Frames() uint64 { return c.frames.Load() }

// Retries returns the number of attempts beyond the first across all
// requests.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// conn picks the next connection round-robin, dialing a replacement when the
// slot is empty or its connection has died.
func (c *Client) conn() (*muxConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	i := int(c.rr.Add(1) % uint64(c.poolSize))
	c.connMu.Lock()
	if mc := c.conns[i]; mc != nil && !mc.isDead() {
		c.connMu.Unlock()
		return mc, nil
	}
	c.connMu.Unlock()
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	mc := newMuxConn(nc, c.retrier.Policy().AttemptTimeout)
	c.connMu.Lock()
	if c.closed.Load() {
		c.connMu.Unlock()
		mc.kill(ErrClosed)
		return nil, ErrClosed
	}
	if old := c.conns[i]; old != nil && !old.isDead() {
		// Another goroutine repaired the slot first; ride its connection.
		c.connMu.Unlock()
		mc.kill(errConnBroken)
		return old, nil
	}
	c.conns[i] = mc
	c.connMu.Unlock()
	return mc, nil
}

// retryableOp marks the idempotent ops: a replayed read returns the same
// answer, so a transport failure is safe to retry. The cluster ops qualify
// too — a frontier expansion and a snapshot fetch are pure reads.
func retryableOp(op string) bool {
	switch op {
	case opMeta, opGet, opGetBatch, opQuery, opKeyField, opReach, opSnapshot:
		return true
	}
	return false
}

// transient reports whether a round-trip failure may clear on a fresh
// connection. Remote errors are deliberate replies; a closed client stays
// closed; an oversized frame is the same size on every attempt, so retrying
// it can never succeed.
func transient(err error) bool {
	var re *remoteError
	return err != nil && !errors.As(err, &re) &&
		!errors.Is(err, ErrClosed) && !errors.Is(err, ErrFrameTooLarge)
}

func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	c.roundTrips.Add(1)
	start := telemetry.Now()
	// Trace only when the caller is already inside a span: the hot path with
	// tracing disabled (or an untraced caller) takes zero extra allocations.
	var sp *telemetry.Span
	sctx := ctx
	if telemetry.SpanFromContext(ctx) != nil {
		sctx, sp = telemetry.StartSpan(ctx, "wire."+req.Op)
		sp.SetAttr("store", c.name)
		req.Trace = sp.TraceParent()
	}
	resp, sent, received, err := c.attempt(req)
	if err != nil && retryableOp(req.Op) {
		// Inlined retry loop (rather than Retrier.Do) so the no-fault path
		// above stays allocation-free: no closure, no context wrapping.
		for attempt := 1; attempt < c.retrier.Policy().MaxAttempts && transient(err) && ctx.Err() == nil; attempt++ {
			d := c.retrier.Backoff(attempt)
			if rec := explain.FromContext(ctx); rec != nil {
				rec.WireRetry(c.name, req.Op, attempt, d, err)
			}
			c.retries.Add(1)
			clientRetries[req.Op].Inc()
			c.retrier.Sleep(d)
			var rsp *telemetry.Span
			if sp != nil {
				sp.Mark(telemetry.FlagRetry)
				_, rsp = telemetry.StartSpan(sctx, "wire.retry")
				rsp.SetAttr("attempt", strconv.Itoa(attempt))
				// The server segment of a retried attempt hangs off the
				// attempt span, so the trace shows which attempt paid.
				req.Trace = rsp.TraceParent()
			}
			var s, r int
			resp, s, r, err = c.attempt(req)
			if rsp != nil {
				if err != nil {
					rsp.SetAttr("error", err.Error())
				}
				rsp.AddBytes(int64(s), int64(r))
				rsp.End()
			}
			sent += s
			received += r
		}
	}
	clientHists[req.Op].Since(start)
	if sent > 0 || received > 0 {
		clientBytesOut[req.Op].Add(uint64(sent))
		clientBytesIn[req.Op].Add(uint64(received))
		if req.Op == opReach {
			c.reachSent.Add(uint64(sent))
			c.reachReceived.Add(uint64(received))
		}
	}
	if err != nil {
		if ec := clientErrs[req.Op]; ec != nil {
			ec.Inc()
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			clientTimeouts[req.Op].Inc()
		}
	}
	if rec := explain.FromContext(ctx); rec != nil {
		rec.WireBytes(sent, received)
	}
	if sp != nil {
		sp.AddBytes(int64(sent), int64(received))
		if err != nil {
			sp.Mark(telemetry.FlagError)
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return resp, err
}

// attempt performs one physical round trip: tag the request with a fresh
// frame ID, register a waiter, write the frame on a multiplexed connection
// and block until the demux reader delivers the matching response (or the
// connection dies — the liveness watchdog bounds the wait when the policy
// sets an AttemptTimeout).
func (c *Client) attempt(req request) (response, int, int, error) {
	mc, err := c.conn()
	if err != nil {
		return response{}, 0, 0, err
	}
	id := c.nextID.Add(1)
	req.ID = id
	ch := getWireChan()
	if !mc.register(id, ch) {
		putWireChan(ch)
		if c.closed.Load() {
			return response{}, 0, 0, ErrClosed
		}
		return response{}, 0, 0, errConnBroken
	}
	sent, err := mc.send(req, uint8(c.codec.Load()))
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			// The frame never hit the wire and the connection is intact; only
			// this waiter needs unwinding. Non-retryable by construction.
			mc.unregister(id)
			putWireChan(ch)
			return response{}, 0, 0, err
		}
		// send killed the connection; every waiter, ours included, has been
		// failed. Drain our delivery so the channel can be recycled.
		<-ch
		putWireChan(ch)
		if c.closed.Load() {
			err = ErrClosed
		}
		return response{}, sent, 0, err
	}
	c.frames.Add(1)
	if fc := clientFrames[req.Op]; fc != nil {
		fc.Inc()
	}
	r := <-ch
	putWireChan(ch)
	if r.err != nil {
		if c.closed.Load() {
			r.err = ErrClosed
		}
		return response{}, sent, r.received, r.err
	}
	if r.resp.Error != "" {
		return response{}, sent, r.received, &remoteError{msg: r.resp.Error}
	}
	return r.resp, sent, r.received, nil
}

// wireResult is one demuxed delivery: the matched response or the error that
// killed its connection.
type wireResult struct {
	resp     response
	received int
	err      error
}

// wireChans recycles waiter channels so the per-attempt rendezvous does not
// allocate in steady state. A channel is recycled only by the goroutine that
// consumed its single delivery, so a pooled channel is always empty.
var wireChans = sync.Pool{New: func() any { return make(chan wireResult, 1) }}

func getWireChan() chan wireResult   { return wireChans.Get().(chan wireResult) }
func putWireChan(ch chan wireResult) { wireChans.Put(ch) }

// muxConn is one multiplexed connection: a write mutex serializes outgoing
// frames, a reader goroutine demuxes responses to waiters by frame ID, and a
// read-deadline watchdog (armed whenever frames are in flight) converts a
// stalled server into a timeout that fails all in-flight requests so each
// can retry on a fresh connection — the mux equivalent of the old
// per-attempt SetDeadline.
type muxConn struct {
	c       net.Conn
	timeout time.Duration // liveness watchdog; 0 disables

	wmu sync.Mutex // serializes writeFrame

	mu      sync.Mutex
	pending map[uint64]chan wireResult
	dead    bool
}

func newMuxConn(c net.Conn, timeout time.Duration) *muxConn {
	mc := &muxConn{c: c, timeout: timeout, pending: map[uint64]chan wireResult{}}
	go mc.readLoop()
	return mc
}

func (mc *muxConn) isDead() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

// register parks a waiter for frame id and arms the watchdog. It reports
// false when the connection died first (the caller redials).
func (mc *muxConn) register(id uint64, ch chan wireResult) bool {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return false
	}
	mc.pending[id] = ch
	if mc.timeout > 0 {
		mc.c.SetReadDeadline(time.Now().Add(mc.timeout))
	}
	mc.mu.Unlock()
	return true
}

// send writes one frame in the given codec. A write failure kills the
// connection (failing every in-flight waiter, the caller's included) — except
// a size violation, which is detected before any bytes hit the wire and
// leaves the connection usable for everyone else.
func (mc *muxConn) send(req request, codec uint8) (int, error) {
	mc.wmu.Lock()
	n, err := writeRequestFrame(mc.c, &req, codec)
	mc.wmu.Unlock()
	if err != nil && !errors.Is(err, ErrFrameTooLarge) {
		mc.kill(err)
	}
	return n, err
}

// unregister withdraws a waiter whose frame never reached the wire, disarming
// the watchdog if it was the only one in flight.
func (mc *muxConn) unregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	if mc.timeout > 0 && !mc.dead && len(mc.pending) == 0 {
		mc.c.SetReadDeadline(time.Time{})
	}
	mc.mu.Unlock()
}

// kill closes the connection and fails every in-flight waiter with err.
// Idempotent; later deliveries find no waiters and are dropped.
func (mc *muxConn) kill(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	pending := mc.pending
	mc.pending = nil
	mc.mu.Unlock()
	mc.c.Close()
	for _, ch := range pending {
		ch <- wireResult{err: err}
	}
}

// readLoop demuxes response frames to their waiters until the connection
// dies. After each delivery the watchdog is re-armed while frames remain in
// flight and disarmed when the connection goes idle, under the same mutex
// registration uses so the two can never disagree.
func (mc *muxConn) readLoop() {
	for {
		var resp response
		n, _, err := readResponseFrame(mc.c, &resp)
		if err != nil {
			mc.kill(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[resp.ID]
		if ok {
			delete(mc.pending, resp.ID)
		}
		if mc.timeout > 0 && !mc.dead {
			if len(mc.pending) > 0 {
				mc.c.SetReadDeadline(time.Now().Add(mc.timeout))
			} else {
				mc.c.SetReadDeadline(time.Time{})
			}
		}
		mc.mu.Unlock()
		if ok {
			ch <- wireResult{resp: resp, received: n}
		}
		// A response with no waiter (abandoned request, or a legacy server
		// echoing ID 0) is dropped; the watchdog or the caller's retry
		// handles the fallout.
	}
}

// getQueue is the natural-batching state of one collection: whether a get
// flight is in the air, and the waiters that arrived while it was.
type getQueue struct {
	busy    bool
	waiters []*getWaiter
}

// getWaiter is one logical Get waiting to fly or to be served by a flight.
type getWaiter struct {
	key string
	ch  chan getOutcome // buffered (1): flights never block on delivery
}

// getOutcome is what a waiter receives: its object (or authoritative
// absence), a flight failure to retry, or — batch non-nil — leadership of
// the next flight, drained queue attached. Served members also receive the
// identity of the leader's flight span so their own trace links to the frame
// that actually carried their answer.
type getOutcome struct {
	obj   core.Object
	found bool
	err   error
	batch []*getWaiter

	ltid telemetry.TraceID // leader flight span identity (zero when untraced)
	lsid telemetry.SpanID
}

// submitGet enrolls w for collection. When no flight is in the air the
// caller becomes leader of a solo flight; otherwise it queues behind the
// current one and will be batched into the next.
func (c *Client) submitGet(collection string, w *getWaiter) (lead bool, batch []*getWaiter) {
	c.gmu.Lock()
	q := c.getQueues[collection]
	if q == nil {
		q = &getQueue{}
		c.getQueues[collection] = q
	}
	if !q.busy {
		q.busy = true
		c.gmu.Unlock()
		return true, []*getWaiter{w}
	}
	q.waiters = append(q.waiters, w)
	c.gmu.Unlock()
	return false, nil
}

// releaseGetLeadership ends a flight: if waiters queued up behind it they
// become the next batch, leadership handed to the first of them; otherwise
// the collection goes idle.
func (c *Client) releaseGetLeadership(collection string) {
	c.gmu.Lock()
	q := c.getQueues[collection]
	if len(q.waiters) == 0 {
		q.busy = false
		c.gmu.Unlock()
		return
	}
	batch := q.waiters
	q.waiters = nil
	c.gmu.Unlock()
	batch[0].ch <- getOutcome{batch: batch}
}

// abandonGet withdraws w (caller's context died) and reports whether it was
// still queued. False means a flight already drained it: a delivery — maybe
// a leadership handover — is imminent on w.ch and must be consumed.
func (c *Client) abandonGet(collection string, w *getWaiter) bool {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	q := c.getQueues[collection]
	for i, m := range q.waiters {
		if m == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// flyGetBatch performs one flight for the batch (batch[0] is the caller):
// one get frame for a single key, one getbatch frame for several. The
// results are distributed to every member; leadership is released first so
// the next batch takes off while this one fans out. A member whose key came
// back empty gets an authoritative not-found, mirroring solo-get semantics.
func (c *Client) flyGetBatch(ctx context.Context, collection string, batch []*getWaiter) getOutcome {
	var req request
	if len(batch) == 1 {
		req = request{Op: opGet, Collection: collection, Key: batch[0].key}
	} else {
		keys := make([]string, 0, len(batch))
		seen := make(map[string]struct{}, len(batch))
		for _, m := range batch {
			if _, dup := seen[m.key]; !dup {
				seen[m.key] = struct{}{}
				keys = append(keys, m.key)
			}
		}
		if len(keys) == 1 {
			req = request{Op: opGet, Collection: collection, Key: keys[0]}
		} else {
			req = request{Op: opGetBatch, Collection: collection, Keys: keys}
		}
	}
	// The leader's flight span covers the shared frame; members that were
	// served by it link to this span from their own traces.
	var sp *telemetry.Span
	if telemetry.SpanFromContext(ctx) != nil {
		_, sp = telemetry.StartSpan(ctx, "wire."+req.Op)
		sp.SetAttr("store", c.name)
		sp.SetAttr("collection", collection)
		if len(batch) > 1 {
			sp.SetAttr("batched", strconv.Itoa(len(batch)))
		}
		req.Trace = sp.TraceParent()
	}
	resp, sent, received, err := c.attempt(req)
	if rec := explain.FromContext(ctx); rec != nil {
		rec.WireBytes(sent, received)
	}
	if sp != nil {
		sp.AddBytes(int64(sent), int64(received))
		if err != nil {
			sp.Mark(telemetry.FlagError)
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	c.releaseGetLeadership(collection)

	var found map[string]core.Object
	if err == nil && req.Op == opGetBatch {
		found = make(map[string]core.Object, len(resp.Objects))
		for _, wo := range resp.Objects {
			found[wo.Key] = fromWire(wo)
		}
	}
	ltid, lsid := sp.TraceID(), sp.SpanID()
	outcomeFor := func(m *getWaiter) getOutcome {
		if err != nil {
			return getOutcome{err: err, ltid: ltid, lsid: lsid}
		}
		if req.Op == opGet {
			if resp.NotFound || len(resp.Objects) == 0 {
				return getOutcome{ltid: ltid, lsid: lsid}
			}
			return getOutcome{obj: fromWire(resp.Objects[0]), found: true, ltid: ltid, lsid: lsid}
		}
		obj, ok := found[m.key]
		return getOutcome{obj: obj, found: ok, ltid: ltid, lsid: lsid}
	}
	for _, m := range batch[1:] {
		m.ch <- outcomeFor(m)
	}
	return outcomeFor(batch[0])
}

// groupGet resolves one logical Get through the natural-batching machinery,
// retrying transport failures per logical request (each member of a failed
// batch re-submits under its own retry budget, so the PR-level retry,
// breaker and deadline semantics hold per request, not per frame). A leader
// whose own context died still flies its batch — bounded by the attempt
// watchdog — so innocent members are not poisoned, then returns its own
// context error.
func (c *Client) groupGet(ctx context.Context, collection, key string) (core.Object, bool, error) {
	w := &getWaiter{key: key, ch: make(chan getOutcome, 1)}
	for attempt := 0; ; attempt++ {
		var out getOutcome
		if lead, batch := c.submitGet(collection, w); lead {
			out = c.flyGetBatch(ctx, collection, batch)
		} else {
			select {
			case r := <-w.ch:
				if r.batch != nil {
					out = c.flyGetBatch(ctx, collection, r.batch)
				} else {
					out = r
					// Served by another goroutine's flight: link our span to
					// the leader's flight span so the shared frame is visible
					// from this trace too.
					if r.lsid != 0 {
						telemetry.SpanFromContext(ctx).AddLink(r.ltid, r.lsid)
					}
				}
			case <-ctx.Done():
				if c.abandonGet(collection, w) {
					return core.Object{}, false, ctx.Err()
				}
				if r := <-w.ch; r.batch != nil {
					c.flyGetBatch(ctx, collection, r.batch)
				}
				return core.Object{}, false, ctx.Err()
			}
		}
		if out.err == nil {
			return out.obj, out.found, nil
		}
		if attempt+1 >= c.retrier.Policy().MaxAttempts || !transient(out.err) || ctx.Err() != nil {
			return core.Object{}, false, out.err
		}
		d := c.retrier.Backoff(attempt + 1)
		if rec := explain.FromContext(ctx); rec != nil {
			rec.WireRetry(c.name, opGet, attempt+1, d, out.err)
		}
		if psp := telemetry.SpanFromContext(ctx); psp != nil {
			psp.Mark(telemetry.FlagRetry)
			_, rsp := telemetry.StartSpan(ctx, "wire.retry")
			rsp.SetAttr("attempt", strconv.Itoa(attempt+1))
			rsp.SetAttr("error", out.err.Error())
			c.retries.Add(1)
			clientRetries[opGet].Inc()
			c.retrier.Sleep(d)
			rsp.End()
			continue
		}
		c.retries.Add(1)
		clientRetries[opGet].Inc()
		c.retrier.Sleep(d)
	}
}

// Get retrieves one object from the remote store. Concurrent Gets against
// the same collection aggregate into shared getbatch frames.
func (c *Client) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	c.roundTrips.Add(1)
	start := telemetry.Now()
	obj, found, err := c.groupGet(ctx, collection, key)
	clientHists[opGet].Since(start)
	if err != nil {
		clientErrs[opGet].Inc()
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			clientTimeouts[opGet].Inc()
		}
		return core.Object{}, err
	}
	if !found {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", c.name, collection, key, core.ErrNotFound)
	}
	return obj, nil
}

// GetBatch retrieves many objects in one remote round trip.
func (c *Client) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGetBatch, Collection: collection, Keys: keys})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}

// KeyField resolves the identifier field of a remote collection, so the
// augmentation validator can rewrite queries against wire-backed stores. The
// caller's context bounds the round trip like any data operation.
func (c *Client) KeyField(ctx context.Context, collection string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	resp, err := c.roundTrip(ctx, request{Op: opKeyField, Collection: collection})
	if err != nil {
		return "", err
	}
	return resp.KeyField, nil
}

// GetDB retrieves one object from a cluster peer that shards several
// databases behind one listener, routing by database name. Missing keys
// return core.ErrNotFound like Get does.
func (c *Client) GetDB(ctx context.Context, database, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGet, Database: database, Collection: collection, Key: key})
	if err != nil {
		return core.Object{}, err
	}
	if resp.NotFound || len(resp.Objects) == 0 {
		return core.Object{}, fmt.Errorf("%s.%s.%s: %w", database, collection, key, core.ErrNotFound)
	}
	return fromWire(resp.Objects[0]), nil
}

// GetBatchDB retrieves many objects of one database's collection from a
// cluster peer in a single round trip. Like GetBatch, missing keys are
// silently absent from the result.
func (c *Client) GetBatchDB(ctx context.Context, database, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opGetBatch, Database: database, Collection: collection, Keys: keys})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}

// ExpandFrontier asks the peer to expand a weighted key frontier one hop
// over its A' shard — the scatter leg of a distributed Reach. keys and probs
// are parallel; the returned hits carry the accumulated path probabilities.
//
// On a negotiated codec-v3 connection the keys travel in the front-coded
// Frontier field of a compact reach frame and the hits come back front-coded
// in DHits — sorted global keys share long "db.collection." prefixes, so
// this elides most key bytes, and the compact frame drops the generic
// layout's empty slots. Against v1 JSON and v2 binary peers the exchange
// stays on the plain Keys/Hits fields, which is what keeps mixed-codec
// clusters interoperating.
func (c *Client) ExpandFrontier(ctx context.Context, keys []string, probs []float64) ([]RemoteHit, ReachInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, ReachInfo{}, err
	}
	req := request{Op: opReach, Probs: probs}
	if c.codec.Load() >= codecDelta && !c.plainKeys {
		req.Frontier = keys
	} else {
		req.Keys = keys
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, ReachInfo{}, err
	}
	hits := resp.Hits
	if len(resp.DHits) > 0 {
		hits = resp.DHits
	}
	return hits, ReachInfo{Nodes: resp.Nodes, Edges: resp.Edges}, nil
}

// ReachBytes reports the cumulative wire bytes (headers included) this
// client's reach ops have moved, both directions. The scatter-bytes bench
// diffs it around a traversal to isolate frontier traffic from fetches.
func (c *Client) ReachBytes() (sent, received uint64) {
	return c.reachSent.Load(), c.reachReceived.Load()
}

// FetchSnapshot downloads the peer's epoch-stamped A' shard checkpoint, the
// bootstrap/rebalance payload a joining node loads with aindex.ReadSnapshot.
func (c *Client) FetchSnapshot(ctx context.Context) ([]byte, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opSnapshot})
	if err != nil {
		return nil, 0, err
	}
	return resp.Snapshot, resp.Epoch, nil
}

// Query executes a native-language query on the remote store.
func (c *Client) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, request{Op: opQuery, Query: query})
	if err != nil {
		return nil, err
	}
	out := make([]core.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		out[i] = fromWire(w)
	}
	return out, nil
}
