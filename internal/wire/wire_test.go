package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

var _ core.Store = (*Client)(nil)

func newServedKV(t *testing.T) (*Server, *Client) {
	t.Helper()
	db := kvstore.New("discount")
	db.Set("drop", "k1", "40%")
	db.Set("drop", "k2", "10%")
	db.Set("drop", "k3", "25%")
	srv, err := Serve(connector.NewKeyValue(db), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return srv, cli
}

func TestMetaOnDial(t *testing.T) {
	_, cli := newServedKV(t)
	if cli.Name() != "discount" || cli.Kind() != core.KindKeyValue {
		t.Errorf("meta: %s %v", cli.Name(), cli.Kind())
	}
	if cols := cli.Collections(); len(cols) != 1 || cols[0] != "drop" {
		t.Errorf("collections: %v", cols)
	}
}

func TestRemoteGet(t *testing.T) {
	_, cli := newServedKV(t)
	ctx := context.Background()
	o, err := cli.Get(ctx, "drop", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if o.GK.String() != "discount.drop.k1" || o.Fields[core.ValueField] != "40%" {
		t.Errorf("Get = %v", o)
	}
	if _, err := cli.Get(ctx, "drop", "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("remote miss = %v, want ErrNotFound", err)
	}
}

func TestRemoteGetBatchAndQuery(t *testing.T) {
	_, cli := newServedKV(t)
	ctx := context.Background()
	objs, err := cli.GetBatch(ctx, "drop", []string{"k3", "ghost", "k1"})
	if err != nil || len(objs) != 2 || objs[0].GK.Key != "k3" {
		t.Fatalf("GetBatch = %v, %v", objs, err)
	}
	objs, err = cli.Query(ctx, "SCAN drop")
	if err != nil || len(objs) != 3 {
		t.Fatalf("Query = %v, %v", objs, err)
	}
	if _, err := cli.Query(ctx, "BOGUS"); err == nil {
		t.Error("remote query error should propagate")
	}
}

func TestRemoteRelational(t *testing.T) {
	db := relstore.New("transactions")
	if _, err := db.Exec(`CREATE TABLE inventory (id TEXT PRIMARY KEY, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO inventory VALUES ('a32', 'Wish')`); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(connector.NewRelational(db), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	objs, err := cli.Query(context.Background(), `SELECT * FROM inventory WHERE name LIKE '%wish%'`)
	if err != nil || len(objs) != 1 || objs[0].GK.Key != "a32" {
		t.Errorf("remote SQL = %v, %v", objs, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, cli := newServedKV(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Get(ctx, "drop", "k1"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cli.RoundTrips() < 64 {
		t.Errorf("round trips = %d", cli.RoundTrips())
	}
}

func TestContextCancelled(t *testing.T) {
	_, cli := newServedKV(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cli.Get(ctx, "drop", "k1"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Get = %v", err)
	}
	if _, err := cli.GetBatch(ctx, "drop", []string{"k1"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled GetBatch = %v", err)
	}
	if _, err := cli.Query(ctx, "SCAN drop"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Query = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestServerClose(t *testing.T) {
	srv, cli := newServedKV(t)
	if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	cli.Close()
	// After close, new requests fail (the pool is drained and redial fails
	// or the conn is dead).
	if _, err := cli.Get(context.Background(), "drop", "k1"); err == nil {
		t.Error("Get after server close should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := request{Op: opGetBatch, Collection: "c", Keys: []string{"a", "b"}}
	for _, codec := range []uint8{codecJSON, codecBinary} {
		var buf bytes.Buffer
		wrote, err := writeRequestFrame(&buf, &in, codec)
		if err != nil {
			t.Fatal(err)
		}
		var out request
		read, gotCodec, err := readRequestFrame(&buf, &out)
		if err != nil {
			t.Fatal(err)
		}
		if wrote != read || wrote <= 4 {
			t.Errorf("codec %d frame byte counts: wrote %d, read %d", codec, wrote, read)
		}
		if gotCodec != codec {
			t.Errorf("sniffed codec = %d, want %d", gotCodec, codec)
		}
		if out.Op != in.Op || out.Collection != in.Collection || len(out.Keys) != 2 {
			t.Errorf("codec %d frame round trip = %+v", codec, out)
		}
	}
}

func TestFrameLimit(t *testing.T) {
	// A corrupted length header must be rejected, not allocated — with the
	// typed size violation every limit check shares.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out request
	_, _, err := readRequestFrame(&buf, &out)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame = %v, want ErrFrameTooLarge", err)
	}
	var tooBig *FrameTooLargeError
	if !errors.As(err, &tooBig) || tooBig.Len != 0xFFFFFFFF {
		t.Errorf("typed error = %#v, want Len 0xFFFFFFFF", tooBig)
	}
}

func TestUnknownOp(t *testing.T) {
	srv, _ := newServedKV(t)
	resp := srv.dispatch(context.Background(), request{Op: "bogus"})
	if resp.Error == "" {
		t.Error("unknown op should produce an error response")
	}
}

func TestClientSurvivesServerRestart(t *testing.T) {
	db := kvstore.New("discount")
	db.Set("drop", "k1", "40%")
	store := connector.NewKeyValue(db)
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address.
	srv.Close()
	srv2, err := Serve(store, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// The pooled connection is dead, so the first request may fail; the
	// client must recover on a subsequent attempt by dialing fresh.
	var got core.Object
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		got, lastErr = cli.Get(context.Background(), "drop", "k1")
		if lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("client did not recover after restart: %v", lastErr)
	}
	if got.Fields[core.ValueField] != "40%" {
		t.Errorf("recovered Get = %v", got)
	}
}

func TestServerToleratesGarbageFrames(t *testing.T) {
	_, cli := newServedKV(t)
	// Open a raw connection and send garbage: the server must drop the
	// connection without harming other clients.
	raw, err := net.Dial("tcp", cli.addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0x00, 0x00, 0x00, 0x04, 'j', 'u', 'n', 'k'})
	raw.Close()
	if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
		t.Errorf("healthy client affected by garbage frames: %v", err)
	}
}

// TestWireBytesRecorded verifies a client round trip attributes its frame
// sizes to the explain recorder on the context.
func TestWireBytesRecorded(t *testing.T) {
	_, cli := newServedKV(t)
	rctx, rec := explain.WithRecorder(context.Background(), "/search")
	if rec == nil {
		t.Fatal("no recorder (telemetry disabled?)")
	}
	if _, err := cli.Get(rctx, "drop", "k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.GetBatch(rctx, "drop", []string{"k1", "k2", "k3"}); err != nil {
		t.Fatal(err)
	}
	p := rec.Finish(4)
	// Two round trips, each at least a 4-byte header + JSON body per
	// direction.
	if p.Totals.BytesSent <= 16 || p.Totals.BytesReceived <= 16 {
		t.Errorf("wire bytes = %d sent / %d received", p.Totals.BytesSent, p.Totals.BytesReceived)
	}
	if p.Totals.BytesReceived <= p.Totals.BytesSent {
		t.Errorf("responses (%dB) should outweigh requests (%dB) here",
			p.Totals.BytesReceived, p.Totals.BytesSent)
	}

	// Without a recorder nothing panics and nothing is recorded anywhere.
	if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
		t.Fatal(err)
	}
}
