package wire

import (
	"context"
	"sync"
	"testing"
	"time"

	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/resilience"
	"quepa/internal/stores/kvstore"
)

// stallStore wraps a store and parks Gets against the "slow" collection
// until released, signalling when the first one has entered.
type stallStore struct {
	core.Store
	enterOnce sync.Once
	entered   chan struct{}
	release   chan struct{}
}

func (s *stallStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if collection == "slow" {
		s.enterOnce.Do(func() { close(s.entered) })
		<-s.release
	}
	return s.Store.Get(ctx, collection, key)
}

func muxPolicy() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 1, AttemptTimeout: 10 * time.Second}
}

// TestMuxOutOfOrderResponses is the multiplexing acceptance criterion: with
// a single TCP connection, a request issued second completes first while an
// earlier one is still being served, and when the slow response finally
// arrives it is demuxed to the right caller — the frame IDs, not arrival
// order, route responses.
func TestMuxOutOfOrderResponses(t *testing.T) {
	kv := kvstore.New("stall")
	kv.Set("slow", "k", "tortoise")
	kv.Set("fast", "k", "hare")
	st := &stallStore{Store: connector.NewKeyValue(kv), entered: make(chan struct{}), release: make(chan struct{})}
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialConfig(srv.Addr(), ClientConfig{Retry: muxPolicy(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	type result struct {
		obj core.Object
		err error
	}
	slowDone := make(chan result, 1)
	go func() {
		o, err := cli.Get(context.Background(), "slow", "k")
		slowDone <- result{o, err}
	}()
	<-st.entered // the slow frame is in the server, occupying the only conn

	fast, err := cli.Get(context.Background(), "fast", "k")
	if err != nil || fast.Fields[core.ValueField] != "hare" {
		t.Fatalf("fast Get behind the stalled one = %v, %v", fast, err)
	}
	select {
	case r := <-slowDone:
		t.Fatalf("slow Get completed before release: %v, %v", r.obj, r.err)
	default:
	}

	close(st.release)
	r := <-slowDone
	if r.err != nil || r.obj.Fields[core.ValueField] != "tortoise" {
		t.Fatalf("slow Get after release = %v, %v", r.obj, r.err)
	}

	// Both Gets (and the dial's meta) shared the one connection out of order.
	cli.connMu.Lock()
	live := 0
	for _, mc := range cli.conns {
		if mc != nil {
			live++
		}
	}
	cli.connMu.Unlock()
	if live != 1 {
		t.Errorf("PoolSize 1 client holds %d connections", live)
	}
	if f := cli.Frames(); f != 3 {
		t.Errorf("frames = %d, want 3 (meta + slow get + fast get)", f)
	}
}

// TestConcurrentGetsShareFrames pins the natural get-batching: while one Get
// of a collection is in flight, further Gets queue up and fly as a single
// getbatch frame, so N logical requests cost far fewer physical frames.
func TestConcurrentGetsShareFrames(t *testing.T) {
	kv := kvstore.New("stall")
	kv.Set("slow", "k", "leader")
	const members = 16
	for i := 0; i < members; i++ {
		kv.Set("slow", key(i), "v"+key(i))
	}
	st := &stallStore{Store: connector.NewKeyValue(kv), entered: make(chan struct{}), release: make(chan struct{})}
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialConfig(srv.Addr(), ClientConfig{Retry: muxPolicy(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	leaderDone := make(chan error, 1)
	go func() {
		_, err := cli.Get(context.Background(), "slow", "k")
		leaderDone <- err
	}()
	<-st.entered // leader's solo get frame is parked in the server

	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, err := cli.Get(context.Background(), "slow", key(i))
			if err != nil || o.Fields[core.ValueField] != "v"+key(i) {
				t.Errorf("member %d = %v, %v", i, o, err)
			}
		}(i)
	}
	// Wait until every member is queued behind the in-flight leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cli.gmu.Lock()
		q := cli.getQueues["slow"]
		queued := 0
		if q != nil {
			queued = len(q.waiters)
		}
		cli.gmu.Unlock()
		if queued == members {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d members queued", queued, members)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(st.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader Get = %v", err)
	}
	wg.Wait()

	// meta + the leader's solo get + one getbatch for all members.
	if f := cli.Frames(); f != 3 {
		t.Errorf("frames = %d, want 3 (meta + get + getbatch for %d members)", f, members)
	}
	if rt := cli.RoundTrips(); rt != members+2 {
		t.Errorf("round trips = %d, want %d (logical count is per caller)", rt, members+2)
	}
}

func key(i int) string { return "m" + string(rune('a'+i)) }

// BenchmarkMuxConcurrentGets drives many goroutines' Gets through one
// multiplexed client against a loopback server — the wire-level shape of a
// concurrent augmentation. Frame sharing and demux both show up in the
// ns/op and allocs/op here.
func BenchmarkMuxConcurrentGets(b *testing.B) {
	kv := kvstore.New("bench")
	const nkeys = 256
	keys := make([]string, nkeys)
	for i := 0; i < nkeys; i++ {
		keys[i] = "k" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		kv.Set("main", keys[i], "v")
	}
	srv, err := Serve(connector.NewKeyValue(kv), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialConfig(srv.Addr(), ClientConfig{Retry: muxPolicy(), PoolSize: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := cli.Get(ctx, "main", keys[i%nkeys]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
