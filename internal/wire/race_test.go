//go:build !race

package wire

// raceEnabled reports whether the race detector instruments this build. The
// allocation gates skip under -race: instrumentation inserts shadow-memory
// allocations the production binary never pays for, so the zero-alloc promise
// only holds (and is only meaningful) in a plain build.
const raceEnabled = false
