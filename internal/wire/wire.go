// Package wire exposes any core.Store over TCP so that a polystore can span
// machines, the way the paper's distributed deployment spreads its stores
// over EC2 regions. The protocol is deliberately simple: each request and
// response is one length-prefixed JSON frame (4-byte big-endian length
// followed by the JSON body).
//
// The Server wraps a store and serves any number of concurrent connections;
// the Client implements core.Store over a small connection pool so the
// concurrent augmenters can issue parallel round trips, just like native
// database drivers do.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// maxFrame bounds a single frame to guard against corrupted lengths.
const maxFrame = 64 << 20 // 64 MiB

// request ops.
const (
	opGet      = "get"
	opGetBatch = "getbatch"
	opQuery    = "query"
	opMeta     = "meta"
	opKeyField = "keyfield"
	// opReach expands a weighted key frontier one hop over the peer's A'
	// shard: the cluster coordinator's scatter-gather primitive.
	opReach = "reach"
	// opSnapshot ships the peer's epoch-stamped A' shard in the binary
	// checkpoint format, for shard bootstrap and ring rebalance.
	opSnapshot = "snapshot"
)

var wireOps = []string{opGet, opGetBatch, opQuery, opMeta, opKeyField, opReach, opSnapshot}

// Per-op client round-trip histograms and error counters, plus the server's
// request tally, resolved once at init so the RPC path does a single
// histogram observation per round trip.
var (
	clientHists    = map[string]*telemetry.Histogram{}
	clientErrs     = map[string]*telemetry.Counter{}
	clientRetries  = map[string]*telemetry.Counter{}
	clientTimeouts = map[string]*telemetry.Counter{}
	serverReqs     = map[string]*telemetry.Counter{}
	serverBadOps   *telemetry.Counter
)

func init() {
	for _, op := range wireOps {
		label := telemetry.L("op", op)
		clientHists[op] = telemetry.NewHistogram("quepa_wire_roundtrip_duration_seconds",
			"client-observed latency of wire RPC round trips", nil, label)
		clientErrs[op] = telemetry.NewCounter("quepa_wire_errors_total",
			"wire RPC round trips that failed (transport or remote error)", label)
		clientRetries[op] = telemetry.NewCounter("quepa_wire_retries_total",
			"wire RPC attempts beyond the first (transport failures retried)", label)
		clientTimeouts[op] = telemetry.NewCounter("quepa_wire_timeouts_total",
			"wire RPC round trips that exhausted the per-attempt deadline", label)
		serverReqs[op] = telemetry.NewCounter("quepa_wire_server_requests_total",
			"requests dispatched by wire servers", label)
	}
	serverBadOps = telemetry.NewCounter("quepa_wire_server_requests_total",
		"requests dispatched by wire servers", telemetry.L("op", "unknown"))
}

// clientFrames counts the frames clients actually put on the wire. With
// multiplexing and get-batching, this runs well below the logical request
// count (Client.RoundTrips); the gap is the traffic the overhaul saved.
var clientFrames = telemetry.NewCounter("quepa_wire_client_frames_total",
	"request frames written by wire clients (physical attempts, not logical requests)")

type request struct {
	// ID tags the frame for multiplexing: a non-zero ID tells the server it
	// may dispatch concurrently and reply out of order, echoing the ID on the
	// response. ID 0 selects the legacy one-at-a-time exchange, so old
	// clients keep working against new servers and vice versa (a server that
	// ignores IDs echoes ID 0, which a mux client treats as a broken conn and
	// retries sequentially-compatible ops on a fresh one).
	ID         uint64   `json:"id,omitempty"`
	Op         string   `json:"op"`
	Collection string   `json:"collection,omitempty"`
	Key        string   `json:"key,omitempty"`
	Keys       []string `json:"keys,omitempty"`
	Query      string   `json:"query,omitempty"`
	// Database routes get/getbatch on a cluster peer that serves several
	// databases behind one listener (a shard node). Empty selects the classic
	// single-store dispatch, so legacy clients and servers interoperate.
	Database string `json:"db,omitempty"`
	// Probs carries the frontier weights parallel to Keys for the reach op:
	// the best path probability accumulated at each frontier key so far.
	Probs []float64 `json:"probs,omitempty"`
	// Trace carries the caller's traceparent ("00-<trace>-<span>-01") so the
	// server continues the distributed trace. Optional: legacy peers ignore
	// the extra field, and an empty value means "untraced".
	Trace string `json:"tp,omitempty"`
}

type wireObject struct {
	Database   string            `json:"db"`
	Collection string            `json:"coll"`
	Key        string            `json:"key"`
	Fields     map[string]string `json:"fields"`
}

type response struct {
	// ID echoes the request's frame ID (0 on the legacy sequential path).
	ID          uint64       `json:"id,omitempty"`
	Objects     []wireObject `json:"objects,omitempty"`
	Error       string       `json:"error,omitempty"`
	NotFound    bool         `json:"notFound,omitempty"`
	Name        string       `json:"name,omitempty"`
	Kind        int          `json:"kind,omitempty"`
	Collections []string     `json:"collections,omitempty"`
	KeyField    string       `json:"keyField,omitempty"`
	// Hits answer a reach op: the one-hop expansion of the request frontier
	// over the peer's A' shard, deduplicated by max probability.
	Hits []RemoteHit `json:"hits,omitempty"`
	// Nodes and Edges report the traversal work of a reach op, so the
	// coordinator can attribute index effort to the profiled query.
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
	// Snapshot answers a snapshot op: the peer's A' shard in the binary
	// checkpoint format (base64 over JSON), stamped with its WAL epoch.
	Snapshot []byte `json:"snapshot,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// RemoteHit is one key produced by a frontier expansion on a remote shard:
// the key in its "db.coll.key" form and the best path probability through
// the expanded hop (source frontier weight times edge probability).
type RemoteHit struct {
	Key  string  `json:"k"`
	Prob float64 `json:"p"`
}

// ReachInfo reports the traversal work one frontier expansion performed.
type ReachInfo struct {
	Nodes int
	Edges int
}

func toWire(o core.Object) wireObject {
	return wireObject{
		Database:   o.GK.Database,
		Collection: o.GK.Collection,
		Key:        o.GK.Key,
		Fields:     o.Fields,
	}
}

func fromWire(w wireObject) core.Object {
	return core.NewObject(core.NewGlobalKey(w.Database, w.Collection, w.Key), w.Fields)
}

// writeFrame sends one length-prefixed JSON frame, returning the bytes put
// on the wire (header included) so the explain layer can account for them.
func writeFrame(w io.Writer, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("wire: encoding frame: %w", err)
	}
	if len(body) > maxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(body)))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(head) + len(body), nil
}

// readFrame receives one length-prefixed JSON frame into v, returning the
// bytes consumed (header included).
func readFrame(r io.Reader, v any) (int, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > maxFrame {
		return 0, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return 0, fmt.Errorf("wire: decoding frame: %w", err)
	}
	return len(head) + len(body), nil
}
