// Package wire exposes any core.Store over TCP so that a polystore can span
// machines, the way the paper's distributed deployment spreads its stores
// over EC2 regions. Each request and response is one length-prefixed frame
// (4-byte big-endian length followed by the body); the body is either a JSON
// document (codec v1, the compatibility format every server keeps accepting)
// or the compact binary encoding of codec v2 (see codec.go), negotiated per
// connection through the meta exchange.
//
// The Server wraps a store and serves any number of concurrent connections;
// the Client implements core.Store over a small connection pool so the
// concurrent augmenters can issue parallel round trips, just like native
// database drivers do.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// maxFrame bounds a single frame to guard against corrupted lengths (and
// against callers shipping unshippable payloads). A variable so the size-
// violation tests can shrink it; treat it as a constant everywhere else.
var maxFrame = 64 << 20 // 64 MiB

// ErrFrameTooLarge is the sentinel every frame-size violation matches via
// errors.Is. The concrete error is always a *FrameTooLargeError naming the
// offending length and, when known, the op.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// FrameTooLargeError reports a frame that violated maxFrame. The client
// treats it as non-retryable: a 64 MiB-overflow frame is the same size on
// every attempt, so retrying can never succeed.
type FrameTooLargeError struct {
	// Op is the operation whose frame overflowed ("" when the violation was
	// detected on an incoming length header, before any op is known).
	Op string
	// Len is the offending body length in bytes.
	Len int
}

func (e *FrameTooLargeError) Error() string {
	op := e.Op
	if op == "" {
		op = "incoming"
	}
	return fmt.Sprintf("wire: %s frame of %d bytes exceeds the %d-byte limit", op, e.Len, maxFrame)
}

func (e *FrameTooLargeError) Unwrap() error { return ErrFrameTooLarge }

// request ops.
const (
	opGet      = "get"
	opGetBatch = "getbatch"
	opQuery    = "query"
	opMeta     = "meta"
	opKeyField = "keyfield"
	// opReach expands a weighted key frontier one hop over the peer's A'
	// shard: the cluster coordinator's scatter-gather primitive.
	opReach = "reach"
	// opSnapshot ships the peer's epoch-stamped A' shard in the binary
	// checkpoint format, for shard bootstrap and ring rebalance.
	opSnapshot = "snapshot"
)

var wireOps = []string{opGet, opGetBatch, opQuery, opMeta, opKeyField, opReach, opSnapshot}

// Per-op client round-trip histograms and error counters, plus the server's
// request tally, resolved once at init so the RPC path does a single
// histogram observation per round trip.
var (
	clientHists    = map[string]*telemetry.Histogram{}
	clientErrs     = map[string]*telemetry.Counter{}
	clientRetries  = map[string]*telemetry.Counter{}
	clientTimeouts = map[string]*telemetry.Counter{}
	serverReqs     = map[string]*telemetry.Counter{}
	serverBadOps   *telemetry.Counter

	// clientFrames counts the frames clients actually put on the wire, per
	// op. With multiplexing and get-batching, this runs well below the
	// logical request count (Client.RoundTrips); the per-op breakdown is
	// what lets the frames-saved-vs-round-trips story be told per op.
	clientFrames = map[string]*telemetry.Counter{}

	// Per-op client byte accounting, both directions (headers included) — the
	// client-side counterpart of quepa_wire_server_bytes_total, broken down by
	// op so the delta-frontier savings show up as shrinking reach bytes.
	clientBytesOut = map[string]*telemetry.Counter{}
	clientBytesIn  = map[string]*telemetry.Counter{}
)

// Server-side byte accounting, both directions, across all connections.
var (
	serverBytesIn = telemetry.NewCounter("quepa_wire_server_bytes_total",
		"frame bytes moved by wire servers (headers included)", telemetry.L("dir", "in"))
	serverBytesOut = telemetry.NewCounter("quepa_wire_server_bytes_total",
		"frame bytes moved by wire servers (headers included)", telemetry.L("dir", "out"))
)

func init() {
	for _, op := range wireOps {
		label := telemetry.L("op", op)
		clientHists[op] = telemetry.NewHistogram("quepa_wire_roundtrip_duration_seconds",
			"client-observed latency of wire RPC round trips", nil, label)
		clientErrs[op] = telemetry.NewCounter("quepa_wire_errors_total",
			"wire RPC round trips that failed (transport or remote error)", label)
		clientRetries[op] = telemetry.NewCounter("quepa_wire_retries_total",
			"wire RPC attempts beyond the first (transport failures retried)", label)
		clientTimeouts[op] = telemetry.NewCounter("quepa_wire_timeouts_total",
			"wire RPC round trips that exhausted the per-attempt deadline", label)
		serverReqs[op] = telemetry.NewCounter("quepa_wire_server_requests_total",
			"requests dispatched by wire servers", label)
		clientFrames[op] = telemetry.NewCounter("quepa_wire_client_frames_total",
			"request frames written by wire clients (physical attempts, not logical requests)", label)
		clientBytesOut[op] = telemetry.NewCounter("quepa_wire_client_bytes_total",
			"frame bytes moved by wire clients (headers included)", label, telemetry.L("dir", "out"))
		clientBytesIn[op] = telemetry.NewCounter("quepa_wire_client_bytes_total",
			"frame bytes moved by wire clients (headers included)", label, telemetry.L("dir", "in"))
	}
	serverBadOps = telemetry.NewCounter("quepa_wire_server_requests_total",
		"requests dispatched by wire servers", telemetry.L("op", "unknown"))
}

type request struct {
	// ID tags the frame for multiplexing: a non-zero ID tells the server it
	// may dispatch concurrently and reply out of order, echoing the ID on the
	// response. ID 0 selects the legacy one-at-a-time exchange, so old
	// clients keep working against new servers and vice versa (a server that
	// ignores IDs echoes ID 0, which a mux client treats as a broken conn and
	// retries sequentially-compatible ops on a fresh one).
	ID         uint64   `json:"id,omitempty"`
	Op         string   `json:"op"`
	Collection string   `json:"collection,omitempty"`
	Key        string   `json:"key,omitempty"`
	Keys       []string `json:"keys,omitempty"`
	Query      string   `json:"query,omitempty"`
	// Database routes get/getbatch on a cluster peer that serves several
	// databases behind one listener (a shard node). Empty selects the classic
	// single-store dispatch, so legacy clients and servers interoperate.
	Database string `json:"db,omitempty"`
	// Probs carries the frontier weights parallel to Keys for the reach op:
	// the best path probability accumulated at each frontier key so far.
	Probs []float64 `json:"probs,omitempty"`
	// Trace carries the caller's traceparent ("00-<trace>-<span>-01") so the
	// server continues the distributed trace. Optional: legacy peers ignore
	// the extra field, and an empty value means "untraced".
	Trace string `json:"tp,omitempty"`
	// Codec offers the client's maximum frame codec on the meta exchange
	// (the codec-v2 negotiation). Legacy peers ignore it and omit the echo,
	// which pins the connection to JSON.
	Codec int `json:"codec,omitempty"`
	// Frontier is the delta-frontier form of a reach op: like Keys (parallel
	// to Probs), but sent only on codec-v2 connections, where the binary
	// layout front-codes the sorted key list (shared-prefix elision). The
	// pipelined coordinator ships only the keys a peer has not seen yet here;
	// v1 JSON peers keep receiving plain Keys.
	Frontier []string `json:"fr,omitempty"`
}

type wireObject struct {
	Database   string            `json:"db"`
	Collection string            `json:"coll"`
	Key        string            `json:"key"`
	Fields     map[string]string `json:"fields"`
}

type response struct {
	// ID echoes the request's frame ID (0 on the legacy sequential path).
	ID          uint64       `json:"id,omitempty"`
	Objects     []wireObject `json:"objects,omitempty"`
	Error       string       `json:"error,omitempty"`
	NotFound    bool         `json:"notFound,omitempty"`
	Name        string       `json:"name,omitempty"`
	Kind        int          `json:"kind,omitempty"`
	Collections []string     `json:"collections,omitempty"`
	KeyField    string       `json:"keyField,omitempty"`
	// Hits answer a reach op: the one-hop expansion of the request frontier
	// over the peer's A' shard, deduplicated by max probability.
	Hits []RemoteHit `json:"hits,omitempty"`
	// Nodes and Edges report the traversal work of a reach op, so the
	// coordinator can attribute index effort to the profiled query.
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
	// Snapshot answers a snapshot op: the peer's A' shard in the binary
	// checkpoint format (base64 over JSON), stamped with its WAL epoch.
	Snapshot []byte `json:"snapshot,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	// Codec echoes the agreed frame codec on the meta exchange: a v2 server
	// answering a client that offered codec 2 confirms it here, and the
	// client switches its frames to binary from the next request on.
	Codec int `json:"codec,omitempty"`
	// DHits answer a delta-frontier reach op (request.Frontier): the same
	// payload as Hits, but the binary layout front-codes the key-sorted hit
	// list the same way the request front-codes its frontier.
	DHits []RemoteHit `json:"dhits,omitempty"`
}

// RemoteHit is one key produced by a frontier expansion on a remote shard:
// the key in its "db.coll.key" form and the best path probability through
// the expanded hop (source frontier weight times edge probability).
type RemoteHit struct {
	Key  string  `json:"k"`
	Prob float64 `json:"p"`
}

// ReachInfo reports the traversal work one frontier expansion performed.
type ReachInfo struct {
	Nodes int
	Edges int
}

func toWire(o core.Object) wireObject {
	return wireObject{
		Database:   o.GK.Database,
		Collection: o.GK.Collection,
		Key:        o.GK.Key,
		Fields:     o.Fields,
	}
}

func fromWire(w wireObject) core.Object {
	return core.NewObject(core.NewGlobalKey(w.Database, w.Collection, w.Key), w.Fields)
}

// ---------------------------------------------------------------------------
// Frame I/O

// bodyBuf is a pooled frame read buffer. The pointer indirection keeps the
// pool from allocating a fresh interface box per Put.
type bodyBuf struct{ b []byte }

var bodyPool = sync.Pool{New: func() any { return &bodyBuf{b: make([]byte, 512)} }}

func getBody(n int) *bodyBuf {
	bb := bodyPool.Get().(*bodyBuf)
	if cap(bb.b) < n {
		bb.b = make([]byte, n)
	}
	bb.b = bb.b[:n]
	return bb
}

func putBody(bb *bodyBuf) {
	if cap(bb.b) > poolableCap {
		return
	}
	bodyPool.Put(bb)
}

// writeJSONFrame sends one length-prefixed JSON frame — the v1 codec,
// preserved byte for byte so legacy peers interoperate.
func writeJSONFrame(w io.Writer, v any, op string) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("wire: encoding frame: %w", err)
	}
	if len(body) > maxFrame {
		return 0, &FrameTooLargeError{Op: op, Len: len(body)}
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(body)))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(head) + len(body), nil
}

// writeRequestFrame sends req in the given codec, returning the bytes put on
// the wire (header included) so the explain layer can account for them.
// Binary frames serialize into a pooled buffer and go out in one Write.
func writeRequestFrame(w io.Writer, req *request, codec uint8) (int, error) {
	if codec < codecBinary {
		return writeJSONFrame(w, req, req.Op)
	}
	e := getEncoder()
	defer putEncoder(e)
	// On a v3 connection only delta reach traffic uses the compact frame;
	// every other op stays on the generic v2 layout.
	if codec >= codecDelta && req.Op == opReach && len(req.Frontier) > 0 {
		if err := e.encodeDeltaRequest(req); err != nil {
			return 0, err
		}
	} else if err := e.encodeRequest(req); err != nil {
		return 0, err
	}
	frame, err := e.finish(req.Op)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(frame)
	return n, err
}

// writeResponseFrame sends resp in the given codec; op names the dispatched
// operation in size-violation errors.
func writeResponseFrame(w io.Writer, resp *response, codec uint8, op string) (int, error) {
	if codec < codecBinary {
		return writeJSONFrame(w, resp, op)
	}
	e := getEncoder()
	defer putEncoder(e)
	// A request that arrived as a compact v3 reach frame is answered in
	// kind: the compact response carries exactly the fields a reach answer
	// uses (error, stats, hits).
	if codec >= codecDelta {
		e.encodeDeltaResponse(resp)
	} else {
		e.encodeResponse(resp)
	}
	frame, err := e.finish(op)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(frame)
	return n, err
}

// readFrameInto receives one length-prefixed frame and decodes it through
// decodeJSON/decodeBinary depending on the body's first byte. The body lands
// in a pooled buffer that is recycled before returning, so the decoders must
// copy what they keep (the binary decoders copy once into a string and slice
// it; encoding/json copies inherently).
func readFrameInto(r io.Reader, decodeJSON func([]byte) error, decodeBinary func(string) error) (int, uint8, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, 0, err
	}
	n := binary.BigEndian.Uint32(head[:])
	if int64(n) > int64(maxFrame) {
		return 0, 0, &FrameTooLargeError{Len: int(n)}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("wire: empty frame")
	}
	bb := getBody(int(n))
	defer putBody(bb)
	if _, err := io.ReadFull(r, bb.b); err != nil {
		return 0, 0, err
	}
	total := len(head) + int(n)
	switch bb.b[0] {
	case '{':
		if err := decodeJSON(bb.b); err != nil {
			return 0, codecJSON, fmt.Errorf("wire: decoding frame: %w", err)
		}
		return total, codecJSON, nil
	case binMagic:
		if err := decodeBinary(string(bb.b)); err != nil {
			return 0, codecBinary, fmt.Errorf("wire: decoding frame: %w", err)
		}
		return total, codecBinary, nil
	case binMagicDelta:
		if err := decodeBinary(string(bb.b)); err != nil {
			return 0, codecDelta, fmt.Errorf("wire: decoding frame: %w", err)
		}
		return total, codecDelta, nil
	default:
		return 0, 0, fmt.Errorf("wire: unknown frame codec byte 0x%02x", bb.b[0])
	}
}

// readRequestFrame receives one request frame, reporting the codec it
// arrived in so the server can answer in kind.
func readRequestFrame(r io.Reader, req *request) (int, uint8, error) {
	return readFrameInto(r,
		func(b []byte) error {
			*req = request{}
			return json.Unmarshal(b, req)
		},
		func(body string) error {
			if body[0] == binMagicDelta {
				return decodeDeltaRequest(body, req)
			}
			return decodeRequestV2(body, req)
		},
	)
}

// readResponseFrame receives one response frame in either codec.
func readResponseFrame(r io.Reader, resp *response) (int, uint8, error) {
	return readFrameInto(r,
		func(b []byte) error {
			*resp = response{}
			return json.Unmarshal(b, resp)
		},
		func(body string) error {
			if body[0] == binMagicDelta {
				return decodeDeltaResponse(body, resp)
			}
			return decodeResponseV2(body, resp)
		},
	)
}
