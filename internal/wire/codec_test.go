package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/stores/kvstore"
)

// ---------------------------------------------------------------------------
// JSON-equivalence properties: same struct in, equal structs out, both codecs.

// jsonRoundTripReq pushes req through the v1 codec and back.
func jsonRoundTripReq(t *testing.T, req *request) request {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("json encode: %v", err)
	}
	var out request
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	return out
}

func binRoundTripReq(t *testing.T, req *request) request {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeRequest(req); err != nil {
		t.Fatalf("binary encode: %v", err)
	}
	frame, err := e.finish(req.Op)
	if err != nil {
		t.Fatal(err)
	}
	var out request
	if err := decodeRequestV2(string(frame[4:]), &out); err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	return out
}

func jsonRoundTripResp(t *testing.T, resp *response) response {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("json encode: %v", err)
	}
	var out response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	return out
}

func binRoundTripResp(t *testing.T, resp *response) response {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	e.encodeResponse(resp)
	frame, err := e.finish("test")
	if err != nil {
		t.Fatal(err)
	}
	var out response
	if err := decodeResponseV2(string(frame[4:]), &out); err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	return out
}

// sanitizeFloats replaces non-finite values: the JSON codec cannot carry
// them at all (json.Marshal rejects NaN/Inf), so they are out of scope for
// the equivalence property. testing/quick does not generate them, but the
// guard keeps the property honest if that ever changes.
func sanitizeFloats(ps []float64) {
	for i, p := range ps {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			ps[i] = float64(i)
		}
	}
}

// TestQuickRequestEquivalence pins codec v2 to the JSON codec for every op:
// an arbitrary request must round-trip through both codecs to the same
// struct.
func TestQuickRequestEquivalence(t *testing.T) {
	for _, op := range wireOps {
		op := op
		t.Run(op, func(t *testing.T) {
			f := func(req request) bool {
				req.Op = op
				sanitizeFloats(req.Probs)
				viaJSON := jsonRoundTripReq(t, &req)
				viaBin := binRoundTripReq(t, &req)
				if !reflect.DeepEqual(viaJSON, viaBin) {
					t.Logf("json: %#v\nbin:  %#v", viaJSON, viaBin)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickResponseEquivalence is the response-side property, covering the
// object lists, hits, snapshot payloads and the nil/empty field-map split.
func TestQuickResponseEquivalence(t *testing.T) {
	f := func(resp response) bool {
		for i := range resp.Hits {
			if math.IsNaN(resp.Hits[i].Prob) || math.IsInf(resp.Hits[i].Prob, 0) {
				resp.Hits[i].Prob = float64(i)
			}
		}
		for i := range resp.DHits {
			if math.IsNaN(resp.DHits[i].Prob) || math.IsInf(resp.DHits[i].Prob, 0) {
				resp.DHits[i].Prob = float64(i)
			}
		}
		viaJSON := jsonRoundTripResp(t, &resp)
		viaBin := binRoundTripResp(t, &resp)
		if !reflect.DeepEqual(viaJSON, viaBin) {
			t.Logf("json: %#v\nbin:  %#v", viaJSON, viaBin)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNilEmptyFieldMap pins the one place the JSON codec distinguishes nil
// from empty: the "fields" object has no omitempty, so both states must
// survive codec v2 too.
func TestNilEmptyFieldMap(t *testing.T) {
	resp := response{Objects: []wireObject{
		{Database: "d", Collection: "c", Key: "nil-fields", Fields: nil},
		{Database: "d", Collection: "c", Key: "empty-fields", Fields: map[string]string{}},
		{Database: "d", Collection: "c", Key: "one-field", Fields: map[string]string{"v": "1"}},
	}}
	out := binRoundTripResp(t, &resp)
	if out.Objects[0].Fields != nil {
		t.Errorf("nil fields decoded to %#v", out.Objects[0].Fields)
	}
	if out.Objects[1].Fields == nil || len(out.Objects[1].Fields) != 0 {
		t.Errorf("empty fields decoded to %#v", out.Objects[1].Fields)
	}
	if out.Objects[2].Fields["v"] != "1" {
		t.Errorf("fields decoded to %#v", out.Objects[2].Fields)
	}
	if !reflect.DeepEqual(jsonRoundTripResp(t, &resp), out) {
		t.Error("codecs disagree on nil/empty field maps")
	}
}

// TestFrontCodedFrontier pins the shared-prefix elision of the delta-frontier
// fields: a sorted global-key list must round-trip exactly and encode smaller
// than the plain Keys form, and corrupt prefix claims must be rejected.
func TestFrontCodedFrontier(t *testing.T) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "warehouse.transactions.tx-" + strings.Repeat("0", 4) + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	front := &request{Op: opReach, Frontier: keys, Probs: make([]float64, len(keys))}
	plain := &request{Op: opReach, Keys: keys, Probs: make([]float64, len(keys))}
	out := binRoundTripReq(t, front)
	if !reflect.DeepEqual(out.Frontier, keys) {
		t.Fatalf("frontier round trip mangled keys: %v", out.Frontier)
	}
	fb, pb := encodeReqBody(t, front), encodeReqBody(t, plain)
	if len(fb) >= len(pb) {
		t.Errorf("front-coded frame (%d bytes) not smaller than plain keys (%d bytes)", len(fb), len(pb))
	}
	if !reflect.DeepEqual(jsonRoundTripReq(t, front), out) {
		t.Error("codecs disagree on the frontier field")
	}

	hits := make([]RemoteHit, len(keys))
	for i, k := range keys {
		hits[i] = RemoteHit{Key: k, Prob: 1 / float64(i+1)}
	}
	resp := &response{DHits: hits}
	rout := binRoundTripResp(t, resp)
	if !reflect.DeepEqual(rout.DHits, hits) {
		t.Fatalf("dhits round trip mangled hits")
	}

	// A prefix length exceeding the previous key is a corrupted frame, not a
	// panic or a bogus decode.
	body := encodeReqBody(t, &request{Op: opReach, Frontier: []string{"ab", "abc"}})
	// The last frontier element encodes as uvarint(2) "c"; flip the prefix
	// length to an impossible 9.
	idx := bytes.LastIndexByte(body, 2)
	if idx < 0 {
		t.Fatal("could not locate prefix byte")
	}
	body[idx] = 9
	var req request
	if err := decodeRequestV2(string(body), &req); !errors.Is(err, errFrontPrefix) && err == nil {
		t.Fatalf("corrupt prefix accepted: %v", err)
	}
}

// TestInternTableOverflow drives more distinct interned strings through one
// frame than the table holds, checking the encoder and decoder stay in
// lockstep past the cap.
func TestInternTableOverflow(t *testing.T) {
	objs := make([]wireObject, 3*internCap)
	for i := range objs {
		name := "db-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		objs[i] = wireObject{
			Database:   name,
			Collection: "coll-" + name,
			Key:        "k",
			Fields:     map[string]string{"f" + name: "v"},
		}
	}
	// Repeat the slice so back-references actually occur for early entries.
	objs = append(objs, objs...)
	resp := response{Objects: objs}
	if !reflect.DeepEqual(jsonRoundTripResp(t, &resp), binRoundTripResp(t, &resp)) {
		t.Error("codecs disagree past the intern cap")
	}
}

// ---------------------------------------------------------------------------
// Corruption tables: like the WAL's torn-write tables, but for frames.

func encodeReqBody(t *testing.T, req *request) []byte {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeRequest(req); err != nil {
		t.Fatal(err)
	}
	frame, err := e.finish(req.Op)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), frame[4:]...)
}

func encodeRespBody(t *testing.T, resp *response) []byte {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	e.encodeResponse(resp)
	frame, err := e.finish("test")
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), frame[4:]...)
}

func corruptionReq() *request {
	return &request{
		ID: 7, Op: opReach, Collection: "drop", Key: "k1",
		Keys: []string{"a", "bb", "ccc"}, Query: "SCAN drop",
		Database: "discount", Probs: []float64{0.5, 0.25, 1},
		Trace: "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		Codec: 2,
	}
}

func corruptionResp() *response {
	return &response{
		ID: 7, Objects: []wireObject{
			{Database: "d", Collection: "c", Key: "k1", Fields: map[string]string{"a": "1", "b": "2"}},
			{Database: "d", Collection: "c", Key: "k2", Fields: nil},
		},
		Name: "discount", Kind: 2, Collections: []string{"drop", "promo"},
		KeyField: "id", Hits: []RemoteHit{{Key: "d.c.k1", Prob: 0.5}},
		Nodes: 9, Edges: 4, Snapshot: []byte{1, 2, 3}, Epoch: 41, Codec: 2,
	}
}

// TestCorruptionTruncation: every strict prefix of a valid frame must be
// rejected — all fields are always encoded, so any cut lands mid-field or
// trips the trailing-bytes check.
func TestCorruptionTruncation(t *testing.T) {
	reqBody := encodeReqBody(t, corruptionReq())
	respBody := encodeRespBody(t, corruptionResp())
	for i := 0; i < len(reqBody); i++ {
		var out request
		if err := decodeRequestV2(string(reqBody[:i]), &out); err == nil {
			t.Fatalf("request truncated at %d/%d decoded without error", i, len(reqBody))
		}
	}
	for i := 0; i < len(respBody); i++ {
		var out response
		if err := decodeResponseV2(string(respBody[:i]), &out); err == nil {
			t.Fatalf("response truncated at %d/%d decoded without error", i, len(respBody))
		}
	}
}

// TestCorruptionBitFlips: flipping any single bit of a valid frame must never
// panic or over-allocate. (Frames carry no checksum — TCP does — so a flip
// may legally decode to different data; the property is memory safety.)
func TestCorruptionBitFlips(t *testing.T) {
	reqBody := encodeReqBody(t, corruptionReq())
	respBody := encodeRespBody(t, corruptionResp())
	for off := 0; off < len(reqBody); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), reqBody...)
			mut[off] ^= 1 << bit
			var out request
			decodeRequestV2(string(mut), &out) //nolint:errcheck // must not panic; error is legal
		}
	}
	for off := 0; off < len(respBody); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), respBody...)
			mut[off] ^= 1 << bit
			var out response
			decodeResponseV2(string(mut), &out) //nolint:errcheck // must not panic; error is legal
		}
	}
}

// TestCorruptionTrailingBytes: a frame with appended garbage must be
// rejected, not silently under-read.
func TestCorruptionTrailingBytes(t *testing.T) {
	reqBody := append(encodeReqBody(t, corruptionReq()), 0x00)
	var req request
	if err := decodeRequestV2(string(reqBody), &req); !errors.Is(err, errTrailingBytes) {
		t.Errorf("request with trailing byte = %v, want errTrailingBytes", err)
	}
	respBody := append(encodeRespBody(t, corruptionResp()), 0xFF)
	var resp response
	if err := decodeResponseV2(string(respBody), &resp); !errors.Is(err, errTrailingBytes) {
		t.Errorf("response with trailing byte = %v, want errTrailingBytes", err)
	}
}

// TestCorruptionRandomBodies throws random bytes at both decoders — the
// in-test complement of FuzzDecodeFrame.
func TestCorruptionRandomBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		body := make([]byte, rng.Intn(256))
		rng.Read(body)
		if len(body) > 0 && i%2 == 0 {
			body[0] = binMagic // steer half the cases past the magic check
		}
		var req request
		decodeRequestV2(string(body), &req) //nolint:errcheck // must not panic
		var resp response
		decodeResponseV2(string(body), &resp) //nolint:errcheck // must not panic
	}
}

// ---------------------------------------------------------------------------
// Allocation gates: the kill-switch numbers the tentpole promises.

// getbatchFixture builds the request and response of a representative
// getbatch exchange: 32 keys, 32 objects sharing one database/collection.
func getbatchFixture() (*request, *response) {
	keys := make([]string, 32)
	objs := make([]wireObject, 32)
	for i := range keys {
		keys[i] = "key-" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		objs[i] = wireObject{
			Database:   "discount",
			Collection: "drop",
			Key:        keys[i],
			Fields:     map[string]string{"value": "40%", "tier": "gold"},
		}
	}
	req := &request{ID: 3, Op: opGetBatch, Collection: "drop", Keys: keys}
	resp := &response{ID: 3, Objects: objs}
	return req, resp
}

// TestAllocGateBinaryEncode is the server-side promise: steady-state binary
// response encoding does zero codec allocations (pooled buffer, one Write).
func TestAllocGateBinaryEncode(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate is plain-build only")
	}
	_, resp := getbatchFixture()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := writeResponseFrame(io.Discard, resp, codecBinary, opGetBatch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("binary response encode = %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGateBinaryRequestEncode covers the client's write path the same
// way: the frame build itself must not allocate.
func TestAllocGateBinaryRequestEncode(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate is plain-build only")
	}
	req, _ := getbatchFixture()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := writeRequestFrame(io.Discard, req, codecBinary); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("binary request encode = %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGateGetBatchServerPath measures the full per-frame server cycle —
// read+decode the request, encode+write the response — in both codecs, and
// enforces the tentpole's ≥50% cut for codec v2.
func TestAllocGateGetBatchServerPath(t *testing.T) {
	req, resp := getbatchFixture()

	cycle := func(codec uint8) float64 {
		var frame bytes.Buffer
		if _, err := writeRequestFrame(&frame, req, codec); err != nil {
			t.Fatal(err)
		}
		raw := frame.Bytes()
		rd := bytes.NewReader(raw)
		return testing.AllocsPerRun(200, func() {
			rd.Reset(raw)
			var in request
			if _, _, err := readRequestFrame(rd, &in); err != nil {
				t.Fatal(err)
			}
			if _, err := writeResponseFrame(io.Discard, resp, codec, opGetBatch); err != nil {
				t.Fatal(err)
			}
		})
	}

	jsonAllocs := cycle(codecJSON)
	binAllocs := cycle(codecBinary)
	t.Logf("getbatch server path: json %.0f allocs/op, binary %.0f allocs/op", jsonAllocs, binAllocs)
	if binAllocs > jsonAllocs/2 {
		t.Errorf("binary getbatch server path = %.0f allocs/op, want <= half of JSON's %.0f", binAllocs, jsonAllocs)
	}
}

// ---------------------------------------------------------------------------
// Negotiation and the typed size violation.

func servedKVForCodec(t *testing.T) *Server {
	t.Helper()
	db := kvstore.New("discount")
	db.Set("drop", "k1", "40%")
	srv, err := Serve(connector.NewKeyValue(db), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestCodecNegotiation(t *testing.T) {
	srv := servedKVForCodec(t)

	t.Run("auto-upgrades", func(t *testing.T) {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if cli.Codec() != CodecBinary {
			t.Errorf("negotiated codec = %q, want binary", cli.Codec())
		}
		if o, err := cli.Get(context.Background(), "drop", "k1"); err != nil || o.GK.Key != "k1" {
			t.Errorf("binary Get = %v, %v", o, err)
		}
	})

	t.Run("json-pins", func(t *testing.T) {
		cli, err := DialConfig(srv.Addr(), ClientConfig{Codec: CodecJSON})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if cli.Codec() != CodecJSON {
			t.Errorf("pinned codec = %q, want json", cli.Codec())
		}
		if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
			t.Error(err)
		}
	})

	t.Run("unknown-codec-fails-dial", func(t *testing.T) {
		if _, err := DialConfig(srv.Addr(), ClientConfig{Codec: "protobuf"}); err == nil {
			t.Error("unknown codec string should fail Dial")
		}
	})
}

// TestCodecFallbackToJSONOnlyServer emulates a v1 peer with LimitCodec: the
// auto client must stay on JSON and keep working.
func TestCodecFallbackToJSONOnlyServer(t *testing.T) {
	db := kvstore.New("legacy")
	db.Set("drop", "k1", "40%")
	ln, err := Serve(connector.NewKeyValue(db), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.LimitCodec(codecJSON)
	cli, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Codec() != CodecJSON {
		t.Errorf("codec against JSON-only server = %q, want json", cli.Codec())
	}
	if o, err := cli.Get(context.Background(), "drop", "k1"); err != nil || o.Fields["value"] != "40%" {
		t.Errorf("Get through JSON fallback = %v, %v", o, err)
	}
}

// TestFrameTooLargeNotRetried pins the satellite: a size violation is
// final — typed, attributed to its op, never retried, and it must not poison
// the connection for later requests.
func TestFrameTooLargeNotRetried(t *testing.T) {
	srv := servedKVForCodec(t)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	old := maxFrame
	maxFrame = 256
	defer func() { maxFrame = old }()

	big := strings.Repeat("x", 1024)
	before := cli.Retries()
	_, err = cli.GetBatch(context.Background(), "drop", []string{big, big})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized getbatch = %v, want ErrFrameTooLarge", err)
	}
	var fe *FrameTooLargeError
	if !errors.As(err, &fe) || fe.Op != opGetBatch || fe.Len <= maxFrame {
		t.Errorf("typed error = %#v, want op getbatch and Len > %d", fe, maxFrame)
	}
	if got := cli.Retries() - before; got != 0 {
		t.Errorf("size violation retried %d times, want 0", got)
	}
	// The connection survives: a normal request on the same client works.
	if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
		t.Errorf("connection poisoned by size violation: %v", err)
	}
}

// TestServerOversizedResponse caps maxFrame below a response's size: the
// server must answer with a small error frame instead of dying, and the
// client must surface it as a non-retryable remote error.
func TestServerOversizedResponse(t *testing.T) {
	db := kvstore.New("discount")
	big := strings.Repeat("y", 2048)
	db.Set("drop", "k1", big)
	srv, err := Serve(connector.NewKeyValue(db), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	old := maxFrame
	maxFrame = 512
	defer func() { maxFrame = old }()

	before := cli.Retries()
	_, err = cli.Get(context.Background(), "drop", "k1")
	if err == nil {
		t.Fatal("oversized response should fail")
	}
	var re *remoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized response error = %v, want remote size violation", err)
	}
	if got := cli.Retries() - before; got != 0 {
		t.Errorf("oversized response retried %d times, want 0", got)
	}
}

// TestWireByteCounters checks the server's {dir} byte counters and the
// per-op client frame counters move when traffic flows.
func TestWireByteCounters(t *testing.T) {
	srv := servedKVForCodec(t)
	inBefore, outBefore := serverBytesIn.Value(), serverBytesOut.Value()
	framesBefore := clientFrames[opGet].Value()
	metaBefore := clientFrames[opMeta].Value()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Get(context.Background(), "drop", "k1"); err != nil {
		t.Fatal(err)
	}

	if in := serverBytesIn.Value() - inBefore; in <= 8 {
		t.Errorf("server bytes in moved by %d, want > 8", in)
	}
	if out := serverBytesOut.Value() - outBefore; out <= 8 {
		t.Errorf("server bytes out moved by %d, want > 8", out)
	}
	if d := clientFrames[opGet].Value() - framesBefore; d != 1 {
		t.Errorf("get frames counter moved by %d, want 1", d)
	}
	if d := clientFrames[opMeta].Value() - metaBefore; d != 1 {
		t.Errorf("meta frames counter moved by %d, want 1", d)
	}
}

// BenchmarkServerGetBatchCodec is the microbenchmark behind the README's
// allocs/op table: the full decode-request/encode-response cycle per codec.
func BenchmarkServerGetBatchCodec(b *testing.B) {
	req, resp := getbatchFixture()
	for _, tc := range []struct {
		name  string
		codec uint8
	}{{"json", codecJSON}, {"binary", codecBinary}} {
		b.Run(tc.name, func(b *testing.B) {
			var frame bytes.Buffer
			if _, err := writeRequestFrame(&frame, req, tc.codec); err != nil {
				b.Fatal(err)
			}
			raw := frame.Bytes()
			rd := bytes.NewReader(raw)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd.Reset(raw)
				var in request
				if _, _, err := readRequestFrame(rd, &in); err != nil {
					b.Fatal(err)
				}
				if _, err := writeResponseFrame(io.Discard, resp, tc.codec, opGetBatch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Codec v3: compact reach frames.

func encodeDeltaReqBody(t *testing.T, req *request) []byte {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeDeltaRequest(req); err != nil {
		t.Fatal(err)
	}
	frame, err := e.finish(req.Op)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), frame[4:]...)
}

func encodeDeltaRespBody(t *testing.T, resp *response) []byte {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	e.encodeDeltaResponse(resp)
	frame, err := e.finish(opReach)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), frame[4:]...)
}

// TestCompactReachRoundTrip pins the codec-v3 compact frames: a reach request
// (frontier with parallel probs, traced and untraced) and a reach response
// (hits, stats, clean and errored) must round-trip exactly, and the compact
// form must encode strictly smaller than the generic v2 layout of the same
// exchange.
func TestCompactReachRoundTrip(t *testing.T) {
	keys := []string{
		"catalogue.albums.d1", "catalogue.albums.d12", "catalogue.albums.d2",
		"similar-items.items.n4", "transactions.inventory.a7",
	}
	probs := []float64{1, 0.81, 0.72, 0.5, 0.25}
	for _, trace := range []string{"", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"} {
		req := &request{Op: opReach, ID: 42, Trace: trace, Frontier: keys, Probs: probs}
		body := encodeDeltaReqBody(t, req)
		var out request
		if err := decodeDeltaRequest(string(body), &out); err != nil {
			t.Fatalf("trace %q: decode: %v", trace, err)
		}
		want := request{Op: opReach, ID: 42, Trace: trace, Frontier: keys, Probs: probs}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("trace %q: round trip = %#v, want %#v", trace, out, want)
		}
		generic := encodeReqBody(t, req)
		if len(body) >= len(generic) {
			t.Errorf("trace %q: compact request (%d bytes) not smaller than generic (%d bytes)", trace, len(body), len(generic))
		}
	}

	hits := []RemoteHit{
		{Key: "catalogue.albums.d3", Prob: 0.9},
		{Key: "catalogue.albums.d31", Prob: 0.45},
		{Key: "transactions.sales.s9", Prob: 0.4},
	}
	for _, errMsg := range []string{"", "reach: shard detached"} {
		resp := &response{ID: 42, Error: errMsg, Nodes: 70, Edges: 128, DHits: hits}
		body := encodeDeltaRespBody(t, resp)
		var out response
		if err := decodeDeltaResponse(string(body), &out); err != nil {
			t.Fatalf("error %q: decode: %v", errMsg, err)
		}
		want := response{ID: 42, Error: errMsg, Nodes: 70, Edges: 128, DHits: hits}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("error %q: round trip = %#v, want %#v", errMsg, out, want)
		}
		generic := encodeRespBody(t, resp)
		if len(body) >= len(generic) {
			t.Errorf("error %q: compact response (%d bytes) not smaller than generic (%d bytes)", errMsg, len(body), len(generic))
		}
	}

	// An empty frontier and an empty hit list (degenerate but legal).
	var out request
	if err := decodeDeltaRequest(string(encodeDeltaReqBody(t, &request{Op: opReach, ID: 1})), &out); err != nil {
		t.Fatalf("empty frontier: %v", err)
	}
	if out.Frontier != nil || out.Probs != nil {
		t.Errorf("empty frontier decoded to %#v", out)
	}
	var rout response
	if err := decodeDeltaResponse(string(encodeDeltaRespBody(t, &response{ID: 1})), &rout); err != nil {
		t.Fatalf("empty response: %v", err)
	}
	if rout.DHits != nil {
		t.Errorf("empty response decoded to %#v", rout)
	}
}

// TestQuickCompactReachEquivalence is the quick-check property for the v3
// frames: any reach-shaped request (sorted or not, arbitrary probs) must
// survive the compact round trip bit for bit.
func TestQuickCompactReachEquivalence(t *testing.T) {
	f := func(keys []string, seed int64, traced bool) bool {
		rng := rand.New(rand.NewSource(seed))
		probs := make([]float64, len(keys))
		for i := range probs {
			probs[i] = rng.Float64()
		}
		req := request{Op: opReach, ID: rng.Uint64(), Frontier: keys, Probs: probs}
		if len(keys) == 0 {
			req.Frontier, req.Probs = nil, nil
		}
		if traced {
			req.Trace = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
		}
		body := encodeDeltaReqBody(t, &req)
		var out request
		if err := decodeDeltaRequest(string(body), &out); err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(out, req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCompactReachCorruption runs the truncation and bit-flip tables over the
// v3 frames: every strict prefix rejected, every single-bit flip memory-safe,
// trailing garbage rejected.
func TestCompactReachCorruption(t *testing.T) {
	req := &request{
		Op: opReach, ID: 9,
		Trace:    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		Frontier: []string{"catalogue.albums.d1", "catalogue.albums.d2"},
		Probs:    []float64{1, 0.5},
	}
	resp := &response{ID: 9, Nodes: 70, Edges: 128, DHits: []RemoteHit{
		{Key: "catalogue.albums.d3", Prob: 0.9},
		{Key: "catalogue.albums.d31", Prob: 0.45},
	}}
	reqBody := encodeDeltaReqBody(t, req)
	respBody := encodeDeltaRespBody(t, resp)
	for i := 1; i < len(reqBody); i++ {
		var out request
		if err := decodeDeltaRequest(string(reqBody[:i]), &out); err == nil {
			t.Fatalf("compact request truncated at %d/%d decoded without error", i, len(reqBody))
		}
	}
	for i := 1; i < len(respBody); i++ {
		var out response
		if err := decodeDeltaResponse(string(respBody[:i]), &out); err == nil {
			t.Fatalf("compact response truncated at %d/%d decoded without error", i, len(respBody))
		}
	}
	for off := 0; off < len(reqBody); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), reqBody...)
			mut[off] ^= 1 << bit
			var out request
			if mut[0] == binMagicDelta {
				decodeDeltaRequest(string(mut), &out) //nolint:errcheck // must not panic; error is legal
			}
		}
	}
	for off := 0; off < len(respBody); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), respBody...)
			mut[off] ^= 1 << bit
			var out response
			if mut[0] == binMagicDelta {
				decodeDeltaResponse(string(mut), &out) //nolint:errcheck // must not panic; error is legal
			}
		}
	}
	var out request
	if err := decodeDeltaRequest(string(append(reqBody, 0x00)), &out); !errors.Is(err, errTrailingBytes) {
		t.Errorf("compact request with trailing byte = %v, want errTrailingBytes", err)
	}
	var rout response
	if err := decodeDeltaResponse(string(append(respBody, 0xFF)), &rout); !errors.Is(err, errTrailingBytes) {
		t.Errorf("compact response with trailing byte = %v, want errTrailingBytes", err)
	}
}

// reachEcho wraps a plain store with a deterministic FrontierReacher so the
// codec tests can drive reach exchanges without a cluster: every key expands
// to key+".x" at half its probability.
type reachEcho struct {
	core.Store
}

func (reachEcho) ExpandFrontier(ctx context.Context, keys []string, probs []float64) ([]RemoteHit, ReachInfo, error) {
	hits := make([]RemoteHit, len(keys))
	for i, k := range keys {
		var p float64
		if i < len(probs) {
			p = probs[i] / 2
		}
		hits[i] = RemoteHit{Key: k + ".x", Prob: p}
	}
	return hits, ReachInfo{Nodes: len(keys), Edges: 2 * len(keys)}, nil
}

func servedReachEcho(t *testing.T) *Server {
	t.Helper()
	db := kvstore.New("discount")
	db.Set("drop", "k1", "40%")
	srv, err := Serve(reachEcho{Store: connector.NewKeyValue(db)}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestCodecV2PeerReach emulates version skew against a binary peer that
// predates the compact reach frames: LimitCodec(2) negotiates the v2 layout,
// so the client must keep its reach traffic on the plain Keys/Hits exchange
// instead of shipping a Frontier field the old decoder would reject. The
// bytes on the wire are checked against the generic encoding of the exact
// request, which proves no compact frame flew.
func TestCodecV2PeerReach(t *testing.T) {
	srv := servedReachEcho(t)
	srv.LimitCodec(codecBinary)
	cli, err := DialConfig(srv.Addr(), ClientConfig{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Codec() != CodecBinary {
		t.Fatalf("negotiated codec = %q, want binary", cli.Codec())
	}
	if got := cli.codec.Load(); got != codecBinary {
		t.Fatalf("negotiated codec version = %d, want %d", got, codecBinary)
	}
	hits, _, err := cli.ExpandFrontier(context.Background(), []string{"d.c.k1"}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Key != "d.c.k1.x" || hits[0].Prob != 0.5 {
		t.Fatalf("v2 peer reach = %v", hits)
	}
	// ID 2: the meta exchange took ID 1 on this connection.
	want := encodeReqBody(t, &request{Op: opReach, ID: 2, Keys: []string{"d.c.k1"}, Probs: []float64{1}})
	if sent, _ := cli.ReachBytes(); sent != uint64(4+len(want)) {
		t.Errorf("v2 peer reach sent %d bytes, want the generic frame's %d", sent, 4+len(want))
	}
}

// TestCodecV3Negotiation pins the happy path: against a default server the
// client lands on codec v3 and reach traffic flows through the compact
// frames — proven by the bytes on the wire matching the compact encoding of
// the exact request.
func TestCodecV3Negotiation(t *testing.T) {
	srv := servedReachEcho(t)
	cli, err := DialConfig(srv.Addr(), ClientConfig{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if got := cli.codec.Load(); got != codecDelta {
		t.Fatalf("negotiated codec version = %d, want %d", got, codecDelta)
	}
	hits, info, err := cli.ExpandFrontier(context.Background(), []string{"d.c.k1"}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Key != "d.c.k1.x" || info.Edges != 2 {
		t.Fatalf("compact reach exchange returned hits=%v info=%+v", hits, info)
	}
	want := encodeDeltaReqBody(t, &request{Op: opReach, ID: 2, Frontier: []string{"d.c.k1"}, Probs: []float64{1}})
	if sent, _ := cli.ReachBytes(); sent != uint64(4+len(want)) {
		t.Errorf("v3 reach sent %d bytes, want the compact frame's %d", sent, 4+len(want))
	}
}
