package wire

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/stores/kvstore"
)

// chaosProxy fronts a wire server and kills the first kill accepted
// connections outright, so the client sees deterministic transport faults.
type chaosProxy struct {
	ln       net.Listener
	backend  string
	kill     int64
	accepted atomic.Int64
}

func newChaosProxy(t *testing.T, backend string, kill int64) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend, kill: kill}
	t.Cleanup(func() { ln.Close() })
	go p.run()
	return p
}

func (p *chaosProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.accepted.Add(1) <= p.kill {
			conn.Close()
			continue
		}
		go p.pipe(conn)
	}
}

func (p *chaosProxy) pipe(conn net.Conn) {
	up, err := net.Dial("tcp", p.backend)
	if err != nil {
		conn.Close()
		return
	}
	go func() { io.Copy(up, conn); up.Close() }()
	io.Copy(conn, up)
	conn.Close()
}

func servedBackend(t *testing.T) *Server {
	t.Helper()
	db := kvstore.New("discount")
	db.Set("drop", "k1", "40%")
	srv, err := Serve(connector.NewKeyValue(db), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestClientRetriesTransportFault: a connection killed mid-flight is retried
// on a fresh one within the budget; the retry is counted and traced.
func TestClientRetriesTransportFault(t *testing.T) {
	srv := servedBackend(t)
	proxy := newChaosProxy(t, srv.Addr(), 1)

	cli, err := DialConfig(proxy.ln.Addr().String(), ClientConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Jitter: 0},
	})
	if err != nil {
		t.Fatalf("Dial did not retry past the killed connection: %v", err)
	}
	defer cli.Close()
	if cli.Retries() != 1 {
		t.Errorf("retries after dial = %d, want 1", cli.Retries())
	}

	rctx, rec := explain.WithRecorder(context.Background(), "/search")
	if rec == nil {
		t.Fatal("no recorder (telemetry disabled?)")
	}
	o, err := cli.Get(rctx, "drop", "k1")
	if err != nil || o.Fields[core.ValueField] != "40%" {
		t.Fatalf("Get through proxy = %v, %v", o, err)
	}
	p := rec.Finish(1)
	if p.Totals.WireRetries != 0 {
		t.Errorf("healthy Get recorded %d retries", p.Totals.WireRetries)
	}
}

// TestClientRetryTraceRecorded: a retried request lands in the profile with
// store, op, attempt and backoff.
func TestClientRetryTraceRecorded(t *testing.T) {
	srv := servedBackend(t)
	cli, err := DialConfig(srv.Addr(), ClientConfig{Retry: resilience.DefaultRetryPolicy(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetSleep(func(time.Duration) {})

	// Poison the single connection slot: kill whatever Dial left there and
	// install a mux conn whose socket is already closed (and that never
	// started a reader), so the next request's frame write fails once and
	// must retry on a fresh connection.
	dead, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()
	cli.connMu.Lock()
	old := cli.conns[0]
	cli.conns[0] = &muxConn{c: dead, pending: map[uint64]chan wireResult{}}
	cli.connMu.Unlock()
	if old != nil {
		old.kill(errConnBroken)
	}

	rctx, rec := explain.WithRecorder(context.Background(), "/search")
	if rec == nil {
		t.Fatal("no recorder")
	}
	if _, err := cli.Get(rctx, "drop", "k1"); err != nil {
		t.Fatalf("Get did not recover from dead pooled conn: %v", err)
	}
	p := rec.Finish(1)
	if p.Totals.WireRetries != 1 || len(p.Retries) != 1 {
		t.Fatalf("retry totals = %d, traces = %d, want 1/1", p.Totals.WireRetries, len(p.Retries))
	}
	tr := p.Retries[0]
	if tr.Store != "discount" || tr.Op != opGet || tr.Attempt != 1 || tr.Error == "" {
		t.Errorf("retry trace = %+v", tr)
	}
}

// TestClientRetrySkipsRemoteErrors: a deliberate server-side error reply is
// not a transport fault and must not be retried.
func TestClientRetrySkipsRemoteErrors(t *testing.T) {
	srv := servedBackend(t)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Query(context.Background(), "BOGUS"); err == nil {
		t.Fatal("bogus query should fail")
	}
	if cli.Retries() != 0 {
		t.Errorf("remote error retried %d times", cli.Retries())
	}
}

// TestClientRetryAttemptDeadline: a stalled server trips the per-attempt
// deadline instead of hanging the caller.
func TestClientRetryAttemptDeadline(t *testing.T) {
	// A listener that accepts and never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, conn) }()
		}
	}()

	start := time.Now()
	_, err = DialConfig(ln.Addr().String(), ClientConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, Jitter: 0, AttemptTimeout: 50 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("dial against a stalled server should fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
	// Two attempts at 50ms each plus one backoff: well under a second.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline did not bound the attempts: %v", elapsed)
	}
}

// TestClientCloseRaceWithRetries hammers Close against in-flight requests
// under -race: no connection may survive in the slot table once both sides
// settle, and post-Close requests fail fast with ErrClosed.
func TestClientCloseRaceWithRetries(t *testing.T) {
	for round := 0; round < 20; round++ {
		srv := servedBackend(t)
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cli.SetSleep(func(time.Duration) {})

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					cli.Get(context.Background(), "drop", "k1")
				}
			}()
		}
		cli.Close()
		wg.Wait()
		// Close nils every slot and the closed flag blocks re-installs, so no
		// connection may be left behind.
		cli.connMu.Lock()
		for i, mc := range cli.conns {
			if mc != nil {
				t.Fatalf("round %d: connection slot %d still populated after Close", round, i)
			}
		}
		cli.connMu.Unlock()
		if _, err := cli.Get(context.Background(), "drop", "k1"); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: Get after Close = %v, want ErrClosed", round, err)
		}
		if cli.Retries() != 0 {
			// ErrClosed is not transient; closing must not trigger retries.
			t.Fatalf("round %d: close caused %d retries", round, cli.Retries())
		}
		srv.Close()
	}
}

// TestClientRetryNoFaultZeroAllocs pins the acceptance criterion: retry
// support adds zero allocations to the fault-free round trip beyond what the
// frame codec already costs.
func TestClientRetryNoFaultZeroAllocs(t *testing.T) {
	srv := servedBackend(t)
	plain, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	noRetry, err := DialConfig(srv.Addr(), ClientConfig{Retry: resilience.RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer noRetry.Close()

	ctx := context.Background()
	// AllocsPerRun counts process-global mallocs, so the in-process server
	// handler adds one-sided noise; the minimum of a few measurements is the
	// client's true cost.
	measure := func(c *Client) float64 {
		best := math.MaxFloat64
		for i := 0; i < 5; i++ {
			n := testing.AllocsPerRun(100, func() {
				if _, err := c.Get(ctx, "drop", "k1"); err != nil {
					t.Fatal(err)
				}
			})
			if n < best {
				best = n
			}
		}
		return best
	}
	with, without := measure(plain), measure(noRetry)
	if with > without {
		t.Errorf("retry-enabled Get allocates %v per run vs %v with retries off", with, without)
	}
}
