//go:build race

package wire

// raceEnabled: see race_test.go. This build has the race detector on, so the
// allocation gates skip themselves.
const raceEnabled = true
