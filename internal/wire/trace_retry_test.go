package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"quepa/internal/resilience"
	"quepa/internal/telemetry"
)

// poisonConn replaces the client's single pooled connection with one that is
// already closed, exactly as TestClientRetryTraceRecorded does: the next
// frame write fails once and the request must retry on a fresh connection.
func poisonConn(t *testing.T, srv *Server, cli *Client) {
	t.Helper()
	dead, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()
	cli.connMu.Lock()
	old := cli.conns[0]
	cli.conns[0] = &muxConn{c: dead, pending: map[uint64]chan wireResult{}}
	cli.connMu.Unlock()
	if old != nil {
		old.kill(errConnBroken)
	}
}

// TestClientRetrySpansInTrace pins the trace shape of a transport retry on
// the round-trip path (getbatch/query/keyfield): the traced request gets one
// "wire.<op>" span whose "wire.retry" child carries the attempt number, the
// retried attempt's frame bytes land on the attempt span, and the retry flag
// propagates to the trace root so tail sampling keeps the whole request.
func TestClientRetrySpansInTrace(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	srv := servedBackend(t)
	cli, err := DialConfig(srv.Addr(), ClientConfig{Retry: resilience.DefaultRetryPolicy(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetSleep(func(time.Duration) {})
	poisonConn(t, srv, cli)

	ctx, root := telemetry.StartSpan(context.Background(), "request")
	if root == nil {
		t.Fatal("no root span (telemetry disabled?)")
	}
	if _, err := cli.GetBatch(ctx, "drop", []string{"k1"}); err != nil {
		t.Fatalf("GetBatch did not recover from dead pooled conn: %v", err)
	}
	root.End()

	tree := root.JSON()
	var wireSpan *telemetry.SpanJSON
	for i := range tree.Children {
		if tree.Children[i].Name == "wire.getbatch" {
			wireSpan = &tree.Children[i]
		}
	}
	if wireSpan == nil {
		t.Fatalf("no wire.getbatch span under the root: %+v", tree)
	}
	if wireSpan.Attrs["store"] != "discount" {
		t.Errorf("wire span store = %q, want discount", wireSpan.Attrs["store"])
	}
	var retries []telemetry.SpanJSON
	for _, c := range wireSpan.Children {
		if c.Name == "wire.retry" {
			retries = append(retries, c)
		}
	}
	if len(retries) != 1 {
		t.Fatalf("wire.retry spans = %d, want 1 (children: %+v)", len(retries), wireSpan.Children)
	}
	if retries[0].Attrs["attempt"] != "1" {
		t.Errorf("retry attempt attr = %q, want 1", retries[0].Attrs["attempt"])
	}
	// The retried attempt is the one that succeeded, so the retry span has
	// the response bytes and no error attribute.
	if retries[0].BytesRecv == 0 {
		t.Error("successful retry span recorded no received bytes")
	}
	if retries[0].Attrs["error"] != "" {
		t.Errorf("successful retry span carries error %q", retries[0].Attrs["error"])
	}
	// The root is flagged: this trace survives tail sampling at any rate.
	found := false
	for _, f := range tree.Flags {
		if f == "retry" {
			found = true
		}
	}
	if !found {
		t.Errorf("root flags = %v, want retry", tree.Flags)
	}
}

// TestClientGetRetrySpanShape pins the Get path, which retries above the
// coalescing layer: each attempt is its own "wire.get" flight span and the
// "wire.retry" span (tagged with attempt and cause) sits beside them under
// the caller's span, covering the backoff between flights.
func TestClientGetRetrySpanShape(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	srv := servedBackend(t)
	cli, err := DialConfig(srv.Addr(), ClientConfig{Retry: resilience.DefaultRetryPolicy(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetSleep(func(time.Duration) {})
	poisonConn(t, srv, cli)

	ctx, root := telemetry.StartSpan(context.Background(), "request")
	if root == nil {
		t.Fatal("no root span (telemetry disabled?)")
	}
	if _, err := cli.Get(ctx, "drop", "k1"); err != nil {
		t.Fatalf("Get did not recover from dead pooled conn: %v", err)
	}
	root.End()

	tree := root.JSON()
	var flights, retries []telemetry.SpanJSON
	for _, c := range tree.Children {
		switch c.Name {
		case "wire.get":
			flights = append(flights, c)
		case "wire.retry":
			retries = append(retries, c)
		}
	}
	if len(flights) != 2 {
		t.Fatalf("wire.get flight spans = %d, want 2 (one per attempt): %+v", len(flights), tree.Children)
	}
	if len(retries) != 1 {
		t.Fatalf("wire.retry spans = %d, want 1: %+v", len(retries), tree.Children)
	}
	if retries[0].Attrs["attempt"] != "1" {
		t.Errorf("retry attempt attr = %q, want 1", retries[0].Attrs["attempt"])
	}
	if retries[0].Attrs["error"] == "" {
		t.Error("retry span does not record the error that caused it")
	}
	// First flight failed, second carried the answer home.
	var withBytes, withError int
	for _, f := range flights {
		if f.Attrs["store"] != "discount" {
			t.Errorf("flight store = %q, want discount", f.Attrs["store"])
		}
		if f.BytesRecv > 0 {
			withBytes++
		}
		if f.Attrs["error"] != "" {
			withError++
		}
	}
	if withBytes != 1 || withError != 1 {
		t.Errorf("flights: %d with bytes, %d with error; want 1 and 1 (%+v)", withBytes, withError, flights)
	}
	found := false
	for _, f := range tree.Flags {
		if f == "retry" {
			found = true
		}
	}
	if !found {
		t.Errorf("root flags = %v, want retry", tree.Flags)
	}
}
