package wire

import (
	"reflect"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bodies at both codec-v2 decoders — the
// same shape as the WAL's snapshot fuzzer. Two properties: no input may
// panic or over-allocate, and any body that decodes cleanly must re-encode
// and decode back to the identical struct (the decoders accept nothing the
// encoders cannot reproduce, up to varint width: the corpus is seeded with
// canonical frames, and re-encoded frames are canonical by construction).
func FuzzDecodeFrame(f *testing.F) {
	req := corruptionFuzzReq()
	resp := corruptionFuzzResp()
	{
		e := getEncoder()
		if err := e.encodeRequest(req); err != nil {
			f.Fatal(err)
		}
		frame, err := e.finish(req.Op)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame[4:]...))
		putEncoder(e)
	}
	{
		e := getEncoder()
		e.encodeResponse(resp)
		frame, err := e.finish("seed")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame[4:]...))
		putEncoder(e)
	}
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, 2, 0, 0})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, body []byte) {
		var req request
		if decodeRequestV2(string(body), &req) == nil {
			e := getEncoder()
			defer putEncoder(e)
			if err := e.encodeRequest(&req); err != nil {
				t.Fatalf("decoded request cannot re-encode: %v", err)
			}
			frame, err := e.finish(req.Op)
			if err != nil {
				t.Fatal(err)
			}
			var again request
			if err := decodeRequestV2(string(frame[4:]), &again); err != nil {
				t.Fatalf("re-encoded request fails decode: %v", err)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("request drifted across re-encode:\n%#v\n%#v", req, again)
			}
		}
		var resp response
		if decodeResponseV2(string(body), &resp) == nil {
			e := getEncoder()
			defer putEncoder(e)
			e.encodeResponse(&resp)
			frame, err := e.finish("fuzz")
			if err != nil {
				t.Fatal(err)
			}
			var again response
			if err := decodeResponseV2(string(frame[4:]), &again); err != nil {
				t.Fatalf("re-encoded response fails decode: %v", err)
			}
			if !reflect.DeepEqual(resp, again) {
				t.Fatalf("response drifted across re-encode:\n%#v\n%#v", resp, again)
			}
		}
	})
}

// Seed fixtures exercising every field, shared with nothing so fuzz corpus
// minimization can mutate them freely.
func corruptionFuzzReq() *request {
	return &request{
		ID: 9, Op: opGetBatch, Collection: "drop", Key: "k",
		Keys: []string{"a", "b"}, Query: "q", Database: "d",
		Probs: []float64{0.5}, Trace: "00-abc-def-01", Codec: 2,
	}
}

func corruptionFuzzResp() *response {
	return &response{
		ID: 9, Objects: []wireObject{{Database: "d", Collection: "c", Key: "k",
			Fields: map[string]string{"f": "v"}}},
		Error: "", NotFound: true, Name: "n", Kind: 1,
		Collections: []string{"c"}, KeyField: "id",
		Hits:  []RemoteHit{{Key: "d.c.k", Prob: 0.25}},
		Nodes: 3, Edges: 2, Snapshot: []byte{9}, Epoch: 5, Codec: 2,
	}
}
