package wire

import (
	"context"
	"errors"
	"net"
	"sync"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// Server exposes one store over TCP. Create it with Serve and stop it with
// Close; every accepted connection is handled in its own goroutine and may
// carry any number of sequential requests.
type Server struct {
	store core.Store
	ln    net.Listener

	// maxCodec caps the frame codec this server negotiates (codecDelta by
	// default). LimitCodec(1) turns the server into a JSON-only v1 peer,
	// LimitCodec(2) into a binary peer that predates the compact reach
	// frames, which is how the mixed-version cluster tests emulate old
	// binaries.
	maxCodec uint8

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts serving the store on the given address ("127.0.0.1:0" picks a
// free port; query it with Addr).
func Serve(store core.Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeOn(store, ln), nil
}

// ServeOn serves the store on an already-bound listener. Cluster bring-up
// uses it to reserve every peer's port before any peer starts dialing, so a
// topology's addresses are known to all members ahead of time.
func ServeOn(store core.Store, ln net.Listener) *Server {
	s := &Server{store: store, ln: ln, maxCodec: codecDelta, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// LimitCodec caps the frame codec the server will negotiate or accept.
// LimitCodec(1) pins it to JSON (a v1 peer), LimitCodec(2) to the generic
// binary layout (a v2 peer); the default is codec v3.
// Call it before the first client connects.
func (s *Server) LimitCodec(v uint8) { s.maxCodec = v }

// Optional store capabilities a wire server forwards when the wrapped store
// implements them. A cluster shard node implements all three; plain stores
// implement none and the corresponding ops fail with a remote error.
type (
	// DBStore routes keyed reads by database — a shard node serves every
	// database's locally-owned keys behind one listener.
	DBStore interface {
		GetDB(ctx context.Context, database, collection, key string) (core.Object, error)
		GetBatchDB(ctx context.Context, database, collection string, keys []string) ([]core.Object, error)
	}
	// FrontierReacher expands a weighted key frontier one hop over the
	// store's A' shard (the scatter-gather reach primitive).
	FrontierReacher interface {
		ExpandFrontier(ctx context.Context, keys []string, probs []float64) ([]RemoteHit, ReachInfo, error)
	}
	// Snapshotter ships the store's epoch-stamped A' shard checkpoint.
	Snapshotter interface {
		IndexSnapshot(ctx context.Context) ([]byte, uint64, error)
	}
)

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, closes the active ones and waits for
// the handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one connection. Frames with a non-zero ID are dispatched
// concurrently — each in its own goroutine, responses serialized by a write
// mutex and tagged with the request's ID so the client can demux them out of
// order. ID-0 frames keep the legacy in-order exchange: the read loop blocks
// on the dispatch, so an old sequential client never sees a reordered reply.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	var (
		wmu   sync.Mutex
		reqWG sync.WaitGroup
	)
	defer func() {
		reqWG.Wait() // let in-flight dispatches drain before the conn dies
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		var req request
		reqBytes, codec, err := readRequestFrame(conn, &req)
		if err != nil {
			return // connection closed or corrupted: drop it
		}
		serverBytesIn.Add(uint64(reqBytes))
		if codec > s.maxCodec {
			return // binary frame at a JSON-only server: protocol violation
		}
		if req.ID == 0 {
			ctx, sp := s.continueTrace(req, reqBytes)
			resp := s.dispatch(ctx, req)
			finishServerSpan(sp, resp)
			n, err := s.writeResponse(conn, &resp, codec, req.Op)
			sp.AddBytes(int64(n), 0)
			sp.End()
			if err != nil {
				return
			}
			continue
		}
		reqWG.Add(1)
		go func(req request, reqBytes int, codec uint8) {
			defer reqWG.Done()
			ctx, sp := s.continueTrace(req, reqBytes)
			resp := s.dispatch(ctx, req)
			resp.ID = req.ID
			finishServerSpan(sp, resp)
			wmu.Lock()
			n, _ := s.writeResponse(conn, &resp, codec, req.Op) //nolint:errcheck // a dead conn fails the read loop too
			wmu.Unlock()
			sp.AddBytes(int64(n), 0)
			sp.End()
		}(req, reqBytes, codec)
	}
}

// writeResponse sends resp in the codec the request arrived in. A response
// that overflows maxFrame (a snapshot of an oversized shard, say) is replaced
// by a small error frame naming the violation, so the client gets a definite
// non-retryable remote error instead of a dead connection.
func (s *Server) writeResponse(conn net.Conn, resp *response, codec uint8, op string) (int, error) {
	n, err := writeResponseFrame(conn, resp, codec, op)
	if errors.Is(err, ErrFrameTooLarge) {
		small := response{ID: resp.ID, Error: err.Error()}
		n, err = writeResponseFrame(conn, &small, codec, op)
	}
	serverBytesOut.Add(uint64(n))
	return n, err
}

// continueTrace opens the server-side segment of the caller's distributed
// trace when the frame carries a traceparent. Untraced frames get no span at
// all, so legacy peers cost nothing.
func (s *Server) continueTrace(req request, reqBytes int) (context.Context, *telemetry.Span) {
	if req.Trace == "" {
		return context.Background(), nil
	}
	ctx, sp := telemetry.StartRemoteSpan(context.Background(), "wire.server."+req.Op, req.Trace)
	if sp != nil {
		sp.SetAttr("store", s.store.Name())
		sp.SetAttr("op", req.Op)
		if req.Collection != "" {
			sp.SetAttr("collection", req.Collection)
		}
		sp.AddBytes(0, int64(reqBytes))
	}
	return ctx, sp
}

// finishServerSpan records the dispatch outcome before the response frame is
// written (the frame bytes land on the span afterwards).
func finishServerSpan(sp *telemetry.Span, resp response) {
	if sp == nil {
		return
	}
	if resp.Error != "" {
		sp.Mark(telemetry.FlagError)
		sp.SetAttr("error", resp.Error)
	}
}

func (s *Server) dispatch(ctx context.Context, req request) response {
	if c, ok := serverReqs[req.Op]; ok {
		c.Inc()
	} else {
		serverBadOps.Inc()
	}
	switch req.Op {
	case opMeta:
		resp := response{
			Name:        s.store.Name(),
			Kind:        int(s.store.Kind()),
			Collections: s.store.Collections(),
		}
		// Codec negotiation: confirm the highest version both sides speak,
		// but only when the client offered binary and this server isn't
		// capped to JSON. Legacy clients omit the field (Codec 0) and get no
		// echo, pinning the connection to JSON.
		if req.Codec >= codecBinary && s.maxCodec >= codecBinary {
			resp.Codec = min(req.Codec, int(s.maxCodec))
		}
		return resp
	case opGet:
		if req.Database != "" {
			return s.dispatchGetDB(ctx, req)
		}
		o, err := s.store.Get(ctx, req.Collection, req.Key)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return response{NotFound: true}
			}
			return response{Error: err.Error()}
		}
		return response{Objects: []wireObject{toWire(o)}}
	case opGetBatch:
		if req.Database != "" {
			return s.dispatchGetDB(ctx, req)
		}
		objs, err := s.store.GetBatch(ctx, req.Collection, req.Keys)
		if err != nil {
			return response{Error: err.Error()}
		}
		return objectsResponse(objs)
	case opReach:
		fr, ok := s.store.(FrontierReacher)
		if !ok {
			return response{Error: "wire: store cannot expand reach frontiers"}
		}
		// A frontier in the front-coded field (codec-v2 clients) is answered
		// front-coded; plain Keys (v1 peers) get plain Hits. Expansion output
		// is key-sorted, which is what makes the response front-coding pay.
		keys := req.Keys
		delta := len(req.Frontier) > 0
		if delta {
			keys = req.Frontier
		}
		hits, info, err := fr.ExpandFrontier(ctx, keys, req.Probs)
		if err != nil {
			return response{Error: err.Error()}
		}
		if delta {
			return response{DHits: hits, Nodes: info.Nodes, Edges: info.Edges}
		}
		return response{Hits: hits, Nodes: info.Nodes, Edges: info.Edges}
	case opSnapshot:
		sn, ok := s.store.(Snapshotter)
		if !ok {
			return response{Error: "wire: store cannot snapshot its index"}
		}
		data, epoch, err := sn.IndexSnapshot(ctx)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Snapshot: data, Epoch: epoch}
	case opQuery:
		objs, err := s.store.Query(ctx, req.Query)
		if err != nil {
			return response{Error: err.Error()}
		}
		return objectsResponse(objs)
	case opKeyField:
		type keyResolver interface {
			KeyField(context.Context, string) (string, error)
		}
		kr, ok := s.store.(keyResolver)
		if !ok {
			return response{Error: "wire: store cannot resolve key fields"}
		}
		kf, err := kr.KeyField(ctx, req.Collection)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{KeyField: kf}
	default:
		return response{Error: "wire: unknown op " + req.Op}
	}
}

// dispatchGetDB serves a database-routed get/getbatch frame against a store
// that shards several databases behind one listener.
func (s *Server) dispatchGetDB(ctx context.Context, req request) response {
	dbs, ok := s.store.(DBStore)
	if !ok {
		return response{Error: "wire: store cannot route by database"}
	}
	if req.Op == opGet {
		o, err := dbs.GetDB(ctx, req.Database, req.Collection, req.Key)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return response{NotFound: true}
			}
			return response{Error: err.Error()}
		}
		return response{Objects: []wireObject{toWire(o)}}
	}
	objs, err := dbs.GetBatchDB(ctx, req.Database, req.Collection, req.Keys)
	if err != nil {
		return response{Error: err.Error()}
	}
	return objectsResponse(objs)
}

func objectsResponse(objs []core.Object) response {
	out := make([]wireObject, len(objs))
	for i, o := range objs {
		out[i] = toWire(o)
	}
	return response{Objects: out}
}
