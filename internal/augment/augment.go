// Package augment implements the query augmentation operator of QUEPA
// (Section II) and its six execution strategies (Section IV): SEQUENTIAL,
// BATCH, INNER, OUTER, OUTER-BATCH and OUTER-INNER.
//
// Augmented search (Definition 3) expands the result of a local query with
// the related data objects reachable through the A' index at a given level,
// ordered by probability. Augmented exploration (Definition 4) applies the
// level-0 operator step by step under user guidance; see Exploration.
//
// The strategies differ only in how they schedule the object fetches against
// the polystore — one by one, grouped per store (batching), parallel per
// result (outer concurrency), parallel within a result's expansion (inner
// concurrency), or combinations — and therefore produce identical answers,
// a property the tests enforce.
package augment

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/cache"
	"quepa/internal/coalesce"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/rcache"
	"quepa/internal/resilience"
	"quepa/internal/telemetry"
	"quepa/internal/validator"
)

// Strategy selects one of the augmenter implementations of Section IV.
type Strategy int

// The six augmenters of the paper.
const (
	Sequential Strategy = iota
	Batch
	Inner
	Outer
	OuterBatch
	OuterInner
)

// Strategies lists all strategies in a stable order (useful for sweeps).
var Strategies = []Strategy{Sequential, Batch, Inner, Outer, OuterBatch, OuterInner}

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "SEQUENTIAL"
	case Batch:
		return "BATCH"
	case Inner:
		return "INNER"
	case Outer:
		return "OUTER"
	case OuterBatch:
		return "OUTER-BATCH"
	case OuterInner:
		return "OUTER-INNER"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy name (case-insensitive, '-' and '_'
// interchangeable).
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToUpper(strings.ReplaceAll(name, "_", "-")) {
	case "SEQUENTIAL":
		return Sequential, nil
	case "BATCH":
		return Batch, nil
	case "INNER":
		return Inner, nil
	case "OUTER":
		return Outer, nil
	case "OUTER-BATCH", "OUTERBATCH":
		return OuterBatch, nil
	case "OUTER-INNER", "OUTERINNER":
		return OuterInner, nil
	default:
		return 0, fmt.Errorf("augment: unknown strategy %q", name)
	}
}

// Concurrent reports whether the strategy uses worker goroutines.
func (s Strategy) Concurrent() bool {
	switch s {
	case Inner, Outer, OuterBatch, OuterInner:
		return true
	}
	return false
}

// Batched reports whether the strategy groups keys into batch fetches.
func (s Strategy) Batched() bool { return s == Batch || s == OuterBatch }

// Config is a QUEPA configuration (Section V): an augmenter plus its
// parameters. Zero values select sensible defaults.
type Config struct {
	Strategy    Strategy
	BatchSize   int // max global keys per batched query (BATCH, OUTER-BATCH)
	ThreadsSize int // max simultaneous fetch goroutines (concurrent strategies)
	CacheSize   int // LRU capacity; 0 disables caching

	// DisableCoalesce turns off in-flight request coalescing, making every
	// cache miss pay its own store round trip. The zero value (coalescing
	// on) is right for production; the equivalence tests sweep both settings
	// and the ablation benchmarks measure the difference.
	DisableCoalesce bool
}

// Defaults used when Config fields are left zero or negative.
const (
	DefaultBatchSize   = 64
	DefaultThreadsSize = 4
)

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.ThreadsSize <= 0 {
		c.ThreadsSize = DefaultThreadsSize
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	return c
}

// String renders the configuration compactly for logs and run records.
func (c Config) String() string {
	return fmt.Sprintf("%s(batch=%d,threads=%d,cache=%d)", c.Strategy, c.BatchSize, c.ThreadsSize, c.CacheSize)
}

// AugmentedObject is one element of an augmented answer: a data object, the
// probability that it is related to the original result, and the hop
// distance at which the A' index reached it (0 marks original results).
type AugmentedObject struct {
	Object core.Object
	Prob   float64
	Dist   int
}

// Answer is the result of an augmented search: the local query's own result
// plus the augmentation, ordered by decreasing probability. Degraded lists
// the stores whose contribution was dropped — augmentation is best-effort,
// so a failing store yields a partial answer rather than an error.
type Answer struct {
	Original  []core.Object
	Augmented []AugmentedObject
	Degraded  []Degradation
}

// Size returns the total number of data objects in the answer.
func (a *Answer) Size() int { return len(a.Original) + len(a.Augmented) }

// Partial reports whether any store's contribution was dropped.
func (a *Answer) Partial() bool { return len(a.Degraded) > 0 }

// Degradation records one store dropped from an answer: which store, why
// ("breaker_open", "timeout", or the store's error), and the augmentation
// level at which it failed.
type Degradation struct {
	Store  string `json:"store"`
	Reason string `json:"reason"`
	Level  int    `json:"level"`
}

// degradeReason classifies a store failure for the degraded section.
func degradeReason(err error) string {
	var ne net.Error
	switch {
	// A cluster peer's breaker is checked before the store-level one: the
	// coordinator wraps its rejections in ErrPeerOpen so a burning peer
	// reads "peer-open" in the degraded section, distinct from a local
	// store's "breaker_open".
	case errors.Is(err, resilience.ErrPeerOpen):
		return "peer-open"
	case errors.Is(err, resilience.ErrOpen):
		return "breaker_open"
	case errors.Is(err, context.DeadlineExceeded), errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	default:
		return err.Error()
	}
}

// Augmenter orchestrates augmented query answering over a polystore and an
// A' index (the Augmenter component of Fig. 2). It is safe for concurrent
// use; the cache is shared across queries, as in the paper's design.
type Augmenter struct {
	poly  *core.Polystore
	index *aindex.Index
	cache *cache.LRU

	// flight coalesces concurrent fetches of the same global key: N
	// in-flight queries augmenting one hot object cost one store round trip.
	flight *coalesce.Group
	// fetchFn is fetchStore bound once at construction, so joining or
	// leading a flight never allocates a per-call closure.
	fetchFn coalesce.Fetch
	// neg remembers keys recently confirmed missing, so lazy-deletion
	// misses don't stampede the stores while the A' index catches up.
	neg *coalesce.NegativeCache

	// cfgMu guards cfg: the adaptive optimizer swaps configurations via
	// SetConfig while request goroutines are inside Search/AugmentObjects.
	// Readers snapshot the whole Config once (Config()) and work off the
	// copy, so a query runs one coherent configuration end to end.
	cfgMu sync.RWMutex
	cfg   Config

	// reacher, when set, replaces the local index consultation in plan
	// building — the cluster coordinator plugs its scatter-gather
	// reachability in here. Set once at startup, before serving.
	reacher Reacher

	// rc, when set, memoizes Reach result sets and single-origin
	// augmentation outcomes against the index epoch. Epoch validation makes
	// invalidation free: every mutator bumps the epoch, so stale entries
	// become unaddressable and age out of the LRU. Set once at startup,
	// before serving.
	rc *rcache.Cache
}

// Reacher abstracts the A' reachability consulted while planning an
// augmentation. The cluster coordinator implements it with a scatter-gather
// traversal over the sharded index; the returned Degradations report shards
// dropped mid-traversal (an open peer breaker yields reason "peer-open"),
// which the augmenter folds into the answer's degraded section.
type Reacher interface {
	ReachScatter(ctx context.Context, origin core.GlobalKey, level int) ([]aindex.Hit, aindex.ReachStats, []Degradation)
}

// SetReacher routes plan building through r instead of the local A' index.
// Call it once during startup, before the augmenter serves queries; the
// local index remains in place for lazy deletion and stats.
func (a *Augmenter) SetReacher(r Reacher) { a.reacher = r }

// SetResultCache installs the reach/outcome memoization cache. Call it once
// during startup, before the augmenter serves queries. A nil cache (the
// default) disables memoization. When a cluster reacher is installed the
// augmenter leaves reach memoization to the coordinator, which keys entries
// by the scatter epoch; the local cache then only serves outcome entries.
func (a *Augmenter) SetResultCache(rc *rcache.Cache) { a.rc = rc }

// ResultCache exposes the reach/outcome memoization cache (nil when
// disabled), for the status pages and tests.
func (a *Augmenter) ResultCache() *rcache.Cache { return a.rc }

// New creates an augmenter with the given configuration.
func New(poly *core.Polystore, index *aindex.Index, cfg Config) *Augmenter {
	cfg = cfg.withDefaults()
	a := &Augmenter{
		poly:   poly,
		index:  index,
		cfg:    cfg,
		cache:  cache.NewLRU(cfg.CacheSize),
		flight: coalesce.NewGroup(),
		neg:    coalesce.NewNegativeCache(0, 0), // package defaults
	}
	a.fetchFn = a.fetchStore
	return a
}

// Config returns the augmenter's current configuration.
func (a *Augmenter) Config() Config {
	a.cfgMu.RLock()
	defer a.cfgMu.RUnlock()
	return a.cfg
}

// SetConfig swaps strategy and parameters. The cache is resized, not
// dropped: the adaptive optimizer adjusts CACHE_SIZE in small increments
// precisely to keep its content useful (Section V, Phase 3). In-flight
// queries keep the configuration they snapshotted at entry.
func (a *Augmenter) SetConfig(cfg Config) {
	cfg = cfg.withDefaults()
	a.cfgMu.Lock()
	a.cfg = cfg
	a.cfgMu.Unlock()
	a.cache.Resize(cfg.CacheSize)
}

// Cache exposes the augmenter's cache (for stats and tests).
func (a *Augmenter) Cache() *cache.LRU { return a.cache }

// Index exposes the augmenter's A' index.
func (a *Augmenter) Index() *aindex.Index { return a.index }

// Polystore exposes the polystore the augmenter operates on.
func (a *Augmenter) Polystore() *core.Polystore { return a.poly }

// ClearCache empties the cache (cold-cache experiment runs).
func (a *Augmenter) ClearCache() { a.cache.Clear() }

// Search executes a query in augmented mode (Definition 3): the query is
// validated (and possibly rewritten to expose identifiers), executed against
// its database with the local language, and its result is augmented at the
// given level.
func (a *Augmenter) Search(ctx context.Context, database, query string, level int) (*Answer, error) {
	ctx, span := telemetry.StartSpan(ctx, "augment.search")
	defer span.End()
	span.SetAttr("db", database)
	span.SetAttr("level", itoa(level))
	rec := explain.FromContext(ctx)
	rec.SetQuery(database, query, level)
	store, err := a.poly.Database(database)
	if err != nil {
		return nil, err
	}
	v, err := validator.Validate(ctx, store, query)
	if err != nil {
		return nil, err
	}
	qctx, qspan := telemetry.StartSpan(ctx, "store.query")
	var qstart time.Time
	if rec != nil {
		qstart = time.Now()
	}
	original, err := store.Query(qctx, v.Query)
	qspan.End()
	if rec != nil {
		rec.LocalQuery(database, len(original), time.Since(qstart), err != nil)
	}
	if err != nil {
		return nil, err
	}
	qspan.SetAttr("objects", itoa(len(original)))
	augmented, degraded, err := a.AugmentObjects(ctx, original, level)
	if err != nil {
		return nil, err
	}
	return &Answer{Original: original, Augmented: augmented, Degraded: degraded}, nil
}

// AugmentObjects applies the augmentation construct of level n to a set of
// objects (the α operator of Definition 2 extended to sets) and returns the
// retrieved objects ordered by decreasing probability. Objects that are in
// the A' index but no longer in the polystore are dropped and lazily removed
// from the index.
//
// Augmentation is best-effort: a store that errors (or whose circuit breaker
// is open) has its contribution dropped and reported in the returned
// Degradation list while the healthy stores' results come back intact. Only
// context cancellation and deadline expiry abort the whole call.
func (a *Augmenter) AugmentObjects(ctx context.Context, origins []core.Object, level int) ([]AugmentedObject, []Degradation, error) {
	if level < 0 {
		return nil, nil, fmt.Errorf("augment: negative level %d", level)
	}
	cfg := a.Config() // one coherent snapshot for the whole augmentation
	strategy := cfg.Strategy
	ctx, span := telemetry.StartSpan(ctx, "augment.objects")
	defer span.End()
	span.SetAttr("strategy", strategy.String())
	rec := explain.FromContext(ctx)
	var recStart time.Time
	if rec != nil {
		rec.BeginAugmentation(level, len(origins), strategy.String())
		recStart = time.Now()
	}
	start := telemetry.Now()
	// Single-origin, locally-indexed augmentations are whole-outcome
	// memoizable. The epoch is read before any index or store consultation,
	// so a mutation racing this call leaves the entry unaddressable at the
	// new epoch rather than serving stale data; Rank filters by minProb
	// after the fact, so one entry serves every threshold.
	var (
		outKey   rcache.Key
		outEpoch uint64
		memoize  bool
	)
	if a.rc != nil && a.reacher == nil && len(origins) == 1 {
		outKey = rcache.Key{GK: origins[0].GK, Level: level, Kind: rcache.KindOutcome}
		outEpoch = a.index.Epoch()
		if v, ok := a.rc.GetOutcome(outKey, outEpoch); ok {
			out := v.([]AugmentedObject)
			rec.RcacheHits(1)
			if rec != nil {
				rec.EndAugmentation(len(out), time.Since(recStart), nil)
			}
			return out, nil, nil
		}
		memoize = true
	}
	plan := a.buildPlan(ctx, rec, origins, level)
	span.SetAttr("origins", itoa(len(origins)))
	span.SetAttr("keys", itoa(len(plan.order)))
	sink := newSink()
	// Shards a scatter-gather reach dropped degrade the answer exactly like
	// failing stores do — before any fetch work, so even an empty plan
	// reports the peers whose contribution is missing.
	for _, d := range plan.degraded {
		sink.note(ctx, d)
	}
	if len(plan.order) == 0 {
		strategyHist(strategy).Since(start)
		if rec != nil {
			rec.EndAugmentation(0, time.Since(recStart), nil)
		}
		return nil, sink.degradations(), nil
	}
	var err error
	switch cfg.Strategy {
	case Sequential:
		err = a.runSequential(ctx, cfg, plan, sink)
	case Batch:
		err = a.runBatch(ctx, cfg, plan, sink)
	case Inner:
		err = a.runInner(ctx, cfg, plan, sink)
	case Outer:
		err = a.runOuter(ctx, cfg, plan, sink)
	case OuterBatch:
		err = a.runOuterBatch(ctx, cfg, plan, sink)
	case OuterInner:
		err = a.runOuterInner(ctx, cfg, plan, sink)
	default:
		err = fmt.Errorf("augment: unknown strategy %v", cfg.Strategy)
	}
	strategyHist(strategy).Since(start)
	if err != nil {
		if c := strategyErr(strategy); c != nil {
			c.Inc()
		}
		if rec != nil {
			rec.EndAugmentation(0, time.Since(recStart), err)
		}
		return nil, nil, err
	}
	out := plan.answer(sink)
	// Only clean outcomes are cacheable: a degraded answer reflects a
	// transient store failure and must not outlive it.
	if memoize && sink.nDegraded.Load() == 0 {
		a.rc.PutOutcome(outKey, outEpoch, out)
	}
	if rec != nil {
		rec.EndAugmentation(len(out), time.Since(recStart), nil)
	}
	return out, sink.degradations(), nil
}

// plan is the resolved fetch work of one augmentation: the unique global
// keys to retrieve, their best probabilities and distances, and the
// per-origin partition the outer/inner strategies parallelize over.
type plan struct {
	hits     map[core.GlobalKey]aindex.Hit
	order    []core.GlobalKey   // deterministic fetch order
	byOrigin [][]core.GlobalKey // keys grouped by the origin that reached them first
	// degraded lists shards a scatter-gather reach dropped mid-traversal;
	// the augmentation carries them into the answer's degraded section.
	degraded []Degradation
}

// buildPlan consults the A' index for every origin and deduplicates the
// reachable keys, keeping the best probability. Each unique key is assigned
// to the first origin that reaches it, which partitions the fetch work for
// the per-result (outer) strategies. Origins themselves are never fetched.
// With a non-nil recorder, the index traversal work is counted and
// attributed to the profiled query.
func (a *Augmenter) buildPlan(ctx context.Context, rec *explain.Recorder, origins []core.Object, level int) *plan {
	p := &plan{hits: map[core.GlobalKey]aindex.Hit{}}
	originSet := make(map[core.GlobalKey]bool, len(origins))
	for _, o := range origins {
		originSet[o.GK] = true
	}
	planDegraded := map[string]Degradation{}
	var nodes, edges, skipped, snapshots, rcacheHits int
	// Reach memoization is local-index only: the cluster coordinator keys
	// its own entries by the scatter epoch. The epoch is read once before
	// any traversal, so a mutation racing the loop strands the entries at
	// the pre-mutation epoch instead of mislabeling post-mutation results.
	useRcache := a.rc != nil && a.reacher == nil
	var reachEpoch uint64
	if useRcache {
		reachEpoch = a.index.Epoch()
	}
	for _, o := range origins {
		var mine []core.GlobalKey
		var hits []aindex.Hit
		switch {
		case a.reacher != nil:
			var st aindex.ReachStats
			var degs []Degradation
			hits, st, degs = a.reacher.ReachScatter(ctx, o.GK, level)
			nodes += st.Nodes
			edges += st.Edges
			for _, d := range degs {
				if _, seen := planDegraded[d.Store]; !seen {
					planDegraded[d.Store] = d
					p.degraded = append(p.degraded, d)
				}
			}
		case useRcache:
			rkey := rcache.Key{GK: o.GK, Level: level, Kind: rcache.KindReach}
			if cached, _, ok := a.rc.GetReach(rkey, reachEpoch); ok {
				hits = cached
				rcacheHits++
				break
			}
			var st aindex.ReachStats
			hits, st = a.index.ReachWithStats(o.GK, level)
			nodes += st.Nodes
			edges += st.Edges
			if st.Snapshot {
				snapshots++
			}
			a.rc.PutReach(rkey, reachEpoch, hits, st)
		case rec == nil:
			hits = a.index.Reach(o.GK, level)
		default:
			var st aindex.ReachStats
			hits, st = a.index.ReachWithStats(o.GK, level)
			nodes += st.Nodes
			edges += st.Edges
			if st.Snapshot {
				snapshots++
			}
		}
		for _, h := range hits {
			if originSet[h.Key] {
				skipped++
				continue
			}
			old, seen := p.hits[h.Key]
			if !seen {
				p.order = append(p.order, h.Key)
				mine = append(mine, h.Key)
				p.hits[h.Key] = h
				continue
			}
			if h.Prob > old.Prob || (h.Prob == old.Prob && h.Dist < old.Dist) {
				p.hits[h.Key] = h
			}
		}
		p.byOrigin = append(p.byOrigin, mine)
	}
	if rec != nil {
		rec.PlanStats(len(p.order), nodes, edges, skipped)
		rec.SnapshotReaches(snapshots)
		rec.RcacheHits(rcacheHits)
	}
	return p
}

// answer assembles the final ordered augmentation from the fetched objects.
func (p *plan) answer(s *sink) []AugmentedObject {
	out := make([]AugmentedObject, 0, len(s.objects))
	for gk, obj := range s.objects {
		h := p.hits[gk]
		out = append(out, AugmentedObject{Object: obj, Prob: h.Prob, Dist: h.Dist})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Object.GK.Compare(out[j].Object.GK) < 0
	})
	return out
}

// dist returns the hop distance at which the plan reached gk (0 if unknown).
func (p *plan) dist(gk core.GlobalKey) int { return p.hits[gk].Dist }

// groupDist returns the smallest hop distance across a batch group, the
// level attributed to a degradation that drops the whole group.
func (p *plan) groupDist(g group, keys []string) int {
	min := -1
	for _, k := range keys {
		if h, ok := p.hits[core.NewGlobalKey(g.database, g.collection, k)]; ok && (min < 0 || h.Dist < min) {
			min = h.Dist
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// sink collects fetched objects from concurrent workers, plus the stores
// whose contribution had to be dropped.
type sink struct {
	mu      sync.Mutex
	objects map[core.GlobalKey]core.Object
	// nDegraded counts degraded stores so the per-key isDegraded probe on
	// the healthy path (the overwhelmingly common one) is a single atomic
	// load instead of a mutex acquisition.
	nDegraded atomic.Int32
	degraded  map[string]Degradation // lazily allocated; keyed by store
}

func newSink() *sink {
	return &sink{objects: map[core.GlobalKey]core.Object{}}
}

func (s *sink) add(objs ...core.Object) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range objs {
		s.objects[o.GK] = o
	}
}

// addAll bulk-inserts a batch of objects under one lock acquisition (the
// cache-sweep fast path).
func (s *sink) addAll(objs []core.Object) {
	s.mu.Lock()
	for _, o := range objs {
		s.objects[o.GK] = o
	}
	s.mu.Unlock()
}

// isDegraded reports whether a store already dropped out, so runners skip
// its remaining keys instead of hammering a failing backend.
func (s *sink) isDegraded(store string) bool {
	if s.nDegraded.Load() == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.degraded[store]
	return ok
}

// absorb classifies a fetch failure. If the caller's context is dead the
// error propagates and aborts the augmentation; any other store failure
// marks the store degraded (first reason wins) and returns nil so the
// augmentation continues without it.
func (s *sink) absorb(ctx context.Context, store string, level int, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return err
	}
	s.note(ctx, Degradation{Store: store, Reason: degradeReason(err), Level: level})
	return nil
}

// note registers one degradation (first reason per store wins), feeding the
// counter, the explain profile and the tail-sampling span flag. It is the
// shared marking path of absorb and of plan-level scatter degradations.
func (s *sink) note(ctx context.Context, d Degradation) {
	s.mu.Lock()
	_, seen := s.degraded[d.Store]
	if !seen {
		if s.degraded == nil {
			s.degraded = map[string]Degradation{}
		}
		s.degraded[d.Store] = d
		s.nDegraded.Add(1)
	}
	s.mu.Unlock()
	if !seen {
		degradedTotal.Inc()
		explain.FromContext(ctx).Degraded(d.Store, d.Reason, d.Level)
		// A degraded answer is exactly what tail sampling wants to keep, no
		// matter how fast the request finished without the dropped store.
		if sp := telemetry.SpanFromContext(ctx); sp != nil {
			sp.Mark(telemetry.FlagDegraded)
			sp.SetAttr("degraded_store", d.Store)
		}
	}
}

// degradations returns the dropped stores in deterministic order.
func (s *sink) degradations() []Degradation {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.degraded) == 0 {
		return nil
	}
	out := make([]Degradation, 0, len(s.degraded))
	for _, d := range s.degraded {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Store < out[j].Store })
	return out
}

// lookup is THE single-key read path every strategy funnels through: object
// cache, then the miss pipeline (negative cache, coalesced store fetch). The
// boolean reports whether the object exists.
func (a *Augmenter) lookup(ctx context.Context, cfg Config, gk core.GlobalKey) (core.Object, bool, error) {
	if obj, ok := a.cache.Get(gk); ok {
		explain.FromContext(ctx).CacheHits(1)
		return obj, true, nil
	}
	explain.FromContext(ctx).CacheMisses(1)
	return a.fetchMiss(ctx, cfg, gk)
}

// fetchMiss resolves a key the cache does not hold. The negative cache
// answers recently-confirmed-missing keys without a round trip; everything
// else goes to the store under the key's flight, so concurrent misses of one
// hot key cost one round trip. Callers have already accounted the cache miss.
func (a *Augmenter) fetchMiss(ctx context.Context, cfg Config, gk core.GlobalKey) (core.Object, bool, error) {
	if a.neg.Has(gk) {
		explain.FromContext(ctx).NegativeHits(1)
		negativeHitCounter(gk.Database).Inc()
		return core.Object{}, false, nil
	}
	if cfg.DisableCoalesce {
		return a.fetchStore(ctx, gk)
	}
	obj, ok, shared, err := a.flight.Do(ctx, gk, a.fetchFn)
	if shared {
		explain.FromContext(ctx).CoalescedHits(1)
		coalescedHitCounter(gk.Database).Inc()
	}
	return obj, ok, err
}

// fetchStore pays one store round trip for gk, applying lazy deletion on
// authoritative misses and feeding both caches. With coalescing on it is the
// flight body — exactly one caller per in-flight key runs it.
func (a *Augmenter) fetchStore(ctx context.Context, gk core.GlobalKey) (core.Object, bool, error) {
	rec := explain.FromContext(ctx)
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	// The fetch span is created only under an already-traced caller, so the
	// cache-hit and tracing-disabled paths stay allocation-free.
	fctx := ctx
	var sp *telemetry.Span
	if telemetry.SpanFromContext(ctx) != nil {
		fctx, sp = telemetry.StartSpan(ctx, "store.fetch")
		sp.SetAttr("store", gk.Database)
	}
	obj, err := a.poly.Fetch(fctx, gk)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			if rec != nil {
				rec.StoreOp(gk.Database, "get", 1, 0, time.Since(start), false)
			}
			a.index.RemoveObjectCtx(fctx, gk)
			a.cache.Remove(gk)
			a.neg.Put(gk)
			sp.End()
			return core.Object{}, false, nil
		}
		if rec != nil {
			rec.StoreOp(gk.Database, "get", 1, 0, time.Since(start), true)
		}
		if sp != nil {
			sp.Mark(telemetry.FlagError)
			sp.SetAttr("error", err.Error())
			sp.End()
		}
		return core.Object{}, false, err
	}
	if rec != nil {
		rec.StoreOp(gk.Database, "get", 1, 1, time.Since(start), false)
	}
	a.cache.Put(obj)
	a.neg.Forget(gk)
	sp.End()
	return obj, true, nil
}

// sweepBuf bounds the stack buffer one cache sweep flushes hits from.
const sweepBuf = 32

// sweepCache probes the cache for every key up front, bulk-adding hits to the
// sink and returning the keys that missed (in input order). On a warm cache
// an entire key list resolves here: no worker goroutines are ever spawned,
// no per-key sink locking happens, and the returned slice is nil.
func (a *Augmenter) sweepCache(ctx context.Context, keys []core.GlobalKey, s *sink) []core.GlobalKey {
	var buf [sweepBuf]core.Object
	n, hits := 0, 0
	var misses []core.GlobalKey
	for i, gk := range keys {
		if obj, ok := a.cache.Get(gk); ok {
			buf[n] = obj
			n++
			hits++
			if n == sweepBuf {
				s.addAll(buf[:n])
				n = 0
			}
			continue
		}
		if misses == nil {
			misses = make([]core.GlobalKey, 0, len(keys)-i)
		}
		misses = append(misses, gk)
	}
	if n > 0 {
		s.addAll(buf[:n])
	}
	rec := explain.FromContext(ctx)
	rec.CacheHits(hits)
	rec.CacheMisses(len(misses))
	return misses
}

// fetchGroup retrieves a group of keys belonging to one database and
// collection with a single batched query, consulting the object and negative
// caches first and lazily deleting keys the store no longer has. Batched
// round trips are not coalesced — two concurrent groups rarely carry the
// same key set — but their per-key misses still feed the negative cache, so
// single-key strategies and later batches benefit.
func (a *Augmenter) fetchGroup(ctx context.Context, database, collection string, keys []string, s *sink) error {
	rec := explain.FromContext(ctx)
	var buf [sweepBuf]core.Object
	n, hits, negHits := 0, 0, 0
	missing := keys[:0:0]
	for _, k := range keys {
		gk := core.NewGlobalKey(database, collection, k)
		if obj, ok := a.cache.Get(gk); ok {
			buf[n] = obj
			n++
			hits++
			if n == sweepBuf {
				s.addAll(buf[:n])
				n = 0
			}
			continue
		}
		if a.neg.Has(gk) {
			negHits++
			continue
		}
		missing = append(missing, k)
	}
	if n > 0 {
		s.addAll(buf[:n])
	}
	rec.CacheHits(hits)
	rec.CacheMisses(len(keys) - hits)
	if negHits > 0 {
		rec.NegativeHits(negHits)
		negativeHitCounter(database).Add(uint64(negHits))
	}
	if len(missing) == 0 {
		return nil
	}
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	fctx := ctx
	var sp *telemetry.Span
	if telemetry.SpanFromContext(ctx) != nil {
		fctx, sp = telemetry.StartSpan(ctx, "store.fetchbatch")
		sp.SetAttr("store", database)
		sp.SetAttr("keys", strconv.Itoa(len(missing)))
	}
	objs, err := a.poly.FetchBatch(fctx, database, collection, missing)
	if rec != nil {
		rec.StoreOp(database, "getbatch", len(missing), len(objs), time.Since(start), err != nil)
	}
	if err != nil {
		if sp != nil {
			sp.Mark(telemetry.FlagError)
			sp.SetAttr("error", err.Error())
			sp.End()
		}
		return err
	}
	found := make(map[string]bool, len(objs))
	for _, o := range objs {
		found[o.GK.Key] = true
		a.cache.Put(o)
		a.neg.Forget(o.GK)
	}
	s.add(objs...)
	for _, k := range missing {
		if !found[k] {
			gk := core.NewGlobalKey(database, collection, k)
			a.index.RemoveObjectCtx(fctx, gk)
			a.cache.Remove(gk)
			a.neg.Put(gk)
		}
	}
	sp.End()
	return nil
}

// Rank presents the augmentation the way the paper's interface does: the
// probability of each element drives colors and rankings. It returns the
// augmented objects with probability at least minProb, truncated to the
// topK strongest (topK <= 0 means no truncation). The receiver is not
// modified.
func (a *Answer) Rank(minProb float64, topK int) []AugmentedObject {
	out := make([]AugmentedObject, 0, len(a.Augmented))
	for _, ao := range a.Augmented {
		if ao.Prob < minProb {
			// Augmented answers are probability-ordered: everything after
			// the first miss is below the threshold too.
			break
		}
		out = append(out, ao)
		if topK > 0 && len(out) == topK {
			break
		}
	}
	return out
}
