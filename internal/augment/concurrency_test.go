package augment

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"quepa/internal/core"
)

// TestMultipleInstancesInParallel models the paper's multi-instance
// deployment (Section III-A: "it is easy to deploy multiple instances of
// the system that can answer independent queries in parallel; each instance
// has its own A' index replica and its own augmenter"): several augmenters
// over the same polystore answer concurrent queries correctly.
func TestMultipleInstancesInParallel(t *testing.T) {
	poly, ix, db, query := syntheticPolystore(t, 4, 60, 99)
	want := answerSignature(t, New(poly, ix, Config{Strategy: Sequential}), db, query)

	const instances = 6
	var wg sync.WaitGroup
	errs := make(chan string, instances*4)
	for i := 0; i < instances; i++ {
		cfg := Config{
			Strategy:    Strategies[i%len(Strategies)],
			BatchSize:   8,
			ThreadsSize: 3,
			CacheSize:   64,
		}
		wg.Add(1)
		go func(cfg Config) {
			defer wg.Done()
			aug := New(poly, ix, cfg)
			for rep := 0; rep < 4; rep++ {
				answer, err := aug.Search(ctx, db, query, 1)
				if err != nil {
					errs <- fmt.Sprintf("%v: %v", cfg, err)
					return
				}
				got := ""
				for _, ao := range answer.Augmented {
					got += fmt.Sprintf("%s:%.6f;", ao.Object.GK, ao.Prob)
				}
				if got != want {
					errs <- fmt.Sprintf("%v rep %d: answer diverged", cfg, rep)
					return
				}
			}
		}(cfg)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSetConfigDuringSearch pins down the optimizer/request interleaving of
// the server: the adaptive optimizer swaps configurations (SetConfig) while
// request goroutines are mid-Search on the SAME augmenter. Run under -race
// this catches unsynchronized cfg access; functionally, every answer must
// still match the sequential reference because each query snapshots one
// coherent configuration at entry and all strategies agree.
func TestSetConfigDuringSearch(t *testing.T) {
	poly, ix, db, query := syntheticPolystore(t, 4, 60, 7)
	want := answerSignature(t, New(poly, ix, Config{Strategy: Sequential}), db, query)
	aug := New(poly, ix, Config{Strategy: Sequential, CacheSize: 64})

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			aug.SetConfig(Config{
				Strategy:    Strategies[i%len(Strategies)],
				BatchSize:   1 + i%16,
				ThreadsSize: 1 + i%8,
				CacheSize:   64 + i%32,
			})
		}
	}()

	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 25; rep++ {
				answer, err := aug.Search(ctx, db, query, 1)
				if err != nil {
					errs <- err.Error()
					return
				}
				got := ""
				for _, ao := range answer.Augmented {
					got += fmt.Sprintf("%s:%.6f;", ao.Object.GK, ao.Prob)
				}
				if got != want {
					errs <- "answer diverged under concurrent SetConfig"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestStrategiesAgreeQuick drives the strategy-equivalence property over
// random polystores (testing/quick generates the seeds).
func TestStrategiesAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		poly, ix, db, query := syntheticPolystore(t, 3, 25, seed)
		want := answerSignature(t, New(poly, ix, Config{Strategy: Sequential}), db, query)
		for _, s := range Strategies[1:] {
			aug := New(poly, ix, Config{Strategy: s, BatchSize: 4, ThreadsSize: 3})
			if answerSignature(t, aug, db, query) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestThreadsExceedWork: worker pools larger than the work must not hang or
// mis-compute.
func TestThreadsExceedWork(t *testing.T) {
	poly, ix := polyphony(t)
	for _, s := range []Strategy{Inner, Outer, OuterBatch, OuterInner} {
		aug := New(poly, ix, Config{Strategy: s, ThreadsSize: 64, BatchSize: 1000})
		answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(answer.Augmented) == 0 {
			t.Errorf("%v: empty augmentation", s)
		}
	}
}

// TestBatchSizeOne degenerates batching to per-key queries and must still
// agree with the reference.
func TestBatchSizeOne(t *testing.T) {
	poly, ix, db, query := syntheticPolystore(t, 3, 30, 5)
	want := answerSignature(t, New(poly, ix, Config{Strategy: Sequential}), db, query)
	got := answerSignature(t, New(poly, ix, Config{Strategy: Batch, BatchSize: 1}), db, query)
	if got != want {
		t.Error("BATCH_SIZE=1 diverged from sequential")
	}
}

// TestSharedCacheAcrossQueries: one augmenter reused for different queries
// keeps returning correct (not stale-mixed) answers.
func TestSharedCacheAcrossQueries(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential, CacheSize: 100})
	q1 := `SELECT * FROM inventory WHERE name LIKE '%wish%'`
	q2 := `SELECT * FROM sales WHERE total > 15`
	a1, err := aug.Search(ctx, "transactions", q1, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := aug.Search(ctx, "transactions", q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The two answers have different originals and their augmentations are
	// rooted at different objects.
	if a1.Original[0].GK == a2.Original[0].GK {
		t.Fatal("fixture broken")
	}
	for _, ao := range a2.Augmented {
		if ao.Object.GK == a2.Original[0].GK {
			t.Error("origin leaked into augmentation after cache reuse")
		}
	}
	// Re-running q1 warm matches the cold answer.
	a1b, err := aug.Search(ctx, "transactions", q1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1b.Augmented) != len(a1.Augmented) {
		t.Errorf("warm re-run changed the answer: %d vs %d", len(a1b.Augmented), len(a1.Augmented))
	}
	for i := range a1.Augmented {
		if !a1.Augmented[i].Object.Equal(a1b.Augmented[i].Object) {
			t.Errorf("warm object %d differs", i)
		}
	}
}

// TestAnswerOrderingInvariant: for every strategy, the augmented answer is
// sorted by probability with deterministic key tie-breaks.
func TestAnswerOrderingInvariant(t *testing.T) {
	poly, ix, db, query := syntheticPolystore(t, 4, 50, 21)
	for _, s := range Strategies {
		aug := New(poly, ix, Config{Strategy: s, BatchSize: 8, ThreadsSize: 4})
		answer, err := aug.Search(ctx, db, query, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(answer.Augmented); i++ {
			prev, cur := answer.Augmented[i-1], answer.Augmented[i]
			if prev.Prob < cur.Prob {
				t.Fatalf("%v: probabilities out of order at %d", s, i)
			}
			if prev.Prob == cur.Prob && prev.Object.GK.Compare(cur.Object.GK) >= 0 {
				t.Fatalf("%v: tie not broken by key at %d", s, i)
			}
		}
	}
}

// TestAugmentObjectsDirect exercises the operator without a query: α applied
// to explicit objects (the paper's Definition 2 applied programmatically).
func TestAugmentObjectsDirect(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	origin, err := poly.Fetch(ctx, core.MustParseGlobalKey("catalogue.albums.d1"))
	if err != nil {
		t.Fatal(err)
	}
	out, degraded, err := aug.AugmentObjects(ctx, []core.Object{origin}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty augmentation of a linked object")
	}
	if degraded != nil {
		t.Errorf("healthy run degraded: %v", degraded)
	}
	// Empty input is fine.
	out, degraded, err = aug.AugmentObjects(ctx, nil, 3)
	if err != nil || out != nil || degraded != nil {
		t.Errorf("nil input: %v, %v, %v", out, degraded, err)
	}
}
