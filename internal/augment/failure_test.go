package augment

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

// faultyStore wraps a set of objects and fails Get/GetBatch after a given
// number of successful calls — simulating a store that degrades mid-query.
type faultyStore struct {
	name      string
	objects   map[string]core.Object // key -> object (single collection "c")
	failAfter int64
	calls     atomic.Int64
}

var errStoreDown = errors.New("store down")

func newFaultyStore(name string, keys int, failAfter int64) *faultyStore {
	f := &faultyStore{name: name, objects: map[string]core.Object{}, failAfter: failAfter}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		f.objects[k] = core.NewObject(core.NewGlobalKey(name, "c", k), map[string]string{"v": k})
	}
	return f
}

func (f *faultyStore) Name() string          { return f.name }
func (f *faultyStore) Kind() core.StoreKind  { return core.KindKeyValue }
func (f *faultyStore) Collections() []string { return []string{"c"} }

func (f *faultyStore) fail() bool {
	return f.calls.Add(1) > f.failAfter
}

func (f *faultyStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	if f.fail() {
		return core.Object{}, errStoreDown
	}
	o, ok := f.objects[key]
	if !ok {
		return core.Object{}, core.ErrNotFound
	}
	return o, nil
}

func (f *faultyStore) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.fail() {
		return nil, errStoreDown
	}
	var out []core.Object
	for _, k := range keys {
		if o, ok := f.objects[k]; ok {
			out = append(out, o)
		}
	}
	return out, nil
}

func (f *faultyStore) Query(ctx context.Context, q string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The local query itself always works: failures hit the fetch phase.
	var out []core.Object
	for i := 0; i < 3; i++ {
		out = append(out, f.objects[fmt.Sprintf("k%d", i)])
	}
	return out, nil
}

// faultyFixture: two stores, the remote one failing after `failAfter`
// fetches; every queried object links to several remote ones.
func faultyFixture(t *testing.T, failAfter int64) (*core.Polystore, *aindex.Index) {
	t.Helper()
	poly := core.NewPolystore()
	local := newFaultyStore("local", 3, 1<<40) // never fails
	remote := newFaultyStore("remote", 40, failAfter)
	if err := poly.Register(local); err != nil {
		t.Fatal(err)
	}
	if err := poly.Register(remote); err != nil {
		t.Fatal(err)
	}
	ix := aindex.New()
	for i := 0; i < 3; i++ {
		src := core.NewGlobalKey("local", "c", fmt.Sprintf("k%d", i))
		for j := 0; j < 8; j++ {
			dst := core.NewGlobalKey("remote", "c", fmt.Sprintf("k%d", i*8+j))
			if err := ix.Insert(core.NewMatching(src, dst, 0.7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return poly, ix
}

// TestAllStrategiesPropagateStoreErrors: a mid-flight store failure must
// surface as an error from Search for every execution strategy — no hangs,
// no silently truncated answers.
func TestAllStrategiesPropagateStoreErrors(t *testing.T) {
	for _, cfg := range []Config{
		{Strategy: Sequential},
		{Strategy: Batch, BatchSize: 4},
		{Strategy: Inner, ThreadsSize: 3},
		{Strategy: Outer, ThreadsSize: 3},
		{Strategy: OuterBatch, BatchSize: 4, ThreadsSize: 3},
		{Strategy: OuterInner, ThreadsSize: 4},
	} {
		poly, ix := faultyFixture(t, 2) // fail from the third fetch on
		aug := New(poly, ix, cfg)
		_, err := aug.Search(ctx, "local", "SCAN c", 0)
		if err == nil {
			t.Errorf("%v: degraded store did not surface an error", cfg)
			continue
		}
		if !errors.Is(err, errStoreDown) {
			t.Errorf("%v: error chain lost the cause: %v", cfg, err)
		}
	}
}

// TestHealthyRunAfterFailure: the augmenter holds no poisoned state — the
// same instance succeeds once the store recovers.
func TestHealthyRunAfterFailure(t *testing.T) {
	poly, ix := faultyFixture(t, 2)
	aug := New(poly, ix, Config{Strategy: OuterBatch, BatchSize: 4, ThreadsSize: 3})
	if _, err := aug.Search(ctx, "local", "SCAN c", 0); err == nil {
		t.Fatal("expected failure")
	}
	// "Repair" the store by raising its failure threshold.
	s, err := poly.Database("remote")
	if err != nil {
		t.Fatal(err)
	}
	s.(*faultyStore).failAfter = 1 << 40
	answer, err := aug.Search(ctx, "local", "SCAN c", 0)
	if err != nil {
		t.Fatalf("recovered store still failing: %v", err)
	}
	if len(answer.Augmented) != 24 {
		t.Errorf("recovered answer = %d objects, want 24", len(answer.Augmented))
	}
}

// TestErrorsDoNotCorruptIndex: fetch errors (unlike not-found results) must
// not trigger lazy deletion.
func TestErrorsDoNotCorruptIndex(t *testing.T) {
	poly, ix := faultyFixture(t, 0) // every fetch fails
	edgesBefore := ix.EdgeCount()
	aug := New(poly, ix, Config{Strategy: Sequential})
	if _, err := aug.Search(ctx, "local", "SCAN c", 0); err == nil {
		t.Fatal("expected failure")
	}
	if ix.EdgeCount() != edgesBefore {
		t.Errorf("store errors mutated the index: %d -> %d edges", edgesBefore, ix.EdgeCount())
	}
}
