package augment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

// faultyStore wraps a set of objects and fails Get/GetBatch after a given
// number of successful calls — simulating a store that degrades mid-query.
type faultyStore struct {
	name      string
	objects   map[string]core.Object // key -> object (single collection "c")
	failAfter int64
	calls     atomic.Int64
}

var errStoreDown = errors.New("store down")

func newFaultyStore(name string, keys int, failAfter int64) *faultyStore {
	f := &faultyStore{name: name, objects: map[string]core.Object{}, failAfter: failAfter}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		f.objects[k] = core.NewObject(core.NewGlobalKey(name, "c", k), map[string]string{"v": k})
	}
	return f
}

func (f *faultyStore) Name() string          { return f.name }
func (f *faultyStore) Kind() core.StoreKind  { return core.KindKeyValue }
func (f *faultyStore) Collections() []string { return []string{"c"} }

func (f *faultyStore) fail() bool {
	return f.calls.Add(1) > f.failAfter
}

func (f *faultyStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := ctx.Err(); err != nil {
		return core.Object{}, err
	}
	if f.fail() {
		return core.Object{}, errStoreDown
	}
	o, ok := f.objects[key]
	if !ok {
		return core.Object{}, core.ErrNotFound
	}
	return o, nil
}

func (f *faultyStore) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.fail() {
		return nil, errStoreDown
	}
	var out []core.Object
	for _, k := range keys {
		if o, ok := f.objects[k]; ok {
			out = append(out, o)
		}
	}
	return out, nil
}

func (f *faultyStore) Query(ctx context.Context, q string) ([]core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The local query itself always works: failures hit the fetch phase.
	var out []core.Object
	for i := 0; i < 3; i++ {
		out = append(out, f.objects[fmt.Sprintf("k%d", i)])
	}
	return out, nil
}

// faultyFixture: two stores, the remote one failing after `failAfter`
// fetches; every queried object links to several remote ones.
func faultyFixture(t *testing.T, failAfter int64) (*core.Polystore, *aindex.Index) {
	t.Helper()
	poly := core.NewPolystore()
	local := newFaultyStore("local", 3, 1<<40) // never fails
	remote := newFaultyStore("remote", 40, failAfter)
	if err := poly.Register(local); err != nil {
		t.Fatal(err)
	}
	if err := poly.Register(remote); err != nil {
		t.Fatal(err)
	}
	ix := aindex.New()
	for i := 0; i < 3; i++ {
		src := core.NewGlobalKey("local", "c", fmt.Sprintf("k%d", i))
		for j := 0; j < 8; j++ {
			dst := core.NewGlobalKey("remote", "c", fmt.Sprintf("k%d", i*8+j))
			if err := ix.Insert(core.NewMatching(src, dst, 0.7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return poly, ix
}

func assertProbOrdered(t *testing.T, aug []AugmentedObject) {
	t.Helper()
	ordered := sort.SliceIsSorted(aug, func(i, j int) bool {
		if aug[i].Prob != aug[j].Prob {
			return aug[i].Prob > aug[j].Prob
		}
		return aug[i].Object.GK.Compare(aug[j].Object.GK) < 0
	})
	if !ordered {
		t.Error("augmented answer lost its probability ordering")
	}
}

// TestAllStrategiesDegradeFaultyStore: a mid-flight store failure yields a
// partial answer — not an error — for every execution strategy: the healthy
// results survive, the failing store lands in the degraded section, and the
// ordering invariant holds.
func TestAllStrategiesDegradeFaultyStore(t *testing.T) {
	for _, cfg := range []Config{
		{Strategy: Sequential},
		{Strategy: Batch, BatchSize: 4},
		{Strategy: Inner, ThreadsSize: 3},
		{Strategy: Outer, ThreadsSize: 3},
		{Strategy: OuterBatch, BatchSize: 4, ThreadsSize: 3},
		{Strategy: OuterInner, ThreadsSize: 4},
	} {
		poly, ix := faultyFixture(t, 2) // fail from the third fetch on
		aug := New(poly, ix, cfg)
		answer, err := aug.Search(ctx, "local", "SCAN c", 0)
		if err != nil {
			t.Errorf("%v: store fault aborted the search: %v", cfg, err)
			continue
		}
		if len(answer.Original) != 3 {
			t.Errorf("%v: original results lost: %d", cfg, len(answer.Original))
		}
		if len(answer.Augmented) >= 24 {
			t.Errorf("%v: failing store contributed a full answer (%d objects)", cfg, len(answer.Augmented))
		}
		if !answer.Partial() || len(answer.Degraded) != 1 {
			t.Errorf("%v: degraded = %v, want exactly the remote store", cfg, answer.Degraded)
			continue
		}
		d := answer.Degraded[0]
		if d.Store != "remote" || d.Reason != errStoreDown.Error() || d.Level != 1 {
			t.Errorf("%v: degradation = %+v", cfg, d)
		}
		assertProbOrdered(t, answer.Augmented)
	}
}

// TestDegradedStoreNotHammered: once a store drops out, its remaining keys
// are skipped rather than each burning a doomed round trip.
func TestDegradedStoreNotHammered(t *testing.T) {
	poly, ix := faultyFixture(t, 0) // every fetch fails
	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "local", "SCAN c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Augmented) != 0 || len(answer.Degraded) != 1 {
		t.Fatalf("answer = %d augmented, degraded %v", len(answer.Augmented), answer.Degraded)
	}
	s, _ := poly.Database("remote")
	if calls := s.(*faultyStore).calls.Load(); calls != 1 {
		t.Errorf("degraded store was called %d times, want 1", calls)
	}
}

// TestHealthyRunAfterFault: the augmenter holds no poisoned state — the same
// instance returns a full answer once the store recovers.
func TestHealthyRunAfterFault(t *testing.T) {
	poly, ix := faultyFixture(t, 2)
	aug := New(poly, ix, Config{Strategy: OuterBatch, BatchSize: 4, ThreadsSize: 3})
	answer, err := aug.Search(ctx, "local", "SCAN c", 0)
	if err != nil {
		t.Fatalf("faulty run aborted: %v", err)
	}
	if !answer.Partial() {
		t.Fatal("faulty run was not marked partial")
	}
	// "Repair" the store by raising its failure threshold.
	s, err := poly.Database("remote")
	if err != nil {
		t.Fatal(err)
	}
	s.(*faultyStore).failAfter = 1 << 40
	answer, err = aug.Search(ctx, "local", "SCAN c", 0)
	if err != nil {
		t.Fatalf("recovered store still failing: %v", err)
	}
	if len(answer.Augmented) != 24 {
		t.Errorf("recovered answer = %d objects, want 24", len(answer.Augmented))
	}
	if answer.Partial() {
		t.Errorf("recovered answer still degraded: %v", answer.Degraded)
	}
}

// TestFaultsDoNotCorruptIndex: fetch errors (unlike not-found results) must
// not trigger lazy deletion, even as they degrade instead of abort.
func TestFaultsDoNotCorruptIndex(t *testing.T) {
	poly, ix := faultyFixture(t, 0) // every fetch fails
	edgesBefore := ix.EdgeCount()
	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "local", "SCAN c", 0)
	if err != nil {
		t.Fatalf("faulty run aborted: %v", err)
	}
	if !answer.Partial() {
		t.Fatal("faulty run was not marked partial")
	}
	if ix.EdgeCount() != edgesBefore {
		t.Errorf("store errors mutated the index: %d -> %d edges", edgesBefore, ix.EdgeCount())
	}
}

// TestFaultCancellationStillAborts: degradation is for store failures only —
// a dead caller context must abort the augmentation, not produce a bogus
// partial answer.
func TestFaultCancellationStillAborts(t *testing.T) {
	poly, ix := faultyFixture(t, 1<<40)
	aug := New(poly, ix, Config{Strategy: Sequential})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := aug.Search(cctx, "local", "SCAN c", 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled search = %v, want context.Canceled", err)
	}
}

// TestFaultAtDistanceTwoKeepsNearerResults pins the partial-result contract
// across levels: with a chain local → mid → far and the far store down, a
// deeper search still returns the mid store's objects in unchanged
// probability order, plus one degraded entry naming the far store and the
// hop distance at which it failed.
func TestFaultAtDistanceTwoKeepsNearerResults(t *testing.T) {
	poly := core.NewPolystore()
	local := newFaultyStore("local", 3, 1<<40)
	mid := newFaultyStore("mid", 6, 1<<40)
	far := newFaultyStore("far", 6, 0) // always down
	for _, s := range []core.Store{local, mid, far} {
		if err := poly.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	ix := aindex.New()
	insert := func(src, dst core.GlobalKey, p float64) {
		t.Helper()
		if err := ix.Insert(core.NewMatching(src, dst, p)); err != nil {
			t.Fatal(err)
		}
	}
	// Each local.ki links to two mid objects at distinct probabilities; each
	// mid.ki chains on to one far object (reached at hop distance 2).
	for i := 0; i < 3; i++ {
		lk := core.NewGlobalKey("local", "c", fmt.Sprintf("k%d", i))
		m0 := core.NewGlobalKey("mid", "c", fmt.Sprintf("k%d", 2*i))
		m1 := core.NewGlobalKey("mid", "c", fmt.Sprintf("k%d", 2*i+1))
		insert(lk, m0, 0.9)
		insert(lk, m1, 0.5)
		insert(m0, core.NewGlobalKey("far", "c", fmt.Sprintf("k%d", 2*i)), 0.8)
	}

	for _, cfg := range []Config{
		{Strategy: Sequential},
		{Strategy: Batch, BatchSize: 4},
		{Strategy: OuterInner, ThreadsSize: 4},
	} {
		aug := New(poly, ix, cfg)
		answer, err := aug.Search(ctx, "local", "SCAN c", 1) // reach hop distance 2
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		// All six mid objects survive the far store's death.
		var midObjs []AugmentedObject
		for _, ao := range answer.Augmented {
			if ao.Object.GK.Database == "mid" {
				midObjs = append(midObjs, ao)
			}
			if ao.Object.GK.Database == "far" {
				t.Errorf("%v: dead store contributed %v", cfg, ao.Object.GK)
			}
		}
		if len(midObjs) != 6 {
			t.Errorf("%v: healthy mid results = %d, want 6", cfg, len(midObjs))
		}
		// Survivors keep their probability ordering: the three 0.9 links
		// come before the three 0.5 links.
		assertProbOrdered(t, answer.Augmented)
		for i, ao := range midObjs {
			want := 0.9
			if i >= 3 {
				want = 0.5
			}
			if ao.Prob != want {
				t.Errorf("%v: survivor %d prob = %v, want %v", cfg, i, ao.Prob, want)
			}
		}
		if len(answer.Degraded) != 1 {
			t.Fatalf("%v: degraded = %v, want one entry", cfg, answer.Degraded)
		}
		d := answer.Degraded[0]
		if d.Store != "far" || d.Level != 2 {
			t.Errorf("%v: degradation = %+v, want far at distance 2", cfg, d)
		}
	}
}
