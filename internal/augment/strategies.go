package augment

import (
	"context"
	"sync"
	"sync/atomic"

	"quepa/internal/core"
)

// This file contains the six execution strategies of Section IV. They all
// consume a plan (the deduplicated fetch work) and fill a sink; they differ
// only in scheduling. Each runner receives the Config snapshot taken at
// AugmentObjects entry rather than reading a.cfg, so a concurrent SetConfig
// from the optimizer cannot change parameters mid-run:
//
//	SEQUENTIAL   one direct-access query per key, in order (Fig. 6(a))
//	BATCH        keys grouped per store, flushed at BATCH_SIZE (Fig. 6(b))
//	INNER        per origin, its keys fetched by THREADS_SIZE workers (Fig. 6(c))
//	OUTER        a worker per origin, keys fetched sequentially (Fig. 7(a))
//	OUTER-BATCH  main fills groups, workers flush them (Fig. 7(b))
//	OUTER-INNER  THREADS_SIZE/2 outer workers × THREADS_SIZE/2 inner workers (Fig. 7(c))

// Store failures degrade rather than abort: every runner funnels fetch
// errors through sink.absorb, which drops the failing store's contribution
// and lets the healthy stores complete. Only a dead caller context still
// propagates (absorb returns it), which is what errOnce now carries.

func (a *Augmenter) runSequential(ctx context.Context, cfg Config, p *plan, s *sink) error {
	return a.fetchMissesInto(ctx, cfg, p, s, a.sweepCache(ctx, p.order, s))
}

// fetchMissesInto resolves cache-missed keys in order — one (coalesced) store
// round trip each — degrading failing stores instead of aborting. It is the
// shared tail of every single-key strategy: the sweep already served the
// hits, so only the misses reach here. A non-nil return means the caller's
// context died.
func (a *Augmenter) fetchMissesInto(ctx context.Context, cfg Config, p *plan, s *sink, misses []core.GlobalKey) error {
	for _, gk := range misses {
		if s.isDegraded(gk.Database) {
			continue
		}
		obj, ok, err := a.fetchMiss(ctx, cfg, gk)
		if err != nil {
			if err := s.absorb(ctx, gk.Database, p.dist(gk), err); err != nil {
				return err
			}
			continue
		}
		if ok {
			s.add(obj)
		}
	}
	return nil
}

// group identifies a batch bucket: one target database and collection.
type group struct {
	database   string
	collection string
}

func (a *Augmenter) runBatch(ctx context.Context, cfg Config, p *plan, s *sink) error {
	flush := func(g group, keys []string) error {
		if s.isDegraded(g.database) {
			return nil
		}
		if err := a.fetchGroup(ctx, g.database, g.collection, keys, s); err != nil {
			return s.absorb(ctx, g.database, p.groupDist(g, keys), err)
		}
		return nil
	}
	groups := map[group][]string{}
	for _, gk := range p.order {
		g := group{database: gk.Database, collection: gk.Collection}
		groups[g] = append(groups[g], gk.Key)
		if len(groups[g]) >= cfg.BatchSize {
			keys := groups[g]
			delete(groups, g)
			if err := flush(g, keys); err != nil {
				return err
			}
		}
	}
	// Flush the incomplete groups at process end, iterating in the
	// deterministic order of first appearance.
	for _, gk := range p.order {
		g := group{database: gk.Database, collection: gk.Collection}
		keys, ok := groups[g]
		if !ok {
			continue
		}
		delete(groups, g)
		if err := flush(g, keys); err != nil {
			return err
		}
	}
	return nil
}

// runInner iterates over the origins in the main goroutine; the keys of each
// origin are fetched by a pool of THREADS_SIZE workers before moving on.
func (a *Augmenter) runInner(ctx context.Context, cfg Config, p *plan, s *sink) error {
	for _, keys := range p.byOrigin {
		if err := a.parallelFetch(ctx, cfg, p, keys, cfg.ThreadsSize, s); err != nil {
			return err
		}
	}
	return nil
}

// runOuter launches a goroutine per origin (bounded by THREADS_SIZE); each
// sweeps its keys through the cache, then fetches the misses sequentially.
func (a *Augmenter) runOuter(ctx context.Context, cfg Config, p *plan, s *sink) error {
	return a.forEachOrigin(ctx, p, cfg.ThreadsSize, func(ctx context.Context, keys []core.GlobalKey) error {
		return a.fetchMissesInto(ctx, cfg, p, s, a.sweepCache(ctx, keys, s))
	})
}

// runOuterBatch has the main goroutine fill per-store groups while
// THREADS_SIZE workers flush full groups concurrently.
func (a *Augmenter) runOuterBatch(ctx context.Context, cfg Config, p *plan, s *sink) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		g    group
		keys []string
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	errOnce := newErrOnce(cancel)
	for w := 0; w < cfg.ThreadsSize; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if s.isDegraded(j.g.database) {
					continue
				}
				if err := a.fetchGroup(ctx, j.g.database, j.g.collection, j.keys, s); err != nil {
					if err := s.absorb(ctx, j.g.database, p.groupDist(j.g, j.keys), err); err != nil {
						errOnce.set(err)
					}
					// Keep draining so the producer never blocks.
				}
			}
		}()
	}

	groups := map[group][]string{}
	submit := func(g group, keys []string) bool {
		select {
		case jobs <- job{g: g, keys: keys}:
			return true
		case <-ctx.Done():
			return false
		}
	}
produce:
	for _, gk := range p.order {
		g := group{database: gk.Database, collection: gk.Collection}
		groups[g] = append(groups[g], gk.Key)
		if len(groups[g]) >= cfg.BatchSize {
			keys := groups[g]
			delete(groups, g)
			if !submit(g, keys) {
				break produce
			}
		}
	}
	for _, gk := range p.order {
		g := group{database: gk.Database, collection: gk.Collection}
		keys, ok := groups[g]
		if !ok {
			continue
		}
		delete(groups, g)
		if !submit(g, keys) {
			break
		}
	}
	close(jobs)
	wg.Wait()
	if err := errOnce.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// runOuterInner splits THREADS_SIZE between the two levels of parallelism:
// half the threads process origins concurrently, and each of those uses the
// other half as inner fetch parallelism for its keys.
func (a *Augmenter) runOuterInner(ctx context.Context, cfg Config, p *plan, s *sink) error {
	outer := cfg.ThreadsSize / 2
	if outer < 1 {
		outer = 1
	}
	inner := cfg.ThreadsSize - outer
	if inner < 1 {
		inner = 1
	}
	return a.forEachOrigin(ctx, p, outer, func(ctx context.Context, keys []core.GlobalKey) error {
		return a.parallelFetch(ctx, cfg, p, keys, inner, s)
	})
}

// forEachOrigin runs fn over every origin's key list with at most `workers`
// concurrent invocations, stopping at the first error.
func (a *Augmenter) forEachOrigin(ctx context.Context, p *plan, workers int, fn func(context.Context, []core.GlobalKey) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errOnce := newErrOnce(cancel)
	for _, keys := range p.byOrigin {
		if len(keys) == 0 {
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			if err := errOnce.get(); err != nil {
				return err
			}
			return ctx.Err()
		}
		wg.Add(1)
		go func(keys []core.GlobalKey) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(ctx, keys); err != nil {
				errOnce.set(err)
			}
		}(keys)
	}
	wg.Wait()
	if err := errOnce.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// parallelFetch retrieves a key list with a pool of `workers` goroutines.
// The cache is swept up front in the calling goroutine: on a warm cache the
// whole list resolves without spawning anything, and only the misses are
// handed to workers. Workers claim misses by bumping a shared atomic index —
// no feed channel, no per-key channel handoff.
func (a *Augmenter) parallelFetch(ctx context.Context, cfg Config, p *plan, keys []core.GlobalKey, workers int, s *sink) error {
	if len(keys) == 0 {
		return nil
	}
	misses := a.sweepCache(ctx, keys, s)
	if len(misses) == 0 {
		return ctx.Err()
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		if err := a.fetchMissesInto(ctx, cfg, p, s, misses); err != nil {
			return err
		}
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	errOnce := newErrOnce(cancel)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(misses) {
					return
				}
				gk := misses[i]
				if s.isDegraded(gk.Database) {
					continue
				}
				obj, ok, err := a.fetchMiss(ctx, cfg, gk)
				if err != nil {
					if err := s.absorb(ctx, gk.Database, p.dist(gk), err); err != nil {
						errOnce.set(err)
						return
					}
					continue
				}
				if ok {
					s.add(obj)
				}
			}
		}()
	}
	wg.Wait()
	if err := errOnce.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// errOnce records the first error and cancels the shared context.
type errOnce struct {
	once   sync.Once
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func newErrOnce(cancel context.CancelFunc) *errOnce {
	return &errOnce{cancel: cancel}
}

func (e *errOnce) set(err error) {
	if err == nil {
		return
	}
	e.once.Do(func() {
		e.mu.Lock()
		e.err = err
		e.mu.Unlock()
		e.cancel()
	})
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
