package augment

import (
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

// TestExplorationSession walks the paper's Example 5 pattern: start from a
// query, expand an object, then expand one of the objects it revealed.
func TestExplorationSession(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Inner, ThreadsSize: 2, CacheSize: 50})
	tracker := aindex.NewPathTracker(ix, aindex.PromotionPolicy{BaseThreshold: 100, Decay: 0, MinThreshold: 100})

	sess, start, err := aug.Explore(ctx, "transactions", `SELECT * FROM sales WHERE total > 15`, tracker)
	if err != nil {
		t.Fatal(err)
	}
	if len(start) != 1 || start[0].GK.Key != "s8" {
		t.Fatalf("start = %v", start)
	}

	// Step 1: expand the sale.
	links, err := sess.Step(ctx, start[0].GK)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) == 0 {
		t.Fatal("no links from s8")
	}
	// Ordered by probability.
	for i := 1; i < len(links); i++ {
		if links[i-1].Prob < links[i].Prob {
			t.Error("links not ordered by probability")
		}
	}

	// Step 2: follow the top link.
	links2, err := sess.Step(ctx, links[0].Object.GK)
	if err != nil {
		t.Fatal(err)
	}
	_ = links2
	if got := sess.Path(); len(got) != 2 {
		t.Errorf("path = %v", got)
	}

	// Stepping to an object that was not offered fails.
	if _, err := sess.Step(ctx, core.MustParseGlobalKey("discount.drop.zzz")); err == nil {
		t.Error("step to unoffered object should fail")
	}

	sess.Finish()
	if _, err := sess.Step(ctx, start[0].GK); err == nil {
		t.Error("step after Finish should fail")
	}
	if sess.Finish() {
		t.Error("second Finish should be a no-op")
	}
}

func TestExplorationPromotesPopularPath(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	policy := aindex.PromotionPolicy{BaseThreshold: 2, Decay: 0, MinThreshold: 2}
	tracker := aindex.NewPathTracker(ix, policy)

	gk := core.MustParseGlobalKey
	s8 := gk("transactions.sales.s8")
	a32 := gk("transactions.inventory.a32")
	n1 := gk("similar-items.items.n1")
	if _, ok := ix.Relation(s8, n1); ok {
		t.Skip("fixture already has the shortcut (materialization changed)")
	}

	walk := func() {
		sess, start, err := aug.Explore(ctx, "transactions", `SELECT * FROM sales WHERE total > 15`, tracker)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Step(ctx, start[0].GK); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Step(ctx, a32); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Step(ctx, n1); err != nil {
			t.Fatal(err)
		}
		sess.Finish()
	}
	walk()
	if _, ok := ix.Relation(s8, n1); ok {
		t.Fatal("shortcut promoted too early")
	}
	walk()
	r, ok := ix.Relation(s8, n1)
	if !ok {
		t.Fatal("popular path not promoted")
	}
	if r.Type != core.Matching {
		t.Errorf("promoted relation type = %v", r.Type)
	}
}

func TestExploreWithNilTracker(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{})
	sess, start, err := aug.Explore(ctx, "transactions", `SELECT * FROM sales WHERE total > 15`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(ctx, start[0].GK); err != nil {
		t.Fatal(err)
	}
	if sess.Finish() {
		t.Error("Finish with nil tracker should report no promotion")
	}
}

func TestExploreInvalidQuery(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{})
	if _, _, err := aug.Explore(ctx, "transactions", `SELECT SUM(total) FROM sales`, nil); err == nil {
		t.Error("aggregate exploration should fail validation")
	}
}

func TestStepFetchesFreshOrigin(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{})
	sess, _, err := aug.Explore(ctx, "transactions", `SELECT * FROM sales WHERE total > 15`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First step may target any object of the start result; an unknown
	// object fails at fetch.
	if _, err := sess.Step(ctx, core.MustParseGlobalKey("transactions.sales.ghost")); err == nil {
		t.Error("step to missing object should fail")
	}
}
