package augment

import (
	"context"
	"testing"

	"quepa/internal/explain"
)

// TestSearchRecordsProfile runs Lucy's query with an explain Recorder on the
// context and checks every layer attributed its work to the profile.
func TestSearchRecordsProfile(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Batch, BatchSize: 16, CacheSize: 64})

	rctx, rec := explain.WithRecorder(context.Background(), "/search")
	answer, err := aug.Search(rctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := rec.Finish(answer.Size())
	if p == nil {
		t.Fatal("no profile")
	}

	if p.Database != "transactions" || p.Query == "" || p.Level != 0 {
		t.Errorf("identity = %q %q %d", p.Database, p.Query, p.Level)
	}
	if p.LocalQuery == nil || p.LocalQuery.Store != "transactions" ||
		p.LocalQuery.Calls != 1 || p.LocalQuery.Objects != 1 {
		t.Errorf("local query = %+v", p.LocalQuery)
	}
	if len(p.Augmentations) != 1 {
		t.Fatalf("augmentations = %+v", p.Augmentations)
	}
	a := p.Augmentations[0]
	if a.Strategy != "BATCH" || a.Level != 0 || a.Origins != 1 {
		t.Errorf("trace = %+v", a)
	}
	// Lucy's album reaches four related objects across all four stores:
	// the catalogue document, the discount, the similar-items node, and the
	// sale matched to the album.
	if a.CandidateKeys != 4 || a.Fetched != 4 {
		t.Errorf("candidates=%d fetched=%d, want 4/4", a.CandidateKeys, a.Fetched)
	}
	if a.IndexNodes == 0 || a.IndexEdges == 0 {
		t.Errorf("index work not recorded: %+v", a)
	}
	if a.CacheMisses != 4 || a.CacheHits != 0 {
		t.Errorf("cold cache hits/misses = %d/%d", a.CacheHits, a.CacheMisses)
	}
	if len(a.Stores) != 4 {
		t.Errorf("store fan-out = %+v", a.Stores)
	}
	for _, f := range a.Stores {
		if f.Op != "getbatch" || f.Calls != 1 || f.Objects != 1 || f.Errors != 0 {
			t.Errorf("fan-out entry = %+v", f)
		}
	}
	if p.Totals.StoreCalls != 5 || p.Totals.StoreErrors != 0 {
		t.Errorf("totals = %+v", p.Totals)
	}

	// A warm re-run of the same query is served from the cache: no store
	// calls beyond the local query, all candidates hits.
	rctx2, rec2 := explain.WithRecorder(context.Background(), "/search")
	if _, err := aug.Search(rctx2, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0); err != nil {
		t.Fatal(err)
	}
	p2 := rec2.Finish(0)
	a2 := p2.Augmentations[0]
	if a2.CacheHits != 4 || a2.CacheMisses != 0 {
		t.Errorf("warm cache hits/misses = %d/%d", a2.CacheHits, a2.CacheMisses)
	}
	if len(a2.Stores) != 0 {
		t.Errorf("warm run still hit stores: %+v", a2.Stores)
	}
	if p2.Totals.StoreCalls != 1 {
		t.Errorf("warm store calls = %d, want 1 (the local query)", p2.Totals.StoreCalls)
	}
}

// TestSearchWithoutRecorderUnchanged pins the off path: no recorder on the
// context leaves results identical and records nothing anywhere.
func TestSearchWithoutRecorderUnchanged(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Original) != 1 || len(answer.Augmented) != 4 {
		t.Errorf("answer = %d original, %d augmented", len(answer.Original), len(answer.Augmented))
	}
}

// TestExploreStepRecordsFetch verifies the exploration path records the
// origin fetch and the level-0 expansion.
func TestExploreStepRecordsFetch(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential, CacheSize: 16})
	sess, starts, err := aug.Explore(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, nil)
	if err != nil {
		t.Fatal(err)
	}

	rctx, rec := explain.WithRecorder(context.Background(), "/explore/step")
	links, err := sess.Step(rctx, starts[0].GK)
	if err != nil {
		t.Fatal(err)
	}
	p := rec.Finish(len(links))
	if p.Query == "" || p.Database != "transactions" {
		t.Errorf("identity = %q %q", p.Database, p.Query)
	}
	// The origin fetch happens outside any augmentation trace.
	if len(p.Fetches) != 1 || p.Fetches[0].Op != "get" || p.Fetches[0].Store != "transactions" {
		t.Errorf("fetches = %+v", p.Fetches)
	}
	if len(p.Augmentations) != 1 || p.Augmentations[0].Level != 0 {
		t.Errorf("augmentations = %+v", p.Augmentations)
	}
}
