package augment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/core"
	"quepa/internal/explain"
)

// Exploration is an augmented-exploration session (Definition 4): starting
// from the result of a local query, the user repeatedly selects one object
// and expands it with the level-0 augmentation construct, following the
// p-relation links through the polystore one click at a time.
//
// The session records the path of selected objects; when it ends (Finish),
// the traversed full path is handed to the A' index's promotion tracker so
// that popular explorations become matching shortcuts (Section III-D(a)).
//
// An Exploration is not safe for concurrent use: it models one user's
// interactive session. Run independent sessions on separate Explorations —
// the underlying Augmenter is safe to share.
type Exploration struct {
	aug      *Augmenter
	tracker  *aindex.PathTracker // may be nil: no promotion
	path     []core.GlobalKey
	current  []AugmentedObject
	degraded []Degradation // stores dropped by the last Step
	done     bool
}

// Explore starts an exploration session from a local query: the query is
// validated and executed, and its results become the candidate starting
// objects. The tracker may be nil to disable path promotion.
func (a *Augmenter) Explore(ctx context.Context, database, query string, tracker *aindex.PathTracker) (*Exploration, []core.Object, error) {
	answer, err := a.Search(ctx, database, query, 0)
	if err != nil {
		return nil, nil, err
	}
	// Only the local result is exposed at session start: augmentation
	// happens one selected object at a time.
	e := &Exploration{aug: a, tracker: tracker}
	return e, answer.Original, nil
}

// Step selects a data object and expands it with the augmentation construct
// of level 0, returning the related objects ordered by probability — the
// "links" the user can click next. The first Step must select an object of
// the starting query's result; later Steps must select objects returned by
// the previous Step.
func (e *Exploration) Step(ctx context.Context, gk core.GlobalKey) ([]AugmentedObject, error) {
	if e.done {
		return nil, fmt.Errorf("augment: exploration session already finished")
	}
	if len(e.path) > 0 {
		allowed := false
		for _, c := range e.current {
			if c.Object.GK == gk {
				allowed = true
				break
			}
		}
		if !allowed {
			return nil, fmt.Errorf("augment: %v was not among the objects of the previous step", gk)
		}
	}
	rec := explain.FromContext(ctx)
	var start time.Time
	if rec != nil {
		rec.SetQuery(gk.Database, "step "+gk.String(), 0)
		start = time.Now()
	}
	origin, err := e.aug.Polystore().Fetch(ctx, gk)
	if rec != nil {
		objects := 1
		if err != nil {
			objects = 0
		}
		rec.StoreOp(gk.Database, "get", 1, objects, time.Since(start), err != nil && !errors.Is(err, core.ErrNotFound))
	}
	if err != nil {
		return nil, err
	}
	expansion, degraded, err := e.aug.AugmentObjects(ctx, []core.Object{origin}, 0)
	if err != nil {
		return nil, err
	}
	e.path = append(e.path, gk)
	e.current = expansion
	e.degraded = degraded
	return expansion, nil
}

// Degraded returns the stores whose contribution the last Step dropped — a
// partial expansion the UI should flag rather than fail.
func (e *Exploration) Degraded() []Degradation { return e.degraded }

// Path returns the objects selected so far, in order.
func (e *Exploration) Path() []core.GlobalKey {
	out := make([]core.GlobalKey, len(e.path))
	copy(out, e.path)
	return out
}

// Finish ends the session and records the traversed full path in the
// promotion tracker. It returns whether the path was promoted into a new
// matching p-relation.
func (e *Exploration) Finish() bool {
	if e.done {
		return false
	}
	e.done = true
	if e.tracker == nil {
		return false
	}
	return e.tracker.Record(e.path)
}
