package augment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
	"quepa/internal/validator"
)

var ctx = context.Background()

// polyphony builds the paper's running-example polystore (Fig. 1) and its
// A' index (Fig. 3, abridged).
func polyphony(t *testing.T) (*core.Polystore, *aindex.Index) {
	t.Helper()
	poly := core.NewPolystore()

	rel := relstore.New("transactions")
	for _, sql := range []string{
		`CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT)`,
		`INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Disintegration')`,
		`CREATE TABLE sales (id TEXT PRIMARY KEY, customer TEXT, total FLOAT)`,
		`INSERT INTO sales VALUES ('s8', 'John Doe', 20.0)`,
	} {
		if _, err := rel.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	doc := docstore.New("catalogue")
	if _, err := doc.Insert("albums", `{"_id": "d1", "title": "Wish", "artist": "The Cure", "year": 1992}`); err != nil {
		t.Fatal(err)
	}
	kv := kvstore.New("discount")
	kv.Set("drop", "k1:cure:wish", "40%")
	graph := graphstore.New("similar-items")
	if err := graph.AddNode("n1", "items", map[string]string{"title": "Wish"}); err != nil {
		t.Fatal(err)
	}
	if err := graph.AddNode("n2", "items", map[string]string{"title": "Disintegration"}); err != nil {
		t.Fatal(err)
	}
	if err := graph.AddEdge("n1", "n2", "SIMILAR", nil); err != nil {
		t.Fatal(err)
	}

	for _, s := range []core.Store{
		connector.NewRelational(rel),
		connector.NewDocument(doc),
		connector.NewKeyValue(kv),
		connector.NewGraph(graph),
	} {
		if err := poly.Register(s); err != nil {
			t.Fatal(err)
		}
	}

	ix := aindex.New()
	mustInsert := func(r core.PRelation) {
		t.Helper()
		if err := ix.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	gk := core.MustParseGlobalKey
	mustInsert(core.NewIdentity(gk("catalogue.albums.d1"), gk("transactions.inventory.a32"), 0.9))
	mustInsert(core.NewIdentity(gk("catalogue.albums.d1"), gk("discount.drop.k1:cure:wish"), 0.8))
	mustInsert(core.NewIdentity(gk("similar-items.items.n1"), gk("transactions.inventory.a32"), 0.85))
	mustInsert(core.NewMatching(gk("transactions.sales.s8"), gk("transactions.inventory.a32"), 0.7))
	return poly, ix
}

// TestRunningExampleSearch reproduces Lucy's query from the introduction:
// the SQL result is augmented with the catalogue document and the discount.
func TestRunningExampleSearch(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Original) != 1 || answer.Original[0].GK.Key != "a32" {
		t.Fatalf("original = %v", answer.Original)
	}
	keys := map[string]float64{}
	for _, ao := range answer.Augmented {
		keys[ao.Object.GK.String()] = ao.Prob
	}
	if keys["catalogue.albums.d1"] != 0.9 {
		t.Errorf("catalogue document: prob = %g, want 0.9", keys["catalogue.albums.d1"])
	}
	if _, ok := keys["discount.drop.k1:cure:wish"]; !ok {
		t.Error("discount entry missing from augmentation")
	}
	if _, ok := keys["similar-items.items.n1"]; !ok {
		t.Error("similar-items node missing from augmentation")
	}
	// The answer is ordered by probability.
	for i := 1; i < len(answer.Augmented); i++ {
		if answer.Augmented[i-1].Prob < answer.Augmented[i].Prob {
			t.Errorf("augmentation not ordered: %v", answer.Augmented)
		}
	}
}

func TestSearchValidatorRejectsAggregates(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{})
	var na *validator.ErrNotAugmentable
	if _, err := aug.Search(ctx, "transactions", `SELECT COUNT(*) FROM inventory`, 0); !errors.As(err, &na) {
		t.Errorf("aggregate search error = %v", err)
	}
	if _, err := aug.Search(ctx, "ghostdb", `SELECT * FROM x`, 0); err == nil {
		t.Error("unknown database should fail")
	}
	if _, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory`, -1); err == nil {
		t.Error("negative level should fail")
	}
}

func TestSearchRewritesProjection(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{})
	answer, err := aug.Search(ctx, "transactions", `SELECT name FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The validator rewrite makes the id visible in the result fields.
	if v, ok := answer.Original[0].Field("id"); !ok || v != "a32" {
		t.Errorf("rewritten projection lacks id: %v", answer.Original[0])
	}
}

func TestLevelOneExpandsFurther(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	// Start from the sale s8: level 0 reaches the inventory tuple (matching)
	// plus the members of its identity class (materialized); level 1 also
	// reaches n2 via n1's SIMILAR edge only if such a p-relation exists —
	// it does not, so instead verify set inclusion and probability order.
	q := `SELECT * FROM sales WHERE total > 15`
	a0, err := aug.Search(ctx, "transactions", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := aug.Search(ctx, "transactions", q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Augmented) < len(a0.Augmented) {
		t.Errorf("level 1 (%d) smaller than level 0 (%d)", len(a1.Augmented), len(a0.Augmented))
	}
	at0 := map[core.GlobalKey]bool{}
	for _, ao := range a0.Augmented {
		at0[ao.Object.GK] = true
	}
	for gk := range at0 {
		found := false
		for _, ao := range a1.Augmented {
			if ao.Object.GK == gk {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("level 1 lost %v", gk)
		}
	}
}

// TestStrategiesAgree is the central property of Section IV: every strategy
// with every parameterization computes the same augmented answer.
func TestStrategiesAgree(t *testing.T) {
	poly, ix, queryDB, query := syntheticPolystore(t, 5, 40, 123)
	reference := answerSignature(t, New(poly, ix, Config{Strategy: Sequential}), queryDB, query)

	configs := []Config{
		{Strategy: Batch, BatchSize: 1},
		{Strategy: Batch, BatchSize: 3},
		{Strategy: Batch, BatchSize: 1000},
		{Strategy: Inner, ThreadsSize: 1},
		{Strategy: Inner, ThreadsSize: 7},
		{Strategy: Outer, ThreadsSize: 1},
		{Strategy: Outer, ThreadsSize: 5},
		{Strategy: OuterBatch, BatchSize: 2, ThreadsSize: 3},
		{Strategy: OuterBatch, BatchSize: 50, ThreadsSize: 8},
		{Strategy: OuterInner, ThreadsSize: 2},
		{Strategy: OuterInner, ThreadsSize: 9},
		{Strategy: Sequential, CacheSize: 100}, // warm cache must not change results
	}
	for _, cfg := range configs {
		aug := New(poly, ix, cfg)
		got := answerSignature(t, aug, queryDB, query)
		if got != reference {
			t.Errorf("%v: answer differs from SEQUENTIAL\n got  %s\n want %s", cfg, got, reference)
		}
		// Warm run through the cache agrees too.
		got = answerSignature(t, aug, queryDB, query)
		if got != reference {
			t.Errorf("%v (warm): answer differs\n got  %s\n want %s", cfg, got, reference)
		}
	}
}

// syntheticPolystore builds a polystore of n key-value databases with m keys
// each and a random (but connected enough) A' index, plus a query reaching a
// subset of one database.
func syntheticPolystore(t *testing.T, n, m int, seed int64) (*core.Polystore, *aindex.Index, string, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	poly := core.NewPolystore()
	var allKeys []core.GlobalKey
	for d := 0; d < n; d++ {
		name := fmt.Sprintf("db%d", d)
		kv := kvstore.New(name)
		for k := 0; k < m; k++ {
			key := fmt.Sprintf("k%d", k)
			kv.Set("main", key, fmt.Sprintf("value-%d-%d", d, k))
			allKeys = append(allKeys, core.NewGlobalKey(name, "main", key))
		}
		if err := poly.Register(connector.NewKeyValue(kv)); err != nil {
			t.Fatal(err)
		}
	}
	ix := aindex.New()
	for i := 0; i < n*m; i++ {
		a := allKeys[rng.Intn(len(allKeys))]
		b := allKeys[rng.Intn(len(allKeys))]
		if a == b {
			continue
		}
		typ := core.Matching
		if rng.Intn(4) == 0 {
			typ = core.Identity
		}
		if err := ix.Insert(core.PRelation{From: a, To: b, Type: typ, Prob: 0.6 + 0.4*rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	return poly, ix, "db0", "KEYS main k1*"
}

func answerSignature(t *testing.T, aug *Augmenter, db, query string) string {
	t.Helper()
	answer, err := aug.Search(ctx, db, query, 1)
	if err != nil {
		t.Fatal(err)
	}
	sig := ""
	for _, ao := range answer.Augmented {
		sig += fmt.Sprintf("%s:%.6f;", ao.Object.GK, ao.Prob)
	}
	return sig
}

func TestLazyDeletionSingleFetch(t *testing.T) {
	poly, ix := polyphony(t)
	disc := core.MustParseGlobalKey("discount.drop.k1:cure:wish")
	if !ix.Contains(disc) {
		t.Fatal("fixture broken: discount not indexed")
	}
	// Remove the discount from the store but not from the index, driving
	// the delete through the engine's command language (the validator blocks
	// writes in augmented mode, but direct native access is always allowed —
	// that is the whole point of a polystore).
	s, err := poly.Database("discount")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, "DEL drop k1:cure:wish"); err != nil {
		t.Fatal(err)
	}

	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ao := range answer.Augmented {
		if ao.Object.GK == disc {
			t.Error("vanished object still in answer")
		}
	}
	if ix.Contains(disc) {
		t.Error("vanished object not lazily removed from index")
	}
}

func TestLazyDeletionBatchFetch(t *testing.T) {
	poly, ix := polyphony(t)
	disc := core.MustParseGlobalKey("discount.drop.k1:cure:wish")
	s, err := poly.Database("discount")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, "DEL drop k1:cure:wish"); err != nil {
		t.Fatal(err)
	}
	aug := New(poly, ix, Config{Strategy: Batch, BatchSize: 10})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ao := range answer.Augmented {
		if ao.Object.GK == disc {
			t.Error("vanished object still in batched answer")
		}
	}
	if ix.Contains(disc) {
		t.Error("vanished object not lazily removed from index (batch path)")
	}
}

func TestCacheServesRepeatQueries(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential, CacheSize: 100})
	q := `SELECT * FROM inventory WHERE name LIKE '%wish%'`
	if _, err := aug.Search(ctx, "transactions", q, 0); err != nil {
		t.Fatal(err)
	}
	hitsBefore, _ := aug.Cache().Stats()
	if _, err := aug.Search(ctx, "transactions", q, 0); err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := aug.Cache().Stats()
	if hitsAfter <= hitsBefore {
		t.Errorf("second run produced no cache hits: %d -> %d", hitsBefore, hitsAfter)
	}
	// Cold-cache control: ClearCache forces misses again.
	aug.ClearCache()
	if aug.Cache().Len() != 0 {
		t.Error("ClearCache left entries")
	}
}

func TestZeroCacheNeverHits(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential, CacheSize: 0})
	q := `SELECT * FROM inventory WHERE name LIKE '%wish%'`
	aug.Search(ctx, "transactions", q, 0)
	aug.Search(ctx, "transactions", q, 0)
	hits, _ := aug.Cache().Stats()
	if hits != 0 {
		t.Errorf("cache hits with CACHE_SIZE=0: %d", hits)
	}
}

func TestOriginsNotReFetched(t *testing.T) {
	// Objects of the original answer must not appear in the augmentation
	// even when p-relations point between them.
	poly, ix := polyphony(t)
	gk := core.MustParseGlobalKey
	if err := ix.Insert(core.NewMatching(gk("transactions.inventory.a32"), gk("transactions.inventory.a33"), 0.9)); err != nil {
		t.Fatal(err)
	}
	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory`, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ao := range answer.Augmented {
		for _, orig := range answer.Original {
			if ao.Object.GK == orig.GK {
				t.Errorf("original object %v re-appears in augmentation", orig.GK)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: OuterBatch})
	cfg := aug.Config()
	if cfg.BatchSize != DefaultBatchSize || cfg.ThreadsSize != DefaultThreadsSize {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	aug.SetConfig(Config{Strategy: Batch, BatchSize: 5, CacheSize: 10})
	if aug.Config().BatchSize != 5 || aug.Cache().Capacity() != 10 {
		t.Errorf("SetConfig not applied: %+v", aug.Config())
	}
}

func TestStrategyStringAndParse(t *testing.T) {
	for _, s := range Strategies {
		parsed, err := ParseStrategy(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip %v: %v, %v", s, parsed, err)
		}
	}
	if _, err := ParseStrategy("TURBO"); err == nil {
		t.Error("unknown strategy should fail to parse")
	}
	if s, err := ParseStrategy("outer_batch"); err != nil || s != OuterBatch {
		t.Errorf("underscore form: %v, %v", s, err)
	}
	if !OuterBatch.Concurrent() || !OuterBatch.Batched() {
		t.Error("OuterBatch misclassified")
	}
	if Sequential.Concurrent() || Sequential.Batched() {
		t.Error("Sequential misclassified")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy String empty")
	}
}

func TestContextCancellationStopsAugmentation(t *testing.T) {
	poly, ix, db, q := syntheticPolystore(t, 4, 50, 7)
	for _, cfg := range []Config{
		{Strategy: Sequential},
		{Strategy: Batch, BatchSize: 2},
		{Strategy: Inner, ThreadsSize: 3},
		{Strategy: Outer, ThreadsSize: 3},
		{Strategy: OuterBatch, BatchSize: 2, ThreadsSize: 3},
		{Strategy: OuterInner, ThreadsSize: 4},
	} {
		aug := New(poly, ix, cfg)
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := aug.Search(cctx, db, q, 1); err == nil {
			t.Errorf("%v: cancelled search succeeded", cfg)
		}
	}
}

func TestEmptyResultAugmentsToNothing(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: OuterBatch})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name = 'nothing'`, 3)
	if err != nil {
		t.Fatal(err)
	}
	if answer.Size() != 0 {
		t.Errorf("empty query augmented to %d objects", answer.Size())
	}
}

func TestObjectWithoutRelations(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	// a33 has no p-relations: its augmentation is empty.
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE id = 'a33'`, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Original) != 1 || len(answer.Augmented) != 0 {
		t.Errorf("answer = %d original, %d augmented", len(answer.Original), len(answer.Augmented))
	}
}

func TestAnswerRank(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Augmented) < 3 {
		t.Fatalf("fixture too small: %d augmented", len(answer.Augmented))
	}
	// Threshold keeps only the strong relations.
	strong := answer.Rank(0.85, 0)
	for _, ao := range strong {
		if ao.Prob < 0.85 {
			t.Errorf("Rank kept %v below threshold", ao.Prob)
		}
	}
	if len(strong) >= len(answer.Augmented) {
		t.Error("threshold filtered nothing on a mixed-probability answer")
	}
	// Top-k truncates.
	if got := answer.Rank(0, 2); len(got) != 2 {
		t.Errorf("Rank top-2 = %d elements", len(got))
	}
	if got := answer.Rank(0, 0); len(got) != len(answer.Augmented) {
		t.Errorf("Rank without limits changed the answer: %d vs %d", len(got), len(answer.Augmented))
	}
	// The receiver is untouched.
	before := len(answer.Augmented)
	answer.Rank(0.99, 1)
	if len(answer.Augmented) != before {
		t.Error("Rank mutated the answer")
	}
}
