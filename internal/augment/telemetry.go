package augment

import (
	"strconv"

	"quepa/internal/telemetry"
)

// Telemetry of the augmentation hot path. Handles are resolved once at init
// (one histogram and one error counter per strategy, indexed by the strategy
// constant) so recording a finished augmentation is a single histogram
// observation with no registry lookup.

const (
	augmentHistName = "quepa_augment_duration_seconds"
	augmentErrsName = "quepa_augment_errors_total"
)

// numStrategies matches len(Strategies); the init below asserts it.
const numStrategies = 6

var (
	strategyHists [numStrategies]*telemetry.Histogram
	strategyErrs  [numStrategies]*telemetry.Counter

	// degradedTotal counts stores dropped from answers (partial results).
	degradedTotal = telemetry.NewCounter("quepa_augment_degraded_total",
		"stores whose contribution was dropped from an augmented answer")
)

func init() {
	if len(Strategies) != numStrategies {
		panic("augment: numStrategies out of sync with Strategies")
	}
	for _, s := range Strategies {
		label := telemetry.L("strategy", s.String())
		strategyHists[s] = telemetry.NewHistogram(augmentHistName,
			"end-to-end latency of AugmentObjects per execution strategy", nil, label)
		strategyErrs[s] = telemetry.NewCounter(augmentErrsName,
			"augmentations that returned an error, per execution strategy", label)
	}
}

func strategyHist(s Strategy) *telemetry.Histogram {
	if int(s) < 0 || int(s) >= len(strategyHists) {
		return nil
	}
	return strategyHists[s]
}

func strategyErr(s Strategy) *telemetry.Counter {
	if int(s) < 0 || int(s) >= len(strategyErrs) {
		return nil
	}
	return strategyErrs[s]
}

// StrategyStats returns a snapshot of the per-strategy augmentation latency
// histograms, keyed by strategy name. The server's /stats endpoint exposes
// it; strategies that never ran report a zero snapshot.
func StrategyStats() map[string]telemetry.HistogramSnapshot {
	out := make(map[string]telemetry.HistogramSnapshot, len(Strategies))
	for _, s := range Strategies {
		out[s.String()] = strategyHists[s].Snapshot()
	}
	return out
}

func itoa(n int) string { return strconv.Itoa(n) }
