package augment

import (
	"strconv"
	"sync"

	"quepa/internal/telemetry"
)

// Telemetry of the augmentation hot path. Handles are resolved once at init
// (one histogram and one error counter per strategy, indexed by the strategy
// constant) so recording a finished augmentation is a single histogram
// observation with no registry lookup.

const (
	augmentHistName = "quepa_augment_duration_seconds"
	augmentErrsName = "quepa_augment_errors_total"
)

// numStrategies matches len(Strategies); the init below asserts it.
const numStrategies = 6

var (
	strategyHists [numStrategies]*telemetry.Histogram
	strategyErrs  [numStrategies]*telemetry.Counter

	// degradedTotal counts stores dropped from answers (partial results).
	degradedTotal = telemetry.NewCounter("quepa_augment_degraded_total",
		"stores whose contribution was dropped from an augmented answer")
)

func init() {
	if len(Strategies) != numStrategies {
		panic("augment: numStrategies out of sync with Strategies")
	}
	for _, s := range Strategies {
		label := telemetry.L("strategy", s.String())
		strategyHists[s] = telemetry.NewHistogram(augmentHistName,
			"end-to-end latency of AugmentObjects per execution strategy", nil, label)
		strategyErrs[s] = telemetry.NewCounter(augmentErrsName,
			"augmentations that returned an error, per execution strategy", label)
	}
}

// Per-store hot-path counters, resolved lazily because the store set is only
// known at runtime. A plain map under an RWMutex beats sync.Map here: the
// read path dominates and interface boxing of string keys would allocate on
// every hit.
const (
	coalesceHitsName = "quepa_coalesce_hits_total"
	negativeHitsName = "quepa_coalesce_negative_hits_total"
)

var (
	storeCtrMu    sync.RWMutex
	coalescedCtrs = map[string]*telemetry.Counter{}
	negativeCtrs  = map[string]*telemetry.Counter{}
)

func storeCounter(ctrs map[string]*telemetry.Counter, name, help, store string) *telemetry.Counter {
	storeCtrMu.RLock()
	c := ctrs[store]
	storeCtrMu.RUnlock()
	if c != nil {
		return c
	}
	storeCtrMu.Lock()
	defer storeCtrMu.Unlock()
	if c = ctrs[store]; c == nil {
		c = telemetry.NewCounter(name, help, telemetry.L("store", store))
		ctrs[store] = c
	}
	return c
}

// coalescedHitCounter counts fetches that joined another request's in-flight
// store round trip instead of paying their own, per store.
func coalescedHitCounter(store string) *telemetry.Counter {
	return storeCounter(coalescedCtrs, coalesceHitsName,
		"fetches served by joining an in-flight store round trip, per store", store)
}

// negativeHitCounter counts fetches answered by the negative cache, per store.
func negativeHitCounter(store string) *telemetry.Counter {
	return storeCounter(negativeCtrs, negativeHitsName,
		"fetches answered 'missing' by the negative-result cache, per store", store)
}

func strategyHist(s Strategy) *telemetry.Histogram {
	if int(s) < 0 || int(s) >= len(strategyHists) {
		return nil
	}
	return strategyHists[s]
}

func strategyErr(s Strategy) *telemetry.Counter {
	if int(s) < 0 || int(s) >= len(strategyErrs) {
		return nil
	}
	return strategyErrs[s]
}

// StrategyStats returns a snapshot of the per-strategy augmentation latency
// histograms, keyed by strategy name. The server's /stats endpoint exposes
// it; strategies that never ran report a zero snapshot.
func StrategyStats() map[string]telemetry.HistogramSnapshot {
	out := make(map[string]telemetry.HistogramSnapshot, len(Strategies))
	for _, s := range Strategies {
		out[s.String()] = strategyHists[s].Snapshot()
	}
	return out
}

func itoa(n int) string { return strconv.Itoa(n) }
