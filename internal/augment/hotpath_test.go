package augment

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/stores/kvstore"
)

// TestStrategyEquivalenceCoalescing extends the Section IV equivalence
// property across the PR 4 hot-path machinery: every strategy, with
// coalescing on and off and the cache large enough to shard (>= 256 keys
// splits the LRU 16 ways), must produce the SEQUENTIAL answer — cold and
// again through the warm cache. Run under -race by `make race`.
func TestStrategyEquivalenceCoalescing(t *testing.T) {
	poly, ix, queryDB, query := syntheticPolystore(t, 5, 40, 321)
	reference := answerSignature(t, New(poly, ix, Config{Strategy: Sequential}), queryDB, query)

	for _, disable := range []bool{false, true} {
		for _, s := range Strategies {
			cfg := Config{
				Strategy:        s,
				BatchSize:       16,
				ThreadsSize:     8,
				CacheSize:       1024, // past the shard threshold: 16-way LRU
				DisableCoalesce: disable,
			}
			aug := New(poly, ix, cfg)
			if got := answerSignature(t, aug, queryDB, query); got != reference {
				t.Errorf("%v (coalesce=%v, cold): answer differs\n got  %s\n want %s", cfg, !disable, got, reference)
			}
			if got := answerSignature(t, aug, queryDB, query); got != reference {
				t.Errorf("%v (coalesce=%v, warm): answer differs\n got  %s\n want %s", cfg, !disable, got, reference)
			}
		}
	}
}

// blockingStore wraps a store and parks every Get until released, counting
// the round trips that actually reached it.
type blockingStore struct {
	core.Store
	release chan struct{}
	calls   atomic.Int64
}

func (b *blockingStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	b.calls.Add(1)
	<-b.release
	return b.Store.Get(ctx, collection, key)
}

// TestStampedeSingleRoundTrip is the coalescing acceptance criterion at the
// augmenter level: 100 goroutines missing on the same hot key (cache
// disabled, so every one of them takes the miss path) cost exactly one store
// round trip, and all 100 receive the object.
func TestStampedeSingleRoundTrip(t *testing.T) {
	kv := kvstore.New("blk")
	kv.Set("main", "hot", "payload")
	bs := &blockingStore{Store: connector.NewKeyValue(kv), release: make(chan struct{})}
	poly := core.NewPolystore()
	if err := poly.Register(bs); err != nil {
		t.Fatal(err)
	}
	aug := New(poly, aindex.New(), Config{CacheSize: 0})
	cfg := aug.Config()
	gk := core.NewGlobalKey("blk", "main", "hot")

	const stampede = 100
	var wg sync.WaitGroup
	errs := make(chan error, stampede)
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			obj, ok, err := aug.lookup(ctx, cfg, gk)
			if err != nil {
				errs <- err
				return
			}
			if !ok || obj.Fields[core.ValueField] != "payload" {
				t.Errorf("stampede lookup = %v, %v", obj, ok)
			}
		}()
	}
	// Wait until the flight has one leader in the store and everyone else
	// parked behind it, then release the store.
	deadline := time.Now().Add(5 * time.Second)
	for {
		followers, inFlight := aug.flight.Waiters(gk)
		if inFlight && bs.calls.Load() == 1 && followers == stampede-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never converged: calls=%d followers=%d inFlight=%v",
				bs.calls.Load(), followers, inFlight)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(bs.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := bs.calls.Load(); n != 1 {
		t.Fatalf("%d concurrent identical fetches cost %d store round trips, want 1", stampede, n)
	}
}

// TestCacheHitPathZeroAllocs pins the warm read path — the one every warm
// benchmark point lives on — at zero heap allocations, mirroring the
// coalesce package's follower-path guarantee.
func TestCacheHitPathZeroAllocs(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{CacheSize: 1024})
	cfg := aug.Config()
	gk := core.NewGlobalKey("discount", "drop", "k1:cure:wish")
	if _, ok, err := aug.lookup(ctx, cfg, gk); err != nil || !ok {
		t.Fatalf("warming lookup = %v, %v", ok, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok, _ := aug.lookup(ctx, cfg, gk); !ok {
			t.Fatal("warm lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("cache-hit lookup allocates %v per run, want 0", allocs)
	}
}

// BenchmarkHotPathWarmLookup measures the contended warm read path: all
// worker goroutines hammering cache hits across many keys, the lock convoy
// the sharded LRU exists to break. Run via `make bench-hotpath`.
func BenchmarkHotPathWarmLookup(b *testing.B) {
	kv := kvstore.New("hot")
	const nkeys = 1024
	keys := make([]core.GlobalKey, nkeys)
	for i := 0; i < nkeys; i++ {
		k := "k" + itoa(i)
		kv.Set("main", k, "v")
		keys[i] = core.NewGlobalKey("hot", "main", k)
	}
	poly := core.NewPolystore()
	if err := poly.Register(connector.NewKeyValue(kv)); err != nil {
		b.Fatal(err)
	}
	aug := New(poly, aindex.New(), Config{CacheSize: nkeys * 2})
	cfg := aug.Config()
	bctx := context.Background()
	for _, gk := range keys {
		if _, ok, err := aug.lookup(bctx, cfg, gk); err != nil || !ok {
			b.Fatalf("warming %v = %v, %v", gk, ok, err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			gk := keys[i%nkeys]
			i++
			if _, ok, _ := aug.lookup(bctx, cfg, gk); !ok {
				b.Fatal("warm lookup missed")
			}
		}
	})
}
