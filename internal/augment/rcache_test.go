package augment

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/rcache"
)

// fetchOrigin loads Lucy's album — the running-example origin the result
// cache tests augment from.
func fetchOrigin(t *testing.T, poly *core.Polystore) core.Object {
	t.Helper()
	obj, err := poly.Fetch(ctx, core.MustParseGlobalKey("transactions.inventory.a32"))
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestResultCacheMemoizesOutcome: with a result cache attached, repeating a
// single-origin augmentation serves the whole outcome from the cache —
// bitwise-equal to the cold answer, with the hit attributed to EXPLAIN.
func TestResultCacheMemoizesOutcome(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	rc := rcache.New(64)
	aug.SetResultCache(rc)
	obj := fetchOrigin(t, poly)

	cold, _, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rctx, rec := explain.WithRecorder(context.Background(), "/search")
	warm, _, err := aug.AugmentObjects(rctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("memoized answer diverges:\ncold %v\nwarm %v", cold, warm)
	}
	p := rec.Finish(len(warm))
	if p == nil || p.Totals.RcacheHits == 0 {
		t.Fatalf("no rcache hit attributed to the profile: %+v", p)
	}
	if st := rc.Stats(); st.Hits == 0 {
		t.Fatalf("cache stats recorded no hit: %+v", st)
	}
}

// TestResultCacheStaleAfterMutation: an index mutation bumps the epoch, so
// warm entries stop being served — the next query recomputes, matches an
// uncached augmenter exactly, and the probe registers an epoch mismatch.
func TestResultCacheStaleAfterMutation(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	rc := rcache.New(64)
	aug.SetResultCache(rc)
	obj := fetchOrigin(t, poly)
	if _, _, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2); err != nil {
		t.Fatal(err)
	}
	if rc.Len() == 0 {
		t.Fatal("warmup stored nothing")
	}
	// A new p-relation inside the reachable component changes the answer —
	// serving the warm entry now would be observably wrong.
	rel := core.NewIdentity(core.MustParseGlobalKey("catalogue.albums.d1"),
		core.MustParseGlobalKey("similar-items.items.n2"), 0.4)
	if err := ix.Insert(rel); err != nil {
		t.Fatal(err)
	}
	before := rc.Stats().EpochMismatches
	got, _, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := New(poly, ix, Config{Strategy: Sequential}).AugmentObjects(ctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-mutation cached answer diverges:\n got %v\nwant %v", got, want)
	}
	if after := rc.Stats().EpochMismatches; after <= before {
		t.Fatalf("no epoch mismatch recorded (before %d, after %d)", before, after)
	}
}

// TestResultCacheConcurrentMutationEquivalence: cached queries racing a
// mutator never serve a wrong answer. The mutator only adds raw relations
// between brand-new keys unreachable from the origin, so the correct answer
// is invariant throughout — every answer served during the race must equal
// the reference, and after quiescing the cached augmenter must still agree
// with an uncached one bitwise.
func TestResultCacheConcurrentMutationEquivalence(t *testing.T) {
	poly, ix := polyphony(t)
	aug := New(poly, ix, Config{Strategy: Sequential})
	rc := rcache.New(64)
	aug.SetResultCache(rc)
	obj := fetchOrigin(t, poly)
	want, _, err := New(poly, ix, Config{Strategy: Sequential}).AugmentObjects(ctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a := core.GlobalKey{Database: "pad", Collection: "p", Key: fmt.Sprintf("a%d", i)}
			b := core.GlobalKey{Database: "pad", Collection: "p", Key: fmt.Sprintf("b%d", i)}
			if err := ix.InsertRaw(core.NewIdentity(a, b, 0.5)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		got, _, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: answer diverged under concurrent mutation", i)
		}
	}
	close(stop)
	wg.Wait()
	got, _, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := New(poly, ix, Config{Strategy: Sequential}).AugmentObjects(ctx, []core.Object{obj}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatalf("quiesced cached answer diverges from uncached:\n got %v\nwant %v", got, plain)
	}
}
