package augment

import (
	"os"
	"testing"
	"time"

	"quepa/internal/telemetry"
)

// TestTraceOverheadGuard is the CI regression gate on distributed-tracing
// cost (`make bench-trace`): it runs the BenchmarkTraceOverhead pair and
// fails when the traced search is more than 30% AND more than a 2ms noise
// floor slower than the untraced one — the same tolerance shape as the
// figure-9 baseline compare. Gated behind QUEPA_TRACE_GUARD because
// wall-clock comparisons have no place in the deterministic tier-1 suite.
func TestTraceOverheadGuard(t *testing.T) {
	if os.Getenv("QUEPA_TRACE_GUARD") == "" {
		t.Skip("set QUEPA_TRACE_GUARD=1 (make bench-trace) to run the overhead gate")
	}
	poly, ix, db, query := syntheticPolystore(t, 6, 200, 13)
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	tracer := telemetry.DefaultTracer()
	prevSlow := tracer.SlowThreshold()
	prevRate := tracer.SampleRate()
	tracer.SetSlowThreshold(time.Hour)
	tracer.SetSampleRate(telemetry.DefaultSampleRate)
	defer func() {
		tracer.SetSlowThreshold(prevSlow)
		tracer.SetSampleRate(prevRate)
		tracer.Reset()
	}()

	run := func(traced bool) time.Duration {
		aug := New(poly, ix, Config{Strategy: OuterBatch, BatchSize: 64, ThreadsSize: 4})
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ctx
				var sp *telemetry.Span
				if traced {
					c, sp = telemetry.StartSpan(ctx, "guard request")
				}
				if _, err := aug.Search(c, db, query, 1); err != nil {
					b.Fatal(err)
				}
				sp.End()
			}
		})
		return time.Duration(res.NsPerOp())
	}

	// Interleave and keep the best of each, shedding scheduler noise the way
	// the figure benchmarks do with -best-of.
	best := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	untraced, traced := run(false), run(true)
	untraced, traced = best(untraced, run(false)), best(traced, run(true))

	delta := traced - untraced
	t.Logf("untraced %v, traced %v, delta %v", untraced, traced, delta)
	if delta > 2*time.Millisecond && float64(traced) > float64(untraced)*1.30 {
		t.Errorf("tracing overhead %v (%.0f%%) exceeds the +30%%/2ms budget",
			delta, 100*float64(delta)/float64(untraced))
	}
}
