package augment

import (
	"testing"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// Benchmarks of the six strategies over an in-process polystore (no network
// simulation): this isolates the orchestration overhead of each augmenter —
// goroutine fan-out, batching bookkeeping, cache traffic — from the
// round-trip costs the paper's figures measure.

func benchConfigs() []Config {
	return []Config{
		{Strategy: Sequential},
		{Strategy: Batch, BatchSize: 64},
		{Strategy: Inner, ThreadsSize: 4},
		{Strategy: Outer, ThreadsSize: 4},
		{Strategy: OuterBatch, BatchSize: 64, ThreadsSize: 4},
		{Strategy: OuterInner, ThreadsSize: 4},
	}
}

func BenchmarkStrategiesOverhead(b *testing.B) {
	poly, ix, db, query := syntheticPolystoreB(b, 6, 200, 11)
	for _, cfg := range benchConfigs() {
		b.Run(cfg.Strategy.String(), func(b *testing.B) {
			aug := New(poly, ix, cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := aug.Search(ctx, db, query, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSearchWithCache(b *testing.B) {
	poly, ix, db, query := syntheticPolystoreB(b, 6, 200, 12)
	aug := New(poly, ix, Config{Strategy: OuterBatch, BatchSize: 64, ThreadsSize: 4, CacheSize: 100000})
	if _, err := aug.Search(ctx, db, query, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aug.Search(ctx, db, query, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead measures the cost of the telemetry layer on the
// OUTER-BATCH augment hot path by flipping the global kill switch: the
// "instrumented" and "uninstrumented" runs execute the identical search, so
// their delta is exactly what the counters, histograms and spans cost. The
// budget documented in DESIGN.md is <1%; compare with
//
//	go test ./internal/augment -bench TelemetryOverhead -count 10 | benchstat
func BenchmarkTelemetryOverhead(b *testing.B) {
	poly, ix, db, query := syntheticPolystoreB(b, 6, 200, 13)
	for _, mode := range []struct {
		name string
		on   bool
	}{
		{"instrumented", true},
		{"uninstrumented", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			prev := telemetry.SetEnabled(mode.on)
			defer telemetry.SetEnabled(prev)
			aug := New(poly, ix, Config{Strategy: OuterBatch, BatchSize: 64, ThreadsSize: 4})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := aug.Search(ctx, db, query, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceOverhead measures what span creation itself costs on the hot
// path. Telemetry is ON in both modes; the only difference is whether the
// search runs inside a root span. Untraced callers skip span construction
// entirely (the wire/augment layers gate on SpanFromContext), so the delta
// is the full per-request price of distributed tracing at the default tail
// sampling rate. CI guards this with a +30% / 2ms ceiling; compare locally
// with
//
//	go test ./internal/augment -bench TraceOverhead -count 10 | benchstat
func BenchmarkTraceOverhead(b *testing.B) {
	poly, ix, db, query := syntheticPolystoreB(b, 6, 200, 13)
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	tracer := telemetry.DefaultTracer()
	prevSlow := tracer.SlowThreshold()
	prevRate := tracer.SampleRate()
	// Nothing here counts as "slow": the traced run pays span construction
	// and the probabilistic tail-sampling decision, not bulk retention.
	tracer.SetSlowThreshold(time.Hour)
	tracer.SetSampleRate(telemetry.DefaultSampleRate)
	defer func() {
		tracer.SetSlowThreshold(prevSlow)
		tracer.SetSampleRate(prevRate)
		tracer.Reset()
	}()

	for _, mode := range []struct {
		name   string
		traced bool
	}{
		{"untraced", false},
		{"traced", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			aug := New(poly, ix, Config{Strategy: OuterBatch, BatchSize: 64, ThreadsSize: 4})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := ctx
				var sp *telemetry.Span
				if mode.traced {
					c, sp = telemetry.StartSpan(ctx, "bench request")
				}
				if _, err := aug.Search(c, db, query, 1); err != nil {
					b.Fatal(err)
				}
				sp.End()
			}
		})
	}
}

// syntheticPolystoreB mirrors the test fixture for benchmarks.
func syntheticPolystoreB(b *testing.B, n, m int, seed int64) (*core.Polystore, *aindex.Index, string, string) {
	b.Helper()
	t := &testing.T{}
	poly, ix, db, query := syntheticPolystore(t, n, m, seed)
	if t.Failed() {
		b.Fatal("fixture construction failed")
	}
	return poly, ix, db, query
}
