package augment_test

import (
	"context"
	"fmt"
	"log"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/relstore"
)

// Example runs the paper's running example end to end: a polystore of two
// departments, an A' index linking their objects, and an augmented SQL
// search whose answer includes a document from a database the SQL user
// cannot query.
func Example() {
	ctx := context.Background()

	// The sales department's relational database.
	transactions := relstore.New("transactions")
	transactions.Exec(`CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT)`)
	transactions.Exec(`INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish')`)

	// The warehouse department's document store.
	catalogue := docstore.New("catalogue")
	catalogue.Insert("albums", `{"_id": "d1", "title": "Wish", "artist": "The Cure", "year": 1992}`)

	// The polystore: a loose registry, no global schema.
	poly := core.NewPolystore()
	poly.Register(connector.NewRelational(transactions))
	poly.Register(connector.NewDocument(catalogue))

	// One p-relation: the tuple and the document are the same album.
	index := aindex.New()
	index.Insert(core.NewIdentity(
		core.MustParseGlobalKey("catalogue.albums.d1"),
		core.MustParseGlobalKey("transactions.inventory.a32"),
		0.9,
	))

	// Lucy's query, in plain SQL, augmented at level 0.
	aug := augment.New(poly, index, augment.Config{Strategy: augment.OuterBatch})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local: %d result(s)\n", len(answer.Original))
	for _, ao := range answer.Augmented {
		fmt.Printf("augmented: p=%.1f %s.%s\n", ao.Prob, ao.Object.GK.Database, ao.Object.GK.Key)
	}
	// Output:
	// local: 1 result(s)
	// augmented: p=0.9 catalogue.d1
}

// ExampleAnswer_Rank shows the presentation helpers: probability cutoffs and
// top-k truncation of an augmented answer.
func ExampleAnswer_Rank() {
	answer := &augment.Answer{Augmented: []augment.AugmentedObject{
		{Prob: 0.9}, {Prob: 0.8}, {Prob: 0.6},
	}}
	fmt.Println(len(answer.Rank(0.7, 0)), len(answer.Rank(0, 2)))
	// Output: 2 2
}
