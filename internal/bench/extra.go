package bench

import (
	"context"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/workload"
)

// This file holds two experiments beyond the paper's plotted figures:
//
//   - ExtraCache regenerates the memory-based study the paper describes but
//     omits "for lack of space" (Section VII-B(c)): the effect of CACHE_SIZE
//     in the centralized vs the distributed deployment. Expected shape:
//     centralized runs are largely insensitive to the cache (each store has
//     its own caching, making QUEPA's partly redundant), while in the
//     distributed deployment caching pays because it saves inter-machine
//     round trips.
//
//   - ExtraAblation quantifies a design decision of Section III-C: enforcing
//     the Consistency Condition by materializing inferred p-relations at
//     insertion time. The ablated index stores only the asserted relations;
//     the experiment reports insertion cost, index size and — the point of
//     the design — how many related objects a level-0 augmentation reaches
//     with and without materialization.

// cacheSizes is the CACHE_SIZE sweep.
func (o Options) cacheSizes() []int {
	if o.Quick {
		return []int{0, 16}
	}
	return []int{0, 100, 1000, 10000, 100000}
}

// ExtraCache measures a repeated-query workload (the cache's use case: the
// augmented results of consecutive queries overlap) under both deployments,
// sweeping CACHE_SIZE.
func ExtraCache(o Options) ([]Point, error) {
	o = o.withDefaults()
	deployments := []struct {
		name   string
		deploy workload.Deployment
	}{
		{"centralized", workload.Centralized()},
		{"distributed", workload.Distributed()},
	}
	var points []Point
	for _, d := range deployments {
		built, err := o.build(1, d.deploy)
		if err != nil {
			return nil, err
		}
		// Three overlapping queries: consecutive seq windows sharing half
		// their objects, run twice each — the second round is where the
		// cache can help.
		mid := o.midQuery()
		queries := make([]string, 0, 3)
		for _, size := range []int{mid, mid + mid/2, mid * 2} {
			q, err := built.Query("transactions", size)
			if err != nil {
				return nil, err
			}
			queries = append(queries, q)
		}
		for _, cs := range o.cacheSizes() {
			aug := augment.New(built.Poly, built.Index, augment.Config{
				Strategy: augment.Batch, BatchSize: 100, CacheSize: cs,
			})
			start := time.Now()
			var size int
			for round := 0; round < 2; round++ {
				for _, q := range queries {
					answer, err := aug.Search(ctxBackground, "transactions", q, 0)
					if err != nil {
						return nil, err
					}
					size = answer.Size()
				}
			}
			points = append(points, Point{
				Figure: "cache(" + d.name + ")", Series: d.name,
				XLabel: "CACHE_SIZE", X: float64(cs),
				Millis: ms(time.Since(start)), Size: size,
			})
		}
	}
	return points, nil
}

// ExtraAblation compares the materialized A' index against an ablated one
// holding only asserted edges. Series:
//
//	"materialized ..." vs "raw ..." with X = 1 for build time (ms),
//	X = 2 for edge count, X = 3 for objects reached by a level-0
//	augmentation of the evaluation query.
func ExtraAblation(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := o.build(1, workload.Colocated())
	if err != nil {
		return nil, err
	}
	// Both variants load the exact assertion stream the generator produced;
	// the materialized variant additionally computes the closure.
	recorded := built.Relations()

	var points []Point
	query, err := built.Query("transactions", o.midQuery())
	if err != nil {
		return nil, err
	}

	type variant struct {
		name   string
		insert func(*aindex.Index, core.PRelation) error
	}
	for _, v := range []variant{
		{"materialized", (*aindex.Index).Insert},
		{"raw", (*aindex.Index).InsertRaw},
	} {
		ix := aindex.New()
		start := time.Now()
		for _, r := range recorded {
			if err := v.insert(ix, r); err != nil {
				return nil, err
			}
		}
		buildMS := ms(time.Since(start))

		aug := augment.New(built.Poly, ix, augment.Config{Strategy: augment.Batch, BatchSize: 100})
		answer, err := aug.Search(ctxBackground, "transactions", query, 0)
		if err != nil {
			return nil, err
		}
		points = append(points,
			Point{Figure: "ablation", Series: v.name + " build", XLabel: "metric", X: 1, Millis: buildMS},
			Point{Figure: "ablation", Series: v.name + " edges", XLabel: "metric", X: 2, Millis: float64(ix.EdgeCount())},
			Point{Figure: "ablation", Series: v.name + " level-0 reach", XLabel: "metric", X: 3, Millis: float64(len(answer.Augmented)), Size: answer.Size()},
		)
	}
	return points, nil
}

var ctxBackground = context.Background()
