package bench

import (
	"context"
	"testing"

	"quepa/internal/middleware"
	"quepa/internal/middleware/memlimit"
	"quepa/internal/workload"
)

func TestMeasureBaselineFootprints(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	o := Options{Seed: 1}.withDefaults()
	for _, rounds := range []int{0, 1, 2, 3} {
		built, err := o.build(rounds, workload.Colocated())
		if err != nil {
			t.Fatal(err)
		}
		query, err := built.Query("catalogue", 25)
		if err != nil {
			t.Fatal(err)
		}
		nat := memlimit.New(0)
		tal := memlimit.New(0)
		ara := memlimit.New(0)
		systems := []middleware.System{
			middleware.NewMetamodel(built.Poly, built.Index, middleware.MetamodelConfig{Native: true, Mem: nat}),
			middleware.NewTalend(built.Poly, built.Index, middleware.TalendConfig{Mem: tal}),
			middleware.NewArango(built.Poly, built.Index, middleware.ArangoConfig{Native: true, Mem: ara}),
		}
		for _, s := range systems {
			if _, err := s.Augment(context.Background(), "catalogue", query, 0); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
		}
		t.Logf("rounds=%d dbs=%d edges=%d: NAT=%dKB TALEND=%dKB ARANGO=%dKB",
			rounds, built.Spec.Databases(), built.Index.EdgeCount(),
			nat.Peak()/1024, tal.Peak()/1024, ara.Peak()/1024)
	}
}
