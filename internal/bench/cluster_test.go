package bench

import "testing"

// TestFigClusterScaling: the cluster figure's reason to exist — with the
// per-peer capacity gate bounding service throughput, adding peers must
// shorten the fixed-op sweep. The margin is generous (the ideal 1→2 peer
// ratio is ~2×) so a loaded CI machine does not flake it.
func TestFigClusterScaling(t *testing.T) {
	points, err := FigCluster(quick())
	if err != nil {
		t.Fatal(err)
	}
	millis := map[float64]float64{}
	for _, p := range points {
		if p.Figure != "cluster" || p.Millis <= 0 {
			t.Fatalf("malformed cluster point %+v", p)
		}
		millis[p.X] = p.Millis
	}
	one, ok1 := millis[1]
	two, ok2 := millis[2]
	if !ok1 || !ok2 {
		t.Fatalf("sweep missing peer counts: %+v", points)
	}
	if one < 1.25*two {
		t.Errorf("no throughput scaling: 1 peer %.1fms vs 2 peers %.1fms", one, two)
	}
}
