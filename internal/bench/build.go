package bench

import (
	"context"
	"fmt"
	"time"

	"quepa/internal/collector"
	"quepa/internal/core"
	"quepa/internal/middleware"
	"quepa/internal/workload"
)

// This file measures A' construction (the paper's Section VII cost
// discussion): the collector pipeline — blocking, pairwise scoring,
// thresholding, dedupe — plus the bulk load into the index, swept over
// object count × scoring workers. It is the build-time companion of the
// query-time figures: the "build" id is not a paper figure but the
// construction experiment EXPERIMENTS.md tracks across PRs.

// buildScales are the workload scale factors swept by FigBuild, chosen so
// the largest run scores a few hundred thousand pairs in seconds.
func (o Options) buildScales() []float64 {
	if o.Quick {
		return []float64{0.05}
	}
	return []float64{0.05, 0.1, 0.2}
}

// buildWorkers is the scoring-worker sweep. Worker counts beyond the
// machine's cores still run (goroutines timeshare), making the series
// comparable across hosts.
func (o Options) buildWorkers() []int {
	if o.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// FigBuild regenerates the construction-time sweep: for each polystore
// size, the full BuildIndex wall time per worker count. Series are
// "workers=N", X is the scanned object count, Size is the number of
// p-relations discovered (identical across worker counts by construction —
// the run fails if not).
func FigBuild(o Options) ([]Point, error) {
	o = o.withDefaults()
	ctx := context.Background()
	var points []Point
	for _, scale := range o.buildScales() {
		spec := workload.DefaultSpec().Scale(scale)
		spec.Seed = o.Seed
		built, err := workload.Build(spec, workload.Colocated())
		if err != nil {
			return nil, err
		}
		var objects []core.Object
		for _, name := range built.Databases() {
			s, err := built.Poly.Database(name)
			if err != nil {
				return nil, err
			}
			objs, err := middleware.ScanAll(ctx, s)
			if err != nil {
				return nil, err
			}
			objects = append(objects, objs...)
		}

		var reference []core.PRelation
		for _, workers := range o.buildWorkers() {
			cfg := collector.DefaultConfig()
			cfg.IdentityThreshold, cfg.MatchingThreshold = 0.55, 0.30
			cfg.Workers = workers
			coll, err := collector.New(cfg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, rels, stats, err := coll.BuildIndexWithStats(ctx, objects)
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			// Guard the tentpole invariant inside the benchmark itself: the
			// worker count must not change the discovered relations.
			if reference == nil {
				reference = rels
			} else if !equalRels(reference, rels) {
				return nil, fmt.Errorf("bench build: %d workers changed the output (%d rels vs %d)",
					workers, len(rels), len(reference))
			}
			points = append(points, Point{
				Figure: "build",
				Series: fmt.Sprintf("workers=%d", workers),
				XLabel: "objects",
				X:      float64(len(objects)),
				Millis: ms(elapsed),
				Size:   stats.Relations(),
			})
		}
	}
	return points, nil
}

func equalRels(a, b []core.PRelation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
