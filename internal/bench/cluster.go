package bench

// The node-count campaign: scatter-gather augmentation over 1, 2 and 4
// wire-served peers, each behind a netsim capacity gate, so the figure shows
// the real win of partitioning A' — N peers serve N× the frontier
// expansions per second once a single peer's executor pool saturates.
// Answers are verified against the single-node reference index before any
// timing: a cluster that scales by being wrong is a bug, not a result.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/cluster"
	"quepa/internal/core"
	"quepa/internal/netsim"
	"quepa/internal/resilience"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// clusterPeerCounts is the node-count sweep.
func (o Options) clusterPeerCounts() []int {
	if o.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4}
}

// clusterOps is how many scatter traversals one sweep point executes.
func (o Options) clusterOps() int {
	if o.Quick {
		return 24
	}
	return 400
}

// clusterProfile is the per-peer cost model: a small network leg plus a
// service slot, so one peer saturates at Capacity/Service expansions per
// second and the sweep exposes the scaling.
func (o Options) clusterProfile() netsim.PeerProfile {
	if o.Quick {
		return netsim.PeerProfile{Capacity: 2, Service: time.Millisecond}
	}
	return netsim.PeerProfile{
		Profile:  netsim.Profile{RoundTrip: 200 * time.Microsecond},
		Capacity: 4,
		Service:  2 * time.Millisecond,
	}
}

// FigCluster measures augmented-search scatter throughput as a function of
// peer count. Every peer count serves the identical workload; LoopbackSelf
// makes the coordinator pay the wire and capacity cost for its own shard
// too, so the single-peer point is a fair baseline and not a free local
// call.
func FigCluster(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := workload.Build(o.spec(0), workload.Colocated())
	if err != nil {
		return nil, err
	}
	origins := clusterOrigins(built, 32)
	if len(origins) == 0 {
		return nil, fmt.Errorf("bench: cluster workload has no origins")
	}
	var points []Point
	for _, peers := range o.clusterPeerCounts() {
		elapsed, err := runClusterSweep(o, built, origins, peers)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{
			Figure: "cluster",
			Series: "SCATTER",
			XLabel: "peers",
			X:      float64(peers),
			Millis: ms(elapsed),
			Size:   o.clusterOps(),
		})
	}
	return points, nil
}

// runClusterSweep brings up one topology, verifies answer equivalence, then
// times clusterOps() traversals over concurrent workers.
func runClusterSweep(o Options, built *workload.Built, origins []core.GlobalKey, peers int) (time.Duration, error) {
	ring, err := cluster.NewRing(peers, 16, 0)
	if err != nil {
		return 0, err
	}
	var servers []*wire.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	addrs := make([]string, peers)
	for shard := 0; shard < peers; shard++ {
		idx, err := cluster.BuildShard(built.Index, ring, shard)
		if err != nil {
			return 0, err
		}
		node := cluster.NewNode(shard, idx, built.Poly)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		srv := wire.ServeOn(netsim.NewChaosNode(node, o.clusterProfile(), netsim.FaultPlan{}, nil), ln)
		servers = append(servers, srv)
		addrs[shard] = srv.Addr()
	}
	coord, err := cluster.NewCoordinator(cluster.Config{
		Ring:         ring,
		Peers:        addrs,
		Self:         0,
		LoopbackSelf: true,
		Client: wire.ClientConfig{
			Retry: resilience.RetryPolicy{MaxAttempts: 2, AttemptTimeout: 10 * time.Second},
			Codec: o.Codec,
		},
	})
	if err != nil {
		return 0, err
	}
	defer coord.Close()

	ctx := context.Background()
	// Correctness first: every origin's distributed answer must equal the
	// single-node reference exactly.
	for _, origin := range origins {
		want := built.Index.Reach(origin, 1)
		got, _, degs := coord.ReachScatter(ctx, origin, 1)
		if len(degs) != 0 {
			return 0, fmt.Errorf("bench: %d peers: degraded traversal: %v", peers, degs)
		}
		if !sameHits(got, want) {
			return 0, fmt.Errorf("bench: %d peers: %v diverges from single-node answer", peers, origin)
		}
	}

	ops := o.clusterOps()
	workers := 8
	if workers > ops {
		workers = ops
	}
	var (
		wg    sync.WaitGroup
		seq   = make(chan int, ops)
		start = time.Now()
	)
	for i := 0; i < ops; i++ {
		seq <- i
	}
	close(seq)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range seq {
				_, _, degs := coord.ReachScatter(ctx, origins[i%len(origins)], 1)
				if len(degs) != 0 {
					errs[w] = fmt.Errorf("bench: degraded traversal under load: %v", degs)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// clusterOrigins samples traversal starting points from the asserted
// p-relations.
func clusterOrigins(b *workload.Built, n int) []core.GlobalKey {
	seen := map[core.GlobalKey]bool{}
	var out []core.GlobalKey
	for _, r := range b.Relations() {
		if len(out) >= n {
			break
		}
		if !seen[r.From] {
			seen[r.From] = true
			out = append(out, r.From)
		}
	}
	return out
}

// sameHits compares hit slices treating nil and empty as equal.
func sameHits(a, b []aindex.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
