// Package bench is the experiment harness of Section VII: one runner per
// figure of the paper's evaluation, each regenerating the corresponding
// series (execution time as a function of BATCH_SIZE, THREADS_SIZE, query
// size, store count; optimizer win counts; middleware comparison with
// out-of-memory points).
//
// Absolute times differ from the paper's — the stores are embedded Go
// engines under a scaled-down network simulation, not MySQL/MongoDB/Redis/
// Neo4j on EC2 — but the shapes (who wins, where batching pays off, where
// the baselines fall over) are the reproduction target; EXPERIMENTS.md
// records the comparison.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"quepa/internal/augment"
	"quepa/internal/workload"
)

// Point is one measured value of one series of one figure.
type Point struct {
	Figure string  `json:"figure"`  // e.g. "9a"
	Series string  `json:"series"`  // e.g. "BATCH"
	XLabel string  `json:"x_label"` // e.g. "BATCH_SIZE"
	X      float64 `json:"x"`       // x coordinate
	Millis float64 `json:"millis"`  // measured end-to-end time
	OOM    bool    `json:"oom"`     // the run died out of memory (Fig. 13's red X)
	Size   int     `json:"size"`    // objects in the augmented answer
}

// Options scales the harness. The zero value is ready for full benchmark
// runs; Quick shrinks everything for unit tests.
type Options struct {
	// Quick selects tiny sizes so figure smoke tests run in milliseconds.
	Quick bool
	// Seed drives workload generation.
	Seed int64
	// BaselineBudget is the middleware memory budget in bytes for Fig. 13
	// (default 12 MiB, tuned so the paper's OOM crossovers appear at the
	// largest polystores; the Arango emulation gets two thirds of it, its
	// fully in-memory image being the most pressured in the paper).
	BaselineBudget int64
	// Codec pins the wire frame codec for the figures that cross the wire
	// ("wire", "cluster"): "json" or "binary". Empty negotiates normally —
	// and makes the wire figure run both series as an A/B.
	Codec string
	// Skew is the Zipf exponent of the skewed origin stream the rcache
	// figure replays (must be > 1; 0 selects 1.1). Higher exponents
	// concentrate queries on fewer origins — exactly the regime where
	// result memoization pays.
	Skew float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaselineBudget == 0 {
		o.BaselineBudget = 12 << 20
	}
	if o.Skew == 0 {
		o.Skew = 1.1
	}
	return o
}

// querySizes returns the test-bed query result sizes (the paper's 100, 500,
// 1000, 5000, 10000 scaled to the embedded engines).
func (o Options) querySizes() []int {
	if o.Quick {
		return []int{2, 5, 10}
	}
	return []int{5, 10, 25, 50, 100}
}

// largestQuery is the biggest test-bed size (the paper's 10,000).
func (o Options) largestQuery() int {
	sizes := o.querySizes()
	return sizes[len(sizes)-1]
}

// midQuery is a middle size for sweeps where query size is fixed.
func (o Options) midQuery() int {
	sizes := o.querySizes()
	return sizes[len(sizes)/2]
}

// batchSizes is the BATCH_SIZE sweep (paper Figs. 9–10, log scale).
func (o Options) batchSizes() []int {
	if o.Quick {
		return []int{1, 4, 16}
	}
	return []int{1, 10, 100, 1000, 10000}
}

// threadSizes is the THREADS_SIZE sweep (paper Fig. 11(a,b)).
func (o Options) threadSizes() []int {
	if o.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// spec returns the workload spec for a polystore with the given replica
// rounds.
func (o Options) spec(rounds int) workload.Spec {
	s := workload.DefaultSpec()
	s.Seed = o.Seed
	s.ReplicaRounds = rounds
	if o.Quick {
		s.Artists = 8
		s.AlbumsPerArtist = 2
		s.Customers = 10
	}
	return s
}

// storeRounds maps the paper's polystore variants (4, 7, 10, 13 databases)
// to replica rounds.
func (o Options) storeRounds() []int {
	if o.Quick {
		return []int{0, 1}
	}
	return []int{0, 1, 2, 3}
}

// build constructs a polystore variant under a deployment.
func (o Options) build(rounds int, deploy workload.Deployment) (*workload.Built, error) {
	return workload.Build(o.spec(rounds), deploy)
}

// runSearch measures one augmented search end to end.
func runSearch(aug *augment.Augmenter, db, query string, level int) (time.Duration, *augment.Answer, error) {
	ctx, rec := explainCtx(context.Background())
	start := time.Now()
	answer, err := aug.Search(ctx, db, query, level)
	elapsed := time.Since(start)
	if err != nil {
		keepProfile(rec.Finish(0))
		return elapsed, nil, err
	}
	keepProfile(rec.Finish(answer.Size()))
	return elapsed, answer, nil
}

// coldWarm measures a query cold (fresh cache) and warm (immediately after).
func coldWarm(aug *augment.Augmenter, db, query string, level int) (cold, warm time.Duration, size int, err error) {
	aug.ClearCache()
	coldD, answer, err := runSearch(aug, db, query, level)
	if err != nil {
		return 0, 0, 0, err
	}
	warmD, _, err := runSearch(aug, db, query, level)
	if err != nil {
		return 0, 0, 0, err
	}
	return coldD, warmD, answer.Size(), nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Report prints the points as aligned per-figure tables, mirroring the
// paper's series.
func Report(w io.Writer, points []Point) {
	if len(points) == 0 {
		return
	}
	byFigure := map[string][]Point{}
	var figures []string
	for _, p := range points {
		if _, ok := byFigure[p.Figure]; !ok {
			figures = append(figures, p.Figure)
		}
		byFigure[p.Figure] = append(byFigure[p.Figure], p)
	}
	sort.Strings(figures)
	for _, fig := range figures {
		pts := byFigure[fig]
		fmt.Fprintf(w, "\n=== Fig. %s ===\n", fig)
		fmt.Fprintf(w, "%-28s %12s %12s %10s\n", "series", pts[0].XLabel, "time_ms", "objects")
		for _, p := range pts {
			timeCol := fmt.Sprintf("%.3f", p.Millis)
			if p.OOM {
				timeCol = "X (OOM)"
			}
			fmt.Fprintf(w, "%-28s %12g %12s %10d\n", p.Series, p.X, timeCol, p.Size)
		}
	}
}
