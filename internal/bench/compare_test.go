package bench

import (
	"strings"
	"testing"
)

func record(label string, points ...Point) *RunRecord {
	return &RunRecord{Schema: SchemaVersion, Label: label, Points: points}
}

func pt(figure, series string, x, millis float64) Point {
	return Point{Figure: figure, Series: series, XLabel: "N", X: x, Millis: millis}
}

func TestCompareFlagsRealRegressions(t *testing.T) {
	old := record("PR1",
		pt("9", "SEQUENTIAL", 1, 100),
		pt("9", "SEQUENTIAL", 2, 50),
		pt("9", "BATCH", 1, 10),
	)
	cur := record("ci",
		pt("9", "SEQUENTIAL", 1, 150), // +50%: regressed
		pt("9", "SEQUENTIAL", 2, 55),  // +10%: within tolerance
		pt("9", "BATCH", 1, 9),        // faster
	)
	c := Compare(old, cur, 0.30)
	if len(c.Deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(c.Deltas))
	}
	regs := c.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the +50%% point", regs)
	}
	if regs[0].Series != "SEQUENTIAL" || regs[0].X != 1 {
		t.Errorf("wrong point flagged: %+v", regs[0])
	}
}

func TestCompareNoiseFloorAbsorbsTinyPoints(t *testing.T) {
	// +300% but only +1.5ms: below the noise floor, not a regression.
	old := record("PR1", pt("9", "BATCH", 1, 0.5))
	cur := record("ci", pt("9", "BATCH", 1, 2.0))
	if regs := Compare(old, cur, 0.30).Regressions(); len(regs) != 0 {
		t.Errorf("sub-noise-floor slowdown flagged: %+v", regs)
	}
	// Same ratio with real magnitude is flagged.
	old = record("PR1", pt("9", "BATCH", 1, 50))
	cur = record("ci", pt("9", "BATCH", 1, 200))
	if regs := Compare(old, cur, 0.30).Regressions(); len(regs) != 1 {
		t.Errorf("real slowdown not flagged: %+v", regs)
	}
}

func TestCompareMatchingAndCoverage(t *testing.T) {
	oom := pt("13ab", "ARANGO", 4, 0)
	oom.OOM = true
	old := record("PR1",
		pt("9", "BATCH", 1, 10),
		pt("9", "BATCH", 2, 10), // missing from the new run
		oom,
	)
	oomNew := oom
	oomNew.Millis = 999 // irrelevant: OOM pairs are skipped
	cur := record("ci",
		pt("9", "BATCH", 1, 10),
		pt("10ab", "INNER", 1, 5), // not in the baseline
		oomNew,
	)
	c := Compare(old, cur, 0.30)
	if len(c.Deltas) != 1 {
		t.Fatalf("deltas = %+v, want only the matched live pair", c.Deltas)
	}
	if c.OnlyOld != 1 || c.OnlyNew != 1 || c.SkippedOOM != 1 {
		t.Errorf("coverage = old-only %d, new-only %d, oom %d; want 1,1,1", c.OnlyOld, c.OnlyNew, c.SkippedOOM)
	}
}

func TestCompareMarkdownTable(t *testing.T) {
	old := record("PR1", pt("9", "SEQUENTIAL", 1, 100), pt("9", "BATCH", 1, 10))
	cur := record("ci", pt("9", "SEQUENTIAL", 1, 150), pt("9", "BATCH", 1, 10))
	c := Compare(old, cur, 0.30)
	var sb strings.Builder
	if err := c.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ci vs PR1",
		"1 point(s) regressed",
		"| figure | series | x |",
		"| 9 | SEQUENTIAL | N=1 | 100.000 | 150.000 | +50.0% | ❌ |",
		"| 9 | BATCH | N=1 | 10.000 | 10.000 | +0.0% |  |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCompareBestOfKeepsFastest(t *testing.T) {
	oom := pt("13ab", "ARANGO", 4, 0)
	oom.OOM = true
	run1 := []Point{pt("9", "BATCH", 1, 30), pt("9", "BATCH", 2, 10), oom}
	healed := pt("13ab", "ARANGO", 4, 100)
	run2 := []Point{pt("9", "BATCH", 1, 12), pt("9", "BATCH", 2, 25), healed, pt("9", "INNER", 1, 7)}
	got := BestOf(run1, run2)
	if len(got) != 4 {
		t.Fatalf("merged points = %+v", got)
	}
	if got[0].Millis != 12 || got[1].Millis != 10 {
		t.Errorf("minimum not kept: %+v", got[:2])
	}
	if got[2].OOM || got[2].Millis != 100 {
		t.Errorf("live repeat did not replace the OOM point: %+v", got[2])
	}
	if got[3].Series != "INNER" {
		t.Errorf("point unique to a repeat lost: %+v", got[3])
	}
	if out := BestOf(); out != nil {
		t.Errorf("BestOf() = %v", out)
	}
}

func TestCompareRoundTripThroughJSON(t *testing.T) {
	// A record written by WriteJSON must read back and compare clean against
	// itself — the exact loop the CI job runs.
	rec := record("PR1", pt("9", "BATCH", 1, 10), pt("9", "BATCH", 2, 20))
	var sb strings.Builder
	if err := WriteJSON(&sb, "PR1", Options{}, []string{"9"}, rec.Points); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecord(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(back, back, 0.30)
	if len(c.Regressions()) != 0 || len(c.Deltas) != 2 || c.OnlyOld != 0 || c.OnlyNew != 0 {
		t.Errorf("self-comparison not clean: %+v", c)
	}
	if _, err := ReadRecord(strings.NewReader(`{"schema":"other/9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}
