package bench

import (
	"testing"

	"quepa/internal/wire"
)

// TestFigWireAB: the codec figure runs both series by default, every point
// well-formed, both codecs present cold and warm.
func TestFigWireAB(t *testing.T) {
	points, err := FigWire(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "wire-cold", "wire-warm")
	series := map[string]map[string]bool{}
	for _, p := range points {
		if series[p.Figure] == nil {
			series[p.Figure] = map[string]bool{}
		}
		series[p.Figure][p.Series] = true
	}
	for _, fig := range []string{"wire-cold", "wire-warm"} {
		if !series[fig]["JSON"] || !series[fig]["BINARY"] {
			t.Errorf("%s series = %v, want both codecs", fig, series[fig])
		}
	}
}

// TestFigWirePinned: -codec json runs only the JSON series (the pin the
// RunRecord captures for the compare guard).
func TestFigWirePinned(t *testing.T) {
	o := quick()
	o.Codec = wire.CodecJSON
	points, err := FigWire(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Series != "JSON" {
			t.Fatalf("pinned run produced series %q", p.Series)
		}
	}

	o.Codec = "msgpack"
	if _, err := FigWire(o); err == nil {
		t.Error("unknown codec pin should fail the figure")
	}
}

// TestCompareRefusesCrossCodec: records pinned to different codecs must not
// diff silently; unpinned baselines keep comparing.
func TestCompareRefusesCrossCodec(t *testing.T) {
	jsonRec := record("a", pt("9", "S", 1, 10))
	jsonRec.Codec = "json"
	binRec := record("b", pt("9", "S", 1, 10))
	binRec.Codec = "binary"
	unpinned := record("c", pt("9", "S", 1, 10))

	if err := CodecMismatch(jsonRec, binRec); err == nil {
		t.Error("cross-codec comparison should be refused")
	}
	if err := CodecMismatch(jsonRec, jsonRec); err != nil {
		t.Errorf("same-codec comparison refused: %v", err)
	}
	if err := CodecMismatch(unpinned, binRec); err != nil {
		t.Errorf("unpinned baseline refused: %v", err)
	}
	if err := CodecMismatch(jsonRec, unpinned); err != nil {
		t.Errorf("unpinned current refused: %v", err)
	}
}
