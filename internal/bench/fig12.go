package bench

import (
	"fmt"
	"time"

	"quepa/internal/augment"
	"quepa/internal/optimizer"
	"quepa/internal/workload"
)

// This file regenerates Fig. 12: the quality of the ADAPTIVE optimizer
// against the HUMAN and RANDOM baselines.
//
// The campaign follows Section VII-C: held-out queries are run on every
// polystore variant at levels 0 and 1. For each run, ADAPTIVE contributes a
// single configuration, while HUMAN and RANDOM contribute a parameter set
// that is executed with each of the six augmenters (so ADAPTIVE competes
// with one candidate against six plus six). Fig. 12(a) counts, per variant,
// how often each optimizer produced the fastest run; Fig. 12(b) counts how
// often the ADAPTIVE run ranked in the top-1/2/3/5 of the 13 runs.

// trainAdaptive builds the training log by sweeping a configuration grid
// over training queries on each polystore variant (the paper's "2 million
// runs", scaled).
func trainAdaptive(o Options, variants []*workload.Built) (*optimizer.Adaptive, error) {
	adaptive := optimizer.NewAdaptive()
	trainSizes := []int{5, 25}
	levels := []int{0, 1}
	targets := []string{"transactions"}
	if o.Quick {
		trainSizes = []int{2, 6}
		levels = []int{0}
	}
	grid := []augment.Config{
		{Strategy: augment.Sequential},
		{Strategy: augment.Batch, BatchSize: 100},
		{Strategy: augment.Batch, BatchSize: 1000},
		{Strategy: augment.Outer, ThreadsSize: 8},
		{Strategy: augment.Inner, ThreadsSize: 8},
		{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 8},
		{Strategy: augment.OuterBatch, BatchSize: 1000, ThreadsSize: 16},
		{Strategy: augment.OuterInner, ThreadsSize: 8},
	}
	for _, built := range variants {
		for _, qs := range trainSizes {
			for _, level := range levels {
				for _, target := range targets {
					query, err := built.Query(target, qs)
					if err != nil {
						return nil, err
					}
					for _, cfg := range grid {
						aug := augment.New(built.Poly, built.Index, cfg)
						elapsed, answer, err := runSearch(aug, target, query, level)
						if err != nil {
							return nil, err
						}
						adaptive.Log(optimizer.RunLog{
							Features: optimizer.QueryFeatures{
								ResultSize:    len(answer.Original),
								AugmentedSize: len(answer.Augmented),
								Level:         level,
								NumStores:     built.Spec.Databases(),
							},
							Config:   cfg,
							Duration: elapsed,
						})
					}
				}
			}
		}
	}
	if err := adaptive.Train(); err != nil {
		return nil, err
	}
	return adaptive, nil
}

// Fig12 runs the optimizer-quality campaign and emits both sub-figures:
// series "ADAPTIVE"/"HUMAN"/"RANDOM" with X = databases and Millis = win
// count for 12(a); series "top-1/2/3/5" with Millis = count for 12(b).
func Fig12(o Options) ([]Point, error) {
	o = o.withDefaults()
	var variants []*workload.Built
	for _, rounds := range o.storeRounds() {
		built, err := o.build(rounds, workload.Centralized())
		if err != nil {
			return nil, err
		}
		variants = append(variants, built)
	}
	adaptive, err := trainAdaptive(o, variants)
	if err != nil {
		return nil, err
	}
	human := optimizer.Human{}
	random := optimizer.NewRandom(o.Seed + 7)

	// Held-out query sizes: off the training grid. Sizes large enough that
	// configuration differences dominate scheduler noise on the host.
	evalSizes := []int{15, 80}
	levels := []int{0, 1}
	targets := []string{"transactions", "catalogue"}
	if o.Quick {
		evalSizes = []int{3, 7}
		levels = []int{0}
		targets = []string{"transactions"}
	}

	wins := map[string]map[int]int{"ADAPTIVE": {}, "HUMAN": {}, "RANDOM": {}}
	topK := map[int]int{1: 0, 2: 0, 3: 0, 5: 0}
	groups := 0

	for _, built := range variants {
		dbs := built.Spec.Databases()
		// Features need result/augmented sizes before running: probe once
		// with a cheap configuration to observe them, as QUEPA's optimizer
		// sees them in its logs.
		for _, qs := range evalSizes {
			for _, level := range levels {
				for _, target := range targets {
					query, err := built.Query(target, qs)
					if err != nil {
						return nil, err
					}
					probe := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.OuterBatch, BatchSize: 1000, ThreadsSize: 8})
					_, probeAnswer, err := runSearch(probe, target, query, level)
					if err != nil {
						return nil, err
					}
					features := optimizer.QueryFeatures{
						ResultSize:    len(probeAnswer.Original),
						AugmentedSize: len(probeAnswer.Augmented),
						Level:         level,
						NumStores:     dbs,
					}

					type run struct {
						owner string
						time  time.Duration
					}
					var runs []run
					// Best of two cold executions per configuration: the
					// paper executed every test three times and averaged;
					// two with min keeps the campaign fast while damping
					// single-run scheduler noise.
					measure := func(owner string, cfg augment.Config) error {
						best := time.Duration(1<<62 - 1)
						for rep := 0; rep < 2; rep++ {
							aug := augment.New(built.Poly, built.Index, cfg)
							aug.ClearCache()
							elapsed, _, err := runSearch(aug, target, query, level)
							if err != nil {
								return err
							}
							if elapsed < best {
								best = elapsed
							}
						}
						runs = append(runs, run{owner: owner, time: best})
						return nil
					}

					// ADAPTIVE: one run with its predicted configuration.
					if err := measure("ADAPTIVE", adaptive.Choose(features, 0)); err != nil {
						return nil, err
					}
					// HUMAN and RANDOM: their parameters with all six augmenters.
					humanParams := human.Choose(features, 0)
					randomParams := random.Choose(features, 0)
					for _, s := range augment.Strategies {
						h := humanParams
						h.Strategy = s
						if err := measure("HUMAN", h); err != nil {
							return nil, err
						}
						r := randomParams
						r.Strategy = s
						if err := measure("RANDOM", r); err != nil {
							return nil, err
						}
					}

					// Winner and ADAPTIVE rank.
					bestIdx := 0
					for i, r := range runs {
						if r.time < runs[bestIdx].time {
							bestIdx = i
						}
					}
					wins[runs[bestIdx].owner][dbs]++
					adaptiveTime := runs[0].time
					rank := 1
					for _, r := range runs[1:] {
						if r.time < adaptiveTime {
							rank++
						}
					}
					for _, k := range []int{1, 2, 3, 5} {
						if rank <= k {
							topK[k]++
						}
					}
					groups++
				}
			}
		}
	}

	var points []Point
	for _, built := range variants {
		dbs := built.Spec.Databases()
		for _, owner := range []string{"ADAPTIVE", "HUMAN", "RANDOM"} {
			points = append(points, Point{
				Figure: "12a", Series: owner, XLabel: "databases",
				X: float64(dbs), Millis: float64(wins[owner][dbs]),
			})
		}
	}
	for _, k := range []int{1, 2, 3, 5} {
		points = append(points, Point{
			Figure: "12b", Series: fmt.Sprintf("top-%d", k), XLabel: "k",
			X: float64(k), Millis: float64(topK[k]), Size: groups,
		})
	}
	return points, nil
}
