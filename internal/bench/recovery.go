package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"quepa/internal/collector"
	"quepa/internal/core"
	"quepa/internal/middleware"
	"quepa/internal/wal"
	"quepa/internal/workload"
)

// This file measures the durability subsystem's reason to exist: after a
// crash, reopening the data directory (checkpoint load + log-tail replay)
// must be far cheaper than re-running the collector over the polystore. The
// sweep rebuilds the index both ways at each scale:
//
//	"recollect"   — full collector pipeline over the scanned objects
//	                (blocking, pairwise scoring, dedupe, bulk load), the
//	                only option without durability;
//	"recover"     — wal.Open on a directory holding a checkpoint plus a
//	                replayable log tail, as left behind by a crash;
//	"incremental" — one object upsert applied through incremental
//	                collection, the steady-state cost a changefeed pays
//	                instead of any rebuild at all.

// recoveryTailBatches is how many journaled mutations are left un-checkpointed
// before the simulated crash, so recovery exercises both the checkpoint load
// and a non-trivial log-tail replay.
const recoveryTailBatches = 64

// FigRecovery regenerates the recovery-vs-recollection sweep. X is the
// scanned object count; Size is the number of index edges after the rebuild,
// which must agree between the series (the run fails if recovery reproduces
// a different index than re-collection).
func FigRecovery(o Options) ([]Point, error) {
	o = o.withDefaults()
	ctx := context.Background()
	var points []Point
	for _, scale := range o.buildScales() {
		spec := workload.DefaultSpec().Scale(scale)
		spec.Seed = o.Seed
		built, err := workload.Build(spec, workload.Colocated())
		if err != nil {
			return nil, err
		}
		var objects []core.Object
		for _, name := range built.Databases() {
			s, err := built.Poly.Database(name)
			if err != nil {
				return nil, err
			}
			objs, err := middleware.ScanAll(ctx, s)
			if err != nil {
				return nil, err
			}
			objects = append(objects, objs...)
		}

		cfg := collector.DefaultConfig()
		cfg.IdentityThreshold, cfg.MatchingThreshold = 0.55, 0.30
		coll, err := collector.New(cfg)
		if err != nil {
			return nil, err
		}

		// Series 1: full re-collection, timed end to end.
		start := time.Now()
		ix, _, _, err := coll.BuildIndexWithStats(ctx, objects)
		recollect := time.Since(start)
		if err != nil {
			return nil, err
		}
		edges := ix.Edges()
		points = append(points, Point{
			Figure: "recovery", Series: "recollect", XLabel: "objects",
			X: float64(len(objects)), Millis: ms(recollect), Size: len(edges),
		})

		// Crash fixture: seed a data dir with the built index, apply a tail
		// of journaled mutations past the checkpoint, and abort without the
		// shutdown checkpoint — the state a SIGKILL leaves behind.
		dir, err := os.MkdirTemp("", "quepa-bench-recovery-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		m, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncOff})
		if err != nil {
			return nil, err
		}
		if err := m.Seed(ix); err != nil {
			return nil, err
		}
		for i := 0; i < recoveryTailBatches; i++ {
			rel := core.NewIdentity(
				core.NewGlobalKey("benchdb", "tail", fmt.Sprintf("a%d", i)),
				core.NewGlobalKey("benchdb2", "tail", fmt.Sprintf("b%d", i)),
				0.9)
			if err := ix.Insert(rel); err != nil {
				return nil, err
			}
		}
		wantEdges := ix.Edges()
		m.Abort()

		// Series 2: crash recovery — checkpoint load plus tail replay.
		start = time.Now()
		m2, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncOff})
		recover := time.Since(start)
		if err != nil {
			return nil, err
		}
		if !m2.Recovered() {
			return nil, fmt.Errorf("bench recovery: reopen did not recover")
		}
		gotEdges := m2.Index().Edges()
		m2.Abort() // leave no extra checkpoint work in the timing's shadow
		if !equalRels(gotEdges, wantEdges) {
			return nil, fmt.Errorf("bench recovery: recovered %d edges, pre-crash index had %d",
				len(gotEdges), len(wantEdges))
		}
		points = append(points, Point{
			Figure: "recovery", Series: "recover", XLabel: "objects",
			X: float64(len(objects)), Millis: ms(recover), Size: len(gotEdges),
		})

		// Series 3: incremental collection absorbing one object upsert —
		// the cost of staying current without any rebuild.
		inc, err := collector.NewIncremental(ctx, coll, objects)
		if err != nil {
			return nil, err
		}
		fresh := core.NewObject(
			core.NewGlobalKey("benchdb", "delta", "fresh1"),
			map[string]string{"name": "delta probe object", "email": "delta@example.com"})
		start = time.Now()
		if _, err := inc.Apply(ctx, []collector.Change{{Kind: collector.Upsert, Object: fresh}}); err != nil {
			return nil, err
		}
		incremental := time.Since(start)
		points = append(points, Point{
			Figure: "recovery", Series: "incremental", XLabel: "objects",
			X: float64(len(objects)), Millis: ms(incremental), Size: inc.Index().EdgeCount(),
		})
	}
	return points, nil
}
