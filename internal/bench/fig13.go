package bench

import (
	"context"
	"errors"
	"time"

	"quepa/internal/augment"
	"quepa/internal/middleware"
	"quepa/internal/middleware/memlimit"
	"quepa/internal/optimizer"
	"quepa/internal/workload"
)

// This file regenerates Fig. 13: QUEPA (driven by ADAPTIVE) against the
// middleware baselines — META-NAT, META-AUG, TALEND, ARANGO-NAT and
// ARANGO-AUG — over the query size (a cold, b warm) and over the number of
// databases (c cold, d warm). Runs that exhaust the middleware memory
// budget are marked OOM, the paper's red X.

// quepaSystem adapts the QUEPA augmenter + ADAPTIVE optimizer to the
// middleware.System interface so the sweep code treats every contender
// uniformly.
type quepaSystem struct {
	built    *workload.Built
	adaptive *optimizer.Adaptive
	aug      *augment.Augmenter
}

func newQuepaSystem(built *workload.Built, adaptive *optimizer.Adaptive) *quepaSystem {
	return &quepaSystem{
		built:    built,
		adaptive: adaptive,
		aug:      augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.OuterBatch, CacheSize: 100000}),
	}
}

func (q *quepaSystem) Name() string { return "QUEPA" }

func (q *quepaSystem) ColdStart() { q.aug.ClearCache() }

func (q *quepaSystem) Augment(ctx context.Context, database, query string, level int) (*augment.Answer, error) {
	// ADAPTIVE predicts from the query characteristics; sizes are estimated
	// from the index like QUEPA's optimizer does from its logs.
	cfg := q.adaptive.Choose(optimizer.QueryFeatures{
		ResultSize:    q.built.Spec.Albums(),
		AugmentedSize: q.built.Spec.Albums() * q.built.Spec.Databases(),
		Level:         level,
		NumStores:     q.built.Spec.Databases(),
	}, q.aug.Config().CacheSize)
	q.aug.SetConfig(cfg)
	return q.aug.Search(ctx, database, query, level)
}

// fig13Systems builds the six contenders over one polystore variant.
func fig13Systems(o Options, built *workload.Built, adaptive *optimizer.Adaptive) []middleware.System {
	budget := func() *memlimit.Accountant { return memlimit.New(o.BaselineBudget) }
	// The in-memory multi-model image is the most memory-pressured system in
	// the paper's runs; its emulation gets two thirds of the budget.
	arangoBudget := func() *memlimit.Accountant { return memlimit.New(o.BaselineBudget * 2 / 3) }
	return []middleware.System{
		newQuepaSystem(built, adaptive),
		middleware.NewMetamodel(built.Poly, built.Index, middleware.MetamodelConfig{Native: true, Mem: budget()}),
		middleware.NewMetamodel(built.Poly, built.Index, middleware.MetamodelConfig{Native: false, Mem: budget()}),
		middleware.NewTalend(built.Poly, built.Index, middleware.TalendConfig{Mem: budget()}),
		middleware.NewArango(built.Poly, built.Index, middleware.ArangoConfig{Native: true, Mem: arangoBudget()}),
		middleware.NewArango(built.Poly, built.Index, middleware.ArangoConfig{Native: false, Mem: arangoBudget()}),
	}
}

// measureSystem times one cold and one warm augmented query on a system.
// An out-of-memory failure is reported as an OOM point, any other error
// aborts the sweep.
func measureSystem(s middleware.System, db, query string, level int) (cold, warm time.Duration, size int, oom bool, err error) {
	ctx := context.Background()
	s.ColdStart()
	start := time.Now()
	answer, err := s.Augment(ctx, db, query, level)
	cold = time.Since(start)
	if err != nil {
		if errors.Is(err, memlimit.ErrOutOfMemory) {
			return 0, 0, 0, true, nil
		}
		return 0, 0, 0, false, err
	}
	size = answer.Size()
	start = time.Now()
	_, err = s.Augment(ctx, db, query, level)
	warm = time.Since(start)
	if err != nil {
		if errors.Is(err, memlimit.ErrOutOfMemory) {
			return cold, 0, size, true, nil
		}
		return 0, 0, 0, false, err
	}
	return cold, warm, size, false, nil
}

// Fig13ab sweeps the query size on the 10-database polystore (the paper's
// "polystore with 9 stores" variant), cold (a) and warm (b). Both axes of
// the paper's plot are logarithmic; the series here carry the raw numbers.
func Fig13ab(o Options) ([]Point, error) {
	o = o.withDefaults()
	rounds := 2
	if o.Quick {
		rounds = 1
	}
	built, err := o.build(rounds, workload.Centralized())
	if err != nil {
		return nil, err
	}
	adaptive, err := trainAdaptive(o, []*workload.Built{built})
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, system := range fig13Systems(o, built, adaptive) {
		for _, qs := range o.querySizes() {
			query, err := built.Query("catalogue", qs)
			if err != nil {
				return nil, err
			}
			cold, warm, size, oom, err := measureSystem(system, "catalogue", query, 0)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "13a", Series: system.Name(), XLabel: "query_size", X: float64(qs), Millis: ms(cold), Size: size, OOM: oom},
				Point{Figure: "13b", Series: system.Name(), XLabel: "query_size", X: float64(qs), Millis: ms(warm), Size: size, OOM: oom},
			)
		}
	}
	return points, nil
}

// Fig13cd sweeps the number of databases at a fixed query size, cold (c)
// and warm (d).
func Fig13cd(o Options) ([]Point, error) {
	o = o.withDefaults()
	var points []Point
	for _, rounds := range o.storeRounds() {
		built, err := o.build(rounds, workload.Centralized())
		if err != nil {
			return nil, err
		}
		adaptive, err := trainAdaptive(o, []*workload.Built{built})
		if err != nil {
			return nil, err
		}
		query, err := built.Query("catalogue", o.midQuery())
		if err != nil {
			return nil, err
		}
		dbs := float64(built.Spec.Databases())
		for _, system := range fig13Systems(o, built, adaptive) {
			cold, warm, size, oom, err := measureSystem(system, "catalogue", query, 0)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "13c", Series: system.Name(), XLabel: "databases", X: dbs, Millis: ms(cold), Size: size, OOM: oom},
				Point{Figure: "13d", Series: system.Name(), XLabel: "databases", X: dbs, Millis: ms(warm), Size: size, OOM: oom},
			)
		}
	}
	return points, nil
}
