package bench

import (
	"fmt"

	"quepa/internal/augment"
	"quepa/internal/workload"
)

// This file regenerates Figs. 9–11: the network- and CPU-oriented
// experiments on QUEPA's own augmenters.

// Fig9 reproduces Fig. 9(a,b): BATCH and OUTER-BATCH execution time as a
// function of BATCH_SIZE over queries with the largest result size, in a
// 10-store centralized polystore; (a) is a cold-cache run at level 0, (b) a
// warm-cache run at level 1.
func Fig9(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := o.build(2, workload.Centralized()) // 10 databases
	if err != nil {
		return nil, err
	}
	query, err := built.Query("transactions", o.largestQuery())
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, strategy := range []augment.Strategy{augment.Batch, augment.OuterBatch} {
		for _, bs := range o.batchSizes() {
			aug := augment.New(built.Poly, built.Index, augment.Config{
				Strategy: strategy, BatchSize: bs, ThreadsSize: 4, CacheSize: 100000,
			})
			// Level 0 cold for (a); level 1 warm for (b), matching the paper.
			cold, _, size0, err := coldWarm(aug, "transactions", query, 0)
			if err != nil {
				return nil, err
			}
			_, warm, size1, err := coldWarm(aug, "transactions", query, 1)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "9a", Series: strategy.String(), XLabel: "BATCH_SIZE", X: float64(bs), Millis: ms(cold), Size: size0},
				Point{Figure: "9b", Series: strategy.String(), XLabel: "BATCH_SIZE", X: float64(bs), Millis: ms(warm), Size: size1},
			)
		}
	}
	return points, nil
}

// Fig10ab reproduces Fig. 10(a,b): batching against the sequential
// augmenter in the distributed deployment, varying BATCH_SIZE; cold (a) and
// warm (b).
func Fig10ab(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := o.build(2, workload.Distributed())
	if err != nil {
		return nil, err
	}
	query, err := built.Query("transactions", o.midQuery())
	if err != nil {
		return nil, err
	}
	var points []Point

	// SEQUENTIAL is the flat reference series: one measurement replicated
	// over the x axis, as in the paper's plots.
	seq := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Sequential, CacheSize: 100000})
	seqCold, seqWarm, size, err := coldWarm(seq, "transactions", query, 0)
	if err != nil {
		return nil, err
	}
	for _, bs := range o.batchSizes() {
		points = append(points,
			Point{Figure: "10a", Series: "SEQUENTIAL", XLabel: "BATCH_SIZE", X: float64(bs), Millis: ms(seqCold), Size: size},
			Point{Figure: "10b", Series: "SEQUENTIAL", XLabel: "BATCH_SIZE", X: float64(bs), Millis: ms(seqWarm), Size: size},
		)
	}
	for _, strategy := range []augment.Strategy{augment.Batch, augment.OuterBatch} {
		for _, bs := range o.batchSizes() {
			aug := augment.New(built.Poly, built.Index, augment.Config{
				Strategy: strategy, BatchSize: bs, ThreadsSize: 4, CacheSize: 100000,
			})
			cold, warm, size, err := coldWarm(aug, "transactions", query, 0)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "10a", Series: strategy.String(), XLabel: "BATCH_SIZE", X: float64(bs), Millis: ms(cold), Size: size},
				Point{Figure: "10b", Series: strategy.String(), XLabel: "BATCH_SIZE", X: float64(bs), Millis: ms(warm), Size: size},
			)
		}
	}
	return points, nil
}

// Fig10cd reproduces Fig. 10(c,d): scalability of batching with the query
// size in the distributed deployment; cold (c) and warm (d).
func Fig10cd(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := o.build(2, workload.Distributed())
	if err != nil {
		return nil, err
	}
	configs := []augment.Config{
		{Strategy: augment.Sequential, CacheSize: 100000},
		{Strategy: augment.Batch, BatchSize: 1000, CacheSize: 100000},
		{Strategy: augment.OuterBatch, BatchSize: 1000, ThreadsSize: 4, CacheSize: 100000},
	}
	var points []Point
	for _, cfg := range configs {
		aug := augment.New(built.Poly, built.Index, cfg)
		for _, qs := range o.querySizes() {
			query, err := built.Query("transactions", qs)
			if err != nil {
				return nil, err
			}
			cold, warm, size, err := coldWarm(aug, "transactions", query, 0)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "10c", Series: cfg.Strategy.String(), XLabel: "query_size", X: float64(qs), Millis: ms(cold), Size: size},
				Point{Figure: "10d", Series: cfg.Strategy.String(), XLabel: "query_size", X: float64(qs), Millis: ms(warm), Size: size},
			)
		}
	}
	return points, nil
}

// Fig11ab reproduces Fig. 11(a,b): the concurrent augmenters as a function
// of THREADS_SIZE, centralized, largest query; cold (a) and warm (b).
func Fig11ab(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := o.build(2, workload.Centralized())
	if err != nil {
		return nil, err
	}
	query, err := built.Query("transactions", o.largestQuery())
	if err != nil {
		return nil, err
	}
	strategies := []augment.Strategy{augment.Inner, augment.Outer, augment.OuterBatch, augment.OuterInner}
	var points []Point
	for _, strategy := range strategies {
		for _, ts := range o.threadSizes() {
			aug := augment.New(built.Poly, built.Index, augment.Config{
				Strategy: strategy, ThreadsSize: ts, BatchSize: 100, CacheSize: 100000,
			})
			cold, warm, size, err := coldWarm(aug, "transactions", query, 0)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "11a", Series: strategy.String(), XLabel: "THREADS_SIZE", X: float64(ts), Millis: ms(cold), Size: size},
				Point{Figure: "11b", Series: strategy.String(), XLabel: "THREADS_SIZE", X: float64(ts), Millis: ms(warm), Size: size},
			)
		}
	}
	return points, nil
}

// allSixConfigs returns the default parameterization of every augmenter for
// the scalability sweeps of Fig. 11(c–f).
func allSixConfigs() []augment.Config {
	return []augment.Config{
		{Strategy: augment.Sequential, CacheSize: 100000},
		{Strategy: augment.Batch, BatchSize: 100, CacheSize: 100000},
		{Strategy: augment.Inner, ThreadsSize: 16, CacheSize: 100000},
		{Strategy: augment.Outer, ThreadsSize: 16, CacheSize: 100000},
		{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 16, CacheSize: 100000},
		{Strategy: augment.OuterInner, ThreadsSize: 16, CacheSize: 100000},
	}
}

// Fig11cd reproduces Fig. 11(c,d): all six augmenters against the query
// size in a 10-store centralized polystore; cold (c) and warm (d). As in
// the paper, "when experiments are shown with respect to the query size, we
// show the average execution time of the corresponding queries on each
// target database": every point averages one query per base store.
func Fig11cd(o Options) ([]Point, error) {
	o = o.withDefaults()
	built, err := o.build(2, workload.Centralized())
	if err != nil {
		return nil, err
	}
	targets := built.QueryTargets()
	if o.Quick {
		targets = targets[:1]
	}
	var points []Point
	for _, cfg := range allSixConfigs() {
		aug := augment.New(built.Poly, built.Index, cfg)
		for _, qs := range o.querySizes() {
			var coldSum, warmSum float64
			sizeSum := 0
			for _, target := range targets {
				query, err := built.Query(target, qs)
				if err != nil {
					return nil, err
				}
				cold, warm, size, err := coldWarm(aug, target, query, 0)
				if err != nil {
					return nil, err
				}
				coldSum += ms(cold)
				warmSum += ms(warm)
				sizeSum += size
			}
			n := float64(len(targets))
			points = append(points,
				Point{Figure: "11c", Series: cfg.Strategy.String(), XLabel: "query_size", X: float64(qs), Millis: coldSum / n, Size: sizeSum / len(targets)},
				Point{Figure: "11d", Series: cfg.Strategy.String(), XLabel: "query_size", X: float64(qs), Millis: warmSum / n, Size: sizeSum / len(targets)},
			)
		}
	}
	return points, nil
}

// Fig11ef reproduces Fig. 11(e,f): all six augmenters against the number of
// databases in the polystore (4, 7, 10, 13), fixed query size; cold (e) and
// warm (f).
func Fig11ef(o Options) ([]Point, error) {
	o = o.withDefaults()
	var points []Point
	for _, rounds := range o.storeRounds() {
		built, err := o.build(rounds, workload.Centralized())
		if err != nil {
			return nil, err
		}
		dbs := float64(built.Spec.Databases())
		query, err := built.Query("transactions", o.midQuery())
		if err != nil {
			return nil, err
		}
		for _, cfg := range allSixConfigs() {
			aug := augment.New(built.Poly, built.Index, cfg)
			cold, warm, size, err := coldWarm(aug, "transactions", query, 0)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Point{Figure: "11e", Series: cfg.Strategy.String(), XLabel: "databases", X: dbs, Millis: ms(cold), Size: size},
				Point{Figure: "11f", Series: cfg.Strategy.String(), XLabel: "databases", X: dbs, Millis: ms(warm), Size: size},
			)
		}
	}
	return points, nil
}

// FigureNames lists the figure ids the harness can regenerate. "cache",
// "ablation", "build" and "recovery" are experiments beyond the paper's
// plotted figures: the memory-based study Section VII-B(c) describes without
// a plot, the consistency-materialization ablation, the A' construction
// sweep (object count × collector workers), and the crash-recovery-vs-
// re-collection comparison of the durability subsystem. "cluster" is the
// node-count campaign: scatter-gather augmentation over 1–4 wire-served
// peers under the netsim capacity model. "wire" is the frame-codec A/B: the
// warm concurrent experiment over wire-served stores, one series per codec.
// "rcache" is the result-cache A/B: warm Zipf-skewed augmentations with and
// without the epoch-consistent cache, plus the delta-frontier bytes-on-wire
// comparison over a 3-peer cluster.
func FigureNames() []string {
	return []string{"9", "10ab", "10cd", "11ab", "11cd", "11ef", "12", "13ab", "13cd", "cache", "ablation", "build", "recovery", "cluster", "wire", "rcache"}
}

// Run executes one figure by id.
func Run(id string, o Options) ([]Point, error) {
	switch id {
	case "9", "9a", "9b":
		return Fig9(o)
	case "10ab", "10a", "10b":
		return Fig10ab(o)
	case "10cd", "10c", "10d":
		return Fig10cd(o)
	case "11ab", "11a", "11b":
		return Fig11ab(o)
	case "11cd", "11c", "11d":
		return Fig11cd(o)
	case "11ef", "11e", "11f":
		return Fig11ef(o)
	case "12", "12a", "12b":
		return Fig12(o)
	case "13ab", "13a", "13b":
		return Fig13ab(o)
	case "13cd", "13c", "13d":
		return Fig13cd(o)
	case "cache":
		return ExtraCache(o)
	case "ablation":
		return ExtraAblation(o)
	case "build":
		return FigBuild(o)
	case "recovery":
		return FigRecovery(o)
	case "cluster":
		return FigCluster(o)
	case "wire":
		return FigWire(o)
	case "rcache":
		return FigRcache(o)
	default:
		return nil, fmt.Errorf("bench: unknown figure %q (known: %v)", id, FigureNames())
	}
}
