package bench

// Baseline comparison: the bench-regression CI job runs a small fixed figure
// with -json and diffs it against the committed BENCH_<label>.json baseline.
// Points are matched on their identity (figure, series, x-label, x) so the
// check survives reordering and added figures; a point only fails the build
// when it is slower than the baseline by more than the tolerance AND by more
// than the noise floor — sub-millisecond jitter on a busy CI runner is not a
// regression.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// NoiseFloorMS is the absolute slowdown below which a point can never count
// as regressed, whatever the ratio says. CI runners jitter by a couple of
// milliseconds; a 0.5ms -> 1.2ms "140% regression" is measurement noise.
const NoiseFloorMS = 2.0

// Delta is one matched point pair.
type Delta struct {
	Figure    string  `json:"figure"`
	Series    string  `json:"series"`
	XLabel    string  `json:"x_label"`
	X         float64 `json:"x"`
	OldMS     float64 `json:"old_ms"`
	NewMS     float64 `json:"new_ms"`
	Ratio     float64 `json:"ratio"` // new/old; +Inf when old is 0
	Regressed bool    `json:"regressed"`
}

// Comparison is the outcome of diffing a new campaign against a baseline.
type Comparison struct {
	OldLabel  string  `json:"old_label"`
	NewLabel  string  `json:"new_label"`
	Tolerance float64 `json:"tolerance"`
	Deltas    []Delta `json:"deltas"`
	// OnlyOld counts baseline points with no counterpart in the new record
	// (e.g. the new run measured fewer figures); OnlyNew the reverse. Neither
	// fails the comparison, but both are reported — silent coverage loss
	// would make the guard meaningless.
	OnlyOld int `json:"only_old"`
	OnlyNew int `json:"only_new"`
	// SkippedOOM counts pairs left out because either side died out of
	// memory: an OOM point has no meaningful duration.
	SkippedOOM int `json:"skipped_oom"`
}

// pointKey identifies a measured point across runs.
type pointKey struct {
	figure, series, xLabel string
	x                      float64
}

// ReadRecord decodes a RunRecord and verifies its schema.
func ReadRecord(r io.Reader) (*RunRecord, error) {
	var rec RunRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("bench: decoding run record: %w", err)
	}
	if rec.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: run record schema %q, want %q", rec.Schema, SchemaVersion)
	}
	return &rec, nil
}

// ReadRecordFile reads a RunRecord from a file.
func ReadRecordFile(path string) (*RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := ReadRecord(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// CodecMismatch refuses to diff campaigns measured under different pinned
// wire codecs: a "binary got slower than json" delta is an A/B result, not a
// regression. Records without a pin (pre-codec baselines included) compare
// freely — their figures either do not cross the wire or ran the A/B
// themselves, with the codec in the series label.
func CodecMismatch(old, cur *RunRecord) error {
	if old.Codec != "" && cur.Codec != "" && old.Codec != cur.Codec {
		return fmt.Errorf("bench: refusing to compare codec %q run %q against codec %q run %q — rerun with matching -codec",
			cur.Codec, cur.Label, old.Codec, old.Label)
	}
	return nil
}

// EnvironmentMismatch describes how the two records' measurement
// environments differ — Go toolchain or scheduler parallelism — and returns
// "" when they match (or when either side predates the fields). Unlike
// CodecMismatch it never refuses the diff: a cross-environment comparison is
// sometimes all there is, but the reader must know the deltas may be the
// machine, not the code.
func EnvironmentMismatch(old, cur *RunRecord) string {
	var diffs []string
	if old.GoVersion != "" && cur.GoVersion != "" && old.GoVersion != cur.GoVersion {
		diffs = append(diffs, fmt.Sprintf("Go toolchain %s (baseline) vs %s (new)", old.GoVersion, cur.GoVersion))
	}
	if old.GoMaxProcs != 0 && cur.GoMaxProcs != 0 && old.GoMaxProcs != cur.GoMaxProcs {
		diffs = append(diffs, fmt.Sprintf("GOMAXPROCS %d (baseline) vs %d (new)", old.GoMaxProcs, cur.GoMaxProcs))
	}
	if len(diffs) == 0 {
		return ""
	}
	return "the records were measured in different environments: " + strings.Join(diffs, "; ") +
		" — time deltas may reflect the machine, not the code"
}

// Compare matches the new record's points against the baseline and flags
// every pair that slowed down by more than tolerance (a fraction: 0.30 allows
// +30%) and by more than NoiseFloorMS.
func Compare(old, cur *RunRecord, tolerance float64) Comparison {
	c := Comparison{OldLabel: old.Label, NewLabel: cur.Label, Tolerance: tolerance}
	baseline := map[pointKey]Point{}
	for _, p := range old.Points {
		baseline[key(p)] = p
	}
	matched := map[pointKey]bool{}
	for _, p := range cur.Points {
		k := key(p)
		b, ok := baseline[k]
		if !ok {
			c.OnlyNew++
			continue
		}
		matched[k] = true
		if p.OOM || b.OOM {
			c.SkippedOOM++
			continue
		}
		d := Delta{
			Figure: p.Figure, Series: p.Series, XLabel: p.XLabel, X: p.X,
			OldMS: b.Millis, NewMS: p.Millis,
		}
		if b.Millis > 0 {
			d.Ratio = p.Millis / b.Millis
		} else if p.Millis > 0 {
			d.Ratio = math.Inf(1)
		} else {
			d.Ratio = 1
		}
		d.Regressed = d.Ratio > 1+tolerance && p.Millis-b.Millis > NoiseFloorMS
		c.Deltas = append(c.Deltas, d)
	}
	c.OnlyOld = len(baseline) - len(matched)
	sort.Slice(c.Deltas, func(i, j int) bool {
		a, b := c.Deltas[i], c.Deltas[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.Series != b.Series {
			return a.Series < b.Series
		}
		return a.X < b.X
	})
	return c
}

func key(p Point) pointKey {
	return pointKey{figure: p.Figure, series: p.Series, xLabel: p.XLabel, x: p.X}
}

// BestOf merges repeated runs of the same campaign, keeping each point's
// fastest live measurement (quepa-bench -best-of). One-shot wall-clock points
// carry scheduler noise that only adds time, so the minimum is the stable
// estimator a regression guard wants. Point order follows the first run; an
// OOM survives only if every repeat OOMed too.
func BestOf(runs ...[]Point) []Point {
	if len(runs) == 0 {
		return nil
	}
	out := append([]Point(nil), runs[0]...)
	index := map[pointKey]int{}
	for i, p := range out {
		index[key(p)] = i
	}
	for _, run := range runs[1:] {
		for _, p := range run {
			i, ok := index[key(p)]
			if !ok {
				index[key(p)] = len(out)
				out = append(out, p)
				continue
			}
			best := &out[i]
			switch {
			case best.OOM && !p.OOM:
				*best = p
			case !best.OOM && !p.OOM && p.Millis < best.Millis:
				*best = p
			}
		}
	}
	return out
}

// Regressions returns the deltas that exceed the tolerance.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteMarkdown renders the comparison as a GitHub-flavored table — the CI
// job appends it to $GITHUB_STEP_SUMMARY.
func (c Comparison) WriteMarkdown(w io.Writer) error {
	regressed := len(c.Regressions())
	verdict := "✅ no regressions"
	if regressed > 0 {
		verdict = fmt.Sprintf("❌ %d point(s) regressed", regressed)
	}
	if _, err := fmt.Fprintf(w, "### Bench regression check: %s vs %s — %s (tolerance +%.0f%%, noise floor %gms)\n\n",
		c.NewLabel, c.OldLabel, verdict, c.Tolerance*100, NoiseFloorMS); err != nil {
		return err
	}
	fmt.Fprintln(w, "| figure | series | x | old ms | new ms | Δ | |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---|")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "❌"
		}
		fmt.Fprintf(w, "| %s | %s | %s=%g | %.3f | %.3f | %+.1f%% | %s |\n",
			d.Figure, d.Series, d.XLabel, d.X, d.OldMS, d.NewMS, (d.Ratio-1)*100, mark)
	}
	if c.OnlyOld > 0 || c.OnlyNew > 0 || c.SkippedOOM > 0 {
		fmt.Fprintf(w, "\n_%d baseline point(s) unmatched, %d new point(s) unmatched, %d OOM pair(s) skipped._\n",
			c.OnlyOld, c.OnlyNew, c.SkippedOOM)
	}
	return nil
}
