package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// quick runs every figure at Quick scale: these are correctness smoke tests
// of the harness itself; the full-scale numbers come from the repository's
// top-level benchmarks.
func quick() Options { return Options{Quick: true, Seed: 3} }

func checkPoints(t *testing.T, points []Point, figures ...string) {
	t.Helper()
	if len(points) == 0 {
		t.Fatal("no points")
	}
	seen := map[string]bool{}
	for _, p := range points {
		seen[p.Figure] = true
		if p.Series == "" || p.XLabel == "" {
			t.Errorf("incomplete point %+v", p)
		}
		if !p.OOM && p.Millis < 0 {
			t.Errorf("negative time %+v", p)
		}
	}
	for _, f := range figures {
		if !seen[f] {
			t.Errorf("figure %s missing from points", f)
		}
	}
}

func TestFig9(t *testing.T) {
	points, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "9a", "9b")
	// Both series present.
	series := map[string]bool{}
	for _, p := range points {
		series[p.Series] = true
	}
	if !series["BATCH"] || !series["OUTER-BATCH"] {
		t.Errorf("series = %v", series)
	}
}

func TestFig10ab(t *testing.T) {
	points, err := Fig10ab(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "10a", "10b")
	// The sequential series is flat.
	var seq []Point
	for _, p := range points {
		if p.Figure == "10a" && p.Series == "SEQUENTIAL" {
			seq = append(seq, p)
		}
	}
	if len(seq) < 2 {
		t.Fatal("sequential series missing")
	}
	for _, p := range seq[1:] {
		if p.Millis != seq[0].Millis {
			t.Errorf("sequential series not flat: %v vs %v", p.Millis, seq[0].Millis)
		}
	}
}

func TestFig10cd(t *testing.T) {
	points, err := Fig10cd(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "10c", "10d")
}

func TestFig11ab(t *testing.T) {
	points, err := Fig11ab(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "11a", "11b")
}

func TestFig11cd(t *testing.T) {
	points, err := Fig11cd(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "11c", "11d")
	// All six augmenters appear.
	series := map[string]bool{}
	for _, p := range points {
		series[p.Series] = true
	}
	if len(series) != 6 {
		t.Errorf("series = %v, want all six augmenters", series)
	}
}

func TestFig11ef(t *testing.T) {
	points, err := Fig11ef(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "11e", "11f")
}

func TestFig12(t *testing.T) {
	points, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "12a", "12b")
	// Win counts sum to the number of groups per variant; top-5 >= top-1.
	var top1, top5 float64
	for _, p := range points {
		if p.Figure == "12b" && p.Series == "top-1" {
			top1 = p.Millis
		}
		if p.Figure == "12b" && p.Series == "top-5" {
			top5 = p.Millis
		}
	}
	if top5 < top1 {
		t.Errorf("top-5 (%g) < top-1 (%g)", top5, top1)
	}
}

func TestFig13ab(t *testing.T) {
	points, err := Fig13ab(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "13a", "13b")
	series := map[string]bool{}
	for _, p := range points {
		series[p.Series] = true
	}
	for _, want := range []string{"QUEPA", "META-NAT", "META-AUG", "TALEND", "ARANGO-NAT", "ARANGO-AUG"} {
		if !series[want] {
			t.Errorf("missing system %s", want)
		}
	}
}

func TestFig13cd(t *testing.T) {
	points, err := Fig13cd(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "13c", "13d")
}

func TestRunDispatch(t *testing.T) {
	for _, id := range FigureNames() {
		if id == "12" || strings.HasPrefix(id, "13") {
			continue // exercised above; skip the slow ones here
		}
		points, err := Run(id, quick())
		if err != nil {
			t.Errorf("Run(%s): %v", id, err)
		}
		if len(points) == 0 {
			t.Errorf("Run(%s) returned no points", id)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestReport(t *testing.T) {
	points := []Point{
		{Figure: "9a", Series: "BATCH", XLabel: "BATCH_SIZE", X: 10, Millis: 1.5, Size: 100},
		{Figure: "9a", Series: "BATCH", XLabel: "BATCH_SIZE", X: 100, OOM: true},
	}
	var sb strings.Builder
	Report(&sb, points)
	out := sb.String()
	if !strings.Contains(out, "Fig. 9a") || !strings.Contains(out, "X (OOM)") || !strings.Contains(out, "BATCH_SIZE") {
		t.Errorf("report = %q", out)
	}
	Report(&sb, nil) // no panic on empty
}

func TestExtraCache(t *testing.T) {
	points, err := ExtraCache(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(quick().cacheSizes()) {
		t.Errorf("points = %d", len(points))
	}
}

func TestExtraAblation(t *testing.T) {
	points, err := ExtraAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	var matEdges, rawEdges, matReach, rawReach float64
	for _, p := range points {
		switch p.Series {
		case "materialized edges":
			matEdges = p.Millis
		case "raw edges":
			rawEdges = p.Millis
		case "materialized level-0 reach":
			matReach = p.Millis
		case "raw level-0 reach":
			rawReach = p.Millis
		}
	}
	// Materialization must add edges and must reach at least as many
	// objects at level 0 — that is the design's whole point.
	if matEdges <= rawEdges {
		t.Errorf("materialized edges %g <= raw %g", matEdges, rawEdges)
	}
	if matReach < rawReach {
		t.Errorf("materialized reach %g < raw %g", matReach, rawReach)
	}
}

// TestExplainSampling verifies -explain-sample plumbing: with sampling on,
// a figure run collects profiles and WriteJSON attaches them to the record.
func TestExplainSampling(t *testing.T) {
	SetExplainSampling(2)
	defer SetExplainSampling(0)
	points, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	profiles := ExplainProfiles()
	if len(profiles) == 0 {
		t.Fatal("sampling collected no profiles")
	}
	if len(profiles) > maxExplainProfiles {
		t.Errorf("profiles = %d, exceeds cap %d", len(profiles), maxExplainProfiles)
	}
	for _, p := range profiles {
		if p.Route != "bench/search" || p.Totals.Objects < 0 {
			t.Errorf("profile = %+v", p)
		}
	}

	var sb strings.Builder
	if err := WriteJSON(&sb, "test", quick(), []string{"9"}, points); err != nil {
		t.Fatal(err)
	}
	var rec RunRecord
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Profiles) != len(profiles) {
		t.Errorf("record has %d profiles, want %d", len(rec.Profiles), len(profiles))
	}

	// Resetting sampling drops collected profiles.
	SetExplainSampling(0)
	if got := ExplainProfiles(); len(got) != 0 {
		t.Errorf("profiles after reset = %d", len(got))
	}

	// With sampling off, nothing accumulates.
	if _, err := Fig9(quick()); err != nil {
		t.Fatal(err)
	}
	if got := ExplainProfiles(); len(got) != 0 {
		t.Errorf("profiles with sampling off = %d", len(got))
	}
}

func TestFigRecovery(t *testing.T) {
	points, err := FigRecovery(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkPoints(t, points, "recovery")
	series := map[string]Point{}
	for _, p := range points {
		series[p.Series] = p
	}
	for _, s := range []string{"recollect", "recover", "incremental"} {
		if _, ok := series[s]; !ok {
			t.Fatalf("series %q missing from points %v", s, points)
		}
	}
}
