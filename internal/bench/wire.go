package bench

// The codec A/B campaign: the warm concurrent experiment of Fig. 11 with
// every store re-homed behind a real loopback wire server (the quepa-server
// -wire deployment), run once per frame codec. The JSON series is the v1
// baseline, the BINARY series is codec v2; the object cache is disabled so
// the warm runs keep paying the wire on every fetch — "warm" here means
// warmed connections, negotiated codecs and pooled codec buffers, which is
// exactly the steady state the codec optimizes.

import (
	"fmt"
	"strings"
	"time"

	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/resilience"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// wireCodecs resolves the -codec flag into the series to run: both for the
// A/B (the default), one when pinned.
func (o Options) wireCodecs() ([]string, error) {
	switch o.Codec {
	case "":
		return []string{wire.CodecJSON, wire.CodecBinary}, nil
	case wire.CodecJSON, wire.CodecBinary:
		return []string{o.Codec}, nil
	}
	return nil, fmt.Errorf("bench: unknown codec %q (want %q or %q)", o.Codec, wire.CodecJSON, wire.CodecBinary)
}

// wirePolystore re-homes every store of built behind a loopback wire server
// dialed back with the given codec, verifying the negotiation landed where
// the series label claims. The returned close func tears the servers down.
func wirePolystore(built *workload.Built, codec string) (*core.Polystore, func(), error) {
	poly := core.NewPolystore()
	var servers []*wire.Server
	var clients []*wire.Client
	closeAll := func() {
		for _, c := range clients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	for _, name := range built.Poly.Databases() {
		st, err := built.Poly.Database(name)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		srv, err := wire.Serve(st, "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		servers = append(servers, srv)
		cli, err := wire.DialConfig(srv.Addr(), wire.ClientConfig{
			Retry: resilience.DefaultRetryPolicy(),
			Codec: codec,
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		clients = append(clients, cli)
		if cli.Codec() != codec {
			closeAll()
			return nil, nil, fmt.Errorf("bench: store %s negotiated codec %q, wanted %q — the A/B labels would lie", name, cli.Codec(), codec)
		}
		if err := poly.Register(cli); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	return poly, closeAll, nil
}

// wirePoint measures one (codec, threads) point. Each rep searches through a
// fresh augmenter: the first search lands on empty per-augmenter state (the
// cold sample), the following ones on the steady state the codec optimizes
// (the warm samples). The minima across reps are the point — single wire
// round trips are far too jittery for a 30% CI guard, and only noise ever
// adds time to a minimum.
func wirePoint(poly *core.Polystore, built *workload.Built, query string, ts, reps, warmRuns int) (cold, warm time.Duration, size int, err error) {
	for rep := 0; rep < reps; rep++ {
		aug := augment.New(poly, built.Index, augment.Config{
			Strategy: augment.OuterBatch, ThreadsSize: ts, BatchSize: 100,
		})
		c, answer, err := runSearch(aug, "transactions", query, 1)
		if err != nil {
			return 0, 0, 0, err
		}
		if rep == 0 || c < cold {
			cold = c
		}
		size = answer.Size()
		for i := 0; i < warmRuns; i++ {
			w, _, err := runSearch(aug, "transactions", query, 1)
			if err != nil {
				return 0, 0, 0, err
			}
			if (rep == 0 && i == 0) || w < warm {
				warm = w
			}
		}
	}
	return cold, warm, size, nil
}

// FigWire measures the codec A/B: augmented search time over wire-served
// stores as a function of THREADS_SIZE, one series per frame codec, cold
// ("wire-cold") and warm ("wire-warm"). The warm concurrent points are the
// tentpole's headline numbers.
func FigWire(o Options) ([]Point, error) {
	o = o.withDefaults()
	codecs, err := o.wireCodecs()
	if err != nil {
		return nil, err
	}
	built, err := o.build(2, workload.Centralized()) // 10 databases
	if err != nil {
		return nil, err
	}
	query, err := built.Query("transactions", o.largestQuery())
	if err != nil {
		return nil, err
	}
	reps, warmRuns := 3, 3
	if o.Quick {
		reps, warmRuns = 1, 1
	}
	var points []Point
	for _, codec := range codecs {
		poly, closeAll, err := wirePolystore(built, codec)
		if err != nil {
			return nil, err
		}
		series := strings.ToUpper(codec)
		for _, ts := range o.threadSizes() {
			// CacheSize 0: a warm cache would hide the wire entirely, and the
			// codec lives on the wire.
			cold, warm, size, err := wirePoint(poly, built, query, ts, reps, warmRuns)
			if err != nil {
				closeAll()
				return nil, err
			}
			points = append(points,
				Point{Figure: "wire-cold", Series: series, XLabel: "THREADS_SIZE", X: float64(ts), Millis: ms(cold), Size: size},
				Point{Figure: "wire-warm", Series: series, XLabel: "THREADS_SIZE", X: float64(ts), Millis: ms(warm), Size: size},
			)
		}
		closeAll()
	}
	return points, nil
}
