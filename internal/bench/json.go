package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"quepa/internal/explain"
	"quepa/internal/telemetry"
)

// RunRecord is the machine-readable form of a benchmark campaign, written by
// quepa-bench -json. One file per PR (BENCH_<label>.json at the repo root)
// gives the series a comparable baseline across the stacked PRs: same
// schema, same figures, same seed — any drift between two files is a real
// performance change, not a harness change.
type RunRecord struct {
	Schema    string `json:"schema"` // bumped only on incompatible layout changes
	Label     string `json:"label"`  // e.g. "PR1"
	GoVersion string `json:"go_version"`
	// GoMaxProcs records the scheduler parallelism the campaign ran under.
	// Millisecond baselines from a 2-core CI runner and a 16-core laptop are
	// not comparable; -compare warns loudly when the environments differ
	// (absent in pre-PR10 baselines, which compare without the warning).
	GoMaxProcs int       `json:"go_max_procs,omitempty"`
	Timestamp  time.Time `json:"timestamp"`
	Seed       int64     `json:"seed"`
	Quick      bool      `json:"quick"`
	// Codec records the -codec pin the campaign ran under ("" when the run
	// negotiated normally). Comparisons across records with different pinned
	// codecs are refused: the numbers measure different wire formats.
	Codec   string   `json:"codec,omitempty"`
	Figures []string `json:"figures"`
	Points  []Point  `json:"points"`
	// Profiles holds the EXPLAIN profiles sampled during the campaign when
	// quepa-bench ran with -explain-sample (absent otherwise).
	Profiles []*explain.Profile `json:"profiles,omitempty"`
	// Traces holds the tail-sampling decision counters of the campaign's
	// tracer — how many root spans were seen, how many were kept and why —
	// when any tracing happened (absent otherwise). The -compare guard
	// ignores it; it documents the observability cost of the run.
	Traces *telemetry.SamplingStats `json:"traces,omitempty"`
}

// SchemaVersion identifies the RunRecord layout.
const SchemaVersion = "quepa-bench/1"

// WriteJSON renders a campaign as an indented RunRecord.
func WriteJSON(w io.Writer, label string, opts Options, figures []string, points []Point) error {
	rec := RunRecord{
		Schema:     SchemaVersion,
		Label:      label,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Truncate(time.Second),
		Seed:       opts.withDefaults().Seed,
		Quick:      opts.Quick,
		Codec:      opts.Codec,
		Figures:    figures,
		Points:     points,
		Profiles:   ExplainProfiles(),
	}
	if st := telemetry.DefaultTracer().SamplingStats(); st.Seen > 0 {
		rec.Traces = &st
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
