package bench

// The result-cache A/B campaign, two figures:
//
//   - "rcache-warm": warm skewed single-origin augmentations at level 2
//     under concurrent workers, one series with the epoch-consistent result
//     cache attached (CACHE-ON) and one without (CACHE-OFF). The origin
//     stream is Zipf-distributed (Options.Skew, default exponent 1.1) —
//     the hot-key regime where memoization pays, and the regime the paper's
//     exploration sessions produce: users re-expand the same few objects.
//
//   - "rcache-scatter-bytes": bytes on the wire per distributed search over
//     a 3-peer netsim cluster, LEGACY (hop-synchronous engine, plain string
//     frontiers) against DELTA (pipelined engine, front-coded delta
//     frontiers). Size carries bytes/search; Millis the sweep wall time.
//
// Both figures verify answers against the uncached / single-node reference
// before timing anything: a cache that wins by being wrong is a bug.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"time"

	"quepa/internal/augment"
	"quepa/internal/cluster"
	"quepa/internal/core"
	"quepa/internal/netsim"
	"quepa/internal/rcache"
	"quepa/internal/resilience"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// rcacheWorkers is the concurrency sweep of the warm figure.
func (o Options) rcacheWorkers() []int {
	if o.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// rcacheOps is how many augmentations one warm sweep point executes.
func (o Options) rcacheOps() int {
	if o.Quick {
		return 16
	}
	return 200
}

// zipfSequence deals a deterministic Zipf-skewed stream of indexes in
// [0, n): the query mix every rcache series replays identically.
func (o Options) zipfSequence(n, ops int) ([]int, error) {
	if o.Skew <= 1 {
		return nil, fmt.Errorf("bench: -skew %g: the Zipf exponent must be > 1", o.Skew)
	}
	z := rand.NewZipf(rand.New(rand.NewSource(o.Seed)), o.Skew, 1, uint64(n-1))
	seq := make([]int, ops)
	for i := range seq {
		seq[i] = int(z.Uint64())
	}
	return seq, nil
}

// FigRcache runs both result-cache figures.
func FigRcache(o Options) ([]Point, error) {
	o = o.withDefaults()
	points, err := figRcacheWarm(o)
	if err != nil {
		return nil, err
	}
	bytes, err := figRcacheScatterBytes(o)
	if err != nil {
		return nil, err
	}
	return append(points, bytes...), nil
}

// figRcacheWarm measures the CACHE-ON/CACHE-OFF A/B: each point replays the
// same Zipf-skewed origin stream over w workers, warm (the stream has run
// once before the clock starts, so CACHE-ON points measure the steady state
// the cache optimizes and CACHE-OFF points a fair uncached warm run).
func figRcacheWarm(o Options) ([]Point, error) {
	built, err := o.build(2, workload.Centralized()) // 10 databases
	if err != nil {
		return nil, err
	}
	origins := clusterOrigins(built, 64)
	ctx := context.Background()
	var objs []core.Object
	for _, gk := range origins {
		obj, err := built.Poly.Fetch(ctx, gk)
		if err != nil {
			continue
		}
		objs = append(objs, obj)
	}
	if len(objs) < 2 {
		return nil, fmt.Errorf("bench: rcache workload has %d fetchable origins", len(objs))
	}
	ops := o.rcacheOps()
	seq, err := o.zipfSequence(len(objs), ops)
	if err != nil {
		return nil, err
	}

	// Correctness first: the cached augmenter must answer every distinct
	// origin exactly like the uncached one, cold and warm.
	plain := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Sequential})
	cachedRef := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Sequential})
	cachedRef.SetResultCache(rcache.New(4096))
	for _, obj := range objs {
		want, _, err := plain.AugmentObjects(ctx, []core.Object{obj}, 2)
		if err != nil {
			return nil, err
		}
		for pass := 0; pass < 2; pass++ {
			got, _, err := cachedRef.AugmentObjects(ctx, []core.Object{obj}, 2)
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(got, want) {
				return nil, fmt.Errorf("bench: cached augmentation of %v diverges from uncached", obj.GK)
			}
		}
	}

	var points []Point
	for _, on := range []bool{false, true} {
		series := "CACHE-OFF"
		aug := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Sequential})
		if on {
			series = "CACHE-ON"
			aug.SetResultCache(rcache.New(4096))
		}
		for _, w := range o.rcacheWorkers() {
			if _, err := runRcacheStream(ctx, aug, objs, seq, w); err != nil {
				return nil, err // unmeasured warm pass
			}
			elapsed, err := runRcacheStream(ctx, aug, objs, seq, w)
			if err != nil {
				return nil, err
			}
			points = append(points, Point{
				Figure: "rcache-warm",
				Series: series,
				XLabel: "workers",
				X:      float64(w),
				Millis: ms(elapsed),
				Size:   ops,
			})
		}
	}
	return points, nil
}

// runRcacheStream replays the skewed index sequence over w workers and
// reports the wall time of the whole stream.
func runRcacheStream(ctx context.Context, aug *augment.Augmenter, objs []core.Object, seq []int, workers int) (time.Duration, error) {
	if workers > len(seq) {
		workers = len(seq)
	}
	feed := make(chan int, len(seq))
	for _, i := range seq {
		feed <- i
	}
	close(feed)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range feed {
				if _, _, err := aug.AugmentObjects(ctx, []core.Object{objs[i]}, 2); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// figRcacheScatterBytes prices the delta-frontier wire encoding: the same
// level-2 traversals over the same 3-peer topology, once through the
// hop-synchronous engine shipping plain string frontiers (LEGACY — the
// pre-delta wire behavior) and once through the pipelined engine shipping
// front-coded delta frontiers (DELTA). Size records bytes/search.
func figRcacheScatterBytes(o Options) ([]Point, error) {
	built, err := workload.Build(o.spec(2), workload.Colocated())
	if err != nil {
		return nil, err
	}
	origins := clusterOrigins(built, 32)
	if len(origins) == 0 {
		return nil, fmt.Errorf("bench: rcache scatter workload has no origins")
	}
	const peers = 3
	ring, err := cluster.NewRing(peers, 16, 0)
	if err != nil {
		return nil, err
	}
	var servers []*wire.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	addrs := make([]string, peers)
	for shard := 0; shard < peers; shard++ {
		idx, err := cluster.BuildShard(built.Index, ring, shard)
		if err != nil {
			return nil, err
		}
		node := cluster.NewNode(shard, idx, built.Poly)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := wire.ServeOn(netsim.NewChaosNode(node, o.clusterProfile(), netsim.FaultPlan{}, nil), ln)
		servers = append(servers, srv)
		addrs[shard] = srv.Addr()
	}

	engines := []struct {
		series    string
		hopSync   bool
		plainKeys bool
	}{
		{series: "LEGACY", hopSync: true, plainKeys: true},
		{series: "DELTA"},
	}
	const level = 2
	ctx := context.Background()
	var points []Point
	for _, eng := range engines {
		coord, err := cluster.NewCoordinator(cluster.Config{
			Ring:         ring,
			Peers:        addrs,
			Self:         0,
			LoopbackSelf: true,
			HopSync:      eng.hopSync,
			Client: wire.ClientConfig{
				Retry:     resilience.RetryPolicy{MaxAttempts: 2, AttemptTimeout: 10 * time.Second},
				Codec:     wire.CodecBinary,
				PlainKeys: eng.plainKeys,
			},
		})
		if err != nil {
			return nil, err
		}
		// Correctness before pricing: both engines must reproduce the
		// single-node answer exactly.
		for _, origin := range origins {
			want := built.Index.Reach(origin, level)
			got, _, degs := coord.ReachScatter(ctx, origin, level)
			if len(degs) != 0 {
				coord.Close()
				return nil, fmt.Errorf("bench: %s: degraded traversal: %v", eng.series, degs)
			}
			if !sameHits(got, want) {
				coord.Close()
				return nil, fmt.Errorf("bench: %s: %v diverges from single-node answer", eng.series, origin)
			}
		}
		s0, r0 := coord.ReachBytes()
		start := time.Now()
		for _, origin := range origins {
			if _, _, degs := coord.ReachScatter(ctx, origin, level); len(degs) != 0 {
				coord.Close()
				return nil, fmt.Errorf("bench: %s: degraded traversal: %v", eng.series, degs)
			}
		}
		elapsed := time.Since(start)
		s1, r1 := coord.ReachBytes()
		coord.Close()
		points = append(points, Point{
			Figure: "rcache-scatter-bytes",
			Series: eng.series,
			XLabel: "peers",
			X:      float64(peers),
			Millis: ms(elapsed),
			Size:   int((s1 - s0 + r1 - r0)) / len(origins),
		})
	}
	return points, nil
}
