package bench

import (
	"context"
	"sync"

	"quepa/internal/explain"
)

// Explain sampling: with SetExplainSampling(K), every K-th measured search
// runs under an EXPLAIN recorder and its profile is kept, so a benchmark
// campaign's RunRecord carries concrete evidence of what the strategies did
// (fan-out, cache behaviour, wire bytes) alongside the timings.
var (
	explainMu       sync.Mutex
	explainEvery    int
	explainSeq      uint64
	explainProfiles []*explain.Profile
)

// maxExplainProfiles bounds the memory a long campaign can pin.
const maxExplainProfiles = 256

// SetExplainSampling enables profiling of every K-th search (0 disables)
// and resets previously collected profiles.
func SetExplainSampling(every int) {
	explainMu.Lock()
	defer explainMu.Unlock()
	explainEvery = every
	explainSeq = 0
	explainProfiles = nil
}

// ExplainProfiles returns the profiles collected since sampling was enabled.
func ExplainProfiles() []*explain.Profile {
	explainMu.Lock()
	defer explainMu.Unlock()
	out := make([]*explain.Profile, len(explainProfiles))
	copy(out, explainProfiles)
	return out
}

// explainCtx decides whether this search is sampled; the returned recorder
// is nil (and the context untouched) when it is not.
func explainCtx(ctx context.Context) (context.Context, *explain.Recorder) {
	explainMu.Lock()
	every := explainEvery
	sampled := false
	if every > 0 {
		explainSeq++
		sampled = explainSeq%uint64(every) == 0
	}
	explainMu.Unlock()
	if !sampled {
		return ctx, nil
	}
	return explain.WithRecorder(ctx, "bench/search")
}

// keepProfile stores a finished profile (nil profiles are ignored).
func keepProfile(p *explain.Profile) {
	if p == nil {
		return
	}
	explainMu.Lock()
	if len(explainProfiles) < maxExplainProfiles {
		explainProfiles = append(explainProfiles, p)
	}
	explainMu.Unlock()
}
