package resilience

import (
	"context"
	"errors"
	"sync"
	"time"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// State is a circuit breaker's position.
type State int32

// The three breaker states.
const (
	Closed State = iota // calls flow, consecutive failures counted
	Open                // calls rejected until the cooldown elapses
	HalfOpen            // one probe in flight decides reopen vs close
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is K: consecutive failures that trip the breaker.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before letting a
	// half-open probe through.
	Cooldown time.Duration
	// Now overrides the clock (deterministic tests). nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-store circuit breaker: closed -> open after K consecutive
// failures -> one half-open probe after the cooldown -> closed on probe
// success, reopen on probe failure. It is safe for concurrent use and
// allocation-free on the closed-state path.
type Breaker struct {
	name string
	cfg  BreakerConfig

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	opens    uint64    // lifetime open transitions
	probes   uint64    // lifetime half-open probes admitted
	rejected uint64    // lifetime calls rejected while open
	movedAt  time.Time // last state transition
	probing  bool      // a half-open probe is in flight

	transOpen   *telemetry.Counter
	transClosed *telemetry.Counter
}

// NewBreaker builds a breaker for one named store.
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{name: name, cfg: cfg, movedAt: cfg.Now()}
	label := telemetry.L("store", name)
	b.transOpen = telemetry.NewCounter("quepa_breaker_open_total",
		"times a store's circuit breaker opened", label)
	b.transClosed = telemetry.NewCounter("quepa_breaker_close_total",
		"times a store's circuit breaker recovered (half-open probe succeeded)", label)
	return b
}

// Name returns the store the breaker guards.
func (b *Breaker) Name() string { return b.name }

// Allow asks whether a call may proceed. It returns nil (go ahead — the
// caller must Record the outcome) or ErrOpen. An open breaker whose cooldown
// has elapsed admits exactly one caller as the half-open probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.Now().Sub(b.movedAt) < b.cfg.Cooldown {
			b.rejected++
			return ErrOpen
		}
		b.moveLocked(HalfOpen)
		b.probing = true
		b.probes++
		return nil
	default: // HalfOpen
		if b.probing {
			b.rejected++
			return ErrOpen
		}
		b.probing = true
		b.probes++
		return nil
	}
}

// Record feeds one allowed call's outcome back. nil and ErrNotFound count as
// success (a missing object is an answer, not an outage); context
// cancellation is ignored (the caller gave up, the store did not fail);
// everything else is a failure.
func (b *Breaker) Record(err error) {
	switch {
	case err == nil || errors.Is(err, core.ErrNotFound):
		b.RecordSuccess()
	case errors.Is(err, context.Canceled):
		b.mu.Lock()
		b.probing = false // an abandoned probe must not wedge half-open
		b.mu.Unlock()
	default:
		b.RecordFailure()
	}
}

// RecordSuccess resets the failure streak; a successful half-open probe
// closes the breaker.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == HalfOpen {
		b.probing = false
		b.moveLocked(Closed)
		b.transClosed.Inc()
	}
}

// RecordFailure extends the failure streak; K consecutive failures open the
// breaker, and a failed half-open probe reopens it.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.moveLocked(Open)
			b.opens++
			b.transOpen.Inc()
		}
	case HalfOpen:
		b.probing = false
		b.moveLocked(Open)
		b.opens++
		b.transOpen.Inc()
	default:
		// Open: a straggler admitted before the trip finished late. Its
		// failure must not extend the cooldown window.
	}
}

// moveLocked transitions states and stamps the time. Callers hold b.mu.
func (b *Breaker) moveLocked(to State) {
	b.state = to
	b.fails = 0
	b.movedAt = b.cfg.Now()
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStatus is one breaker's snapshot, JSON-shaped for /healthz and
// /stats.
type BreakerStatus struct {
	Store               string    `json:"store"`
	State               string    `json:"state"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
	Opens               uint64    `json:"opens"`
	Probes              uint64    `json:"probes"`
	Rejected            uint64    `json:"rejected"`
	Since               time.Time `json:"since"`
}

// Snapshot returns the breaker's current status.
func (b *Breaker) Snapshot() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{
		Store:               b.name,
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		Probes:              b.probes,
		Rejected:            b.rejected,
		Since:               b.movedAt,
	}
}
