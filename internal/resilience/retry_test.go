package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// TestRetryBackoffDeterministic: two retriers with the same policy produce
// the identical jittered backoff sequence — chaos tests depend on replay.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: 0.5, Seed: 42}
	a, b := NewRetrier(p), NewRetrier(p)
	for i := 1; i <= 6; i++ {
		da, db := a.Backoff(i), b.Backoff(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v", i, da, db)
		}
		if da <= 0 || da > 80*time.Millisecond {
			t.Errorf("attempt %d: backoff %v outside (0, max]", i, da)
		}
	}
	// A different seed must shift the jitter.
	p.Seed = 43
	c := NewRetrier(p)
	same := 0
	a2 := NewRetrier(RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: 0.5, Seed: 42})
	for i := 1; i <= 6; i++ {
		if a2.Backoff(i) == c.Backoff(i) {
			same++
		}
	}
	if same == 6 {
		t.Error("seeds 42 and 43 produced identical jitter streams")
	}
}

// TestRetryBackoffCapped: the exponential growth stops at MaxBackoff even
// for absurd attempt numbers (overflow guard).
func TestRetryBackoffCapped(t *testing.T) {
	r := NewRetrier(RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Jitter: 0})
	for _, attempt := range []int{1, 2, 3, 4, 10, 64, 1000} {
		if d := r.Backoff(attempt); d > 8*time.Millisecond || d <= 0 {
			t.Errorf("attempt %d: backoff %v outside (0, 8ms]", attempt, d)
		}
	}
	if d := r.Backoff(1); d != time.Millisecond {
		t.Errorf("jitter-free first backoff = %v, want 1ms", d)
	}
}

// TestRetryDoRecovers: a transient fault is retried within the budget.
func TestRetryDoRecovers(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Jitter: 0})
	var slept []time.Duration
	r.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls", err, calls)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}
}

// TestRetryDoExhausts: the budget bounds the attempts and the last error
// surfaces.
func TestRetryDoExhausts(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Jitter: 0})
	r.SetSleep(func(time.Duration) {})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, errBoom) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want errBoom after 3", err, calls)
	}
}

// TestRetryDoStopsOnCancel: context cancellation and open breakers are not
// retried.
func TestRetryDoStopsOnCancel(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond, Jitter: 0})
	r.SetSleep(func(time.Duration) {})
	for _, permanent := range []error{context.Canceled, ErrOpen} {
		calls := 0
		err := r.Do(context.Background(), func(context.Context) error { calls++; return permanent })
		if !errors.Is(err, permanent) || calls != 1 {
			t.Errorf("Do(%v) = %v after %d calls, want no retries", permanent, err, calls)
		}
	}
}

// TestRetryNoFaultZeroAllocs pins the acceptance criterion: on the no-fault
// hot path the retry machinery adds zero allocations — kill-switch style,
// like internal/explain's off path.
func TestRetryNoFaultZeroAllocs(t *testing.T) {
	r := NewRetrier(DefaultRetryPolicy())
	ctx := context.Background()
	op := func(context.Context) error { return nil }
	if n := testing.AllocsPerRun(200, func() {
		if err := r.Do(ctx, op); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Retrier.Do allocates %v per no-fault run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = r.Backoff(1) }); n != 0 {
		t.Errorf("Retrier.Backoff allocates %v per run, want 0", n)
	}
}
