package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"quepa/internal/core"
)

// fakeClock is a hand-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(k int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker("remote", BreakerConfig{FailureThreshold: k, Cooldown: cooldown, Now: clock.Now}), clock
}

// TestBreakerOpensAfterK: exactly K consecutive failures trip the breaker;
// a success in between resets the streak.
func TestBreakerOpensAfterK(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.RecordFailure()
	b.RecordFailure()
	b.RecordSuccess() // streak broken
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Errorf("open breaker allowed a call: %v", err)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown one probe is admitted; its
// success closes the breaker, and concurrent calls during the probe are
// still rejected.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker(2, time.Second)
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("cooldown not elapsed, call should be rejected")
	}
	clock.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	// A second caller during the probe is rejected.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Error("second call admitted during half-open probe")
	}
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Errorf("closed breaker rejected a call: %v", err)
	}
}

// TestBreakerReopensOnProbeFailure: a failed probe restarts the cooldown.
func TestBreakerReopensOnProbeFailure(t *testing.T) {
	b, clock := newTestBreaker(1, time.Second)
	b.RecordFailure()
	clock.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Error("breaker admitted a call right after a failed probe")
	}
	// The next cooldown admits a fresh probe.
	clock.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Errorf("second probe rejected: %v", err)
	}
	snap := b.Snapshot()
	if snap.Opens != 2 || snap.Probes != 2 {
		t.Errorf("snapshot opens=%d probes=%d, want 2/2", snap.Opens, snap.Probes)
	}
}

// TestBreakerRecordClassification: not-found is success, cancellation is
// neutral, other errors are failures.
func TestBreakerRecordClassification(t *testing.T) {
	b, _ := newTestBreaker(1, time.Second)
	b.Record(core.ErrNotFound)
	if b.State() != Closed {
		t.Error("ErrNotFound tripped the breaker")
	}
	b.Record(context.Canceled)
	if b.State() != Closed {
		t.Error("context.Canceled tripped the breaker")
	}
	b.Record(errBoom)
	if b.State() != Open {
		t.Error("a store error did not trip a K=1 breaker")
	}
}

// TestBreakerCanceledProbeUnwedges: a probe abandoned by cancellation frees
// the half-open slot for the next caller.
func TestBreakerCanceledProbeUnwedges(t *testing.T) {
	b, clock := newTestBreaker(1, time.Second)
	b.RecordFailure()
	clock.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(context.Canceled)
	if err := b.Allow(); err != nil {
		t.Errorf("half-open slot wedged after canceled probe: %v", err)
	}
}

// TestBreakerZeroAllocs pins the closed-path cost: Allow + Record on a
// healthy store never allocate.
func TestBreakerZeroAllocs(t *testing.T) {
	b, _ := newTestBreaker(5, time.Second)
	if n := testing.AllocsPerRun(200, func() {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(nil)
	}); n != 0 {
		t.Errorf("closed-path Allow+Record allocates %v per run, want 0", n)
	}
}

// TestBreakerConcurrentLifecycle hammers one breaker from many goroutines
// under -race: the invariants (at most one probe, monotonic counters) hold.
func TestBreakerConcurrentLifecycle(t *testing.T) {
	b, clock := newTestBreaker(3, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() != nil {
					continue
				}
				if (g+i)%3 == 0 {
					b.RecordFailure()
				} else {
					b.RecordSuccess()
				}
				if i%50 == 0 {
					clock.Advance(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := b.Snapshot()
	if snap.State == "unknown" {
		t.Errorf("breaker in unknown state: %+v", snap)
	}
}
