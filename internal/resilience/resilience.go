// Package resilience makes the remote-store path of the polystore fault
// tolerant. The paper's distributed deployment (Section VII, one store per
// EC2 region) assumes every store answers every round trip; real polystores
// do not, and the BigDAWG line of work calls middleware resilience to slow
// or unavailable island engines a core polystore concern. This package
// provides the three classic building blocks, tuned for QUEPA's fan-out
// shape:
//
//   - RetryPolicy / Retrier: capped exponential backoff with deterministic
//     seeded jitter and optional per-attempt deadlines, applied by the wire
//     client to idempotent round trips.
//   - Breaker: a per-store circuit breaker (closed -> open after K
//     consecutive failures -> half-open probe -> closed), so a dead store
//     costs one fast rejection instead of a timeout per fetch.
//   - GuardedStore / Set: a core.Store decorator recording every call's
//     outcome into a breaker, plus the registry the server exposes through
//     GET /healthz and GET /stats.
//
// The cost contract mirrors internal/telemetry and internal/explain: on the
// no-fault hot path nothing here allocates — the retrier's first attempt and
// the breaker's closed-state bookkeeping are a mutex and a few integer ops.
// Kill-switch-style AllocsPerRun tests pin this.
package resilience

import (
	"errors"
	"time"
)

// ErrOpen is returned (possibly wrapped) when a circuit breaker rejects a
// call without consulting the store. The augmenter degrades the store's
// contribution instead of failing the query; callers distinguish the case
// with errors.Is(err, ErrOpen).
var ErrOpen = errors.New("resilience: circuit open")

// ErrPeerOpen is returned (possibly wrapped) when a cluster coordinator's
// per-peer circuit breaker rejects a scatter-gather call to a remote shard.
// It lives here — the import graph's leaf — so both the cluster coordinator
// (which raises it) and the augmenter (which classifies it as the
// "peer-open" degradation reason) can match it without importing each other.
var ErrPeerOpen = errors.New("resilience: peer circuit open")

// Defaults for RetryPolicy and BreakerConfig zero values.
const (
	DefaultMaxAttempts      = 3
	DefaultBaseBackoff      = 5 * time.Millisecond
	DefaultMaxBackoff       = 250 * time.Millisecond
	DefaultJitter           = 0.5
	DefaultFailureThreshold = 5
	DefaultCooldown         = 5 * time.Second
)
